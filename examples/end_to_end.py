"""End to end: generate data, optimize, execute — and feel the difference.

Builds a hand-crafted 6-relation cycle query (cardinalities small enough
that the synthetic database needs no down-scaling, so the optimizer's
estimates track the real data), optimizes it, executes the optimal plan
and a deliberately bad plan with the engine, and shows that (a) both
return the identical result and (b) the optimizer's cost ranking predicts
the measured execution-time ranking.

Run:  python examples/end_to_end.py
"""

import time
from collections import Counter

from repro import (
    CardinalityEstimator,
    OptimizerConfig,
    JoinGraph,
    JoinMethod,
    JoinNode,
    Query,
    QueryContext,
    ScanNode,
    StandardCostModel,
    explain,
    optimize,
    plan_cost,
)
from repro.engine import execute_plan, generate_database


def build_query() -> Query:
    # Cycle 0-1-2-3-4-5-0.  The (0,1) edge is deliberately unselective:
    # a plan that starts there drags a fat intermediate through the rest.
    edges = [
        (0, 1, 0.2),
        (1, 2, 0.004),
        (2, 3, 0.005),
        (3, 4, 0.004),
        (4, 5, 0.01),
        (0, 5, 0.003),
    ]
    return Query(
        graph=JoinGraph(6, edges),
        relation_names=("t0", "t1", "t2", "t3", "t4", "t5"),
        cardinalities=(300.0, 250.0, 400.0, 150.0, 350.0, 200.0),
        label="end-to-end-cycle",
    )


def timed_execution(plan, query, db):
    start = time.perf_counter()
    rows = execute_plan(plan, query, db)
    return rows, time.perf_counter() - start


def main() -> None:
    query = build_query()
    db = generate_database(query, seed=13, max_rows=500)
    sizes = {name: len(t) for name, t in db.tables.items()}
    print(f"query: {query.label}; table sizes: {sizes}\n")

    # The DP optimum.
    best = optimize(query, config=OptimizerConfig(algorithm="dpsva"))
    print("optimal plan (DPsva):")
    print(explain(best.plan, relation_names=query.relation_names))

    # A deliberately bad plan: hash joins in base-relation order — the
    # operator is fine, the *order* carries the damage (it starts on the
    # fat (t0, t1) edge and carries the bloat through every later join).
    bad = ScanNode(0)
    for rel in range(1, query.n):
        bad = JoinNode(left=bad, right=ScanNode(rel), method=JoinMethod.HASH)
    ctx = QueryContext(query)
    est = CardinalityEstimator(ctx)
    bad_cost = plan_cost(bad, est, StandardCostModel())

    print(f"\nestimated cost: optimal={best.cost:.4g}  naive={bad_cost:.4g}  "
          f"(ratio {bad_cost / best.cost:.1f}x)")

    good_rows, good_time = timed_execution(best.plan, query, db)
    bad_rows, bad_time = timed_execution(bad, query, db)
    assert Counter(good_rows) == Counter(bad_rows)
    print(f"\nexecuted both plans: identical result, {len(good_rows)} rows")
    print(f"  optimal plan: {good_time * 1e3:8.2f} ms")
    print(f"  naive plan:   {bad_time * 1e3:8.2f} ms "
          f"({bad_time / max(good_time, 1e-9):.1f}x slower)")


if __name__ == "__main__":
    main()
