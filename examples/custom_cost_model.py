"""Plugging a custom cost model into the enumerators.

The framework is cost-model agnostic (the paper's point about pruning
functions): any :class:`repro.CostModel` subclass drops into every serial
and parallel enumerator.  This example defines a memory-averse model that
heavily penalizes hash-table builds, and shows how the optimal plan's
operator mix changes.

Run:  python examples/custom_cost_model.py
"""

from repro import (
    CostModel,
    OptimizerConfig,
    JoinMethod,
    StandardCostModel,
    Workload,
    WorkloadSpec,
    explain,
    optimize,
)


class MemoryAverseCostModel(CostModel):
    """Prices hash builds at their buffer footprint.

    Hash join pays ``build_penalty`` per build-side tuple (modelling a
    memory-constrained executor that spills); sort-merge and nested loops
    are priced as in the standard model.
    """

    def __init__(self, build_penalty: float = 25.0) -> None:
        self.build_penalty = build_penalty
        self._standard = StandardCostModel()

    methods = StandardCostModel.methods

    def scan_cost(self, rows: float) -> float:
        return rows

    def join_cost(self, method, left_rows, right_rows, out_rows) -> float:
        if method is JoinMethod.HASH:
            return self.build_penalty * left_rows + right_rows
        return self._standard.join_cost(method, left_rows, right_rows, out_rows)


def count_methods(plan) -> dict:
    from repro import JoinNode

    counts: dict = {}
    def walk(node):
        if isinstance(node, JoinNode):
            counts[node.method.name] = counts.get(node.method.name, 0) + 1
            walk(node.left)
            walk(node.right)
    walk(plan)
    return counts


def main() -> None:
    query = Workload(WorkloadSpec("cycle", 9, seed=5))[0]

    standard = optimize(
        query, config=OptimizerConfig(algorithm="dpsva", threads=4)
    )
    averse = optimize(
        query,
        config=OptimizerConfig(
            algorithm="dpsva",
            threads=4,
            cost_model=MemoryAverseCostModel(),
        ),
    )

    print("-- StandardCostModel --")
    print(standard.summary())
    print(f"join methods used: {count_methods(standard.plan)}")
    print()
    print("-- MemoryAverseCostModel (hash builds cost 25x) --")
    print(averse.summary())
    print(f"join methods used: {count_methods(averse.plan)}")
    print()
    print("plan under the memory-averse model:")
    print(explain(averse.plan, relation_names=query.relation_names))
    hash_standard = count_methods(standard.plan).get("HASH", 0)
    hash_averse = count_methods(averse.plan).get("HASH", 0)
    print(
        f"\nhash joins: {hash_standard} (standard) -> {hash_averse} (averse)"
    )


if __name__ == "__main__":
    main()
