"""The GIL gate, demonstrated: real threads vs processes vs the simulator.

The paper measures wall-clock speedup of threads sharing a memo table.
CPython's GIL makes that speedup unobservable with real threads — which is
exactly why this reproduction's headline numbers come from the
deterministic simulated-multicore backend.  This example runs all three
backends on the same query and prints the comparison.

Run:  python examples/real_parallelism.py
"""

import time

from repro import ParallelDP, Workload, WorkloadSpec
from repro.bench import format_table
from repro.plans import plan_signature


def measure(query, backend: str, threads: int):
    optimizer = ParallelDP(algorithm="dpsva", threads=threads, backend=backend)
    start = time.perf_counter()
    result = optimizer.optimize(query)
    wall = time.perf_counter() - start
    return result, wall


def main() -> None:
    query = Workload(WorkloadSpec("star", 10, seed=3))[0]
    print(f"query: {query.label}\n")

    rows = []
    signature = None
    for backend in ("threads", "processes"):
        base = None
        for threads in (1, 2, 4):
            result, wall = measure(query, backend, threads)
            base = base or wall
            rows.append({
                "backend": backend,
                "threads": threads,
                "wall_ms": wall * 1e3,
                "speedup": base / wall,
            })
            sig = plan_signature(result.plan)
            assert signature is None or sig == signature
            signature = sig
    # Simulated predictions for the same thread counts.
    sim_base = None
    for threads in (1, 2, 4):
        result, _ = measure(query, "simulated", threads)
        sim_time = result.sim_report.total_time
        sim_base = sim_base or sim_time
        rows.append({
            "backend": "simulated",
            "threads": threads,
            "wall_ms": float("nan"),
            "speedup": sim_base / sim_time,
        })

    print(format_table(rows))
    print("\nAll backends returned the identical optimal plan:")
    print(f"  {signature}")
    print("\nReading the table: the 'threads' backend shows the GIL gate")
    print("(no wall speedup despite correct parallel decomposition);")
    print("'processes' is correct under real concurrency but per-stratum")
    print("IPC absorbs the gains at this query size — the classic reason")
    print("fine-grained shared-memo schemes don't port to shared-nothing;")
    print("'simulated' is the deterministic model used for the headline")
    print("measurements.")


if __name__ == "__main__":
    main()
