"""Quickstart: optimize a join query serially and in parallel.

Run:  python examples/quickstart.py
"""

from repro import (
    OptimizerConfig,
    PDPsva,
    Workload,
    WorkloadSpec,
    explain,
    optimize,
)


def main() -> None:
    # A reproducible random 10-relation star query (fact table t0 joined
    # to nine dimension tables), Steinbrunn-style statistics.
    query = Workload(WorkloadSpec("star", 10, seed=7))[0]
    print(f"query: {query.label}, relations: {query.relation_names}")
    print(f"cardinalities: {[int(c) for c in query.cardinalities]}")

    # Serial exact optimization with the classic DPsize enumerator.
    serial = optimize(query, config=OptimizerConfig(algorithm="dpsize"))
    print("\n-- serial DPsize --")
    print(serial.summary())

    # Same optimum, far fewer candidate pairs: skip vector arrays.
    sva = optimize(query, config=OptimizerConfig(algorithm="dpsva"))
    print("\n-- serial DPsva --")
    print(sva.summary())
    saved = serial.meter.pairs_considered - sva.meter.pairs_considered
    print(f"pairs skipped vs DPsize: {saved:,} "
          f"({saved / serial.meter.pairs_considered:.1%})")

    # Parallel optimization: 8 workers on the simulated multicore.
    parallel = PDPsva(threads=8).optimize(query)
    report = parallel.sim_report
    print("\n-- PDPsva, 8 workers (simulated multicore) --")
    print(parallel.summary())
    print(report.summary())
    serial_time = PDPsva(threads=1).optimize(query).sim_report.total_time
    print(f"simulated speedup vs 1 worker: {report.speedup_vs(serial_time):.2f}x")

    # All three agree on the optimal plan.
    assert serial.cost == sva.cost == parallel.cost
    print("\noptimal plan:")
    print(explain(parallel.plan, relation_names=query.relation_names))


if __name__ == "__main__":
    main()
