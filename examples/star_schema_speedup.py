"""Data-warehouse scenario: parallelizing optimization of big star joins.

Star-schema queries (one fact table joined to many dimensions) are the
classic case where exact join enumeration explodes: every subset of
dimensions forms an intermediate result.  This example regenerates the
paper's headline figure shape — speedup versus worker count — for star
queries of growing size, and shows how the allocation scheme matters.

Run:  python examples/star_schema_speedup.py
"""

from repro import PDPsva, Workload, WorkloadSpec
from repro.bench import (
    allocation_comparison,
    format_table,
    render_curve,
    speedup_curve,
)
from repro.simx import render_gantt


def main() -> None:
    print("PDPsva simulated speedup on star queries")
    print("=" * 60)
    for n in (10, 12):
        rows = speedup_curve(
            "star", n, algorithm="dpsva",
            thread_counts=(1, 2, 4, 8, 16), queries=2, seed=11,
        )
        print()
        print(format_table(rows, columns=[
            "threads", "sim_time", "speedup", "efficiency",
            "imbalance", "sync_share",
        ]))
        print()
        print(render_curve(
            [r["threads"] for r in rows],
            [r["speedup"] for r in rows],
            label=f"speedup, star n={n}",
        ))

    print()
    print("Allocation schemes at 8 workers (PDPsize, star n=11)")
    print("=" * 60)
    rows = allocation_comparison(
        "star", 11, algorithm="dpsize", threads=8, queries=2, seed=11
    )
    print(format_table(rows, columns=[
        "scheme", "sim_time", "speedup", "imbalance",
    ]))
    print("\nThe total-sum (equi_depth) allocation balances candidate-pair")
    print("weights across workers; chunked placement concentrates the skew;")
    print("'dynamic' is the online oracle bound.")

    print()
    print("Per-stratum timeline (PDPsva, 4 workers, star n=10)")
    print("=" * 60)
    query = Workload(WorkloadSpec("star", 10, seed=11))[0]
    report = PDPsva(threads=4).optimize(query).sim_report
    print(render_gantt(report))
    print("\n'#' = kernel work, '~' = latch contention, '.' = idle before")
    print("the stratum barrier.  Early strata are too thin to fill four")
    print("workers; the big middle strata are where parallelism pays.")


if __name__ == "__main__":
    main()
