"""SQL in, executed rows out: the whole pipeline on a warehouse schema.

Defines a small TPC-style catalog by hand, writes the query as SQL,
optimizes it in parallel, inspects the search space, materializes
synthetic data, and executes the optimal plan.

Run:  python examples/warehouse_sql.py
"""

from repro import Catalog, Column, QueryContext, TableStats, explain
from repro.engine import execute_plan, generate_database
from repro.query import plan_space_report
from repro.sql import optimize_sql, sql_to_query


def build_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add(TableStats(
        name="customer", cardinality=30_000,
        columns=(Column("id", 30_000), Column("nation", 25)),
    ))
    catalog.add(TableStats(
        name="orders", cardinality=150_000,
        columns=(Column("id", 150_000), Column("cust", 30_000),
                 Column("status", 3)),
    ))
    catalog.add(TableStats(
        name="lineitem", cardinality=600_000,
        columns=(Column("order_id", 150_000), Column("part", 20_000),
                 Column("supp", 1_000)),
    ))
    catalog.add(TableStats(
        name="part", cardinality=20_000,
        columns=(Column("id", 20_000), Column("brand", 50)),
    ))
    catalog.add(TableStats(
        name="supplier", cardinality=1_000,
        columns=(Column("id", 1_000), Column("nation", 25)),
    ))
    return catalog


SQL = """
SELECT * FROM customer c, orders o, lineitem l, part p, supplier s
WHERE c.id = o.cust
  AND o.id = l.order_id
  AND l.part = p.id
  AND l.supp = s.id
  AND p.brand = 7
"""


def main() -> None:
    catalog = build_catalog()
    print("SQL:")
    print(SQL.strip())

    query = sql_to_query(SQL, catalog, label="warehouse")
    report = plan_space_report(QueryContext(query))
    print("\nsearch space:")
    for key, value in report.items():
        print(f"  {key}: {value:,}" if isinstance(value, int) else f"  {key}: {value}")

    result = optimize_sql(SQL, catalog, algorithm="dpsva", threads=4)
    print("\noptimized (PDPsva, 4 workers):")
    print(result.summary())
    print(explain(result.plan, relation_names=query.relation_names))

    db = generate_database(query, seed=42, max_rows=500)
    rows = execute_plan(result.plan, query, db)
    print(f"\nexecuted over synthetic data "
          f"({ {name: len(t) for name, t in db.tables.items()} }):")
    print(f"  result rows: {len(rows)}")
    print("  (the p.brand = 7 filter scaled part's effective cardinality "
          f"to {int(query.cardinalities[3])})")


if __name__ == "__main__":
    main()
