"""Traffic replay: a closed-loop load generator for the async serving tier.

Real optimizer traffic repeats itself — a dashboard re-issues the same
handful of report queries far more often than it invents new ones.  This
example drives a Zipf-skewed stream of star/chain/cycle/clique queries
through :class:`repro.service.AsyncOptimizerService` with N closed-loop
clients (each client submits its next request as soon as the previous
response arrives) and reports what the serving layer buys:

* client-observed p50/p95/p99 latency and throughput — the hot queries
  pay for exact DP optimization once, then answer in microseconds;
* provenance per response (``hit``/``miss``/``shared``/``fallback``/
  ``error``/``shed``) and the shed rate — with offered load at or below
  the admission limit, the shed rate must be exactly zero;
* a warm-start restart: the service spills its plan cache to a versioned
  file on close and a new service instance reloads it, so the restarted
  tier starts hot;
* per-tenant token-bucket quotas: a greedy tenant is shed with
  ``source="shed"``/``shed_reason="quota"`` while other tenants are
  unaffected.

The script exits non-zero if the replay sheds or errors while offered
load is under the admission limit — CI runs it as a serving smoke test
(``--quick``).

Run:  python examples/traffic_replay.py [--quick]
"""

import argparse
import asyncio
import math
import os
import random
import sys
import tempfile
import time

from repro import OptimizerConfig
from repro.bench import format_table
from repro.query import WorkloadSpec, generate_query
from repro.service import AsyncOptimizerService, OptimizeRequest


def build_catalog_queries(seed: int = 7):
    """A small 'application': 6 distinct queries of mixed shape/size."""
    specs = [
        WorkloadSpec("star", 10, seed=seed),
        WorkloadSpec("star", 9, seed=seed + 1),
        WorkloadSpec("chain", 12, seed=seed + 2),
        WorkloadSpec("cycle", 10, seed=seed + 3),
        WorkloadSpec("star", 8, seed=seed + 4),
        WorkloadSpec("clique", 8, seed=seed + 5),
    ]
    return [generate_query(spec) for spec in specs]


def percentile(values, q):
    """Nearest-rank percentile of a sorted list."""
    if not values:
        return 0.0
    rank = min(len(values) - 1, max(0, math.ceil(q * len(values)) - 1))
    return values[rank]


async def replay(config, queries, *, clients, requests_per_client, seed,
                 tenant_of=None):
    """Drive one closed-loop replay; returns (responses, stats, wall)."""
    tenant_of = tenant_of or (lambda c: f"client-{c}")
    weights = [2.0 ** -k for k in range(len(queries))]

    async with AsyncOptimizerService(config) as service:

        async def client(c):
            rng = random.Random(seed * 1000 + c)
            out = []
            for _ in range(requests_per_client):
                query = rng.choices(queries, weights=weights, k=1)[0]
                started = time.perf_counter()
                response = await service.optimize(
                    OptimizeRequest(query, tenant=tenant_of(c))
                )
                out.append((response, time.perf_counter() - started))
            return out

        wall_start = time.perf_counter()
        per_client = await asyncio.gather(
            *(client(c) for c in range(clients))
        )
        wall = time.perf_counter() - wall_start
        stats = service.stats()
    responses = [pair for chunk in per_client for pair in chunk]
    return responses, stats, wall


def source_table(responses):
    by_source = {}
    for response, latency in responses:
        by_source.setdefault(response.source, []).append(latency * 1e3)
    rows = []
    for source, lat in sorted(by_source.items()):
        lat.sort()
        rows.append({
            "source": source,
            "requests": len(lat),
            "p50_ms": round(percentile(lat, 0.50), 4),
            "p99_ms": round(percentile(lat, 0.99), 4),
            "max_ms": round(max(lat), 4),
        })
    return rows


def report(title, responses, stats, wall):
    latencies = sorted(lat * 1e3 for _, lat in responses)
    sheds = sum(1 for r, _ in responses if r.source == "shed")
    errors = sum(1 for r, _ in responses if r.source == "error")
    print(f"-- {title} --")
    print(format_table(source_table(responses)))
    print(f"wall {wall:.3f}s  throughput {len(responses) / wall:,.0f} req/s  "
          f"p50={percentile(latencies, 0.5):.3f}ms "
          f"p95={percentile(latencies, 0.95):.3f}ms "
          f"p99={percentile(latencies, 0.99):.3f}ms")
    cache = stats.plan_cache
    print(f"cache hit_rate={cache.hit_rate:.2%}  "
          f"optimizations={stats.optimizations}  "
          f"shed_rate={sheds / len(responses):.2%}  errors={errors}  "
          f"warm_start_entries={stats.warm_start_entries}")
    print()
    return sheds, errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI-sized replay")
    parser.add_argument("--clients", type=int, default=None,
                        help="closed-loop client count (default 8, quick 4)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client (default 50, quick 15)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=8,
                        help="plan-cache shard count")
    parser.add_argument("--admission-limit", type=int, default=None,
                        help="waiting-request cap (default: client count, "
                        "so offered load sits at the limit and nothing "
                        "may shed)")
    args = parser.parse_args(argv)

    clients = args.clients or (4 if args.quick else 8)
    per_client = args.requests or (15 if args.quick else 50)
    limit = args.admission_limit or clients
    queries = build_catalog_queries(args.seed)
    if args.quick:
        queries = queries[:4]

    print(f"replaying {clients} closed-loop clients x {per_client} requests "
          f"over {len(queries)} distinct queries (zipf-skewed), "
          f"shards={args.shards} admission_limit={limit}")
    print("=" * 70)

    with tempfile.TemporaryDirectory() as tmp:
        warm_path = os.path.join(tmp, "plancache.jsonl")
        config = OptimizerConfig(
            algorithm="dpsize", cache_size=64, service_workers=4,
            cache_shards=args.shards, admission_limit=limit,
            warm_start_path=warm_path,
        )

        responses, stats, wall = asyncio.run(replay(
            config, queries, clients=clients,
            requests_per_client=per_client, seed=args.seed,
        ))
        sheds, errors = report("cold start", responses, stats, wall)

        # Restart: a second service instance reloads the spilled cache, so
        # every distinct query is already warm — no cold misses at all.
        responses2, stats2, wall2 = asyncio.run(replay(
            config, queries, clients=clients,
            requests_per_client=per_client, seed=args.seed + 1,
        ))
        warm_hit_rate = stats2.plan_cache.hit_rate
        sheds2, errors2 = report(
            f"warm restart (reloaded {stats2.warm_start_entries} plans)",
            responses2, stats2, wall2,
        )

    # A greedy tenant exhausts its token bucket and is shed; provenance
    # says so explicitly.  These sheds are *expected* — quota, not
    # admission — so they don't affect the exit code.
    quota_config = OptimizerConfig(
        algorithm="dpsize", cache_size=64, service_workers=4,
        cache_shards=args.shards, quota_rate=5.0, quota_burst=5,
    )
    quota_responses, _, _ = asyncio.run(replay(
        quota_config, queries[:2], clients=1, requests_per_client=20,
        seed=args.seed, tenant_of=lambda c: "greedy",
    ))
    quota_sheds = [r for r, _ in quota_responses if r.source == "shed"]
    print(f"-- tenant quota (5 req/s bucket, 20 back-to-back requests) --")
    print(f"shed {len(quota_sheds)}/20 with "
          f"shed_reason={{{', '.join(sorted({r.shed_reason for r in quota_sheds}))}}}"
          if quota_sheds else "no quota sheds (machine too slow?)")
    print()

    failures = []
    if sheds or sheds2:
        failures.append(
            f"shed {sheds + sheds2} requests with offered load "
            f"({clients} clients) <= admission limit ({limit})"
        )
    if errors or errors2:
        failures.append(f"{errors + errors2} responses degraded to error")
    if warm_hit_rate <= 0.9:
        failures.append(
            f"warm-restart hit rate {warm_hit_rate:.2%} <= 90%"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"OK: zero sheds/errors at offered load <= admission limit; "
          f"warm-restart hit rate {warm_hit_rate:.2%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
