"""Traffic replay: plan-cache amortization under a skewed workload.

Real optimizer traffic repeats itself — a dashboard re-issues the same
handful of report queries far more often than it invents new ones.  This
example replays a Zipf-skewed stream of star/chain queries through
`OptimizerService` and shows what the serving layer buys:

* the hot queries pay for exact DP optimization once and are answered
  from the plan cache in microseconds afterwards;
* identical requests submitted concurrently collapse to a single
  optimization (singleflight);
* a statistics refresh (`bump_stats_version`) lazily invalidates every
  cached plan without stalling the service.

Run:  python examples/traffic_replay.py
"""

import random
import statistics
import time

from repro import OptimizerConfig, OptimizerService
from repro.bench import format_table
from repro.query import WorkloadSpec, generate_query


def build_catalog_queries(seed: int = 7):
    """A small 'application': 6 distinct queries of mixed shape/size."""
    specs = [
        WorkloadSpec("star", 10, seed=seed),
        WorkloadSpec("star", 9, seed=seed + 1),
        WorkloadSpec("chain", 12, seed=seed + 2),
        WorkloadSpec("cycle", 10, seed=seed + 3),
        WorkloadSpec("star", 8, seed=seed + 4),
        WorkloadSpec("clique", 8, seed=seed + 5),
    ]
    return [generate_query(spec) for spec in specs]


def zipf_stream(queries, requests: int, seed: int = 0):
    """Skewed traffic: query k is ~2x as popular as query k+1."""
    rng = random.Random(seed)
    weights = [2.0 ** -k for k in range(len(queries))]
    return rng.choices(queries, weights=weights, k=requests)


def main() -> None:
    queries = build_catalog_queries()
    stream = zipf_stream(queries, requests=200)

    config = OptimizerConfig(
        algorithm="dpsize", cache_size=64, service_workers=4
    )
    print(f"replaying {len(stream)} requests over {len(queries)} distinct "
          f"queries (zipf-skewed) through {config.algorithm}")
    print("=" * 64)

    # Replay in waves of 20, as a client submitting batches would: the
    # first wave pays for the hot queries, later waves mostly hit.
    with OptimizerService(config) as svc:
        wall_start = time.perf_counter()
        outcomes = []
        for wave in range(0, len(stream), 20):
            outcomes.extend(svc.optimize_batch(stream[wave:wave + 20]))
        wall = time.perf_counter() - wall_start
        stats = svc.stats()

        by_source: dict[str, list[float]] = {}
        for outcome in outcomes:
            by_source.setdefault(outcome.source, []).append(
                outcome.elapsed_seconds * 1000
            )
        rows = [
            {
                "source": source,
                "requests": len(latencies),
                "median_ms": round(statistics.median(latencies), 4),
                "max_ms": round(max(latencies), 4),
            }
            for source, latencies in sorted(by_source.items())
        ]
        print(format_table(rows))
        print()
        cache = stats.plan_cache
        print(f"wall time        {wall:.3f}s "
              f"({len(stream) / wall:,.0f} requests/s)")
        print(f"optimizations    {stats.optimizations} "
              f"(one per distinct query — singleflight)")
        print(f"plan cache       hits={cache.hits} misses={cache.misses} "
              f"hit_rate={cache.hit_rate:.2%}")

        # A statistics refresh invalidates lazily; the next wave re-warms.
        print()
        print("ANALYZE happens: bump_stats_version() ...")
        svc.bump_stats_version()
        rewarm = svc.optimize_batch(stream[:20])
        fresh = sum(1 for o in rewarm if o.source in ("miss", "shared"))
        print(f"first 20 requests after refresh: {fresh} went back to the "
              f"optimizer, {len(rewarm) - fresh} hit the re-warmed cache")


if __name__ == "__main__":
    main()
