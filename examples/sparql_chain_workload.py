"""SPARQL-style scenario: long chain joins and enumerator choice.

Triple-store query processing (a motivating workload in the parallel
query optimization literature) produces long *chain* joins — dozens of
joins, sparse graphs.  This example compares the serial enumerators on
growing chains and shows where each one's cost goes: DPsub burns work on
disconnected subsets, DPsize on overlapping candidate pairs, DPccp visits
only valid pairs, and the SVA sits in between (its prefix blocks
degenerate on chains — an honest negative result reported by E2).

Run:  python examples/sparql_chain_workload.py
"""

from repro.bench import format_table, run_serial_grid
from repro.heuristics import IKKBZ
from repro import OptimizerConfig, Workload, WorkloadSpec, optimize


def main() -> None:
    print("Serial enumerators on chain queries (SPARQL-style)")
    print("=" * 64)
    rows = run_serial_grid(
        ["chain"], [8, 12, 16],
        algorithms=("dpsize", "dpsub", "dpccp", "dpsva"),
        queries=2, seed=21,
    )
    print(format_table(rows))

    print()
    print("Where the work goes at n=16:")
    by_algo = {
        r["algorithm"]: r for r in rows if r["n"] == 16
    }
    ccp = by_algo["dpccp"]["valid_pairs"]
    for name, row in by_algo.items():
        waste = row["pairs"] - row["valid_pairs"]
        print(f"  {name:7s}: {row['pairs']:>9,} pairs inspected, "
              f"{waste:>9,} wasted ({ccp:,} are genuinely needed)")

    # For very long chains, the polynomial IKKBZ heuristic is exact-ish
    # under C_out and instant; compare it against the DP optimum.
    print()
    print("IKKBZ vs exact DP on a 16-relation chain")
    print("=" * 64)
    query = Workload(WorkloadSpec("chain", 16, seed=21))[0]
    dp = optimize(query, config=OptimizerConfig(algorithm="dpccp"))
    ik = IKKBZ().optimize(query)
    print(f"  DPccp optimum:  cost={dp.cost:.4g}  "
          f"({dp.elapsed_seconds * 1e3:.1f} ms)")
    print(f"  IKKBZ:          cost={ik.cost:.4g}  "
          f"({ik.elapsed_seconds * 1e3:.1f} ms)  "
          f"ratio={ik.cost / dp.cost:.3f}")
    print("\nIKKBZ is optimal for left-deep plans under C_out; the residual")
    print("gap is the bushy advantage plus the cost-model mismatch.")


if __name__ == "__main__":
    main()
