"""E3 — PDPsva simulated speedup versus thread count (headline figure).

One curve per topology.  Expected shape (the paper's central result):
near-linear speedup where strata are work-dense (star, clique), clearly
sublinear where strata are thin and barrier overhead dominates (chain);
speedup monotone in threads until the per-stratum work runs out.
"""

from __future__ import annotations

from repro.bench import format_table, render_curve, speedup_curve
from repro.parallel import PDPsva
from repro.query import WorkloadSpec, generate_query

CURVES = [
    ("star", 12),
    ("clique", 10),
    ("cycle", 14),
    ("chain", 14),
]
THREADS = (1, 2, 4, 8, 16)


def test_e3_pdpsva_speedup_curves(benchmark, publish):
    all_rows = []
    figures = []
    for topology, n in CURVES:
        rows = speedup_curve(
            topology, n, algorithm="dpsva", thread_counts=THREADS,
            queries=2, seed=3,
        )
        all_rows.extend(rows)
        figures.append(
            render_curve(
                [r["threads"] for r in rows],
                [r["speedup"] for r in rows],
                label=f"PDPsva speedup — {topology} n={n}",
            )
        )
    text = format_table(all_rows) + "\n\n" + "\n\n".join(figures)
    publish("e3_speedup_curves", text, all_rows)

    by_curve = {}
    for r in all_rows:
        by_curve.setdefault(r["topology"], {})[r["threads"]] = r
    # Dense search spaces: speedup grows through 16 threads.
    for topology in ("star", "clique"):
        curve = by_curve[topology]
        assert curve[2]["speedup"] > 1.2
        assert curve[4]["speedup"] > curve[2]["speedup"]
        assert curve[8]["speedup"] > curve[4]["speedup"]
        assert curve[16]["speedup"] > 4.0
    # Sparse chains cannot use 16 threads as effectively as stars.
    assert (
        by_curve["chain"][16]["speedup"] < by_curve["star"][16]["speedup"]
    )
    # Efficiency degrades gracefully, never exceeds 1 (no superlinearity
    # in the model).
    for r in all_rows:
        assert r["efficiency"] <= 1.0 + 1e-9

    query = generate_query(WorkloadSpec("star", 12, seed=3, count=2), 0)
    benchmark(lambda: PDPsva(threads=8).optimize(query))
