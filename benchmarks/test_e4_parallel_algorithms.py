"""E4 — PDPsize vs PDPsub vs PDPsva across thread counts.

Regenerates the parallel-algorithm comparison figure: simulated time per
(algorithm, threads) on one dense and one medium query.  Expected shape:
PDPsva dominates PDPsize wherever the skip ratio is high (star); all three
kernels scale, with the heavier kernels profiting most from threads.
"""

from __future__ import annotations

from repro.bench import format_table, render_curve, speedup_curve
from repro.parallel import PDPsub
from repro.query import WorkloadSpec, generate_query

CASES = [("star", 11), ("clique", 9)]
THREADS = (1, 2, 4, 8)
ALGORITHMS = ("dpsize", "dpsub", "dpsva")


def test_e4_parallel_algorithm_comparison(benchmark, publish):
    all_rows = []
    for topology, n in CASES:
        for algorithm in ALGORITHMS:
            all_rows.extend(
                speedup_curve(
                    topology,
                    n,
                    algorithm=algorithm,
                    thread_counts=THREADS,
                    queries=2,
                    seed=4,
                )
            )
    figures = []
    for topology, n in CASES:
        xs = list(THREADS)
        for algorithm in ALGORITHMS:
            ys = [
                r["sim_time"]
                for r in all_rows
                if r["topology"] == topology and r["algorithm"] == algorithm
            ]
            figures.append(
                render_curve(
                    xs, ys, label=f"sim_time — {algorithm} on {topology} n={n}"
                )
            )
    publish(
        "e4_parallel_algorithms",
        format_table(all_rows) + "\n\n" + "\n\n".join(figures),
        all_rows,
    )

    def cell(topology, algorithm, threads):
        return next(
            r
            for r in all_rows
            if r["topology"] == topology
            and r["algorithm"] == algorithm
            and r["threads"] == threads
        )

    # PDPsva beats PDPsize on the star at every thread count (skip ratio).
    for threads in THREADS:
        assert (
            cell("star", "dpsva", threads)["sim_time"]
            < cell("star", "dpsize", threads)["sim_time"]
        )
    # Every kernel gains from 8 threads on the dense clique.
    for algorithm in ALGORITHMS:
        assert cell("clique", algorithm, 8)["speedup"] > 2.0

    query = generate_query(WorkloadSpec("clique", 9, seed=4, count=2), 0)
    benchmark(lambda: PDPsub(threads=8).optimize(query))
