"""Shared infrastructure for the experiment benchmarks.

Each experiment (E1–E11, indexed in DESIGN.md) regenerates its table or
figure rows, writes them to ``benchmarks/results/`` as both a rendered
table and CSV, and prints the table so ``pytest benchmarks/ -s`` shows the
full reproduction output inline.

``pytest benchmarks/ --quick`` runs reduced grids — the CI smoke
configuration.  Experiments honouring it (via the ``quick`` fixture)
shrink their query sizes and repeat counts; scale-dependent shape
assertions are gated on the full grids.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run reduced-size experiment grids (CI smoke)",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """True when ``--quick`` was passed — experiments shrink their grids."""
    return request.config.getoption("--quick")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """Write an experiment artifact and echo it to stdout."""

    def _publish(name: str, text: str, rows: list[dict] | None = None) -> None:
        from repro.bench import rows_to_csv

        (results_dir / f"{name}.txt").write_text(text + "\n")
        if rows:
            (results_dir / f"{name}.csv").write_text(rows_to_csv(rows))
        print(f"\n=== {name} ===")
        print(text)

    return _publish
