"""E7 — query-size scaling at fixed thread counts.

Simulated time versus number of relations for 1 and 8 threads, per
topology.  Expected shape: exponential growth in n for every enumerator
(the problem is NP-hard); the 8-thread curve sits below the serial curve
by a factor that *grows* with n, i.e. parallelization pays exactly where
optimization is expensive — the paper's motivating claim.
"""

from __future__ import annotations

from repro.bench import format_table, size_scaling
from repro.parallel import PDPsva
from repro.query import WorkloadSpec, generate_query

GRID = [
    ("chain", [8, 10, 12, 14]),
    ("star", [8, 10, 12, 14]),
    ("clique", [6, 8, 10]),
]


def test_e7_size_scaling(benchmark, publish):
    rows = []
    for topology, sizes in GRID:
        rows.extend(
            size_scaling(
                topology, sizes, algorithm="dpsva",
                thread_counts=(1, 8), queries=2, seed=7,
            )
        )
    publish("e7_size_scaling", format_table(rows), rows)

    def cell(topology, n, threads):
        return next(
            r
            for r in rows
            if r["topology"] == topology
            and r["n"] == n
            and r["threads"] == threads
        )

    for topology, sizes in GRID:
        # Work grows strictly with n at both thread counts.
        for a, b in zip(sizes, sizes[1:]):
            assert cell(topology, b, 1)["sim_time"] > cell(topology, a, 1)["sim_time"]
        # The parallel advantage grows with n on dense topologies.
        if topology in ("star", "clique"):
            small, large = sizes[0], sizes[-1]
            gain_small = (
                cell(topology, small, 1)["sim_time"]
                / cell(topology, small, 8)["sim_time"]
            )
            gain_large = (
                cell(topology, large, 1)["sim_time"]
                / cell(topology, large, 8)["sim_time"]
            )
            assert gain_large > gain_small

    query = generate_query(WorkloadSpec("star", 14, seed=7, count=2), 0)
    benchmark(lambda: PDPsva(threads=8).optimize(query))
