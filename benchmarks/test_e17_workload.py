"""E17 — multi-query optimization on TPC-H-style SQL batches.

The SQL front end's workload generator emits batches whose members embed
one shared join core; ``optimize_batch`` with ``mqo=True`` detects the
core across members, optimizes it once, and splices the resulting memo
into each member's enumeration.  Acceptance (the MQO contract):

* at least one member per batch is answered with ``source="subplan"``;
* every member's cost is **bit-identical** to its unshared baseline —
  splicing is an enumeration shortcut, never an approximation;
* the batch's total enumeration work (member pairs plus the one-time
  core DP pairs) is *strictly* below the sum of per-query baselines.
"""

from __future__ import annotations

from repro import OptimizerConfig, OptimizerService
from repro.bench import format_table, workload_mqo
from repro.sql import SqlWorkload, SqlWorkloadSpec


def test_e17_workload_mqo(benchmark, publish):
    rows = workload_mqo(seeds=(0, 1, 3), count=6, core_tables=4,
                        overlap=0.67)
    publish("e17_workload_mqo", format_table(rows), rows)

    for row in rows:
        assert row["exact"], f"seed {row['seed']}: costs diverged"
        assert row["subplan"] > 0, f"seed {row['seed']}: no subplan reuse"
        assert row["cores"] > 0
        assert row["mqo_pairs"] < row["baseline_pairs"], (
            f"seed {row['seed']}: MQO did not reduce enumeration work"
        )
        assert row["saving"] > 0

    queries = SqlWorkload(SqlWorkloadSpec(seed=0, count=6)).queries()
    config = OptimizerConfig(algorithm="dpsize", mqo=True)

    def run_batch():
        with OptimizerService(config) as svc:
            return svc.optimize_batch(queries)

    benchmark(run_batch)
