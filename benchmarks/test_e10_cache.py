"""E10 — plan-cache amortization under repeated traffic.

The serving-layer counterpart to E1–E8: once the optimizer sits behind
``OptimizerService``, an exponential DP run is paid once per *distinct*
query and every recurrence is answered from the plan cache in
microseconds.  The grid replays ``distinct`` star queries round-robin at
increasing repeat factors; expected shape: hit rate climbs toward
``1 - 1/repeat``, throughput scales with it, and the hit/cold latency
ratio stays ≥ 3 orders of magnitude (the acceptance floor is 10×).
"""

from __future__ import annotations

from repro import OptimizerConfig, OptimizerService
from repro.bench import cache_workload, format_table
from repro.query import WorkloadSpec, generate_query


def test_e10_cache_amortization(benchmark, publish):
    rows = cache_workload("star", 10, distinct=4, repeats=(1, 2, 5, 10),
                          seed=10)
    publish("e10_cache", format_table(rows), rows)

    for row in rows:
        expected_hit_rate = 1.0 - row["distinct"] / row["requests"]
        assert abs(row["hit_rate"] - expected_hit_rate) < 1e-6
    # Acceptance: >= 10x latency reduction on hits (measured ~1000x+).
    warm = [r for r in rows if r["hit_rate"] > 0]
    assert all(r["hit_speedup"] >= 10 for r in warm)
    # Throughput grows with the hit rate.
    assert warm[-1]["qps"] > rows[0]["qps"]

    query = generate_query(WorkloadSpec("star", 10, seed=10))
    svc = OptimizerService(OptimizerConfig(algorithm="dpsize"))
    svc.optimize(query)  # warm
    try:
        benchmark(lambda: svc.optimize(query))
    finally:
        svc.close()
