"""Standalone experiment driver: regenerate every experiment without pytest.

Writes the same artifacts as the benchmark suite (tables, CSV) plus a JSON
manifest per experiment under ``benchmarks/results/``.

Run:  python benchmarks/run_all.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro.bench import (
    EXPERIMENTS,
    allocation_comparison,
    cluster_comparison,
    describe,
    format_table,
    heuristic_quality,
    kernel_speedup,
    large_query,
    run_serial_grid,
    save_manifest,
    serving_throughput,
    shm_comparison,
    size_scaling,
    speedup_curve,
    sva_effectiveness,
    wire_volume,
    workload_mqo,
)

DEFAULT_RESULTS = Path(__file__).parent / "results"


def publish(results: Path, name: str, rows: list[dict], meta: dict) -> None:
    results.mkdir(parents=True, exist_ok=True)
    (results / f"{name}.txt").write_text(format_table(rows) + "\n")
    save_manifest(results / f"{name}.json", rows, metadata=meta)
    print(f"\n=== {name} ===")
    print(format_table(rows))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller grids (~1 minute total)",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_RESULTS,
        help="artifact directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list the experiment registry and exit",
    )
    args = parser.parse_args(argv)
    if args.list:
        print(describe())
        return 0
    quick = args.quick
    started = time.perf_counter()

    serial_grid = (
        [("chain", [8, 10]), ("star", [8, 10]), ("clique", [6, 8])]
        if quick
        else [
            ("chain", [8, 10, 12]),
            ("cycle", [8, 10, 12]),
            ("star", [8, 10, 12]),
            ("clique", [6, 8, 10]),
        ]
    )
    rows = []
    for topology, sizes in serial_grid:
        rows.extend(run_serial_grid([topology], sizes, queries=2, seed=1))
    publish(args.out, "e1_serial_enumerators", rows, {"experiment": "E1"})

    rows = []
    for topology, sizes in (
        [("star", [10]), ("clique", [8])]
        if quick
        else [("chain", [10, 14]), ("cycle", [10, 14]),
              ("star", [10, 12]), ("clique", [8, 10])]
    ):
        rows.extend(sva_effectiveness([topology], sizes, queries=2, seed=2))
    publish(args.out, "e2_sva_effectiveness", rows, {"experiment": "E2"})

    rows = []
    curves = (
        [("star", 10), ("chain", 12)]
        if quick
        else [("star", 12), ("clique", 10), ("cycle", 14), ("chain", 14)]
    )
    for topology, n in curves:
        rows.extend(
            speedup_curve(
                topology, n, thread_counts=(1, 2, 4, 8, 16),
                queries=1 if quick else 2, seed=3,
            )
        )
    publish(args.out, "e3_speedup_curves", rows, {"experiment": "E3"})

    rows = []
    for topology, n in [("star", 9 if quick else 11), ("clique", 8 if quick else 9)]:
        for algorithm in ("dpsize", "dpsub", "dpsva"):
            rows.extend(
                speedup_curve(
                    topology, n, algorithm=algorithm,
                    thread_counts=(1, 2, 4, 8),
                    queries=1 if quick else 2, seed=4,
                )
            )
    publish(args.out, "e4_parallel_algorithms", rows, {"experiment": "E4"})

    rows = []
    for topology, n in [("star", 9 if quick else 11), ("clique", 8 if quick else 10)]:
        for algorithm in ("dpsize", "dpsva"):
            for row in allocation_comparison(
                topology, n, algorithm=algorithm, threads=8,
                queries=1 if quick else 2, seed=5,
            ):
                rows.append({"algorithm": algorithm, **row})
    publish(args.out, "e5_allocation", rows, {"experiment": "E5"})

    rows = size_scaling(
        "star", [8, 10] if quick else [8, 10, 12, 14],
        thread_counts=(1, 8), queries=1 if quick else 2, seed=7,
    )
    publish(args.out, "e7_size_scaling", rows, {"experiment": "E7"})

    rows = heuristic_quality(
        ["chain", "star"] if quick else ["chain", "cycle", "star", "clique"],
        n=7 if quick else 9,
        queries=2 if quick else 3,
        seed=9,
    )
    publish(args.out, "e9_heuristics", rows, {"experiment": "E9"})

    rows = large_query(
        ["star", "chain"] if quick else
        ["star", "chain", "cycle", "grid", "clique"],
        sizes=[10, 20, 30] if quick else [10, 12, 20, 30, 50, 100],
        queries=1 if quick else 2,
        seed=13,
    )
    publish(args.out, "e13_large_query", rows, {"experiment": "E13"})

    rows = kernel_speedup(
        "clique", 10 if quick else 14, repeats=1 if quick else 2, seed=11
    )
    publish(args.out, "e11_kernels", rows, {"experiment": "E11"})
    rows = wire_volume(
        "star", 9 if quick else 11, threads=2 if quick else 4, seed=11
    )
    publish(args.out, "e11_wire", rows, {"experiment": "E11"})

    with tempfile.TemporaryDirectory() as tmp:
        rows = serving_throughput(
            "star", 8 if quick else 10, seed=14,
            distinct=8 if quick else 16,
            requests_per_client=40 if quick else 250,
            clients=4 if quick else 8,
            shards=8 if quick else 16,
            warm_start_path=str(Path(tmp) / "plancache.jsonl"),
        )
    publish(args.out, "e14_serving", rows, {"experiment": "E14"})

    rows = shm_comparison(
        "clique", 10 if quick else 14, threads=4,
        repeats=1 if quick else 3, seed=15,
    )
    publish(args.out, "e15_shm", rows, {"experiment": "E15"})

    modes, strata = cluster_comparison(
        "clique", 10 if quick else 14,
        worker_counts=(2, 4) if quick else (2, 4, 8),
        repeats=1, seed=16,
    )
    publish(args.out, "e16_cluster", modes, {"experiment": "E16"})
    publish(args.out, "e16_cluster_strata", strata, {"experiment": "E16"})

    rows = workload_mqo(
        seeds=(0, 1) if quick else (0, 1, 3, 7, 11),
        count=6 if quick else 8,
    )
    publish(args.out, "e17_workload_mqo", rows, {"experiment": "E17"})

    pytest_only = ", ".join(
        exp.eid for exp in EXPERIMENTS if not exp.in_run_all
    )
    print(f"\ndone in {time.perf_counter() - started:.1f}s "
          f"({pytest_only} need timing fixtures or pytest-only harnesses; "
          f"run them via pytest benchmarks/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
