"""E12 — fault tolerance: exact-or-degraded under injected chaos.

The hardening counterpart to E8/E10: a fixed fault schedule (seeded
injector) strikes every instrumented site — worker crash/raise/delay in
the forked process pool, a master-side stratum fault, a flaky cache
tier, and transient/persistent service failures — and every request must
still come back as either the exact fault-free optimum (after recovery)
or an explicitly degraded heuristic answer.  An unhandled exception
anywhere in the matrix fails the experiment.
"""

from __future__ import annotations

from repro.bench import fault_tolerance, format_table


def test_e12_fault_tolerance(quick, publish):
    rows = fault_tolerance(
        "chain",
        6 if quick else 7,
        threads=2,
        backend="processes",
        fault_seed=0,
    )
    publish("e12_faults", format_table(rows), rows)

    by_fault = {row["fault"]: row for row in rows}
    # The whole matrix honours the exact-or-degraded contract.
    assert all(r["outcome"] in ("exact", "degraded") for r in rows)
    # Single worker faults recover to the exact optimum.
    for fault in ("none", "worker raise", "worker crash", "worker delay"):
        assert by_fault[fault]["outcome"] == "exact"
        assert not by_fault[fault]["degraded"]
    # A transient master/service fault is retried back to exactness.
    assert by_fault["stratum raise"]["outcome"] == "exact"
    assert by_fault["stratum raise"]["retries"] >= 1
    assert by_fault["service raise"]["outcome"] == "exact"
    # A flaky cache tier fails open: served as a miss, still exact.
    assert by_fault["cache flaky"]["outcome"] == "exact"
    # Only a persistent failure past the retry budget degrades — with
    # explicit provenance, never an exception.
    persistent = by_fault["service raise forever"]
    assert persistent["outcome"] == "degraded"
    assert persistent["source"] == "error"
    assert persistent["errors"] >= 1
