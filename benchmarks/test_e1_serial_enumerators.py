"""E1 — serial enumerator comparison (paper: serial baseline table).

Regenerates the DPsize / DPsub / DPccp / DPsva comparison across the four
benchmark topologies: optimization time, candidate pairs, valid pairs,
and memo size per (topology, n, algorithm).

Expected shape: DPsva ≪ DPsize everywhere the disjointness-failure share
is large (star especially, chain/cycle too); DPccp is the strongest serial
baseline on sparse graphs; on cliques all enumerators converge towards the
same work.
"""

from __future__ import annotations

from repro.bench import format_table, run_serial_grid
from repro.query import WorkloadSpec, generate_query
from repro.sva import DPsva

GRID = [
    ("chain", [8, 10, 12]),
    ("cycle", [8, 10, 12]),
    ("star", [8, 10, 12]),
    ("clique", [6, 8, 10]),
]

QUICK_GRID = [
    ("chain", [8]),
    ("star", [8, 10]),
    ("clique", [6]),
]


def test_e1_serial_enumerator_grid(benchmark, publish, quick):
    grid = QUICK_GRID if quick else GRID
    rows = []
    for topology, sizes in grid:
        rows.extend(
            run_serial_grid(
                [topology], sizes, queries=1 if quick else 2, seed=1,
            )
        )
    publish("e1_serial_enumerators", format_table(rows), rows)

    # Representative micro-benchmark: DPsva on the mid-size star query.
    query = generate_query(WorkloadSpec("star", 10, seed=1, count=2), 0)
    benchmark(lambda: DPsva().optimize(query))

    # Shape assertions (the reproduction claims).
    by_key = {(r["topology"], r["n"], r["algorithm"]): r for r in rows}
    for topology, sizes in grid:
        for n in sizes:
            dpsize = by_key[(topology, n, "dpsize")]
            dpsva = by_key[(topology, n, "dpsva")]
            dpccp = by_key[(topology, n, "dpccp")]
            # DPsva inspects no more candidates than DPsize; on the
            # stratum-dense star topology it inspects massively fewer.
            assert dpsva["pairs"] <= dpsize["pairs"]
            if topology == "star" and n >= 10:
                assert dpsva["pairs"] < dpsize["pairs"] / 5
            # DPccp touches exactly the valid pairs.
            assert dpccp["pairs"] == dpccp["valid_pairs"]
            # All exact enumerators build the same memo.
            assert dpsize["memo"] == dpsva["memo"] == dpccp["memo"]
