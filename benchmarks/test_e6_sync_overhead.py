"""E6 — synchronization-overhead decomposition (ablation).

Where does the non-kernel wall time go as threads increase?  The table
splits the simulated run into critical-path kernel work, barrier cost,
spawn cost, serial master time, and latch contention, and additionally
re-runs the query with contention priced at zero and barriers priced 10×
to show each knob's isolated effect.  Expected shape: barrier + spawn
share grows with threads; contention grows with threads but stays a minor
share under the default latch pricing; the 10× barrier ablation visibly
caps speedup.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench import format_table
from repro.parallel import PDPsva
from repro.query import WorkloadSpec, generate_query
from repro.simx import SimCostParams

THREADS = (1, 2, 4, 8, 16, 32)


def decompose(query, threads, params):
    report = (
        PDPsva(threads=threads, sim_params=params)
        .optimize(query)
        .sim_report
    )
    barriers = sum(s.barrier_cost for s in report.strata)
    contention_wall = sum(max(s.contention) for s in report.strata)
    return {
        "threads": threads,
        "sim_time": report.total_time,
        "critical_busy": report.critical_busy,
        "barriers": barriers,
        "spawn": report.spawn_cost,
        "master": report.master_cost,
        "contention_wall": contention_wall,
        "overhead_share": report.overhead_wall / report.total_time,
    }


def test_e6_sync_overhead_decomposition(benchmark, publish):
    query = generate_query(WorkloadSpec("star", 12, seed=6, count=1), 0)
    default = SimCostParams()
    rows = [decompose(query, t, default) for t in THREADS]

    no_contention = replace(default, latch_conflict=0.0)
    heavy_barrier = replace(
        default,
        barrier_base=default.barrier_base * 10,
        barrier_per_thread=default.barrier_per_thread * 10,
    )
    ablation_rows = []
    for threads in (8, 32):
        base = decompose(query, threads, default)
        ablation_rows.append({"variant": "default", **base})
        ablation_rows.append(
            {"variant": "no_contention", **decompose(query, threads, no_contention)}
        )
        ablation_rows.append(
            {"variant": "barrier_x10", **decompose(query, threads, heavy_barrier)}
        )
    text = (
        format_table(rows)
        + "\n\nablations:\n"
        + format_table(ablation_rows)
    )
    publish("e6_sync_overhead", text, rows + ablation_rows)

    # Overhead share grows with the thread count.
    assert rows[0]["overhead_share"] < rows[-1]["overhead_share"]
    # Barriers and spawn grow monotonically in threads.
    for a, b in zip(rows, rows[1:]):
        assert b["barriers"] >= a["barriers"]
        assert b["spawn"] >= a["spawn"]
    # Ablations behave as designed.
    by = {(r["variant"], r["threads"]): r for r in ablation_rows}
    assert (
        by[("no_contention", 32)]["sim_time"]
        <= by[("default", 32)]["sim_time"]
    )
    assert (
        by[("barrier_x10", 32)]["sim_time"]
        > by[("default", 32)]["sim_time"]
    )

    benchmark(lambda: PDPsva(threads=16).optimize(query))
