"""E15 — shared-memory memo versus packed wire on the process backend.

The shm tier (PR 7) replaces the per-stratum delta broadcast over worker
pipes with named shared-memory segments: the master publishes the SoA
memo's row tail once per barrier, workers attach and splice, and replies
carry only winner rows through per-worker slots.  Pipe traffic collapses
to fixed-size control messages.  On top, the numpy kernels (optional
``perf`` extra) vectorize the DPsize/DPsub filter loops and batch the
candidate costing.

Expected shape at clique-14 (the stress topology — widest strata, so the
wire hop is at its most expensive): the ``shm`` row beats the ``wire``
baseline on wall clock and ships ≥10× fewer pipe bytes (in practice
hundreds of times fewer — descriptors are O(1) per message); ``shm+vec``
adds a clear further speedup.  Parity (bit-identical memo, same optimum)
is asserted inside the runner on the measured runs themselves.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, shm_comparison
from repro.memo.shm import list_segments, shm_available

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def test_e15_shm_comparison(publish, quick):
    n, repeats = (10, 1) if quick else (14, 3)
    rows = shm_comparison("clique", n, threads=4, repeats=repeats, seed=15)
    publish("e15_shm", format_table(rows), rows)

    by_mode = {r["mode"]: r for r in rows}
    assert "wire" in by_mode and "shm" in by_mode

    # The headline byte claim: shm ships at least 10× fewer bytes over
    # the pipes per run (and therefore per stratum — descriptor size is
    # constant while packed deltas scale with stratum width).
    assert by_mode["shm"]["pipe_reduction"] >= 10.0

    if not quick:
        # The headline wall-clock claim at clique-14.
        assert by_mode["shm"]["speedup"] > 1.0
        if "shm+vec" in by_mode:
            assert by_mode["shm+vec"]["speedup"] > 1.0

    # Runs must not leak segments.
    assert list_segments() == []
