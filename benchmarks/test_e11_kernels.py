"""E11 — fast-path kernel speedup and wire-format volume.

The fast path (struct-of-arrays memo + fused kernels, PR 3) claims a
result-identical ≥2× single-thread speedup for DPsize on dense queries
and a smaller per-stratum broadcast payload for the process executor.
This experiment measures both:

* ``kernel_speedup`` — best-of-repeats wall time per enumeration kernel,
  ``fast_path=True`` versus ``False``, on one clique query (the stress
  topology: every subset connected, so the candidate filter and the memo
  hot loop dominate).  Parity is re-checked on the measured runs.
* ``wire_volume`` — broadcast/collect bytes on the processes backend
  plus the exact pickled size of one full-memo broadcast, packed versus
  legacy encoding.

Expected shape: DPsize ≥2× at clique-14 (the filter loop fuses into list
comprehensions and candidate evaluation into batched column updates);
DPsub/DPsva clearly above 1× (their walks are less fusible); the packed
wire strictly smaller on both measures.
"""

from __future__ import annotations

from repro.bench import format_table, kernel_speedup, wire_volume
from repro.enumerate.dpsize import DPsize
from repro.query import WorkloadSpec, generate_query


def test_e11_kernel_speedup(benchmark, publish, quick):
    n, repeats = (10, 1) if quick else (14, 2)
    rows = kernel_speedup("clique", n, repeats=repeats, seed=11)
    wire_rows = wire_volume(
        "star", 9 if quick else 11, threads=2 if quick else 4, seed=11
    )
    publish(
        "e11_kernels",
        format_table(rows) + "\n\n" + format_table(wire_rows),
        rows,
    )
    publish("e11_wire", format_table(wire_rows), wire_rows)

    # The speedup is only reportable because the results are identical.
    assert all(r["parity"] for r in rows)

    by_algo = {r["algorithm"]: r for r in rows}
    assert all(r["speedup"] > 1.0 for r in rows)
    if not quick:
        # The headline claim: DPsize at clique-14, single thread.
        assert by_algo["dpsize"]["speedup"] >= 2.0

    # Packed wire is strictly smaller on both the executor's accounting
    # and the exact pickled payload sizes.
    by_wire = {r["wire"]: r for r in wire_rows}
    assert by_wire["packed"]["bytes_sent"] < by_wire["legacy"]["bytes_sent"]
    assert (
        by_wire["packed"]["pickled_bytes"]
        < by_wire["legacy"]["pickled_bytes"]
    )

    # Representative micro-benchmark: the fused DPsize path on a small
    # clique (full-scale numbers live in the published table).
    query = generate_query(WorkloadSpec("clique", 9, seed=11), 0)
    benchmark(lambda: DPsize().optimize(query))
