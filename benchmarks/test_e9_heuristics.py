"""E9 — plan-quality context: heuristics versus the DP optimum.

Why the paper spends exponential (parallelized) effort on exact DP at all:
polynomial and randomized heuristics return plans whose cost can be far
from optimal.  Each heuristic is judged against the optimum of *its own*
plan space (bushy DP for GOO; left-deep DP for the order-based
heuristics), and additionally against the full bushy optimum; the
``space_gap`` column shows how much cost the left-deep restriction alone
gives up — on chains and stars with strong selectivities that gap alone
reaches orders of magnitude, which is itself a classic result.  Expected
shape: heuristics near their own-space optimum on easy topologies with
heavy worst-case tails somewhere, and a large left-deep/bushy gap on
chains/stars.
"""

from __future__ import annotations

from repro.bench import format_table, heuristic_quality
from repro.heuristics import GOO
from repro.query import WorkloadSpec, generate_query

TOPOLOGIES = ["chain", "cycle", "star", "clique"]


def test_e9_heuristic_quality(benchmark, publish):
    rows = heuristic_quality(TOPOLOGIES, n=9, queries=3, seed=9)
    publish("e9_heuristics", format_table(rows), rows)

    for row in rows:
        # No heuristic beats the exact optimum of its own plan space.
        assert row["vs_own_space_median"] >= 1.0 - 1e-9
        assert row["vs_own_space_worst"] >= row["vs_own_space_median"] - 1e-9
        # ... nor, a fortiori, the bushy optimum.
        assert row["vs_bushy_median"] >= 1.0 - 1e-9
        assert row["space_gap"] >= 1.0 - 1e-9
    # At least one (topology, heuristic) cell is meaningfully suboptimal —
    # the reason exact optimization is worth parallelizing.
    assert any(r["vs_own_space_worst"] > 1.05 for r in rows)
    # The left-deep/bushy space gap is itself dramatic somewhere.
    assert any(r["space_gap"] > 10.0 for r in rows)

    query = generate_query(WorkloadSpec("star", 9, seed=9, count=3), 0)
    benchmark(lambda: GOO().optimize(query))
