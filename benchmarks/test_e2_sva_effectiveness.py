"""E2 — skip vector array effectiveness (paper: SVA savings table).

For each (topology, n): candidate pairs DPsize inspects, scan positions
the SVA actually visits, entries skipped without inspection, and the skip
ratio.  Expected shape: the skip ratio grows with stratum density —
dramatic on stars (most partner sets share the hub with the outer set and
form huge prefix blocks), large on cliques, and degenerate (zero) on
chains, whose same-size quantifier sets are intervals with pairwise
distinct first members, so every prefix block has size one and there is
nothing to jump over.  This is the data structure's documented regime: it
pays where DPsize hurts (dense strata) and is neutral where DPsize is
already cheap.
"""

from __future__ import annotations

from repro.bench import format_table, sva_effectiveness
from repro.memo import WorkMeter
from repro.sva import SkipVectorArray
from repro.util.bitsets import subsets_of_size, universe

GRID = [
    ("chain", [10, 14]),
    ("cycle", [10, 14]),
    ("star", [10, 12]),
    ("clique", [8, 10]),
]


def test_e2_sva_effectiveness(benchmark, publish):
    rows = []
    for topology, sizes in GRID:
        rows.extend(sva_effectiveness([topology], sizes, queries=2, seed=2))
    publish("e2_sva_effectiveness", format_table(rows), rows)

    for row in rows:
        # Accounting identity: every DPsize candidate is either visited or
        # skipped by the SVA scan.
        assert row["sva_positions"] + row["skipped"] == row["dpsize_pairs"]
        assert 0.0 <= row["skip_ratio"] < 1.0
    # Stars at n=12 skip the overwhelming majority of candidates.
    star12 = next(r for r in rows if r["topology"] == "star" and r["n"] == 12)
    assert star12["skip_ratio"] > 0.9
    clique10 = next(
        r for r in rows if r["topology"] == "clique" and r["n"] == 10
    )
    assert clique10["skip_ratio"] > 0.5
    # Degenerate regime: chain prefix blocks have size one.
    chain14 = next(
        r for r in rows if r["topology"] == "chain" and r["n"] == 14
    )
    assert chain14["skip_ratio"] == 0.0

    # Micro-benchmark: one SVA scan over a large stratum.
    masks = subsets_of_size(universe(16), 5)
    sva = SkipVectorArray(masks)
    meter = WorkMeter()
    benchmark(lambda: sva.disjoint_partners(0b10101, meter))
