"""E13 — the adaptive hybrid at and past the exact-DP horizon.

Exact DP is exponential: past roughly 14 relations no enumerator —
serial or parallel — finishes.  The hybrid partitions the join graph
into dense cores, spends the exponential budget inside each core
(where it buys the most), and stitches the cores heuristically.  This
experiment sweeps 10 → 100 relations across every generator topology
and reports two ratios: ``vs_exact`` (the optimality gap against the
full DP optimum, computable only at small n) and ``vs_goo`` (against
GOO, the strongest heuristic that stays feasible at 100 relations).
Expected shape: ``vs_exact`` is exactly 1.0 wherever the decomposition
is a single core (the adaptive guarantee — below the core cap the
hybrid *is* exact DP), every 100-relation query completes in seconds,
and ``vs_goo`` stays near or below 1.0 since the hybrid's cores are
locally optimal where GOO is greedy everywhere.
"""

from __future__ import annotations

from repro import OptimizerConfig, Workload, WorkloadSpec, optimize
from repro.bench import format_table, large_query

TOPOLOGIES = ["star", "chain", "cycle", "grid", "clique"]
SIZES = [10, 12, 20, 30, 50, 100]


def test_e13_large_query(benchmark, publish, quick):
    topologies = ["star", "chain"] if quick else TOPOLOGIES
    sizes = [10, 20, 30] if quick else SIZES
    rows = large_query(
        topologies, sizes=sizes, queries=1 if quick else 2, seed=13
    )
    publish("e13_large_query", format_table(rows), rows)

    assert len(rows) == len(topologies) * len(sizes)
    for row in rows:
        assert row["dp_share"] <= 1.0 + 1e-12
        assert row["core_max"] <= 12
        if row["cores"] == 1:
            # Adaptive guarantee: a single-core decomposition is pure
            # exact DP — the gap is exactly zero, not merely small.
            assert row["stitch"] == "single_core"
            assert row["vs_exact"] == 1.0
        elif row["vs_exact"] != "-":
            # Multi-core with a computable reference: never better than
            # the optimum, and the stitch keeps the gap bounded.
            assert 1.0 - 1e-9 <= row["vs_exact"] < 10.0
    # The sweep actually crossed the DP horizon …
    assert any(row["n"] >= 20 for row in rows)
    # … and the hybrid never loses to its own heuristic baseline: below
    # the cap it is exact DP, above it the flat-GOO backstop guarantees
    # the cheaper of the stitched and flat plans.
    assert all(row["vs_goo"] <= 1.0 + 1e-9 for row in rows)
    if not quick:
        assert any(row["n"] == 100 for row in rows)

    query = Workload(WorkloadSpec("star", 30, seed=13))[0]
    config = OptimizerConfig(algorithm="hybrid")
    benchmark(lambda: optimize(query, config=config))
