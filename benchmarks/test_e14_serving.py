"""E14 — async sharded serving tier vs the single-lock sync baseline.

The serving-layer scaling experiment: the same cache-hit-heavy replay
(N closed-loop clients round-robining over a fixed set of distinct
queries) is driven through

* the synchronous facade with a 1-shard plan cache — every request pays
  the cross-thread hop and contends on one cache lock (the PR-2-era
  architecture), and
* the asyncio-native :class:`~repro.service.AsyncOptimizerService` with
  an N-way sharded cache — hits resolve on the event loop with per-shard
  locking,

then restarts the async service against its spilled warm-start file.

Acceptance (full grid): the async sharded tier sustains >= 4x the
baseline throughput at equal-or-better p99, sheds nothing (offered load
equals the admission limit, never exceeds it), and the warm restart
serves > 90% of requests from the reloaded cache.  ``--quick`` shrinks
the grid and loosens the throughput floor for CI smoke.
"""

from __future__ import annotations

from repro.bench import format_table, serving_throughput


def test_e14_serving_throughput(quick, publish, tmp_path):
    grid = (
        dict(n=8, distinct=8, requests_per_client=40, clients=4, shards=8)
        if quick
        else dict(n=10, distinct=16, requests_per_client=250, clients=8,
                  shards=16)
    )
    rows = serving_throughput(
        "star", seed=14,
        warm_start_path=str(tmp_path / "plancache.jsonl"), **grid,
    )
    publish("e14_serving", format_table(rows), rows)

    baseline, sharded, warm = rows
    assert baseline["mode"] == "sync-facade-1shard"
    assert sharded["mode"] == "async-sharded"
    assert warm["mode"] == "warm-restart"

    # Offered load sits at the admission limit, never above it: the
    # controller must not shed, and nothing may degrade to error.
    for row in rows:
        assert row["sheds"] == 0, row
        assert row["errors"] == 0, row

    # Warm restart: the reloaded cache covers every distinct query, so
    # the replay runs without a single cold optimization.
    assert warm["warm_entries"] == grid["distinct"]
    assert warm["hit_rate"] > 0.9

    floor = 1.5 if quick else 4.0
    assert sharded["throughput_rps"] >= floor * baseline["throughput_rps"], (
        f"async sharded {sharded['throughput_rps']:.0f} req/s < "
        f"{floor}x baseline {baseline['throughput_rps']:.0f} req/s"
    )
    if not quick:
        # Equal-or-better tail latency at 4x the throughput.
        assert sharded["p99_ms"] <= baseline["p99_ms"] * 1.1, (
            f"async p99 {sharded['p99_ms']}ms worse than baseline "
            f"{baseline['p99_ms']}ms"
        )
