"""E8 — real-backend validation: the GIL gate and the substitution check.

The paper's headline claim (wall-clock speedup from threads sharing a memo
table) cannot hold on CPython: the GIL serializes the kernels.  This
experiment demonstrates the gate empirically and validates the
substitution:

* ``threads`` backend — real CPython threads over the lock-striped memo.
  Measured wall time does **not** improve with thread count (GIL).
* ``processes`` backend — real multiprocessing with replicated memos and
  per-stratum delta broadcast.  At validation scale the per-stratum
  pickling/IPC cost absorbs the kernel parallelism, so wall time stays
  flat-to-worse — an honest measurement that mirrors the literature's
  observation that fine-grained shared-memo parallelization does not
  translate to shared-nothing settings.
* ``simulated`` backend — the substrate the headline measurements use;
  its predicted speedup is reported alongside for comparison.

All three return bit-identical plans, which is the correctness half of the
substitution argument.
"""

from __future__ import annotations

import statistics
import time

from repro.bench import format_table
from repro.parallel import ParallelDP
from repro.plans import plan_signature
from repro.query import WorkloadSpec, generate_query

THREADS = (1, 2, 4)
REPEATS = 3


def _measure(query, backend, threads):
    times = []
    result = None
    for _ in range(REPEATS):
        optimizer = ParallelDP(
            algorithm="dpsva", threads=threads, backend=backend
        )
        start = time.perf_counter()
        result = optimizer.optimize(query)
        times.append(time.perf_counter() - start)
    return result, statistics.median(times)


def test_e8_real_backends(benchmark, publish):
    query = generate_query(WorkloadSpec("star", 10, seed=8, count=1), 0)
    rows = []
    signatures = set()
    base_wall = {}
    for backend in ("threads", "processes", "simulated"):
        for threads in THREADS:
            result, wall = _measure(query, backend, threads)
            signatures.add(plan_signature(result.plan))
            if threads == 1:
                base_wall[backend] = wall
            rows.append(
                {
                    "backend": backend,
                    "threads": threads,
                    "wall_ms": wall * 1e3,
                    "wall_speedup": base_wall[backend] / wall,
                    "sim_predicted_speedup": "",
                }
            )
    # Simulated predictions (deterministic, from the virtual clock).
    sim_base = (
        ParallelDP(algorithm="dpsva", threads=1)
        .optimize(query)
        .sim_report
        .total_time
    )
    for row in rows:
        if row["backend"] == "simulated":
            report = (
                ParallelDP(algorithm="dpsva", threads=row["threads"])
                .optimize(query)
                .sim_report
            )
            row["sim_predicted_speedup"] = sim_base / report.total_time

    publish("e8_real_backends", format_table(rows), rows)

    # Correctness half of the substitution: identical plans everywhere.
    assert len(signatures) == 1

    by = {(r["backend"], r["threads"]): r for r in rows}
    # The GIL gate: real threads give no meaningful wall speedup.
    assert by[("threads", 4)]["wall_speedup"] < 1.5
    # The simulator predicts speedup where threads cannot deliver it.
    assert by[("simulated", 4)]["sim_predicted_speedup"] > 1.5

    benchmark(
        lambda: ParallelDP(
            algorithm="dpsva", threads=2, backend="threads"
        ).optimize(query)
    )
