"""E5 — allocation-scheme comparison (paper: total-sum allocation figure).

Round-robin and chunked unit placement versus the paper's total-sum
(equi-depth / LPT) allocation at a fixed thread count.

Two parts:

* **PDPsize** — unit weights (candidate-pair counts) are an exact model of
  the kernel's work, so the paper's claim holds cleanly: equi-depth
  achieves the lowest realized imbalance and the best simulated time;
  chunked is worst because contiguous unit runs concentrate skewed splits.
* **PDPsva** — the same weights *overestimate* work wherever the SVA skips
  heavily (stars), so weight-driven LPT can misallocate and round-robin
  can win.  This estimation-error effect is reported as a secondary table;
  it is the reason production total-sum allocators balance on measured,
  not estimated, pair counts.

The ``dynamic`` scheme is the oracle: online least-loaded assignment by
*actual* unit times (simulated executor only).  No static scheme should
beat it by more than scheduling noise, and on PDPsva it recovers the time
the misestimated weights lose.
"""

from __future__ import annotations

from repro.bench import (
    allocation_comparison,
    format_table,
    real_backend_allocation,
)
from repro.parallel import ParallelDP
from repro.query import WorkloadSpec, generate_query

CASES = [("star", 11), ("clique", 10)]
SCHEMES = ("round_robin", "chunked", "equi_depth", "dynamic")

REAL_CASES = [("star", 12), ("clique", 9)]
"""Skewed grids for the oracle-vs-real stealing extension."""


def test_e5_allocation_schemes(benchmark, publish):
    exact_rows = []
    for topology, n in CASES:
        exact_rows.extend(
            allocation_comparison(
                topology, n, algorithm="dpsize", threads=8,
                schemes=SCHEMES, queries=2, seed=5,
            )
        )
    sva_rows = []
    for topology, n in CASES:
        sva_rows.extend(
            allocation_comparison(
                topology, n, algorithm="dpsva", threads=8,
                schemes=SCHEMES, queries=2, seed=5,
            )
        )
    text = (
        "PDPsize (exact weight model):\n"
        + format_table(exact_rows)
        + "\n\nPDPsva (weights overestimate skipped work):\n"
        + format_table(sva_rows)
    )
    publish("e5_allocation", text, exact_rows + sva_rows)

    for topology, n in CASES:
        by_scheme = {
            r["scheme"]: r for r in exact_rows if r["topology"] == topology
        }
        equi = by_scheme["equi_depth"]
        # With an exact weight model, the paper's allocation balances at
        # least as well as both naive schemes and is never slower.
        for naive in ("round_robin", "chunked"):
            assert equi["imbalance"] <= by_scheme[naive]["imbalance"] + 1e-6
            assert equi["sim_time"] <= by_scheme[naive]["sim_time"] * 1.05
        # Chunked concentrates the skew.
        assert by_scheme["chunked"]["imbalance"] >= equi["imbalance"] - 1e-6

    # The dynamic oracle is never meaningfully slower than any static
    # scheme, on either kernel.
    for rows in (exact_rows, sva_rows):
        for topology, n in CASES:
            per_topo = [r for r in rows if r["topology"] == topology]
            dynamic = next(r for r in per_topo if r["scheme"] == "dynamic")
            for row in per_topo:
                assert dynamic["sim_time"] <= row["sim_time"] * 1.02

    query = generate_query(WorkloadSpec("star", 11, seed=5, count=2), 0)
    benchmark(
        lambda: ParallelDP(
            algorithm="dpsize", threads=8, allocation="round_robin"
        ).optimize(query)
    )


def test_e5_real_backend_stealing(quick, publish):
    """Oracle-vs-real: static schemes against true work stealing on the
    ``threads`` and ``processes`` backends.

    Realized load = measured per-worker busy time per stratum (wall
    clocks, not the simulated machine), so this is the experiment the
    simulated oracle in :func:`test_e5_allocation_schemes` predicts.  On
    skewed strata dynamic must balance at least as well as the paper's
    equi-depth scheme: equi-depth commits to estimated weights before
    running, stealing adapts to measured drain rates.
    """
    cases = [("star", 8)] if quick else REAL_CASES
    threads = 2 if quick else 4
    queries = 1 if quick else 2
    rows = []
    for topology, n in cases:
        rows.extend(
            real_backend_allocation(
                topology, n, algorithm="dpsva", threads=threads,
                queries=queries, seed=13,
            )
        )
    publish(
        "e5_real_backends",
        format_table(
            [{k: v for k, v in r.items() if k != "costs"} for r in rows]
        ),
        rows,
    )

    for topology, n in cases:
        for backend in ("threads", "processes"):
            per = {
                r["scheme"]: r
                for r in rows
                if r["topology"] == topology and r["backend"] == backend
            }
            # Bit-identical results across all schemes, incl. stealing.
            costs = {r["costs"] for r in per.values()}
            assert len(costs) == 1, (topology, backend, costs)
            # Stealing actually happened and is visible in the counters.
            dynamic = per["dynamic"]
            assert dynamic["steals"] > 0
            assert dynamic["dispatches"] >= dynamic["steals"]
            for scheme in ("round_robin", "chunked", "equi_depth"):
                assert per[scheme]["steals"] == 0
            if quick:
                continue
            # The headline claim: realized per-worker load imbalance for
            # real stealing is no worse than static equi-depth on skewed
            # strata (tolerance absorbs wall-clock scheduling noise).
            assert (
                dynamic["realized_imbalance"]
                <= per["equi_depth"]["realized_imbalance"] * 1.15
            ), (topology, backend, dynamic, per["equi_depth"])
