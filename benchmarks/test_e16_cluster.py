"""E16 — shared-nothing cluster versus replicated-memo process backend.

The cluster backend (PR 8) partitions the memo itself: each worker owns
a hash shard of the quantifier sets, enumerates only its own result
sets, and per stratum exchanges 3-column best-plan *summaries* peer to
peer instead of the process backend's 6-column full-row delta broadcast
plus candidate collection.

Expected shape at clique-14 (widest strata, the stress topology): the
cluster's per-stratum dissemination bytes sit **strictly below** the
process backend's at every stratum and every worker count — summaries
are 3 columns against 6, shipped to W-1 peers against W broadcast
replicas plus the collection hop.  Parity (same optimum, bit-identical
memo snapshot) is asserted inside the runner on the measured runs.
"""

from __future__ import annotations

import sys

import pytest

from repro.bench import cluster_comparison, format_table

pytestmark = pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="needs fork()"
)


def test_e16_cluster_comparison(publish, quick):
    n = 10 if quick else 14
    worker_counts = (2, 4) if quick else (2, 4, 8)
    modes, strata = cluster_comparison(
        "clique", n, worker_counts=worker_counts, repeats=1, seed=16
    )
    publish("e16_cluster", format_table(modes), modes)
    publish("e16_cluster_strata", format_table(strata), strata)

    by_mode = {(r["workers"], r["mode"]): r for r in modes}
    for workers in worker_counts:
        process = by_mode[(workers, "processes")]
        cluster = by_mode[(workers, "cluster")]
        # Parity is asserted inside the runner; re-check the headline.
        assert cluster["cost"] == process["cost"]
        # Aggregate summary traffic beats full-row traffic outright.
        # (rows_moved is not comparable across modes: cluster counts
        # every peer transfer, process only master-side collection.)
        assert cluster["payload_bytes"] < process["payload_bytes"]
        assert cluster["wall_seconds"] > 0
        assert cluster["speedup"] > 0

    # The acceptance claim: strictly below at EVERY stratum, not just in
    # aggregate — no stratum exists where partitioned exchange loses.
    assert strata, "no per-stratum rows"
    for row in strata:
        assert row["cluster_bytes"] < row["process_bytes"], (
            f"W={row['workers']} stratum {row['size']}: cluster "
            f"{row['cluster_bytes']}B !< process {row['process_bytes']}B"
        )
        assert row["reduction"] > 1.0
