"""Tests for the SQL frontend: lexer, parser, binder, api."""

from __future__ import annotations

import pytest

from repro.catalog import Catalog, Column, TableStats
from repro.sql import ParseError, optimize_sql, parse_select, sql_to_query
from repro.sql.lexer import LexError, tokenize
from repro.util.errors import ValidationError


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add(
        TableStats(
            name="orders",
            cardinality=10_000,
            columns=(Column("id", 10_000), Column("cust", 500)),
        )
    )
    cat.add(
        TableStats(
            name="lineitem",
            cardinality=50_000,
            columns=(Column("oid", 10_000), Column("part", 2_000)),
        )
    )
    cat.add(
        TableStats(
            name="part",
            cardinality=2_000,
            columns=(Column("id", 2_000), Column("brand", 50)),
        )
    )
    return cat


# ---------------------------------------------------------------------------
# lexer
# ---------------------------------------------------------------------------


def test_tokenize_basics():
    tokens = tokenize("SELECT * FROM t WHERE a.b = 3")
    kinds = [t.kind for t in tokens]
    assert kinds == [
        "keyword", "punct", "keyword", "name", "keyword",
        "name", "punct", "name", "punct", "number", "eof",
    ]
    assert tokens[0].text == "select"  # keywords lowercased


def test_tokenize_strings_and_errors():
    tokens = tokenize("x.y = 'hello world'")
    assert tokens[-2].kind == "string"
    assert tokens[-2].text == "hello world"
    with pytest.raises(LexError):
        tokenize("a = 'oops")
    with pytest.raises(LexError):
        tokenize("a @ b")


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def test_parse_comma_join():
    stmt = parse_select(
        "SELECT * FROM orders o, lineitem l WHERE o.id = l.oid"
    )
    assert [(r.table, r.alias) for r in stmt.relations] == [
        ("orders", "o"), ("lineitem", "l"),
    ]
    assert len(stmt.joins) == 1
    assert str(stmt.joins[0].left) == "o.id"


def test_parse_join_on_syntax():
    stmt = parse_select(
        "SELECT * FROM orders o JOIN lineitem l ON o.id = l.oid "
        "INNER JOIN part p ON l.part = p.id;"
    )
    assert len(stmt.relations) == 3
    assert len(stmt.joins) == 2


def test_parse_as_alias_and_default_alias():
    stmt = parse_select("SELECT * FROM orders AS o, lineitem")
    assert stmt.relations[0].alias == "o"
    assert stmt.relations[1].alias == "lineitem"


def test_parse_local_predicates():
    stmt = parse_select(
        "SELECT * FROM part p WHERE p.brand = 42 AND p.id = 'x'"
    )
    assert len(stmt.filters) == 2
    assert stmt.filters[0].value == "42"
    assert stmt.filters[1].value == "x"


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_select("SELECT a FROM t")  # only * supported
    with pytest.raises(ParseError):
        parse_select("FROM t")
    with pytest.raises(ParseError):
        parse_select("SELECT * FROM t WHERE t.a")
    with pytest.raises(ParseError):
        parse_select("SELECT * FROM t WHERE t.a = ")
    with pytest.raises(ParseError):
        parse_select("SELECT * FROM o a, l a")  # duplicate alias
    with pytest.raises(ParseError):
        parse_select("SELECT * FROM t extra junk")


# ---------------------------------------------------------------------------
# binder
# ---------------------------------------------------------------------------


def test_bind_simple_join(catalog):
    query = sql_to_query(
        "SELECT * FROM orders o, lineitem l WHERE o.id = l.oid", catalog
    )
    assert query.n == 2
    assert query.relation_names == ("o", "l")
    assert query.cardinalities == (10_000.0, 50_000.0)
    edge = query.graph.edges[0]
    assert edge.selectivity == pytest.approx(1 / 10_000)


def test_bind_parallel_predicates_multiply(catalog):
    query = sql_to_query(
        "SELECT * FROM orders o, lineitem l "
        "WHERE o.id = l.oid AND o.cust = l.part",
        catalog,
    )
    assert len(query.graph.edges) == 1
    assert query.graph.edges[0].selectivity == pytest.approx(
        (1 / 10_000) * (1 / 2_000)
    )


def test_bind_local_predicate_scales_cardinality(catalog):
    query = sql_to_query(
        "SELECT * FROM orders o, lineitem l "
        "WHERE o.id = l.oid AND o.cust = 7",
        catalog,
    )
    assert query.cardinalities[0] == pytest.approx(10_000 / 500)


def test_bind_self_join(catalog):
    query = sql_to_query(
        "SELECT * FROM orders a, orders b WHERE a.cust = b.cust", catalog
    )
    assert query.n == 2
    assert query.relation_names == ("a", "b")
    assert query.graph.edges[0].selectivity == pytest.approx(1 / 500)


def test_bind_errors(catalog):
    with pytest.raises(ValidationError):
        sql_to_query("SELECT * FROM nope", catalog)
    with pytest.raises(ValidationError):
        sql_to_query(
            "SELECT * FROM orders o WHERE o.nope = 1", catalog
        )
    with pytest.raises(ValidationError):
        sql_to_query(
            "SELECT * FROM orders o, lineitem l WHERE x.id = l.oid", catalog
        )
    with pytest.raises(ValidationError):
        sql_to_query(
            "SELECT * FROM orders o WHERE o.id = o.cust", catalog
        )


# ---------------------------------------------------------------------------
# api
# ---------------------------------------------------------------------------


def test_optimize_sql(catalog):
    result = optimize_sql(
        "SELECT * FROM orders o, lineitem l, part p "
        "WHERE o.id = l.oid AND l.part = p.id",
        catalog,
        algorithm="dpccp",
    )
    assert result.plan.size == 3
    assert result.algorithm == "dpccp"


def test_optimize_sql_parallel(catalog):
    result = optimize_sql(
        "SELECT * FROM orders o JOIN lineitem l ON o.id = l.oid",
        catalog,
        algorithm="dpsva",
        threads=2,
    )
    assert "sim_report" in result.extras


def test_optimize_sql_disconnected_auto_cross(catalog):
    # No join predicate: disconnected graph; cross products auto-enabled.
    result = optimize_sql("SELECT * FROM orders o, part p", catalog)
    assert result.plan.size == 2


def test_bind_duplicate_alias_rejected(catalog):
    # Regression: the parser rejects duplicate aliases in SQL text, but
    # the binder is also a public API for programmatic statements — it
    # used to silently overwrite the first alias's binding, joining a
    # relation with itself under two names.
    from repro.sql.binder import bind
    from repro.sql.parser import FromItem, SelectStatement

    stmt = SelectStatement(
        relations=[
            FromItem(table="orders", alias="o"),
            FromItem(table="lineitem", alias="o"),
        ]
    )
    with pytest.raises(ValidationError, match="duplicate relation alias"):
        bind(stmt, catalog)


def test_optimize_sql_records_cross_product_override(catalog):
    from repro.trace import RecordingTracer

    tracer = RecordingTracer()
    result = optimize_sql(
        "SELECT * FROM orders o, part p", catalog, tracer=tracer
    )
    # The forced override is recorded, not silent.
    assert result.extras["cross_products_forced"] is True
    assert any(
        e.name == "sql.cross_products_forced" for e in tracer.events
    )
    # A connected query does not set the marker.
    connected = optimize_sql(
        "SELECT * FROM orders o, lineitem l WHERE o.id = l.oid", catalog
    )
    assert "cross_products_forced" not in connected.extras


def test_sql_round_trip_properties(catalog):
    # Property-style invariants over generated SPJ statements: parsing
    # is deterministic, binding is order-stable, and the bound query's
    # statistics are insensitive to WHERE-clause ordering.
    import random

    from repro.sql import parse_select

    rng = random.Random(5)
    tables = [("orders", "o"), ("lineitem", "l"), ("part", "p")]
    joins = ["o.id = l.oid", "l.part = p.id"]
    filters = ["o.cust = 7", "p.brand = 3"]
    for _ in range(25):
        preds = joins + rng.sample(filters, rng.randint(0, 2))
        rng.shuffle(preds)
        sql = (
            "SELECT * FROM orders o, lineitem l, part p WHERE "
            + " AND ".join(preds)
        )
        stmt = parse_select(sql)
        again = parse_select(sql)
        assert stmt.relations == again.relations
        assert stmt.joins == again.joins
        query = sql_to_query(sql, catalog)
        assert query.relation_names == ("o", "l", "p")
        # Join selectivities don't depend on predicate order.
        base = sql_to_query(
            "SELECT * FROM orders o, lineitem l, part p WHERE "
            + " AND ".join(joins),
            catalog,
        )
        assert [e.selectivity for e in query.graph.edges] == [
            e.selectivity for e in base.graph.edges
        ]
