"""Tests for the SQL frontend: lexer, parser, binder, api."""

from __future__ import annotations

import pytest

from repro.catalog import Catalog, Column, TableStats
from repro.sql import ParseError, optimize_sql, parse_select, sql_to_query
from repro.sql.lexer import LexError, tokenize
from repro.util.errors import ValidationError


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add(
        TableStats(
            name="orders",
            cardinality=10_000,
            columns=(Column("id", 10_000), Column("cust", 500)),
        )
    )
    cat.add(
        TableStats(
            name="lineitem",
            cardinality=50_000,
            columns=(Column("oid", 10_000), Column("part", 2_000)),
        )
    )
    cat.add(
        TableStats(
            name="part",
            cardinality=2_000,
            columns=(Column("id", 2_000), Column("brand", 50)),
        )
    )
    return cat


# ---------------------------------------------------------------------------
# lexer
# ---------------------------------------------------------------------------


def test_tokenize_basics():
    tokens = tokenize("SELECT * FROM t WHERE a.b = 3")
    kinds = [t.kind for t in tokens]
    assert kinds == [
        "keyword", "punct", "keyword", "name", "keyword",
        "name", "punct", "name", "punct", "number", "eof",
    ]
    assert tokens[0].text == "select"  # keywords lowercased


def test_tokenize_strings_and_errors():
    tokens = tokenize("x.y = 'hello world'")
    assert tokens[-2].kind == "string"
    assert tokens[-2].text == "hello world"
    with pytest.raises(LexError):
        tokenize("a = 'oops")
    with pytest.raises(LexError):
        tokenize("a @ b")


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def test_parse_comma_join():
    stmt = parse_select(
        "SELECT * FROM orders o, lineitem l WHERE o.id = l.oid"
    )
    assert [(r.table, r.alias) for r in stmt.relations] == [
        ("orders", "o"), ("lineitem", "l"),
    ]
    assert len(stmt.joins) == 1
    assert str(stmt.joins[0].left) == "o.id"


def test_parse_join_on_syntax():
    stmt = parse_select(
        "SELECT * FROM orders o JOIN lineitem l ON o.id = l.oid "
        "INNER JOIN part p ON l.part = p.id;"
    )
    assert len(stmt.relations) == 3
    assert len(stmt.joins) == 2


def test_parse_as_alias_and_default_alias():
    stmt = parse_select("SELECT * FROM orders AS o, lineitem")
    assert stmt.relations[0].alias == "o"
    assert stmt.relations[1].alias == "lineitem"


def test_parse_local_predicates():
    stmt = parse_select(
        "SELECT * FROM part p WHERE p.brand = 42 AND p.id = 'x'"
    )
    assert len(stmt.filters) == 2
    assert stmt.filters[0].value == "42"
    assert stmt.filters[1].value == "x"


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_select("SELECT a FROM t")  # only * supported
    with pytest.raises(ParseError):
        parse_select("FROM t")
    with pytest.raises(ParseError):
        parse_select("SELECT * FROM t WHERE t.a")
    with pytest.raises(ParseError):
        parse_select("SELECT * FROM t WHERE t.a = ")
    with pytest.raises(ParseError):
        parse_select("SELECT * FROM o a, l a")  # duplicate alias
    with pytest.raises(ParseError):
        parse_select("SELECT * FROM t extra junk")


# ---------------------------------------------------------------------------
# binder
# ---------------------------------------------------------------------------


def test_bind_simple_join(catalog):
    query = sql_to_query(
        "SELECT * FROM orders o, lineitem l WHERE o.id = l.oid", catalog
    )
    assert query.n == 2
    assert query.relation_names == ("o", "l")
    assert query.cardinalities == (10_000.0, 50_000.0)
    edge = query.graph.edges[0]
    assert edge.selectivity == pytest.approx(1 / 10_000)


def test_bind_parallel_predicates_multiply(catalog):
    query = sql_to_query(
        "SELECT * FROM orders o, lineitem l "
        "WHERE o.id = l.oid AND o.cust = l.part",
        catalog,
    )
    assert len(query.graph.edges) == 1
    assert query.graph.edges[0].selectivity == pytest.approx(
        (1 / 10_000) * (1 / 2_000)
    )


def test_bind_local_predicate_scales_cardinality(catalog):
    query = sql_to_query(
        "SELECT * FROM orders o, lineitem l "
        "WHERE o.id = l.oid AND o.cust = 7",
        catalog,
    )
    assert query.cardinalities[0] == pytest.approx(10_000 / 500)


def test_bind_self_join(catalog):
    query = sql_to_query(
        "SELECT * FROM orders a, orders b WHERE a.cust = b.cust", catalog
    )
    assert query.n == 2
    assert query.relation_names == ("a", "b")
    assert query.graph.edges[0].selectivity == pytest.approx(1 / 500)


def test_bind_errors(catalog):
    with pytest.raises(ValidationError):
        sql_to_query("SELECT * FROM nope", catalog)
    with pytest.raises(ValidationError):
        sql_to_query(
            "SELECT * FROM orders o WHERE o.nope = 1", catalog
        )
    with pytest.raises(ValidationError):
        sql_to_query(
            "SELECT * FROM orders o, lineitem l WHERE x.id = l.oid", catalog
        )
    with pytest.raises(ValidationError):
        sql_to_query(
            "SELECT * FROM orders o WHERE o.id = o.cust", catalog
        )


# ---------------------------------------------------------------------------
# api
# ---------------------------------------------------------------------------


def test_optimize_sql(catalog):
    result = optimize_sql(
        "SELECT * FROM orders o, lineitem l, part p "
        "WHERE o.id = l.oid AND l.part = p.id",
        catalog,
        algorithm="dpccp",
    )
    assert result.plan.size == 3
    assert result.algorithm == "dpccp"


def test_optimize_sql_parallel(catalog):
    result = optimize_sql(
        "SELECT * FROM orders o JOIN lineitem l ON o.id = l.oid",
        catalog,
        algorithm="dpsva",
        threads=2,
    )
    assert "sim_report" in result.extras


def test_optimize_sql_disconnected_auto_cross(catalog):
    # No join predicate: disconnected graph; cross products auto-enabled.
    result = optimize_sql("SELECT * FROM orders o, part p", catalog)
    assert result.plan.size == 2
