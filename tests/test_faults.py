"""Chaos suite: fault injection, crash recovery, and deadline semantics.

The acceptance contract under test (ISSUE 4 / E12): any single injected
worker crash/raise/delay yields either the exact optimal plan — bit for
bit the fault-free cost — after recovery, or a ``ServiceResult`` with
``degraded=True`` and ``source`` in ``{"fallback", "error"}``; never an
unhandled exception.  Deadlines are shared remaining-time budgets, so a
batch of N misses settles in ~one timeout, not N.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import (
    FaultInjector,
    InjectedFault,
    OptimizationError,
    OptimizerConfig,
    OptimizerService,
    ValidationError,
    optimize,
)
from repro.cost.model import StandardCostModel
from repro.faults import NULL_INJECTOR, FaultSpec
from repro.query.workload import WorkloadSpec, generate_query
from repro.service import PlanCache


def query_for(topology="chain", n=7, seed=3):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


# -- FaultInjector ------------------------------------------------------


def test_plan_parsing_targeting_and_control_keys():
    injector = FaultInjector.from_plan(
        "seed=7;worker:crash@worker=1,stratum=3,count=2;"
        "cache:raise@op=get,count=inf;service:delay@delay=0.25,p=0.5"
    )
    assert injector.seed == 7
    crash, cache, delay = injector.specs
    assert crash.kind == "crash"
    assert crash.match == {"worker": 1, "stratum": 3}
    assert crash.count == 2
    assert cache.count is None
    assert cache.match == {"op": "get"}
    assert delay.delay_seconds == 0.25
    assert delay.probability == 0.5


@pytest.mark.parametrize(
    "plan",
    [
        "worker",  # no kind
        "worker:explode",  # unknown kind
        "nowhere:raise",  # unknown site
        "worker:raise@worker",  # malformed option
        "worker:raise@count=zero",  # bad int
        "seed=x;worker:raise",  # bad seed
        "worker:raise@p=2.0",  # probability out of range
    ],
)
def test_plan_parsing_rejects_malformed(plan):
    with pytest.raises(ValidationError):
        FaultInjector.from_plan(plan)


def test_fire_respects_count_and_coordinates():
    injector = FaultInjector.from_plan("worker:raise@worker=1,stratum=3")
    assert injector.fire("worker", worker=0, stratum=3) is None
    assert injector.fire("stratum", worker=1, stratum=3) is None
    action = injector.fire("worker", worker=1, stratum=3)
    assert action is not None and action.kind == "raise"
    # count=1 (the default): the spec is spent.
    assert injector.fire("worker", worker=1, stratum=3) is None
    assert injector.fired() == 1


def test_probabilistic_firing_is_deterministic_per_seed():
    def schedule(seed):
        injector = FaultInjector.from_plan(
            "worker:raise@p=0.5,count=inf", seed=seed
        )
        return [
            injector.fire("worker", worker=0) is not None for _ in range(64)
        ]

    assert schedule(1) == schedule(1)
    assert any(schedule(1))  # p=0.5 over 64 draws: fires at least once
    assert schedule(1) != schedule(2)  # distinct streams per seed


def test_check_raises_on_crash_without_process():
    injector = FaultInjector([FaultSpec(site="service", kind="crash")])
    with pytest.raises(InjectedFault):
        injector.check("service")


def test_null_injector_is_inert():
    assert NULL_INJECTOR.enabled is False
    assert NULL_INJECTOR.fire("worker", worker=0) is None
    NULL_INJECTOR.check("worker", worker=0)
    assert NULL_INJECTOR.fired() == 0


# -- config plumbing ----------------------------------------------------


def test_config_validates_fault_plan_eagerly():
    with pytest.raises(ValidationError):
        OptimizerConfig(fault_plan="worker:explode")
    with pytest.raises(ValidationError):
        OptimizerConfig(retry_limit=-1)
    with pytest.raises(ValidationError):
        OptimizerConfig(retry_backoff=-0.1)


def test_robustness_knobs_do_not_change_digest():
    base = OptimizerConfig(algorithm="dpsize", threads=2)
    chaotic = OptimizerConfig(
        algorithm="dpsize",
        threads=2,
        fault_plan="worker:raise@worker=1",
        retry_limit=5,
        retry_backoff=0.5,
    )
    # Robustness knobs never change which plan is optimal (degraded
    # results are not cached), so they must not split cache keys.
    assert base.digest == chaotic.digest


# -- executor recovery: exact optimum after a single fault --------------


BACKEND_FAULTS = [
    ("simulated", "worker:raise@worker=1"),
    ("simulated", "worker:delay@worker=1,delay=0.5"),
    ("simulated", "worker:crash@worker=1"),
    ("threads", "worker:raise@worker=0"),
    ("processes", "worker:raise@worker=1"),
    ("processes", "worker:crash@worker=1"),
    ("processes", "worker:delay@worker=1,delay=0.01"),
]


@pytest.mark.parametrize("backend,plan", BACKEND_FAULTS)
def test_single_worker_fault_recovers_to_exact_optimum(backend, plan):
    from repro.plans import plan_signature

    query = query_for()
    base = optimize(
        query,
        config=OptimizerConfig(
            algorithm="dpsize", threads=2, backend=backend
        ),
    )
    result = optimize(
        query,
        config=OptimizerConfig(
            algorithm="dpsize",
            threads=2,
            backend=backend,
            fault_plan=plan,
            retry_backoff=0.0,
        ),
    )
    assert result.cost == base.cost
    assert plan_signature(result.plan) == plan_signature(base.plan)
    recovery = result.extras.get("fault_recovery")
    assert recovery is not None
    if "delay" not in plan:
        assert (
            recovery["worker_errors"] + recovery.get("worker_deaths", 0) >= 1
        )
        assert recovery["redispatch_attempts"] >= 1


def test_simulated_recovery_keeps_meter_exact():
    query = query_for()
    base = optimize(
        query, config=OptimizerConfig(algorithm="dpsize", threads=2)
    )
    result = optimize(
        query,
        config=OptimizerConfig(
            algorithm="dpsize",
            threads=2,
            fault_plan="worker:raise@worker=1",
        ),
    )
    # Units are re-dispatched whole and merged exactly once, so the
    # recovered run's operation counts match the fault-free run's.
    assert result.meter == base.meter


def test_simulated_delay_charges_virtual_straggler_time():
    query = query_for()
    base = optimize(
        query, config=OptimizerConfig(algorithm="dpsize", threads=2)
    )
    # The charge is in virtual time units; make it dwarf the stratum so
    # it must show up on the critical path.
    straggle = base.sim_report.total_time * 10
    started = time.perf_counter()
    result = optimize(
        query,
        config=OptimizerConfig(
            algorithm="dpsize",
            threads=2,
            fault_plan=(
                f"worker:delay@worker=1,stratum=2,delay={straggle}"
            ),
        ),
    )
    wall = time.perf_counter() - started
    assert wall < 5.0  # virtual charge, never a real sleep
    assert (
        result.sim_report.total_time
        > base.sim_report.total_time + straggle * 0.9
    )
    assert result.cost == base.cost


def test_retry_exhaustion_raises_optimization_error():
    with pytest.raises(OptimizationError):
        optimize(
            query_for(),
            config=OptimizerConfig(
                algorithm="dpsize",
                threads=2,
                fault_plan="worker:raise@count=inf",
                retry_limit=1,
                retry_backoff=0.0,
            ),
        )


def test_stratum_fault_escapes_executor_recovery():
    # Master-side faults are deliberately outside executor recovery; the
    # serving layer is the absorber (see test below).
    with pytest.raises(InjectedFault):
        optimize(
            query_for(),
            config=OptimizerConfig(
                algorithm="dpsize",
                threads=2,
                fault_plan="stratum:raise@stratum=3",
            ),
        )


# -- service degradation ------------------------------------------------


def service_config(**overrides) -> OptimizerConfig:
    settings = dict(algorithm="dpsize", retry_backoff=0.0)
    settings.update(overrides)
    return OptimizerConfig(**settings)


def test_service_retries_transient_fault_to_exact_answer():
    query = query_for()
    with OptimizerService(service_config()) as svc:
        baseline = svc.optimize(query).cost
    with OptimizerService(
        service_config(fault_plan="service:raise", retry_limit=2)
    ) as svc:
        outcome = svc.optimize(query)
        stats = svc.stats()
    assert outcome.source == "miss"
    assert not outcome.degraded
    assert outcome.cost == baseline
    assert stats.retries == 1 and stats.errors == 0


def test_service_degrades_to_error_when_budget_exhausted():
    query = query_for()
    with OptimizerService(
        service_config(fault_plan="service:raise@count=inf", retry_limit=1)
    ) as svc:
        outcome = svc.optimize(query)
        stats = svc.stats()
        # Degraded results are never cached: the plan tier stays empty
        # and a repeat request degrades again instead of serving a
        # fallback plan as if it were the optimum.
        repeat = svc.optimize(query)
    assert outcome.source == "error"
    assert outcome.degraded
    assert "InjectedFault" in outcome.error
    assert outcome.result.plan is not None
    assert stats.errors == 1 and stats.retries == 1
    assert stats.plan_cache.entries == 0
    assert repeat.source == "error"


def test_service_absorbs_master_stratum_fault():
    query = query_for()
    with OptimizerService(
        service_config(
            fault_plan="stratum:raise@stratum=3",
            threads=2,
            retry_limit=1,
        )
    ) as svc:
        outcome = svc.optimize(query)
    assert outcome.source == "miss"
    assert not outcome.degraded


class BrokenCostModel(StandardCostModel):
    """A cost model whose first ``failures`` evaluations blow up.

    Each DP attempt dies on its first join costing, so ``failures``
    sized to ``retry_limit + 1`` exhausts the retry budget; later calls
    (the heuristic fallback) succeed.
    """

    def __init__(self, failures: int) -> None:
        super().__init__()
        self._failures = failures

    def join_cost(self, *args, **kwargs):
        if self._failures > 0:
            self._failures -= 1
            raise RuntimeError("catalog went away")
        return super().join_cost(*args, **kwargs)


def test_broken_cost_model_degrades_miss_and_shared_waiter():
    query = query_for()
    config = OptimizerConfig(
        algorithm="dpsize",
        cost_model=BrokenCostModel(failures=3),
        retry_limit=2,
        retry_backoff=0.1,  # keeps the flight open while we join it
    )
    with OptimizerService(config) as svc:
        results = []

        def request():
            results.append(svc.optimize(query))

        first = threading.Thread(target=request)
        first.start()
        time.sleep(0.05)
        second = threading.Thread(target=request)
        second.start()
        first.join()
        second.join()
        stats = svc.stats()
    assert len(results) == 2
    for outcome in results:
        assert outcome.source == "error"
        assert outcome.degraded
        assert "RuntimeError" in outcome.error
        assert outcome.result.plan is not None
    assert stats.errors == 2
    assert stats.optimizations == 1  # singleflight held
    assert stats.shared == 1


def test_flaky_cache_tier_fails_open_as_miss():
    query = query_for()
    with OptimizerService(service_config()) as svc:
        baseline = svc.optimize(query).cost
    with OptimizerService(
        service_config(fault_plan="cache:raise@count=inf")
    ) as svc:
        first = svc.optimize(query)
        second = svc.optimize(query)
    for outcome in (first, second):
        assert outcome.source == "miss"  # unreadable cache => miss
        assert not outcome.degraded
        assert outcome.cost == baseline


# -- deadline semantics -------------------------------------------------


def test_single_request_deadline_includes_staging_time():
    query = query_for()
    with OptimizerService(
        service_config(fault_plan="service:delay@delay=1.0,count=inf")
    ) as svc:
        started = time.perf_counter()
        outcome = svc.optimize(query, timeout=0.15)
        wall = time.perf_counter() - started
    assert outcome.source == "fallback"
    assert outcome.degraded
    assert wall < 0.9  # did not wait out the injected 1s stall


def test_batch_of_misses_shares_one_deadline_budget():
    queries = [query_for(n=6, seed=s) for s in range(4)]
    config = service_config(
        fault_plan="service:delay@delay=0.6,count=inf",
        service_workers=4,
    )
    with OptimizerService(config) as svc:
        started = time.perf_counter()
        outcomes = svc.optimize_batch(queries, timeout=0.15)
        wall = time.perf_counter() - started
        stats = svc.stats()
    assert [o.source for o in outcomes] == ["fallback"] * 4
    assert all(o.degraded for o in outcomes)
    assert stats.fallbacks == 4
    # The budget is shared from batch entry: 4 misses settle in ~one
    # timeout plus fallback computation, nowhere near 4 x 0.15 + delays.
    assert wall < 0.45


def test_batch_mixes_hits_and_deadline_fallbacks():
    fast = query_for(n=5, seed=1)
    slow = query_for(n=6, seed=2)
    with OptimizerService(service_config()) as svc:
        svc.optimize(fast)  # warm the cache
        outcomes = svc.optimize_batch([fast, slow], timeout=30.0)
    assert outcomes[0].source == "hit"
    assert outcomes[1].source == "miss"
    assert not outcomes[1].degraded


# -- close() race -------------------------------------------------------


def test_close_rejects_new_requests_with_validation_error():
    svc = OptimizerService(service_config())
    svc.close()
    with pytest.raises(ValidationError):
        svc.optimize(query_for(n=5))


def test_concurrent_close_never_leaks_runtime_error():
    query = query_for(n=5)
    for _ in range(5):
        svc = OptimizerService(service_config())
        failures: list[BaseException] = []
        done = threading.Event()

        def hammer():
            while not done.is_set():
                try:
                    svc.optimize(query)
                except ValidationError:
                    return  # the one sanctioned refusal
                except BaseException as exc:  # noqa: BLE001
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.01)
        svc.close()
        done.set()
        for t in threads:
            t.join()
        assert not failures


# -- PlanCache version consistency --------------------------------------


def test_version_reads_are_consistent_under_concurrent_bumps():
    cache = PlanCache(max_entries=4)
    stop = threading.Event()
    seen: list[int] = []

    def reader():
        last = -1
        while not stop.is_set():
            version = cache.version
            assert version >= last  # monotonic through the lock
            last = version
        seen.append(last)

    readers = [threading.Thread(target=reader) for _ in range(2)]
    for t in readers:
        t.start()
    for _ in range(200):
        cache.bump_version()
    stop.set()
    for t in readers:
        t.join()
    assert cache.version == 200
    assert all(v <= 200 for v in seen)


def test_cache_entries_from_before_bump_are_invalidated():
    cache = PlanCache(max_entries=4)
    cache.put("a", 1)
    assert cache.version == 0
    cache.bump_version()
    assert cache.version == 1
    assert cache.get("a") is None
    assert cache.stats().invalidated == 1


# -- E12-style chaos matrix through the service -------------------------


CHAOS_PLANS = [
    "worker:raise@worker=1",
    "worker:crash@worker=0",
    "worker:delay@worker=1,delay=0.2",
    "stratum:raise@stratum=3",
    "cache:raise@op=get,count=inf",
    "service:raise",
    "service:raise@count=inf",
    "worker:raise@count=inf",
]


@pytest.mark.parametrize("plan", CHAOS_PLANS)
def test_chaos_matrix_exact_or_degraded_never_unhandled(plan):
    query = query_for()
    with OptimizerService(
        service_config(threads=2, retry_limit=2)
    ) as svc:
        baseline = svc.optimize(query).cost
    with OptimizerService(
        service_config(threads=2, retry_limit=2, fault_plan=plan)
    ) as svc:
        outcome = svc.optimize(query)
    if outcome.degraded:
        assert outcome.source in ("fallback", "error")
        assert outcome.result.plan is not None
    else:
        assert outcome.cost == baseline


# -- CLI wiring ---------------------------------------------------------


def test_cli_optimize_with_fault_plan(capsys):
    from repro.cli import main

    code = main(
        [
            "optimize",
            "--topology", "chain",
            "-n", "6",
            "--algorithm", "dpsize",
            "--threads", "2",
            "--fault-plan", "worker:raise@worker=1",
            "--fault-seed", "7",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "pdpsize" in out


def test_cli_serve_batch_reports_error_source(capsys):
    from repro.cli import main

    code = main(
        [
            "serve-batch",
            "--topology", "chain",
            "-n", "6",
            "--queries", "2",
            "--repeat", "2",
            "--fault-plan", "service:raise@count=inf",
            "--retry-limit", "0",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "error=" in out
