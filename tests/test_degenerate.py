"""Degenerate-input coverage: inputs that exercise the boundaries of the
stratum machinery — a single relation (no strata at all), far more
threads than work units, and an empty service batch.
"""

from __future__ import annotations

import pytest

from repro import OptimizerConfig, OptimizerService, optimize
from repro.parallel.scheduler import ParallelDP
from repro.plans import plan_signature
from repro.query.workload import WorkloadSpec, generate_query


def query_for(topology, n, seed=0):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


def test_single_relation_serial():
    query = query_for("chain", 1)
    result = optimize(query)
    assert result.cost == query.cardinalities[0]
    assert result.plan.relations == 0b1
    assert result.plan.size == 1
    assert result.meter.pairs_considered == 0


@pytest.mark.parametrize("backend", ["simulated", "threads", "processes"])
@pytest.mark.parametrize("allocation", ["equi_depth", "dynamic"])
def test_single_relation_parallel(backend, allocation):
    # n=1 means the stratum loop body never runs: the optimum is the
    # seeded scan, on every backend and allocation scheme.
    query = query_for("chain", 1)
    result = ParallelDP(
        algorithm="dpsize", threads=4, backend=backend,
        allocation=allocation,
    ).optimize(query)
    assert result.cost == query.cardinalities[0]
    assert result.extras["unit_counts"] == []
    assert result.extras["realized_imbalances"] == []


@pytest.mark.parametrize("backend", ["simulated", "threads", "processes"])
@pytest.mark.parametrize("allocation", ["equi_depth", "dynamic"])
def test_many_more_threads_than_units(backend, allocation):
    # chain-2 has exactly one joinable pair; 15 of the 16 workers get
    # nothing to do and must still hit the barrier cleanly.
    query = query_for("chain", 2)
    serial = optimize(query)
    result = ParallelDP(
        algorithm="dpsva", threads=16, backend=backend,
        allocation=allocation,
    ).optimize(query)
    assert result.cost == serial.cost
    assert plan_signature(result.plan) == plan_signature(serial.plan)
    assert result.meter.pairs_valid == serial.meter.pairs_valid


def test_optimize_batch_empty_returns_empty_list():
    service = OptimizerService(OptimizerConfig(algorithm="dpsize"))
    try:
        assert service.optimize_batch([]) == []
    finally:
        service.close()
