"""Degenerate-input coverage: inputs that exercise the boundaries of the
stratum machinery — a single relation (no strata at all), far more
threads than work units, and an empty service batch.
"""

from __future__ import annotations

import pytest

from repro import OptimizerConfig, OptimizerService, optimize
from repro.parallel.scheduler import ParallelDP
from repro.plans import plan_signature
from repro.query.workload import WorkloadSpec, generate_query


def query_for(topology, n, seed=0):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


def test_single_relation_serial():
    query = query_for("chain", 1)
    result = optimize(query)
    assert result.cost == query.cardinalities[0]
    assert result.plan.relations == 0b1
    assert result.plan.size == 1
    assert result.meter.pairs_considered == 0


@pytest.mark.parametrize("backend", ["simulated", "threads", "processes"])
@pytest.mark.parametrize("allocation", ["equi_depth", "dynamic"])
def test_single_relation_parallel(backend, allocation):
    # n=1 means the stratum loop body never runs: the optimum is the
    # seeded scan, on every backend and allocation scheme.
    query = query_for("chain", 1)
    result = ParallelDP(
        algorithm="dpsize", threads=4, backend=backend,
        allocation=allocation,
    ).optimize(query)
    assert result.cost == query.cardinalities[0]
    assert result.extras["unit_counts"] == []
    assert result.extras["realized_imbalances"] == []


@pytest.mark.parametrize("backend", ["simulated", "threads", "processes"])
@pytest.mark.parametrize("allocation", ["equi_depth", "dynamic"])
def test_many_more_threads_than_units(backend, allocation):
    # chain-2 has exactly one joinable pair; 15 of the 16 workers get
    # nothing to do and must still hit the barrier cleanly.
    query = query_for("chain", 2)
    serial = optimize(query)
    result = ParallelDP(
        algorithm="dpsva", threads=16, backend=backend,
        allocation=allocation,
    ).optimize(query)
    assert result.cost == serial.cost
    assert plan_signature(result.plan) == plan_signature(serial.plan)
    assert result.meter.pairs_valid == serial.meter.pairs_valid


def test_optimize_batch_empty_returns_empty_list():
    service = OptimizerService(OptimizerConfig(algorithm="dpsize"))
    try:
        assert service.optimize_batch([]) == []
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Heuristic entry points on degenerate inputs.  The hybrid optimizer feeds
# the heuristics single-relation cores, two-relation chains, and (when
# misconfigured) disconnected graphs — each must come back as a valid plan
# or a clean ValidationError, never an internal crash.

from repro.heuristics import GOO, IKKBZ, IteratedImprovement, SimulatedAnnealing
from repro.query import JoinGraph, Query
from repro.util.errors import ValidationError

HEURISTIC_CLASSES = [GOO, IKKBZ, IteratedImprovement, SimulatedAnnealing]


def disconnected_query():
    graph = JoinGraph(4, [(0, 1, 0.1), (2, 3, 0.1)])
    return Query(
        graph=graph,
        relation_names=("a", "b", "c", "d"),
        cardinalities=(10.0, 10.0, 10.0, 10.0),
    )


@pytest.mark.parametrize("heuristic", HEURISTIC_CLASSES)
def test_heuristic_single_relation(heuristic):
    query = query_for("chain", 1)
    result = heuristic().optimize(query)
    assert result.plan.size == 1
    assert result.plan.relations == 0b1
    assert result.cost >= 0.0


@pytest.mark.parametrize("heuristic", HEURISTIC_CLASSES)
def test_heuristic_two_relation_chain(heuristic):
    query = query_for("chain", 2)
    serial = optimize(query)
    result = heuristic().optimize(query)
    assert result.plan.size == 2
    # One joinable pair exists, so every heuristic finds the optimum.
    assert result.cost <= serial.cost * (1.0 + 1e-9)


@pytest.mark.parametrize("heuristic", [GOO, IKKBZ])
def test_connected_heuristics_reject_disconnected(heuristic):
    # GOO (without cross products) and IKKBZ cannot cover a disconnected
    # graph — the failure is a clean input-validation error.
    with pytest.raises(ValidationError):
        heuristic().optimize(disconnected_query())


def test_goo_cross_products_covers_disconnected():
    result = GOO(cross_products=True).optimize(disconnected_query())
    assert result.plan.size == 4


@pytest.mark.parametrize(
    "heuristic", [IteratedImprovement, SimulatedAnnealing]
)
def test_randomized_heuristics_cover_disconnected(heuristic):
    # The randomized searches admit cross products by construction
    # (Steinbrunn et al.), so disconnected inputs still yield a plan.
    result = heuristic().optimize(disconnected_query())
    assert result.plan.size == 4


def test_hybrid_single_relation():
    query = query_for("chain", 1)
    result = optimize(query, config=OptimizerConfig(algorithm="hybrid"))
    assert result.plan.size == 1
    assert result.extras["hybrid"]["stitch_method"] == "single_core"


def test_hybrid_rejects_disconnected():
    with pytest.raises(ValidationError):
        optimize(
            disconnected_query(),
            config=OptimizerConfig(algorithm="hybrid"),
        )
