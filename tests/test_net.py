"""Framing layer for the cluster backend: framing, metering, EOF.

These run over in-process ``socketpair`` channels — the same code path
the TCP transport uses, minus the dial/accept handshake (covered by the
cluster executor's TCP round-trip test).
"""

from __future__ import annotations

import threading

import pytest

from repro.parallel.net import (
    FRAME_OVERHEAD,
    Channel,
    ChannelClosed,
    channel_pair,
    connect,
    listen,
    parse_hostport,
)


def test_round_trip_preserves_objects():
    a, b = channel_pair()
    try:
        for obj in ("go", 3, ("done", 2, None, {"pairs": 7}), [1, 2, 3],
                    {"mask": 0b101}, b"\x00\xff" * 100, None):
            a.send(obj)
            assert b.recv() == obj
    finally:
        a.close()
        b.close()


def test_multiple_frames_in_flight():
    # The 4-byte length prefix must delimit back-to-back frames
    # correctly even when they coalesce in the socket buffer.
    a, b = channel_pair()
    try:
        for i in range(50):
            a.send(("msg", i, "x" * i))
        for i in range(50):
            assert b.recv() == ("msg", i, "x" * i)
    finally:
        a.close()
        b.close()


def test_byte_counters_are_symmetric():
    a, b = channel_pair()
    try:
        a.send({"payload": "y" * 1000})
        received = b.recv()
        assert received == {"payload": "y" * 1000}
        assert a.bytes_out == b.bytes_in
        assert a.bytes_out > 1000  # pickle + frame prefix
        assert b.bytes_out == 0 and a.bytes_in == 0
        b.send("ack")
        a.recv()
        assert b.bytes_out == a.bytes_in
    finally:
        a.close()
        b.close()


def test_frame_overhead_constant():
    a, b = channel_pair()
    try:
        a.send(None)
        payload_len = a.bytes_out - FRAME_OVERHEAD
        assert payload_len > 0
        b.recv()
        assert b.bytes_in == FRAME_OVERHEAD + payload_len
    finally:
        a.close()
        b.close()


def test_recv_on_closed_peer_raises_channel_closed():
    a, b = channel_pair()
    a.close()
    with pytest.raises(ChannelClosed):
        b.recv()
    b.close()


def test_eof_mid_conversation():
    # A crashing worker looks like EOF after whatever it already sent:
    # the buffered frame must still arrive, then ChannelClosed.
    a, b = channel_pair()
    a.send(("done", 4))
    a.close()
    assert b.recv() == ("done", 4)
    with pytest.raises(ChannelClosed):
        b.recv()
    b.close()


def test_send_to_closed_peer_raises_channel_closed():
    a, b = channel_pair()
    b.close()
    with pytest.raises(ChannelClosed):
        # May take a couple of sends for the RST to surface.
        for _ in range(20):
            a.send("x" * 4096)
    a.close()


def test_parse_hostport():
    assert parse_hostport("localhost:9000") == ("localhost", 9000)
    assert parse_hostport("10.0.0.1:51234") == ("10.0.0.1", 51234)


@pytest.mark.parametrize("bad", ["localhost", ":9000", "host:", "host:abc"])
def test_parse_hostport_rejects(bad):
    with pytest.raises(ValueError):
        parse_hostport(bad)


def test_listen_connect_round_trip():
    server_sock = listen("127.0.0.1", 0)
    port = server_sock.getsockname()[1]
    accepted = {}

    def accept():
        conn, _ = server_sock.accept()
        accepted["chan"] = Channel(conn)

    thread = threading.Thread(target=accept)
    thread.start()
    client = connect("127.0.0.1", port)
    thread.join(timeout=5)
    server = accepted["chan"]
    try:
        client.send(("hello", 1))
        assert server.recv() == ("hello", 1)
        server.send(("ready",))
        assert client.recv() == ("ready",)
    finally:
        client.close()
        server.close()
        server_sock.close()


def test_connect_refused_raises_channel_closed():
    sock = listen("127.0.0.1", 0)
    port = sock.getsockname()[1]
    sock.close()  # now nothing listens there
    with pytest.raises(ChannelClosed):
        connect("127.0.0.1", port, retries=2, delay=0.01)
