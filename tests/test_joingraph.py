"""Tests for join graphs and queries."""

from __future__ import annotations

import pytest

from repro.catalog import generate_catalog
from repro.query import JoinEdge, JoinGraph, Query
from repro.util.bitsets import mask_of
from repro.util.errors import ValidationError


def make_chain(n=4):
    return JoinGraph(n, [(i, i + 1, 0.1) for i in range(n - 1)])


def test_edge_validation():
    with pytest.raises(ValidationError):
        JoinEdge(2, 2, 0.5)
    with pytest.raises(ValidationError):
        JoinEdge(3, 1, 0.5)
    with pytest.raises(ValidationError):
        JoinEdge(0, 1, 0.0)
    with pytest.raises(ValidationError):
        JoinEdge(0, 1, 1.5)


def test_graph_normalizes_tuple_edges():
    g = JoinGraph(3, [(1, 0, 0.2), (1, 2, 0.3)])
    assert g.edge_selectivity(0, 1) == 0.2
    assert g.edge_selectivity(1, 0) == 0.2
    assert g.edge_selectivity(0, 2) is None


def test_graph_rejects_bad_edges():
    with pytest.raises(ValidationError):
        JoinGraph(2, [(0, 5, 0.1)])
    with pytest.raises(ValidationError):
        JoinGraph(3, [(0, 1, 0.1), (1, 0, 0.2)])
    with pytest.raises(ValidationError):
        JoinGraph(0, [])


def test_adjacency_and_neighbours():
    g = make_chain(4)
    assert g.adjacency(0) == 0b0010
    assert g.adjacency(1) == 0b0101
    assert g.neighbours(mask_of([0])) == 0b0010
    assert g.neighbours(mask_of([1, 2])) == 0b1001
    assert g.neighbours(mask_of([0, 1, 2, 3])) == 0


def test_connectivity():
    g = make_chain(4)
    assert g.is_connected()
    assert g.is_connected_set(mask_of([0, 1, 2]))
    assert not g.is_connected_set(mask_of([0, 2]))
    assert g.is_connected_set(mask_of([1]))
    assert g.is_connected_set(0)


def test_connects_and_cross_selectivity():
    g = JoinGraph(3, [(0, 1, 0.5), (1, 2, 0.25)])
    assert g.connects(0b001, 0b010)
    assert not g.connects(0b001, 0b100)
    assert g.cross_selectivity(0b010, 0b101) == pytest.approx(0.5 * 0.25)
    assert g.cross_selectivity(0b001, 0b100) == 1.0


def test_disconnected_graph():
    g = JoinGraph(4, [(0, 1, 0.1), (2, 3, 0.1)])
    assert not g.is_connected()
    assert g.is_connected_set(mask_of([0, 1]))
    assert not g.is_connected_set(mask_of([1, 2]))


def test_query_from_catalog():
    catalog = generate_catalog(4, seed=1)
    q = Query.from_catalog(catalog, make_chain(4), label="test")
    assert q.n == 4
    assert q.relation_names == ("t0", "t1", "t2", "t3")
    assert all(c >= 1 for c in q.cardinalities)


def test_query_validation():
    g = make_chain(3)
    with pytest.raises(ValidationError):
        Query(graph=g, relation_names=("a",), cardinalities=(1.0, 1.0, 1.0))
    with pytest.raises(ValidationError):
        Query(
            graph=g,
            relation_names=("a", "b", "c"),
            cardinalities=(1.0, 0.0, 1.0),
        )
    with pytest.raises(ValidationError):
        Query(graph=g, relation_names=("a", "b", "c"), cardinalities=(1.0,))
