"""Tests for work-unit allocation schemes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.allocation import (
    ALLOCATION_SCHEMES,
    allocate,
    allocation_imbalance,
    chunked,
    equi_depth,
    round_robin,
)
from repro.parallel.workunits import WorkUnit
from repro.util.errors import ValidationError


def make_units(weights):
    return [
        WorkUnit(
            uid=i,
            algorithm="dpsize",
            size=4,
            outer_size=1,
            start=0,
            stop=1,
            weight=w,
        )
        for i, w in enumerate(weights)
    ]


def flatten(assignment):
    return sorted(u.uid for bucket in assignment for u in bucket)


@pytest.mark.parametrize("scheme", sorted(ALLOCATION_SCHEMES))
@pytest.mark.parametrize("threads", [1, 2, 3, 8])
def test_every_unit_assigned_exactly_once(scheme, threads):
    units = make_units([5, 1, 9, 2, 2, 7, 3, 3, 1, 10])
    assignment = allocate(units, threads, scheme)
    assert len(assignment) == threads
    assert flatten(assignment) == list(range(10))


def test_round_robin_layout():
    units = make_units([1, 1, 1, 1, 1])
    assignment = round_robin(units, 2)
    assert [u.uid for u in assignment[0]] == [0, 2, 4]
    assert [u.uid for u in assignment[1]] == [1, 3]


def test_chunked_layout():
    units = make_units([1] * 7)
    assignment = chunked(units, 3)
    assert [len(b) for b in assignment] == [3, 2, 2]
    assert [u.uid for u in assignment[0]] == [0, 1, 2]


def test_equi_depth_balances_skew():
    # One heavy unit and many light ones: LPT must isolate the heavy one.
    units = make_units([100, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10])
    assignment = equi_depth(units, 2)
    loads = [sum(u.weight for u in b) for b in assignment]
    assert allocation_imbalance(assignment) <= 1.05
    assert abs(loads[0] - loads[1]) <= 10


def test_equi_depth_beats_chunked_on_sorted_weights():
    weights = [2**i for i in range(10)]
    units = make_units(weights)
    assert allocation_imbalance(equi_depth(units, 4)) < allocation_imbalance(
        chunked(units, 4)
    )


def test_equi_depth_deterministic():
    units = make_units([4, 4, 4, 4, 7, 7])
    a = equi_depth(units, 3)
    b = equi_depth(units, 3)
    assert [[u.uid for u in bucket] for bucket in a] == [
        [u.uid for u in bucket] for bucket in b
    ]


def test_allocate_validation():
    units = make_units([1])
    with pytest.raises(ValidationError):
        allocate(units, 0)
    with pytest.raises(ValidationError):
        allocate(units, 2, "nope")


def test_imbalance_empty_and_perfect():
    assert allocation_imbalance([[], []]) == 1.0
    units = make_units([5, 5])
    assert allocation_imbalance(equi_depth(units, 2)) == 1.0


@settings(max_examples=50, deadline=None)
@given(
    weights=st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=40),
    threads=st.integers(min_value=1, max_value=8),
)
def test_property_schemes_cover_and_equidepth_wins(weights, threads):
    units = make_units(weights)
    for scheme in ALLOCATION_SCHEMES:
        assignment = allocate(units, threads, scheme)
        assert flatten(assignment) == list(range(len(units)))
    # LPT carries the classic bound: max load <= mean load + max weight.
    lpt = allocate(units, threads, "equi_depth")
    loads = [sum(u.weight for u in bucket) for bucket in lpt]
    mean = sum(weights) / threads
    assert max(loads) <= mean + max(weights) + 1e-9
