"""Query fingerprint stability and sensitivity."""

import pytest

from repro.config import OptimizerConfig
from repro.cost.model import CoutCostModel, StandardCostModel
from repro.query.joingraph import JoinGraph, Query
from repro.query.workload import WorkloadSpec, generate_query
from repro.service import (
    canonical_query_form,
    canonical_relation_order,
    fingerprint_query,
)


def permuted(query: Query, order) -> Query:
    """The same semantic query with relations renumbered by ``order``.

    ``order[k]`` is the original index that becomes new index ``k``.
    """
    position = {orig: k for k, orig in enumerate(order)}
    edges = [
        (position[e.u], position[e.v], e.selectivity)
        for e in query.graph.edges
    ]
    return Query(
        graph=JoinGraph(query.n, edges),
        relation_names=tuple(query.relation_names[i] for i in order),
        cardinalities=tuple(query.cardinalities[i] for i in order),
        label=query.label,
    )


@pytest.mark.parametrize("topology", ["star", "chain", "cycle", "clique"])
def test_stable_across_relation_permutations(topology):
    query = generate_query(WorkloadSpec(topology, 7, seed=3))
    base = fingerprint_query(query)
    reversed_q = permuted(query, list(reversed(range(query.n))))
    rotated_q = permuted(query, [(i + 3) % query.n for i in range(query.n)])
    assert fingerprint_query(reversed_q) == base
    assert fingerprint_query(rotated_q) == base


def test_deterministic_across_processes_inputs():
    query = generate_query(WorkloadSpec("star", 6, seed=9))
    clone = generate_query(WorkloadSpec("star", 6, seed=9))
    assert fingerprint_query(query) == fingerprint_query(clone)


def test_distinct_queries_distinct_keys():
    a = generate_query(WorkloadSpec("star", 7, seed=1))
    b = generate_query(WorkloadSpec("star", 7, seed=2))
    c = generate_query(WorkloadSpec("chain", 7, seed=1))
    keys = {fingerprint_query(q).key for q in (a, b, c)}
    assert len(keys) == 3


def test_parameterized_split_structure_vs_literals():
    graph = JoinGraph(3, [(0, 1, 0.1), (1, 2, 0.2)])
    names = ("t0", "t1", "t2")
    base = Query(graph=graph, relation_names=names,
                 cardinalities=(100.0, 200.0, 300.0))
    # Same shape and names, different literals (cardinalities).
    relit = Query(graph=graph, relation_names=names,
                  cardinalities=(100.0, 200.0, 999.0))
    fp_base, fp_relit = fingerprint_query(base), fingerprint_query(relit)
    assert fp_base.structure == fp_relit.structure
    assert fp_base.literals != fp_relit.literals
    assert fp_base.key != fp_relit.key
    # Different selectivity is a literal change too.
    resel = Query(
        graph=JoinGraph(3, [(0, 1, 0.1), (1, 2, 0.5)]),
        relation_names=names, cardinalities=(100.0, 200.0, 300.0),
    )
    fp_resel = fingerprint_query(resel)
    assert fp_resel.structure == fp_base.structure
    assert fp_resel.literals != fp_base.literals


def test_label_is_cosmetic():
    query = generate_query(WorkloadSpec("star", 6, seed=4))
    relabeled = Query(
        graph=query.graph,
        relation_names=query.relation_names,
        cardinalities=query.cardinalities,
        label="something-else",
    )
    assert fingerprint_query(relabeled) == fingerprint_query(query)


def test_config_changes_key():
    query = generate_query(WorkloadSpec("star", 6, seed=4))
    base = fingerprint_query(query, OptimizerConfig(algorithm="dpsize"))
    other_algo = fingerprint_query(query, OptimizerConfig(algorithm="dpsub"))
    cross = fingerprint_query(
        query, OptimizerConfig(algorithm="dpsize", cross_products=True)
    )
    assert base.key != other_algo.key
    assert base.key != cross.key
    # Structure/literal digests are config-independent.
    assert base.structure == other_algo.structure
    assert base.literals == other_algo.literals


def test_cost_model_changes_key():
    query = generate_query(WorkloadSpec("star", 6, seed=4))
    standard = fingerprint_query(
        query, OptimizerConfig(cost_model=StandardCostModel())
    )
    default = fingerprint_query(query, OptimizerConfig())
    cout = fingerprint_query(
        query, OptimizerConfig(cost_model=CoutCostModel())
    )
    # The default config resolves to a default StandardCostModel, whose
    # identity equals an explicitly passed default instance.
    assert standard.key == default.key
    assert cout.key != default.key


def test_service_knobs_do_not_change_key():
    query = generate_query(WorkloadSpec("star", 6, seed=4))
    plain = fingerprint_query(query, OptimizerConfig())
    sized = fingerprint_query(
        query,
        OptimizerConfig(cache_size=2, service_workers=8, cache_ttl=1.0,
                        request_timeout=5.0, fallback_algorithm="ikkbz"),
    )
    assert plain == sized


def test_canonical_order_separates_self_joins_by_neighbourhood():
    # Two relations share a name+cardinality descriptor but have different
    # join neighbourhoods; WL refinement must separate them so permuted
    # submissions still collide onto one key.
    def build(order):
        edges = {(0, 1): 0.1, (1, 2): 0.2, (2, 3): 0.3}
        names = ["t", "t", "t", "u"]
        cards = [100.0, 100.0, 100.0, 50.0]
        position = {orig: k for k, orig in enumerate(order)}
        remapped = [
            (position[u], position[v], sel) for (u, v), sel in edges.items()
        ]
        return Query(
            graph=JoinGraph(4, remapped),
            relation_names=tuple(names[i] for i in order),
            cardinalities=tuple(cards[i] for i in order),
        )

    base = build([0, 1, 2, 3])
    shuffled = build([2, 0, 3, 1])
    assert fingerprint_query(base) == fingerprint_query(shuffled)


def test_canonical_form_is_a_pure_function_of_the_query():
    query = generate_query(WorkloadSpec("grid", 8, seed=5))
    assert canonical_query_form(query) == canonical_query_form(query)
    order = canonical_relation_order(query)
    assert sorted(order) == list(range(query.n))
