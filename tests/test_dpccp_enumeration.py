"""Properties of the csg-cmp pair enumeration underlying DPccp."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumerate.dpccp import count_csg_cmp_pairs, enumerate_csg_cmp_pairs
from repro.query import (
    QueryContext,
    WorkloadSpec,
    generate_query,
)
from repro.util.bitsets import popcount, subsets_of_size, universe


def ctx_for(topology, n, seed=0):
    return QueryContext(generate_query(WorkloadSpec(topology, n, seed=seed)))


def reference_ccp_pairs(ctx):
    """Brute-force csg-cmp pairs: connected, disjoint, edge-connected."""
    n = ctx.n
    pairs = set()
    all_masks = [
        m
        for k in range(1, n)
        for m in subsets_of_size(universe(n), k)
        if ctx.is_connected(m)
    ]
    for s1 in all_masks:
        for s2 in all_masks:
            if s1 < s2 and not (s1 & s2) and ctx.connects(s1, s2):
                pairs.add((s1, s2))
    return pairs


@pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
@pytest.mark.parametrize("n", [2, 3, 5, 7])
def test_ccp_enumeration_exact(topology, n):
    if topology == "cycle" and n < 3:
        pytest.skip("cycle needs n >= 3")
    ctx = ctx_for(topology, n)
    emitted = list(enumerate_csg_cmp_pairs(ctx))
    normalized = [(min(a, b), max(a, b)) for a, b in emitted]
    assert len(normalized) == len(set(normalized)), "duplicate pair emitted"
    assert set(normalized) == reference_ccp_pairs(ctx)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=7),
    seed=st.integers(min_value=0, max_value=300),
)
def test_ccp_enumeration_random_graphs(n, seed):
    ctx = ctx_for("random", n, seed=seed)
    emitted = list(enumerate_csg_cmp_pairs(ctx))
    normalized = [(min(a, b), max(a, b)) for a, b in emitted]
    assert len(normalized) == len(set(normalized))
    assert set(normalized) == reference_ccp_pairs(ctx)


def test_ccp_pairs_are_valid():
    ctx = ctx_for("cycle", 6)
    for s1, s2 in enumerate_csg_cmp_pairs(ctx):
        assert s1 & s2 == 0
        assert ctx.is_connected(s1)
        assert ctx.is_connected(s2)
        assert ctx.connects(s1, s2)


def test_ccp_counts_chain():
    """Chains have a closed form: #ccp (unordered) = (n^3 - n) / 6."""
    for n in [2, 3, 4, 5, 8, 10]:
        ctx = ctx_for("chain", n)
        assert count_csg_cmp_pairs(ctx) == (n**3 - n) // 6


def test_ccp_counts_clique():
    """Cliques: every (S1, S2) disjoint non-empty pair is a ccp; unordered
    count = (3^n - 2^(n+1) + 1) / 2."""
    for n in [2, 3, 4, 5, 6]:
        ctx = ctx_for("clique", n)
        expected = (3**n - 2 ** (n + 1) + 1) // 2
        assert count_csg_cmp_pairs(ctx) == expected


def test_ccp_as_clique_flag():
    """as_clique=True must give the clique count regardless of topology."""
    ctx = ctx_for("chain", 5)
    expected = (3**5 - 2**6 + 1) // 2
    assert count_csg_cmp_pairs(ctx, as_clique=True) == expected


def test_ccp_result_sizes_cover_full_query():
    ctx = ctx_for("star", 5)
    full = universe(5)
    assert any(
        (s1 | s2) == full for s1, s2 in enumerate_csg_cmp_pairs(ctx)
    )
    # Every emitted union is connected.
    for s1, s2 in enumerate_csg_cmp_pairs(ctx):
        assert ctx.is_connected(s1 | s2)
        assert 2 <= popcount(s1 | s2) <= 5
