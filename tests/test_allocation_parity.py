"""Allocation × backend parity: work stealing is bit-identical to static.

The tentpole guarantee of the real-backend ``dynamic`` scheme: because
memo writes are idempotent, deterministically tie-broken min-merges, the
*order* in which workers pull units cannot change the final memo — so
dynamic allocation must produce bit-identical plans, costs, and memo
contents to ``equi_depth`` on the same query, on every backend, including
under injected worker crashes (WorkMeter exactness under re-dispatch).

Meter comparison notes: ``pairs_considered`` / ``pairs_valid`` /
``plans_emitted`` are order-independent and must match exactly across
allocation schemes and fault injection.  ``memo_inserts`` /
``memo_improvements`` depend on candidate application order (thread
interleaving, replica merge order) and ``latch_contended`` is
timing-dependent, so those are only compared where the execution is
deterministic (the simulated backend).
"""

from __future__ import annotations

import pytest

from repro import OptimizerConfig
from repro.parallel.scheduler import ParallelDP
from repro.plans import plan_signature
from repro.query.workload import WorkloadSpec, generate_query
from repro.trace import RecordingTracer

REAL_BACKENDS = ("threads", "processes")
ALL_BACKENDS = ("simulated",) + REAL_BACKENDS

#: Counters whose totals do not depend on execution order.
ORDER_INDEPENDENT = ("pairs_considered", "pairs_valid", "plans_emitted")


def query_for(topology="star", n=9, seed=13):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


def run(backend, allocation, algorithm="dpsva", query=None, threads=3,
        fault_plan=None, tracer=None):
    config = OptimizerConfig(
        algorithm=algorithm,
        threads=threads,
        backend=backend,
        allocation=allocation,
        fault_plan=fault_plan,
        tracer=tracer,
    )
    optimizer = ParallelDP(config=config)
    optimizer.keep_memo = True
    result = optimizer.optimize(query if query is not None else query_for())
    return result, optimizer.last_memo


def memo_snapshot(memo) -> dict:
    return {
        e.mask: (e.cost, e.rows, e.left, e.right, int(e.method))
        for e in memo.entries()
    }


@pytest.mark.parametrize("algorithm", ["dpsize", "dpsub", "dpsva"])
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_dynamic_bit_identical_to_equi_depth(backend, algorithm):
    query = query_for("star", 9, seed=13)
    static_r, static_memo = run(
        backend, "equi_depth", algorithm, query=query
    )
    dynamic_r, dynamic_memo = run(
        backend, "dynamic", algorithm, query=query
    )
    assert dynamic_r.cost == static_r.cost
    assert plan_signature(dynamic_r.plan) == plan_signature(static_r.plan)
    assert memo_snapshot(dynamic_memo) == memo_snapshot(static_memo)
    for counter in ORDER_INDEPENDENT:
        assert getattr(dynamic_r.meter, counter) == getattr(
            static_r.meter, counter
        ), counter


def test_dynamic_is_deterministic_on_simulated():
    # Execution order differs *between* schemes (so order-dependent
    # counters like memo_improvements may differ), but the simulated
    # backend is deterministic: repeated dynamic runs agree on the
    # entire meter, bit for bit.
    query = query_for("cycle", 8, seed=4)
    first, first_memo = run("simulated", "dynamic", query=query)
    second, second_memo = run("simulated", "dynamic", query=query)
    assert first.meter.as_dict() == second.meter.as_dict()
    assert memo_snapshot(first_memo) == memo_snapshot(second_memo)
    assert first.extras["realized_imbalances"] == (
        second.extras["realized_imbalances"]
    )


@pytest.mark.parametrize(
    "backend,fault_plan",
    [
        ("threads", "seed=5;worker:raise@worker=1,stratum=4,count=1"),
        ("threads", "seed=5;worker:raise@worker=0,count=2"),
        ("processes", "seed=5;worker:crash@worker=1,count=1"),
        ("processes", "seed=5;worker:raise@worker=2,stratum=3,count=1"),
    ],
)
def test_dynamic_exact_under_worker_faults(backend, fault_plan):
    """Crashed/raising workers hand their outstanding units back to the
    queue; the recovered run stays bit-identical with exact counters."""
    query = query_for("star", 8, seed=13)
    clean_r, clean_memo = run(backend, "equi_depth", query=query)
    faulty_r, faulty_memo = run(
        backend, "dynamic", query=query, fault_plan=fault_plan
    )
    assert faulty_r.cost == clean_r.cost
    assert plan_signature(faulty_r.plan) == plan_signature(clean_r.plan)
    assert memo_snapshot(faulty_memo) == memo_snapshot(clean_memo)
    # WorkMeter exactness under re-dispatch: every unit is counted by
    # exactly one successful attempt, so the order-independent totals
    # match the fault-free static run exactly.
    for counter in ORDER_INDEPENDENT:
        assert getattr(faulty_r.meter, counter) == getattr(
            clean_r.meter, counter
        ), counter
    assert faulty_r.extras["fault_recovery"]["redispatch_attempts"] > 0


@pytest.mark.parametrize("backend", REAL_BACKENDS)
def test_steal_counters_and_realized_load(backend):
    query = query_for("star", 8, seed=13)
    tracer = RecordingTracer()
    result, _ = run(backend, "dynamic", query=query, tracer=tracer)
    steals = [
        e for e in tracer.events
        if e.kind == "counter" and e.name == "alloc.steal"
    ]
    dispatches = [
        e for e in tracer.events
        if e.kind == "counter" and e.name == "alloc.dispatch"
    ]
    loads = [
        e for e in tracer.events
        if e.kind == "gauge" and e.name == "worker.realized_load"
    ]
    assert sum(e.value for e in steals) > 0
    # Every unit of every stratum was dispatched exactly once.
    assert sum(e.value for e in dispatches) == sum(
        result.extras["unit_counts"]
    )
    assert loads and all(e.value >= 0 for e in loads)
    # Dynamic strata report no planned imbalance but do report realized.
    assert all(x is None for x in result.extras["allocation_imbalances"])
    realized = result.extras["realized_imbalances"]
    assert len(realized) == len(result.extras["allocation_imbalances"])
    assert all(x >= 1.0 for x in realized)


@pytest.mark.parametrize("backend", REAL_BACKENDS)
def test_static_schemes_emit_no_steals(backend):
    tracer = RecordingTracer()
    run(backend, "equi_depth", query=query_for("chain", 7), tracer=tracer)
    assert not [
        e for e in tracer.events
        if e.kind == "counter" and e.name in ("alloc.steal", "alloc.dispatch")
    ]
