"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_optimize_default(capsys):
    code, out, _ = run_cli(
        capsys, "optimize", "--topology", "star", "-n", "7", "--seed", "1"
    )
    assert code == 0
    assert "dpsva" in out
    assert "cost=" in out


def test_optimize_parallel_with_report(capsys):
    code, out, _ = run_cli(
        capsys,
        "optimize", "--topology", "cycle", "-n", "7",
        "--threads", "4", "--allocation", "round_robin",
    )
    assert code == 0
    assert "x4" in out  # sim report summary
    assert "imbalance" in out


def test_optimize_explain(capsys):
    code, out, _ = run_cli(
        capsys, "optimize", "-n", "5", "--explain", "--algorithm", "dpccp"
    )
    assert code == 0
    assert "Scan" in out
    assert "join" in out


def test_optimize_sql_mode(capsys):
    code, out, _ = run_cli(
        capsys,
        "optimize",
        "--sql",
        "SELECT * FROM t0 a, t1 b WHERE a.c0 = b.c1",
        "--catalog-tables", "4",
    )
    assert code == 0
    assert "cost=" in out


def test_optimize_heuristic(capsys):
    code, out, _ = run_cli(
        capsys, "optimize", "-n", "6", "--algorithm", "goo"
    )
    assert code == 0
    assert "goo" in out


def test_bench_serial(capsys):
    code, out, _ = run_cli(
        capsys, "bench", "--experiment", "serial",
        "--topology", "chain", "-n", "6", "--queries", "1",
    )
    assert code == 0
    assert "dpsize" in out
    assert "dpccp" in out


def test_bench_speedup(capsys):
    code, out, _ = run_cli(
        capsys, "bench", "--experiment", "speedup",
        "--topology", "star", "-n", "7",
        "--threads", "1", "2", "--queries", "1",
    )
    assert code == 0
    assert "speedup" in out
    assert "#" in out  # the rendered curve


def test_bench_sva_and_allocation(capsys):
    code, out, _ = run_cli(
        capsys, "bench", "--experiment", "sva",
        "--topology", "star", "-n", "7", "--queries", "1",
    )
    assert code == 0
    assert "skip_ratio" in out
    code, out, _ = run_cli(
        capsys, "bench", "--experiment", "allocation",
        "--topology", "star", "-n", "7",
        "--threads", "4", "--queries", "1",
    )
    assert code == 0
    assert "equi_depth" in out


def test_inspect(capsys):
    code, out, _ = run_cli(capsys, "inspect", "--topology", "cycle", "-n", "6")
    assert code == 0
    assert "csg-cmp pairs" in out
    assert "connected quantifier sets" in out


def test_error_reporting(capsys):
    code, _, err = run_cli(
        capsys, "optimize", "--sql", "SELECT * FROM nope"
    )
    assert code == 1
    assert "error:" in err


def test_bad_arguments_exit():
    with pytest.raises(SystemExit):
        main(["optimize", "--topology", "pentagram"])


def test_optimize_with_cache_and_repeat(capsys):
    code, out, _ = run_cli(
        capsys,
        "optimize", "--topology", "star", "-n", "7",
        "--algorithm", "dpsize", "--cache", "--repeat", "3",
    )
    assert code == 0
    assert "source=miss" in out
    assert out.count("source=hit") == 2
    assert "plan cache: hits=2 misses=1" in out
    assert "cost=" in out


def test_serve_batch(capsys):
    code, out, _ = run_cli(
        capsys,
        "serve-batch", "--topology", "star", "-n", "7",
        "--queries", "2", "--repeat", "3", "--algorithm", "dpsize",
    )
    assert code == 0
    assert "requests=6" in out
    assert "throughput:" in out
    assert "plan cache:" in out
    assert "sources:" in out


def test_serve_batch_trace_renders_cache_tiers(capsys, tmp_path):
    path = tmp_path / "serve.jsonl"
    code, out, _ = run_cli(
        capsys,
        "serve-batch", "--topology", "star", "-n", "7",
        "--queries", "2", "--repeat", "2", "--algorithm", "dpsize",
        "--trace", str(path),
    )
    assert code == 0
    assert path.exists()
    assert "per-cache-tier:" in out
    assert "fingerprint" in out
    # And the saved file renders the same table back.
    code, out, _ = run_cli(capsys, "trace", str(path))
    assert code == 0
    assert "per-cache-tier:" in out


def test_bench_cache_experiment(capsys):
    code, out, _ = run_cli(
        capsys,
        "bench", "--experiment", "cache", "--topology", "star", "-n", "7",
        "--queries", "2",
    )
    assert code == 0
    assert "hit_speedup" in out
    assert "hit_rate" in out


def test_optimize_hybrid(capsys):
    code, out, _ = run_cli(
        capsys,
        "optimize", "--algorithm", "hybrid", "--topology", "star",
        "-n", "30", "--seed", "2",
    )
    assert code == 0
    assert "hybrid" in out
    assert "cost=" in out


def test_optimize_hybrid_knobs(capsys):
    code, out, _ = run_cli(
        capsys,
        "optimize", "--algorithm", "hybrid", "--topology", "grid",
        "-n", "20", "--core-cap", "6", "--density-threshold", "0.4",
        "--hybrid-dp", "dpsub",
    )
    assert code == 0
    assert "hybrid" in out


def test_optimize_hybrid_with_threads(capsys):
    # Hybrid accepts the parallel knobs: its DP cores run on the
    # configured substrate.
    code, out, _ = run_cli(
        capsys,
        "optimize", "--algorithm", "hybrid", "--topology", "star",
        "-n", "20", "--threads", "2",
    )
    assert code == 0
    assert "hybrid" in out


def test_heuristic_with_threads_names_the_flag(capsys):
    code, _, err = run_cli(
        capsys, "optimize", "--algorithm", "goo", "--threads", "4"
    )
    assert code == 1
    assert "--threads" in err
    assert "goo" in err
    assert "hybrid" in err  # the suggested valid combinations


def test_heuristic_with_backend_names_the_flag(capsys):
    code, _, err = run_cli(
        capsys,
        "optimize", "--algorithm", "ikkbz", "--backend", "threads",
    )
    assert code == 1
    assert "--backend" in err


def test_heuristic_with_allocation_names_the_flag(capsys):
    code, _, err = run_cli(
        capsys,
        "optimize", "--algorithm", "simulated_annealing",
        "--allocation", "dynamic",
    )
    assert code == 1
    assert "--allocation" in err
    assert "simulated_annealing" in err


def test_hybrid_knob_on_serial_algorithm_names_the_flag(capsys):
    code, _, err = run_cli(
        capsys,
        "optimize", "--algorithm", "dpsize", "--core-cap", "8",
    )
    assert code == 1
    assert "--core-cap" in err
    assert "hybrid" in err


def test_bench_large_query(capsys):
    code, out, _ = run_cli(
        capsys,
        "bench", "--experiment", "large-query", "--topology", "chain",
        "-n", "20", "--queries", "1",
    )
    assert code == 0
    assert "vs_goo" in out
