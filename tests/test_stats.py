"""Tests for histograms and statistics collection."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import generate_database
from repro.engine.tables import Database, DataTable
from repro.query import JoinGraph, Query
from repro.stats import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    collect_column_stats,
    join_selectivity_from_histograms,
    refresh_catalog,
)
from repro.util.errors import ValidationError

HISTS = [EquiWidthHistogram, EquiDepthHistogram]


@pytest.mark.parametrize("cls", HISTS)
def test_empty_histogram(cls):
    hist = cls.build([], buckets=4)
    assert len(hist) == 0
    assert hist.total_rows == 0
    assert hist.estimate_eq(5) == 0.0
    assert hist.estimate_range(0, 10) == 0.0


@pytest.mark.parametrize("cls", HISTS)
def test_single_value_column(cls):
    hist = cls.build([7] * 100, buckets=4)
    assert hist.total_rows == 100
    assert hist.distinct_count == 1
    assert hist.estimate_eq(7) == pytest.approx(1.0)
    assert hist.estimate_range(0, 100) == pytest.approx(1.0)
    assert hist.estimate_eq(8) == 0.0


@pytest.mark.parametrize("cls", HISTS)
def test_row_counts_partition(cls):
    rng = random.Random(1)
    values = [rng.randint(0, 50) for _ in range(500)]
    hist = cls.build(values, buckets=8)
    assert sum(b.rows for b in hist.buckets) == 500
    # Buckets cover the full value range in order.
    assert hist.buckets[0].lo == min(values)
    assert hist.buckets[-1].hi == max(values)
    for a, b in zip(hist.buckets, hist.buckets[1:]):
        assert a.hi <= b.lo or a.hi <= b.hi  # non-decreasing layout


@pytest.mark.parametrize("cls", HISTS)
def test_uniform_eq_estimates(cls):
    """On uniform data the equality estimate tracks the true frequency."""
    rng = random.Random(2)
    values = [rng.randrange(100) for _ in range(5000)]
    hist = cls.build(values, buckets=10)
    counts = Counter(values)
    for probe in (5, 37, 68, 99):
        true_frac = counts[probe] / len(values)
        est = hist.estimate_eq(probe)
        assert est == pytest.approx(true_frac, abs=0.01)


@pytest.mark.parametrize("cls", HISTS)
def test_range_estimates_uniform(cls):
    rng = random.Random(3)
    values = [rng.random() * 100 for _ in range(4000)]
    hist = cls.build(values, buckets=16)
    true_frac = sum(1 for v in values if 20 <= v <= 40) / len(values)
    assert hist.estimate_range(20, 40) == pytest.approx(true_frac, abs=0.05)
    assert hist.estimate_range(40, 20) == 0.0
    assert hist.estimate_range(-10, 200) == pytest.approx(1.0, abs=1e-9)


def test_equidepth_handles_skew_better():
    """Skewed data: equi-depth equality estimates beat equi-width on the
    heavy value's frequency."""
    values = [0] * 5000 + list(range(1, 101))
    ew = EquiWidthHistogram.build(values, buckets=8)
    ed = EquiDepthHistogram.build(values, buckets=8)
    true_frac = 5000 / len(values)
    err_ew = abs(ew.estimate_eq(0) - true_frac)
    err_ed = abs(ed.estimate_eq(0) - true_frac)
    assert err_ed <= err_ew + 1e-9


def test_equidepth_never_splits_value_runs():
    values = [1] * 30 + [2] * 30 + [3] * 40
    hist = EquiDepthHistogram.build(values, buckets=5)
    for bucket in hist.buckets:
        if bucket.lo == bucket.hi:
            continue
    # Each distinct value's rows live in exactly one bucket.
    for probe, count in ((1, 30), (2, 30), (3, 40)):
        assert hist.estimate_eq(probe) * hist.total_rows == pytest.approx(
            count
        )


def test_histogram_validation():
    with pytest.raises(ValidationError):
        EquiWidthHistogram.build([1, 2], buckets=0)
    with pytest.raises(ValidationError):
        EquiDepthHistogram.build([1, 2], buckets=0)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(min_value=-50, max_value=50), max_size=300),
    buckets=st.integers(min_value=1, max_value=12),
    cls_index=st.integers(min_value=0, max_value=1),
)
def test_property_histogram_sanity(values, buckets, cls_index):
    hist = HISTS[cls_index].build(values, buckets=buckets)
    assert sum(b.rows for b in hist.buckets) == len(values)
    assert 0 <= hist.distinct_count <= max(1, len(values))
    if values:
        assert hist.estimate_range(min(values), max(values)) == pytest.approx(
            1.0, abs=1e-6
        )
    for probe in set(values[:5]):
        assert 0.0 <= hist.estimate_eq(probe) <= 1.0


def test_join_selectivity_uniform_domains():
    """Two uniform columns over the same domain: estimate ~ 1/domain."""
    rng = random.Random(4)
    a = EquiDepthHistogram.build(
        [rng.randrange(50) for _ in range(3000)], buckets=10
    )
    b = EquiDepthHistogram.build(
        [rng.randrange(50) for _ in range(2000)], buckets=10
    )
    est = join_selectivity_from_histograms(a, b)
    assert est == pytest.approx(1 / 50, rel=0.5)


def test_join_selectivity_disjoint_domains():
    a = EquiDepthHistogram.build(list(range(0, 100)), buckets=8)
    b = EquiDepthHistogram.build(list(range(500, 600)), buckets=8)
    assert join_selectivity_from_histograms(a, b) == 0.0


def test_join_selectivity_empty():
    empty = EquiDepthHistogram.build([], buckets=4)
    full = EquiDepthHistogram.build([1, 2, 3], buckets=2)
    assert join_selectivity_from_histograms(empty, full) == 0.0


def test_collect_column_stats():
    table = DataTable("t", ["a", "b"], [(i, i % 3) for i in range(60)])
    stats = collect_column_stats(table, buckets=4)
    assert set(stats) == {"a", "b"}
    assert stats["a"].total_rows == 60
    assert stats["b"].distinct_count == 3


def test_refresh_catalog_measures_reality():
    """ANALYZE on generated data reproduces the declared statistics to
    within sampling noise."""
    g = JoinGraph(3, [(0, 1, 0.02), (1, 2, 0.05)])
    query = Query(
        graph=g,
        relation_names=("a", "b", "c"),
        cardinalities=(400.0, 300.0, 200.0),
    )
    db = generate_database(query, seed=5, max_rows=500)
    catalog, histograms = refresh_catalog(db)
    assert catalog.table("a").cardinality == 400
    assert catalog.table("b").cardinality == 300
    # Join selectivity measured from histograms tracks the declared one.
    est = join_selectivity_from_histograms(
        histograms["a"]["k0"], histograms["b"]["k0"]
    )
    assert est == pytest.approx(0.02, rel=0.6)
    # The measured estimate also tracks the *true* join size.
    true_matches = 0
    a_keys = Counter(r[1] for r in db.table("a").rows)
    for row in db.table("b").rows:
        true_matches += a_keys.get(row[1], 0)
    true_sel = true_matches / (len(db.table("a")) * len(db.table("b")))
    assert est == pytest.approx(true_sel, rel=0.6)


def test_refresh_catalog_empty_table_guard():
    db = Database()
    db.add(DataTable("empty", ["a"], []))
    catalog, _ = refresh_catalog(db)
    assert catalog.table("empty").cardinality == 1  # clamped
