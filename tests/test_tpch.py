"""Tests for the TPC-H-style synthetic catalog (repro.catalog.tpch)."""

from __future__ import annotations

import pytest

from repro.catalog.tpch import (
    FK_EDGES,
    TABLE_NAMES,
    adjacent_tables,
    filter_columns,
    join_predicate,
    tpch_catalog,
)
from repro.sql import sql_to_query
from repro.util.errors import ValidationError


def test_catalog_has_all_eight_tables():
    cat = tpch_catalog()
    for name in TABLE_NAMES:
        assert cat.table(name).cardinality > 0
    assert len(TABLE_NAMES) == 8


def test_scaling_tracks_sf1_except_fixed_tables():
    cat = tpch_catalog(scale=0.01)
    assert cat.table("region").cardinality == 5      # fixed size
    assert cat.table("nation").cardinality == 25     # fixed size
    assert cat.table("orders").cardinality == 15_000
    assert cat.table("lineitem").cardinality == 60_000
    bigger = tpch_catalog(scale=0.1)
    assert bigger.table("orders").cardinality == 150_000
    assert bigger.table("region").cardinality == 5


def test_fk_columns_take_referenced_distinct_counts():
    cat = tpch_catalog(scale=0.01)
    # lineitem.orderkey references orders: its distinct count is the
    # orders cardinality, giving the System-R selectivity 1/|orders|.
    li = cat.table("lineitem")
    orderkey = next(c for c in li.columns if c.name == "orderkey")
    assert orderkey.distinct_count == cat.table("orders").cardinality
    ps = cat.table("partsupp")
    partkey = next(c for c in ps.columns if c.name == "partkey")
    assert partkey.distinct_count == cat.table("part").cardinality


def test_join_predicates_follow_fk_edges():
    assert join_predicate("customer", "nation") == ("nationkey", "nationkey")
    assert join_predicate("nation", "customer") == ("nationkey", "nationkey")
    assert join_predicate("orders", "lineitem") == ("orderkey", "orderkey")
    assert join_predicate("region", "lineitem") is None
    for (table, _column), (ref, _ref_column) in FK_EDGES.items():
        assert ref in adjacent_tables(table)
        assert table in adjacent_tables(ref)


def test_fk_graph_is_connected():
    seen = {"lineitem"}
    frontier = ["lineitem"]
    while frontier:
        nxt = frontier.pop()
        for other in adjacent_tables(nxt):
            if other not in seen:
                seen.add(other)
                frontier.append(other)
    assert seen == set(TABLE_NAMES)


def test_filter_columns_exclude_keys():
    for table in TABLE_NAMES:
        for column in filter_columns(table):
            assert not column.endswith("key")
    assert "mktsegment" in filter_columns("customer")


def test_catalog_binds_a_tpch_join():
    cat = tpch_catalog(scale=0.01)
    query = sql_to_query(
        "SELECT * FROM customer c, orders o, lineitem l "
        "WHERE c.custkey = o.custkey AND o.orderkey = l.orderkey "
        "AND c.mktsegment = 1",
        cat,
    )
    assert query.n == 3
    # customer filtered by mktsegment (5 distinct): 1500/5.
    assert query.cardinalities[0] == pytest.approx(300.0)
    sel = {
        tuple(sorted((e.u, e.v))): e.selectivity
        for e in query.graph.edges
    }
    assert sel[(0, 1)] == pytest.approx(1 / 1_500)   # 1/|customer|
    assert sel[(1, 2)] == pytest.approx(1 / 15_000)  # 1/|orders|


def test_scale_validation():
    with pytest.raises(ValidationError):
        tpch_catalog(scale=0)
    with pytest.raises(ValidationError):
        tpch_catalog(scale=-1)
