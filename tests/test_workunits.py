"""Tests for work-unit generation."""

from __future__ import annotations

import math

import pytest

from repro.cost import StandardCostModel
from repro.memo import Memo, WorkMeter
from repro.parallel.workunits import (
    KernelCaches,
    WorkUnit,
    run_unit,
    stratum_units,
)
from repro.enumerate import DPsize
from repro.query import QueryContext, WorkloadSpec, generate_query
from repro.util.errors import ValidationError


def prepared_memo(topology="star", n=7, seed=0, upto=None):
    """Memo with strata populated up to ``upto`` (exclusive) via DPsize."""
    query = generate_query(WorkloadSpec(topology, n, seed=seed))
    ctx = QueryContext(query)
    memo = Memo(ctx, StandardCostModel())
    memo.init_scans()
    # Populate lower strata so unit generation sees realistic lists.
    from repro.enumerate.kernels import dpsize_pair_kernel

    upto = upto or n
    for size in range(2, upto):
        for outer_size in range(1, size):
            outer = memo.sets_of_size(outer_size)
            inner = memo.sets_of_size(size - outer_size)
            dpsize_pair_kernel(
                memo, ctx, outer, inner, 0, len(outer), True, memo.meter
            )
    return query, ctx, memo


@pytest.mark.parametrize("algorithm", ["dpsize", "dpsva"])
def test_pair_units_cover_outer_ranges(algorithm):
    _, ctx, memo = prepared_memo(upto=5)
    caches = KernelCaches(memo, WorkMeter())
    units = stratum_units(algorithm, memo, ctx, caches, 5, threads=3)
    # Group by outer size; slices must tile [0, len(outer_sets)).
    by_split: dict[int, list[WorkUnit]] = {}
    for u in units:
        assert u.algorithm == algorithm
        assert u.size == 5
        by_split.setdefault(u.outer_size, []).append(u)
    for outer_size in range(1, 5):
        expected_len = len(memo.sets_of_size(outer_size))
        slices = sorted(by_split[outer_size], key=lambda u: u.start)
        assert slices[0].start == 0
        assert slices[-1].stop == expected_len
        for a, b in zip(slices, slices[1:]):
            assert a.stop == b.start
        inner_count = len(memo.sets_of_size(5 - outer_size))
        for u in slices:
            assert u.weight == (u.stop - u.start) * inner_count


def test_dpsub_units_cover_subset_stratum():
    _, ctx, memo = prepared_memo(upto=4)
    caches = KernelCaches(memo, WorkMeter())
    units = stratum_units("dpsub", memo, ctx, caches, 4, threads=4)
    total = math.comb(7, 4)
    slices = sorted(units, key=lambda u: u.start)
    assert slices[0].start == 0
    assert slices[-1].stop == total
    for a, b in zip(slices, slices[1:]):
        assert a.stop == b.start
    for u in slices:
        assert u.weight == (u.stop - u.start) * (2**4 - 2)
        assert u.outer_size == 0


def test_unit_ids_unique_and_dense():
    _, ctx, memo = prepared_memo(upto=4)
    caches = KernelCaches(memo, WorkMeter())
    units = stratum_units("dpsize", memo, ctx, caches, 4, threads=2)
    assert sorted(u.uid for u in units) == list(range(len(units)))


def test_oversubscription_increases_granularity():
    _, ctx, memo = prepared_memo(upto=4)
    caches = KernelCaches(memo, WorkMeter())
    coarse = stratum_units("dpsize", memo, ctx, caches, 4, 2, oversubscription=1)
    fine = stratum_units("dpsize", memo, ctx, caches, 4, 2, oversubscription=8)
    assert len(fine) >= len(coarse)


def test_stratum_units_validation():
    _, ctx, memo = prepared_memo(upto=3)
    caches = KernelCaches(memo, WorkMeter())
    with pytest.raises(ValidationError):
        stratum_units("nope", memo, ctx, caches, 3, 2)
    with pytest.raises(ValidationError):
        stratum_units("dpsize", memo, ctx, caches, 3, 2, oversubscription=0)


def test_running_all_units_equals_serial_stratum():
    """Executing every unit of a stratum reproduces the serial stratum."""
    query, ctx, memo = prepared_memo(topology="cycle", n=6, upto=4)
    caches = KernelCaches(memo, WorkMeter())
    units = stratum_units("dpsize", memo, ctx, caches, 4, threads=3)
    meter = WorkMeter()
    for unit in units:
        run_unit(unit, memo, ctx, caches, True, meter)
    # Compare against a fully serial DPsize run of the same query.
    serial = DPsize().optimize(query)
    serial_memo_masks = set()
    # Recompute serial strata to compare the size-4 stratum contents.
    from repro.cost import CardinalityEstimator

    ctx2 = QueryContext(query)
    memo2 = Memo(ctx2, StandardCostModel())
    memo2.init_scans()
    from repro.enumerate.kernels import dpsize_pair_kernel

    for size in range(2, 5):
        for outer_size in range(1, size):
            outer = memo2.sets_of_size(outer_size)
            inner = memo2.sets_of_size(size - outer_size)
            dpsize_pair_kernel(
                memo2, ctx2, outer, inner, 0, len(outer), True, memo2.meter
            )
    assert memo.sets_of_size(4) == memo2.sets_of_size(4)
    for mask in memo.sets_of_size(4):
        a, b = memo.entry(mask), memo2.entry(mask)
        assert a.cost == b.cost
        assert a.key() == b.key()
    assert serial.cost > 0  # serial run sanity
