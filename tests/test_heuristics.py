"""Tests for the heuristic optimizers."""

from __future__ import annotations

import itertools

import pytest

from repro.cost import CardinalityEstimator, CoutCostModel, StandardCostModel
from repro.enumerate import DPsize
from repro.heuristics import GOO, IKKBZ, IteratedImprovement, SimulatedAnnealing
from repro.heuristics.common import (
    left_deep_cost,
    left_deep_plan,
    order_is_connected,
)
from repro.plans import validate_plan
from repro.query import QueryContext, WorkloadSpec, generate_query
from repro.util.errors import OptimizationError, ValidationError


def query_for(topology, n, seed=0):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


def best_left_deep_connected(ctx, cost_model):
    """Brute-force cheapest cross-product-free left-deep order."""
    est = CardinalityEstimator(ctx)
    best = float("inf")
    for order in itertools.permutations(range(ctx.n)):
        if not order_is_connected(ctx, order):
            continue
        best = min(best, left_deep_cost(ctx, est, cost_model, list(order)))
    return best


# ---------------------------------------------------------------------------
# common helpers
# ---------------------------------------------------------------------------


def test_left_deep_cost_matches_plan_cost():
    from repro.cost import plan_cost

    query = query_for("random", 6, seed=1)
    ctx = QueryContext(query)
    est = CardinalityEstimator(ctx)
    model = StandardCostModel()
    order = [3, 1, 0, 5, 2, 4]
    plan = left_deep_plan(ctx, est, model, order)
    assert plan.is_left_deep()
    assert left_deep_cost(ctx, est, model, order) == pytest.approx(
        plan_cost(plan, est, model)
    )


def test_order_is_connected():
    query = query_for("chain", 4, seed=0)
    ctx = QueryContext(query)
    assert order_is_connected(ctx, [0, 1, 2, 3])
    assert order_is_connected(ctx, [1, 2, 3, 0])
    assert not order_is_connected(ctx, [0, 2, 1, 3])


# ---------------------------------------------------------------------------
# GOO
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("topology", ["chain", "star", "cycle", "clique"])
def test_goo_produces_valid_plans(topology):
    query = query_for(topology, 8, seed=2)
    result = GOO().optimize(query)
    ctx = QueryContext(query)
    validate_plan(result.plan, ctx, require_connected=True)
    assert result.cost > 0


def test_goo_never_beats_dp():
    for seed in range(5):
        query = query_for("random", 7, seed=seed)
        dp = DPsize().optimize(query)
        goo = GOO().optimize(query)
        assert goo.cost >= dp.cost - 1e-9


def test_goo_disconnected_needs_cross_products():
    from repro.query import JoinGraph, Query

    g = JoinGraph(4, [(0, 1, 0.1), (2, 3, 0.1)])
    q = Query(
        graph=g,
        relation_names=("a", "b", "c", "d"),
        cardinalities=(10.0, 10.0, 10.0, 10.0),
    )
    with pytest.raises(ValidationError):
        GOO().optimize(q)
    result = GOO(cross_products=True).optimize(q)
    assert result.plan.size == 4


# ---------------------------------------------------------------------------
# IKKBZ
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("topology", ["chain", "star"])
@pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
def test_ikkbz_optimal_on_trees_under_cout(topology, n):
    """IKKBZ must equal the brute-force best connected left-deep order
    under C_out (its ASI cost function)."""
    query = query_for(topology, n, seed=n)
    ctx = QueryContext(query)
    result = IKKBZ().optimize(query, cost_model=CoutCostModel())
    reference = best_left_deep_connected(ctx, CoutCostModel())
    assert result.cost == pytest.approx(reference, rel=1e-9)


def test_ikkbz_optimal_on_random_trees():
    for seed in range(8):
        query = query_for("chain", 6, seed=100 + seed)
        ctx = QueryContext(query)
        result = IKKBZ().optimize(query, cost_model=CoutCostModel())
        assert result.cost == pytest.approx(
            best_left_deep_connected(ctx, CoutCostModel()), rel=1e-9
        )


def test_ikkbz_plan_is_left_deep_and_valid():
    query = query_for("star", 8, seed=3)
    result = IKKBZ().optimize(query)
    assert result.plan.is_left_deep()
    validate_plan(result.plan, QueryContext(query), require_connected=True)
    assert not result.extras["used_spanning_tree"]


def test_ikkbz_on_cycles_spanning_tree():
    query = query_for("clique", 7, seed=4)
    result = IKKBZ().optimize(query)
    assert result.extras["used_spanning_tree"]
    validate_plan(result.plan, QueryContext(query))
    with pytest.raises(ValidationError):
        IKKBZ(on_cycles="error").optimize(query)


def test_ikkbz_validation():
    with pytest.raises(ValidationError):
        IKKBZ(on_cycles="maybe")


# ---------------------------------------------------------------------------
# randomized search
# ---------------------------------------------------------------------------


def test_ii_deterministic_per_seed():
    query = query_for("star", 7, seed=5)
    a = IteratedImprovement(seed=42).optimize(query)
    b = IteratedImprovement(seed=42).optimize(query)
    assert a.cost == b.cost
    assert a.extras["order"] == b.extras["order"]


def test_ii_finds_optimum_on_tiny_query():
    query = query_for("chain", 4, seed=6)
    dp = DPsize(cross_products=True).optimize(query)
    ii = IteratedImprovement(restarts=10, max_moves=200, seed=1).optimize(query)
    # Left-deep optimum may exceed the bushy optimum, but never beat it.
    assert ii.cost >= dp.cost - 1e-9
    # For 4 relations II should land on the best left-deep order.
    ctx = QueryContext(query)
    est = CardinalityEstimator(ctx)
    best = min(
        left_deep_cost(ctx, est, StandardCostModel(), list(p))
        for p in itertools.permutations(range(4))
    )
    assert ii.cost == pytest.approx(best, rel=1e-9)


def test_sa_deterministic_and_valid():
    query = query_for("cycle", 7, seed=7)
    a = SimulatedAnnealing(seed=9).optimize(query)
    b = SimulatedAnnealing(seed=9).optimize(query)
    assert a.cost == b.cost
    validate_plan(a.plan, QueryContext(query))


def test_sa_never_beats_dp_cross():
    query = query_for("random", 6, seed=8)
    dp = DPsize(cross_products=True).optimize(query)
    sa = SimulatedAnnealing(seed=3).optimize(query)
    assert sa.cost >= dp.cost - 1e-9


def test_local_search_validation():
    with pytest.raises(ValidationError):
        IteratedImprovement(restarts=0)
    with pytest.raises(ValidationError):
        SimulatedAnnealing(cooling=1.5)
    with pytest.raises(ValidationError):
        SimulatedAnnealing(moves_per_round=0)


def test_heuristic_meters_count_work():
    query = query_for("star", 6, seed=9)
    goo = GOO().optimize(query)
    assert goo.meter.pairs_considered > 0
    ii = IteratedImprovement(restarts=2, max_moves=10).optimize(query)
    assert ii.meter.plans_emitted > 0
