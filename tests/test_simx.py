"""Unit tests for the simulated-multicore substrate."""

from __future__ import annotations

import pytest

from repro.memo import WorkMeter
from repro.simx import SimCostParams, SimReport, SimulatedMachine, StratumTiming
from repro.simx.contention import contention_penalties
from repro.util.errors import ValidationError


def meter_with(**counts):
    m = WorkMeter()
    for k, v in counts.items():
        setattr(m, k, v)
    return m


def test_work_time_weighted_sum():
    params = SimCostParams()
    m = meter_with(pairs_considered=10, plans_emitted=3, pairs_valid=2)
    expected = (
        10 * params.pair_check + 3 * params.emit + 2 * params.latch
    )
    assert params.work_time(m) == pytest.approx(expected)


def test_work_time_empty_meter_is_zero():
    assert SimCostParams().work_time(WorkMeter()) == 0.0


def test_barrier_cost():
    params = SimCostParams(barrier_base=100.0, barrier_per_thread=10.0)
    assert params.barrier_cost(1) == 0.0
    assert params.barrier_cost(4) == 140.0


def test_params_validation_and_dict():
    with pytest.raises(ValidationError):
        SimCostParams(pair_check=-1.0)
    d = SimCostParams().as_dict()
    assert "barrier_base" in d
    assert all(v >= 0 for v in d.values())


def test_contention_no_overlap():
    params = SimCostParams(latch_conflict=10.0)
    touches = [{1: 3, 2: 1}, {3: 2}, {}]
    penalties, conflicts = contention_penalties(touches, params)
    assert penalties == [0.0, 0.0, 0.0]
    assert conflicts == 0


def test_contention_shared_entries():
    params = SimCostParams(latch_conflict=10.0)
    touches = [{1: 3, 2: 1}, {1: 2}, {1: 1, 5: 4}]
    penalties, conflicts = contention_penalties(touches, params)
    # Entry 1 has 3 writers: each pays (3-1)*10.
    assert penalties == [20.0, 20.0, 20.0]
    assert conflicts == 2


def test_machine_records_strata():
    machine = SimulatedMachine(2, SimCostParams(barrier_base=50.0, barrier_per_thread=0.0, spawn_per_thread=100.0))
    machine.label("dpsva", "equi_depth")
    timing = machine.record_stratum(2, 3, [10.0, 30.0], [{}, {}])
    assert timing.wall_time == 30.0 + 50.0
    assert timing.busy_total == 40.0
    assert machine.report.spawn_cost == 200.0
    assert machine.report.algorithm == "dpsva"


def test_machine_validation():
    with pytest.raises(ValidationError):
        SimulatedMachine(0)
    machine = SimulatedMachine(2)
    with pytest.raises(ValidationError):
        machine.record_stratum(2, 1, [1.0], [{}])


def test_machine_single_thread_no_spawn():
    machine = SimulatedMachine(1)
    assert machine.report.spawn_cost == 0.0


def test_stratum_timing_properties():
    t = StratumTiming(
        size=3,
        unit_count=4,
        busy=[10.0, 20.0],
        contention=[5.0, 0.0],
        barrier_cost=7.0,
        conflicts=1,
    )
    assert t.thread_times == [15.0, 20.0]
    assert t.wall_time == 27.0
    assert t.imbalance == pytest.approx(20.0 / 17.5)


def test_stratum_timing_empty():
    t = StratumTiming(
        size=2, unit_count=0, busy=[0.0], contention=[0.0],
        barrier_cost=0.0, conflicts=0,
    )
    assert t.imbalance == 1.0
    assert t.wall_time == 0.0


def test_report_aggregates():
    report = SimReport(threads=2, algorithm="dpsize", allocation="chunked")
    report.spawn_cost = 10.0
    report.master_cost = 5.0
    report.strata.append(
        StratumTiming(
            size=2, unit_count=1, busy=[8.0, 2.0], contention=[0.0, 1.0],
            barrier_cost=3.0, conflicts=1,
        )
    )
    # thread times = [8+0, 2+1] -> wall = 8 + barrier 3 = 11.
    assert report.total_time == pytest.approx(10 + 5 + 11)
    assert report.busy_total == 10.0
    assert report.sync_overhead == pytest.approx(3 + 1 + 10 + 5)
    assert report.total_conflicts == 1
    assert report.speedup_vs(52.0) == pytest.approx(2.0)
    assert report.efficiency_vs(52.0) == pytest.approx(1.0)
    assert "dpsize" in report.summary()


def test_report_mean_imbalance_weighted():
    report = SimReport(threads=2)
    report.strata.append(
        StratumTiming(size=2, unit_count=1, busy=[1.0, 1.0],
                      contention=[0.0, 0.0], barrier_cost=0.0, conflicts=0)
    )
    report.strata.append(
        StratumTiming(size=3, unit_count=1, busy=[30.0, 10.0],
                      contention=[0.0, 0.0], barrier_cost=0.0, conflicts=0)
    )
    # Second stratum dominates by weight: imbalance 1.5 vs 1.0.
    assert 1.0 < report.mean_imbalance < 1.5
    assert report.mean_imbalance == pytest.approx(
        (1.0 * 2 + 1.5 * 40) / 42
    )
