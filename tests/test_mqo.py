"""Tests for multi-query optimization (repro.service.mqo).

The MQO contract under test: shared-core detection is exact-or-nothing
(a member whose candidate core differs in any statistic simply shares
nothing), core splicing never changes a member's optimal cost, the
sealed enumeration strictly reduces metered work, and the service
surfaces everything as the ``subplan`` source/tier.
"""

from __future__ import annotations

import pytest

from repro import optimize
from repro.config import OptimizerConfig
from repro.query import JoinGraph, Query
from repro.service import OptimizerService
from repro.service.mqo import (
    detect_shared_cores,
    optimize_core,
    optimize_with_subplans,
)
from repro.sql import SqlWorkload, SqlWorkloadSpec
from repro.util.errors import ValidationError


def chain_query(names, cards, sels, label):
    edges = [(i, i + 1, sels[i]) for i in range(len(names) - 1)]
    return Query(
        graph=JoinGraph(len(names), edges),
        relation_names=tuple(names),
        cardinalities=tuple(float(c) for c in cards),
        label=label,
    )


@pytest.fixture
def mqo_config():
    return OptimizerConfig(algorithm="dpsize", mqo=True)


def shared_pair():
    """Two queries sharing a 3-relation chain core, distinct tails."""
    a = chain_query(
        ["r", "s", "t", "u"], [100, 200, 300, 50],
        [0.01, 0.005, 0.02], "qa",
    )
    b = chain_query(
        ["r", "s", "t", "v"], [100, 200, 300, 900],
        [0.01, 0.005, 0.001], "qb",
    )
    return a, b


def test_detection_finds_shared_core(mqo_config):
    a, b = shared_pair()
    plan = detect_shared_cores([a, b], mqo_config)
    assert plan.shares_anything
    assert len(plan.cores) == 1
    (core,) = plan.cores.values()
    assert core.query.n == 3
    assert core.occurrences == 2
    assert len(plan.members[0]) == 1 and len(plan.members[1]) == 1
    # Both refs cover relations {0,1,2} (r, s, t).
    assert plan.members[0][0].mask == 0b111
    assert plan.members[1][0].mask == 0b111


def test_detection_rejects_statistic_mismatch(mqo_config):
    a, b = shared_pair()
    # Same names/structure, but t's cardinality differs: no sharing.
    c = chain_query(
        ["r", "s", "t", "v"], [100, 200, 301, 900],
        [0.01, 0.005, 0.001], "qc",
    )
    plan = detect_shared_cores([a, c], mqo_config)
    assert not plan.shares_anything


def test_detection_respects_min_core(mqo_config):
    a, b = shared_pair()
    wide = OptimizerConfig(algorithm="dpsize", mqo=True, mqo_min_core=4)
    assert not detect_shared_cores([a, b], wide).shares_anything
    assert detect_shared_cores([a, b], mqo_config).shares_anything


def test_splice_costs_bit_identical(mqo_config):
    a, b = shared_pair()
    plan = detect_shared_cores([a, b], mqo_config)
    cores = {
        key: optimize_core(core, mqo_config)
        for key, core in plan.cores.items()
    }
    base_config = OptimizerConfig(algorithm="dpsize")
    for query, refs in zip((a, b), plan.members):
        result, used = optimize_with_subplans(
            query, refs, cores, mqo_config
        )
        assert used == 1
        baseline = optimize(query, config=base_config)
        assert result.cost == baseline.cost
        assert result.rows == baseline.rows
        assert result.extras["mqo"]["spliced_entries"] > 0


def test_sealed_enumeration_reduces_metered_work(mqo_config):
    a, b = shared_pair()
    plan = detect_shared_cores([a, b], mqo_config)
    cores = {
        key: optimize_core(core, mqo_config)
        for key, core in plan.cores.items()
    }
    core_pairs = sum(c.meter.pairs_considered for c in cores.values())
    base_config = OptimizerConfig(algorithm="dpsize")
    member_pairs = 0
    for query, refs in zip((a, b), plan.members):
        result, _ = optimize_with_subplans(query, refs, cores, mqo_config)
        member_pairs += result.meter.pairs_considered
    baseline_pairs = sum(
        optimize(q, config=base_config).meter.pairs_considered
        for q in (a, b)
    )
    assert member_pairs + core_pairs < baseline_pairs


def test_missing_core_memo_degrades_to_plain_run(mqo_config):
    a, b = shared_pair()
    plan = detect_shared_cores([a, b], mqo_config)
    result, used = optimize_with_subplans(
        a, plan.members[0], {}, mqo_config
    )
    assert used == 0
    baseline = optimize(a, config=OptimizerConfig(algorithm="dpsize"))
    assert result.cost == baseline.cost
    assert result.meter.pairs_considered == baseline.meter.pairs_considered


def test_service_batch_surfaces_subplan_source(mqo_config):
    queries = SqlWorkload(
        SqlWorkloadSpec(seed=0, count=6, core_tables=4, overlap=0.67)
    ).queries()
    with OptimizerService(mqo_config) as service:
        responses = service.optimize_batch(queries)
        stats = service.stats()
    assert any(r.source == "subplan" for r in responses)
    assert stats.mqo_shared_cores > 0
    assert stats.mqo_splices > 0
    assert stats.subplan_cache is not None
    assert stats.subplan_cache.entries == stats.mqo_core_optimizations
    base = OptimizerConfig(algorithm="dpsize")
    for response, query in zip(responses, queries):
        assert response.result.cost == optimize(query, config=base).cost
        assert not response.degraded


def test_subplan_cache_hits_across_batches(mqo_config):
    spec = SqlWorkloadSpec(seed=1, count=4, core_tables=4, overlap=1.0)
    queries = SqlWorkload(spec).queries()
    with OptimizerService(mqo_config) as service:
        service.optimize_batch(queries)
        first = service.stats()
        service.invalidate()  # drop plans, keep subplan memos
        service.optimize_batch(queries)
        second = service.stats()
    assert second.subplan_cache.hits > first.subplan_cache.hits
    assert second.mqo_core_optimizations == first.mqo_core_optimizations


def test_mqo_disabled_for_non_dp_configs():
    queries = SqlWorkload(SqlWorkloadSpec(seed=0, count=4)).queries()
    config = OptimizerConfig(algorithm="goo", mqo=True)
    with OptimizerService(config) as service:
        responses = service.optimize_batch(queries)
        stats = service.stats()
    assert all(r.source != "subplan" for r in responses)
    assert stats.mqo_shared_cores == 0


def test_mqo_knobs_validation_and_digest():
    with pytest.raises(ValidationError):
        OptimizerConfig(mqo_min_core=1, mqo=True)
    with pytest.raises(ValidationError):
        OptimizerConfig(mqo_min_core=3)  # requires mqo=True
    plain = OptimizerConfig(algorithm="dpsize")
    tuned = OptimizerConfig(algorithm="dpsize", mqo=True, mqo_min_core=4)
    # Plan-relevant digest must ignore the MQO knobs: splicing is
    # cost-exact, so cached plans remain valid across them.
    assert plain.digest == tuned.digest
    assert tuned.effective_mqo_min_core == 4
    assert plain.effective_mqo_min_core == 3
