"""Failure-injection and edge-case tests.

Exercises the library's behaviour on malformed, degenerate, and adversarial
inputs: every public entry point should fail with a library error type
(never a bare ``KeyError``/``IndexError`` from deep inside), and degenerate
queries (single relation, two relations, selectivity extremes, huge
cardinality ratios) must still optimize correctly.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    DPccp,
    DPsize,
    DPsub,
    JoinGraph,
    OptimizationError,
    ParallelDP,
    Query,
    ReproError,
    OptimizerConfig,
    StandardCostModel,
    ValidationError,
    optimize,
)
from repro.query import QueryContext, WorkloadSpec, generate_query
from repro.sva import DPsva

ALL_DP = [DPsize, DPsub, DPccp, DPsva]


def make_query(n, edges, cards):
    return Query(
        graph=JoinGraph(n, edges),
        relation_names=tuple(f"t{i}" for i in range(n)),
        cardinalities=tuple(float(c) for c in cards),
    )


# ---------------------------------------------------------------------------
# degenerate queries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algo_cls", ALL_DP)
def test_single_relation_every_algorithm(algo_cls):
    query = make_query(1, [], [42])
    result = algo_cls().optimize(query)
    assert result.plan.size == 1
    assert result.cost == 42.0


def test_selectivity_extremes():
    """Selectivity at both clamp boundaries still optimizes."""
    tiny = make_query(3, [(0, 1, 1e-12), (1, 2, 1.0)], [10, 10, 10])
    for algo_cls in ALL_DP:
        result = algo_cls().optimize(tiny)
        assert math.isfinite(result.cost)
        assert result.rows >= 1.0  # clamped


def test_huge_cardinality_ratio():
    """1 row vs 10^9 rows: no overflow, plan puts the small side sanely."""
    query = make_query(3, [(0, 1, 0.5), (1, 2, 0.5)], [1, 1e9, 1])
    for algo_cls in ALL_DP:
        result = algo_cls().optimize(query)
        assert math.isfinite(result.cost)
    parallel = ParallelDP(algorithm="dpsva", threads=4).optimize(query)
    assert math.isfinite(parallel.cost)


def test_equal_cardinalities_ties_everywhere():
    """All tables identical: tie-breaking must be exercised heavily and
    all enumerators must still agree."""
    query = make_query(
        5,
        [(i, i + 1, 0.1) for i in range(4)],
        [100] * 5,
    )
    costs = {cls.__name__: cls().optimize(query).cost for cls in ALL_DP}
    assert len(set(costs.values())) == 1


def test_selectivity_one_edges():
    """Edges with selectivity 1 (no filtering) behave like cross products
    cost-wise but keep the graph connected."""
    query = make_query(4, [(i, i + 1, 1.0) for i in range(3)], [5, 6, 7, 8])
    result = DPsize().optimize(query)
    assert result.rows == pytest.approx(5 * 6 * 7 * 8)


# ---------------------------------------------------------------------------
# invalid inputs surface library errors
# ---------------------------------------------------------------------------


def test_disconnected_everywhere():
    query = make_query(4, [(0, 1, 0.1), (2, 3, 0.1)], [10, 10, 10, 10])
    for algo_cls in ALL_DP:
        with pytest.raises(OptimizationError):
            algo_cls().optimize(query)
    with pytest.raises(OptimizationError):
        ParallelDP(algorithm="dpsize", threads=2).optimize(query)
    # And all succeed with cross products.
    costs = {
        cls.__name__: cls(cross_products=True).optimize(query).cost
        for cls in ALL_DP
    }
    assert len(set(costs.values())) == 1


def test_all_public_errors_are_repro_errors():
    assert issubclass(ValidationError, ReproError)
    assert issubclass(OptimizationError, ReproError)


def test_optimize_bad_inputs():
    query = generate_query(WorkloadSpec("chain", 4))
    with pytest.raises(ValidationError):
        optimize(query, config=OptimizerConfig(algorithm="not_an_algorithm"))
    with pytest.raises(ValidationError):
        optimize(query, config=OptimizerConfig(threads=0))
    with pytest.raises(ValidationError):
        optimize(
            query, config=OptimizerConfig(threads=2, allocation="not_a_scheme")
        )
    with pytest.raises(ValidationError):
        optimize(
            query, config=OptimizerConfig(threads=2, backend="not_a_backend")
        )


def test_more_threads_than_work():
    """Far more threads than units: still correct, threads just idle."""
    query = generate_query(WorkloadSpec("chain", 4, seed=1))
    serial = DPsize().optimize(query)
    flooded = ParallelDP(algorithm="dpsize", threads=64).optimize(query)
    assert flooded.cost == serial.cost
    report = flooded.extras["sim_report"]
    assert report.threads == 64
    # Most threads are idle in every stratum.
    for stratum in report.strata:
        assert sum(1 for b in stratum.busy if b == 0) > 0


def test_oversubscription_extremes():
    query = generate_query(WorkloadSpec("star", 7, seed=2))
    serial = DPsva().optimize(query)
    for oversub in (1, 64):
        result = ParallelDP(
            algorithm="dpsva", threads=4, oversubscription=oversub
        ).optimize(query)
        assert result.cost == serial.cost


def test_cost_model_returning_constant():
    """A degenerate cost model (all joins equal) must still terminate with
    a valid complete plan chosen by tie-break."""

    class FlatModel(StandardCostModel):
        def join_cost(self, method, left_rows, right_rows, out_rows):
            return 1.0

        def scan_cost(self, rows):
            return 0.0

    query = generate_query(WorkloadSpec("cycle", 6, seed=3))
    a = DPsize().optimize(query, cost_model=FlatModel())
    b = DPsub().optimize(query, cost_model=FlatModel())
    assert a.cost == b.cost == pytest.approx(5.0)  # 5 joins x 1.0


def test_zero_scan_cost_parallel_consistency():
    from repro import CoutCostModel

    query = generate_query(WorkloadSpec("star", 7, seed=4))
    serial = DPsize().optimize(query, cost_model=CoutCostModel())
    parallel = ParallelDP(algorithm="dpsize", threads=4).optimize(
        query, cost_model=CoutCostModel()
    )
    assert parallel.cost == serial.cost
