"""Tests for the compiled QueryContext."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumerate.dpsize import expected_memo_sizes, stratum_pair_count
from repro.cost import StandardCostModel
from repro.memo import Memo
from repro.query import (
    JoinGraph,
    Query,
    QueryContext,
    WorkloadSpec,
    generate_query,
)
from repro.util.bitsets import mask_of, subsets_of_size, universe


def ctx_for(topology, n, seed=0):
    return QueryContext(generate_query(WorkloadSpec(topology, n, seed=seed)))


def test_context_flattens_query():
    query = generate_query(WorkloadSpec("chain", 4, seed=1))
    ctx = QueryContext(query)
    assert ctx.n == 4
    assert ctx.all_mask == 0b1111
    assert ctx.cards == query.cardinalities
    for i in range(4):
        assert ctx.adjacency[i] == query.graph.adjacency(i)


def test_neighbours_and_connects_match_graph():
    query = generate_query(WorkloadSpec("cycle", 6, seed=2))
    ctx = QueryContext(query)
    g = query.graph
    for mask in subsets_of_size(universe(6), 2):
        assert ctx.neighbours(mask) == g.neighbours(mask)
    assert ctx.connects(0b000011, 0b001100) == g.connects(0b000011, 0b001100)


def test_connectivity_memoized_and_correct():
    ctx = ctx_for("chain", 5)
    assert ctx.is_connected(mask_of([1, 2, 3]))
    assert not ctx.is_connected(mask_of([0, 2]))
    # Memo hit path returns the same answer.
    assert not ctx.is_connected(mask_of([0, 2]))
    assert ctx.is_connected(0)
    assert ctx.is_connected(mask_of([4]))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=100),
    mask_bits=st.integers(min_value=0, max_value=255),
)
def test_property_context_connectivity_matches_graph(n, seed, mask_bits):
    query = generate_query(WorkloadSpec("random", n, seed=seed))
    ctx = QueryContext(query)
    mask = mask_bits & universe(n)
    assert ctx.is_connected(mask) == query.graph.is_connected_set(mask)


def test_cross_selectivity_matches_graph():
    g = JoinGraph(4, [(0, 1, 0.5), (1, 2, 0.25), (2, 3, 0.125), (0, 3, 0.75)])
    query = Query(
        graph=g,
        relation_names=("a", "b", "c", "d"),
        cardinalities=(10.0,) * 4,
    )
    ctx = QueryContext(query)
    # Split {0,1} | {2,3}: crossing edges (1,2) and (0,3).
    assert ctx.cross_selectivity(0b0011, 0b1100) == pytest.approx(0.25 * 0.75)
    assert ctx.cross_selectivity(0b0001, 0b0100) == 1.0


def test_stratum_pair_count_matches_kernel_inputs():
    query = generate_query(WorkloadSpec("star", 7, seed=3))
    ctx = QueryContext(query)
    memo = Memo(ctx, StandardCostModel())
    memo.init_scans()
    from repro.enumerate.kernels import dpsize_pair_kernel

    # stratum_pair_count must be taken before the stratum fills, exactly
    # as the parallel driver does when weighting work units.
    total = 0
    for size in range(2, 8):
        total += stratum_pair_count(memo, size)
        for outer_size in range(1, size):
            outer = memo.sets_of_size(outer_size)
            inner = memo.sets_of_size(size - outer_size)
            dpsize_pair_kernel(
                memo, ctx, outer, inner, 0, len(outer), True, memo.meter
            )
    assert total == memo.meter.pairs_considered


def test_expected_memo_sizes():
    assert expected_memo_sizes(4) == [1, 4, 6, 4, 1]
    assert expected_memo_sizes(3, connected_counts=[0, 3, 2, 1]) == [0, 3, 2, 1]
