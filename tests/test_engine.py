"""Tests for the execution engine: data generation, operators, executor."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database, DataTable, execute_plan, generate_database
from repro.engine.data import scaled_cardinalities
from repro.engine.operators import (
    JOIN_IMPLEMENTATIONS,
    block_nested_loop_join,
    hash_join,
    nested_loop_join,
    sort_merge_join,
)
from repro.enumerate import DPsize
from repro.plans import JoinMethod, JoinNode, ScanNode
from repro.query import WorkloadSpec, generate_query
from repro.util.errors import ValidationError


def query_for(topology, n, seed=0):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


# ---------------------------------------------------------------------------
# tables & data generation
# ---------------------------------------------------------------------------


def test_datatable_validation():
    with pytest.raises(ValidationError):
        DataTable("t", ["a", "b"], [(1,)])
    table = DataTable("t", ["a", "b"], [(1, 2), (3, 4)])
    assert len(table) == 2
    assert table.column_index("b") == 1
    with pytest.raises(KeyError):
        table.column_index("z")


def test_database_add_lookup():
    db = Database()
    db.add(DataTable("t", ["a"], [(1,)]))
    assert len(db) == 1
    assert db.table("t").rows == [(1,)]
    with pytest.raises(ValidationError):
        db.add(DataTable("t", ["a"], []))
    with pytest.raises(KeyError):
        db.table("missing")


def test_scaled_cardinalities_preserve_ratio():
    query = query_for("chain", 4, seed=1)
    sizes = scaled_cardinalities(query, 100)
    assert max(sizes) == 100
    # Ordering of sizes preserved.
    original = list(query.cardinalities)
    assert sorted(range(4), key=lambda i: original[i]) == sorted(
        range(4), key=lambda i: (sizes[i], original[i])
    )


def test_generate_database_structure():
    query = query_for("star", 5, seed=2)
    db = generate_database(query, seed=2, max_rows=50)
    assert len(db) == 5
    hub = db.table("t0")
    # Hub has one key column per spoke edge plus rowid.
    assert len(hub.columns) == 1 + 4
    spoke = db.table("t3")
    assert len(spoke.columns) == 2
    assert all(len(t) <= 50 for t in db.tables.values())


def test_generate_database_deterministic():
    from repro.query import JoinGraph, Query

    g = JoinGraph(3, [(0, 1, 0.05), (1, 2, 0.1)])
    query = Query(
        graph=g,
        relation_names=("a", "b", "c"),
        cardinalities=(60.0, 80.0, 40.0),
    )
    a = generate_database(query, seed=7, max_rows=100)
    b = generate_database(query, seed=7, max_rows=100)
    assert a.table("b").rows == b.table("b").rows
    c = generate_database(query, seed=8, max_rows=100)
    assert a.table("b").rows != c.table("b").rows


def test_generate_database_validation():
    query = query_for("chain", 3)
    with pytest.raises(ValidationError):
        generate_database(query, max_rows=0)


# ---------------------------------------------------------------------------
# operators
# ---------------------------------------------------------------------------

LEFT = [(1, "a"), (2, "b"), (2, "c"), (3, "d")]
RIGHT = [(2, "x"), (2, "y"), (4, "z")]


def test_nested_loop_basics():
    out = nested_loop_join(LEFT, RIGHT, [(0, 0)])
    assert Counter(out) == Counter(
        [
            (2, "b", 2, "x"),
            (2, "b", 2, "y"),
            (2, "c", 2, "x"),
            (2, "c", 2, "y"),
        ]
    )


def test_cross_product():
    out = nested_loop_join(LEFT, RIGHT, [])
    assert len(out) == len(LEFT) * len(RIGHT)


@pytest.mark.parametrize("name", sorted(JOIN_IMPLEMENTATIONS))
def test_operators_agree_small(name):
    impl = JOIN_IMPLEMENTATIONS[name]
    expected = Counter(nested_loop_join(LEFT, RIGHT, [(0, 0)]))
    assert Counter(impl(LEFT, RIGHT, [(0, 0)])) == expected


def test_block_nested_loop_block_sizes():
    for block in (1, 2, 3, 100):
        out = block_nested_loop_join(LEFT, RIGHT, [(0, 0)], block_size=block)
        assert Counter(out) == Counter(nested_loop_join(LEFT, RIGHT, [(0, 0)]))
    with pytest.raises(ValidationError):
        block_nested_loop_join(LEFT, RIGHT, [(0, 0)], block_size=0)


def test_multi_column_predicates():
    left = [(1, 1, "l0"), (1, 2, "l1"), (2, 2, "l2")]
    right = [(1, 1, "r0"), (2, 2, "r1")]
    preds = [(0, 0), (1, 1)]
    expected = Counter(nested_loop_join(left, right, preds))
    assert expected == Counter([(1, 1, "l0", 1, 1, "r0"), (2, 2, "l2", 2, 2, "r1")])
    for impl in JOIN_IMPLEMENTATIONS.values():
        assert Counter(impl(left, right, preds)) == expected


def test_empty_inputs():
    for impl in JOIN_IMPLEMENTATIONS.values():
        assert impl([], RIGHT, [(0, 0)]) == []
        assert impl(LEFT, [], [(0, 0)]) == []


@settings(max_examples=30, deadline=None)
@given(
    left=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=25
    ),
    right=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=25
    ),
    on_both=st.booleans(),
)
def test_property_operators_agree(left, right, on_both):
    preds = [(0, 0), (1, 1)] if on_both else [(0, 0)]
    expected = Counter(nested_loop_join(left, right, preds))
    for name, impl in JOIN_IMPLEMENTATIONS.items():
        assert Counter(impl(left, right, preds)) == expected, name


# ---------------------------------------------------------------------------
# executor
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("topology", ["chain", "star", "cycle", "clique"])
def test_plan_execution_result_invariance(topology):
    """The optimal plan and a canonical left-deep plan (with arbitrary
    methods) return the same multiset of result rows."""
    query = query_for(topology, 5, seed=4)
    db = generate_database(query, seed=4, max_rows=40)

    optimal = DPsize().optimize(query).plan
    canonical = ScanNode(0)
    for rel in range(1, 5):
        canonical = JoinNode(
            left=canonical,
            right=ScanNode(rel),
            method=JoinMethod.SORT_MERGE,
        )
    a = execute_plan(optimal, query, db)
    b = execute_plan(canonical, query, db)
    assert Counter(a) == Counter(b)


def test_execution_row_width():
    query = query_for("chain", 3, seed=5)
    db = generate_database(query, seed=5, max_rows=20)
    plan = DPsize().optimize(query).plan
    rows = execute_plan(plan, query, db)
    total_width = sum(len(db.table(n).columns) for n in query.relation_names)
    for row in rows:
        assert len(row) == total_width


def test_execution_partial_plan():
    query = query_for("chain", 4, seed=6)
    db = generate_database(query, seed=6, max_rows=20)
    partial = JoinNode(left=ScanNode(1), right=ScanNode(2))
    rows = execute_plan(partial, query, db)
    # Join of adjacent chain relations on their shared key.
    t1, t2 = db.table("t1"), db.table("t2")
    assert len(rows) <= len(t1) * len(t2)


def test_execution_canonical_column_order():
    """Plans with different leaf orders return identical tuples."""
    query = query_for("chain", 3, seed=9)
    db = generate_database(query, seed=9, max_rows=25)
    forward = JoinNode(
        left=JoinNode(left=ScanNode(0), right=ScanNode(1)),
        right=ScanNode(2),
    )
    backward = JoinNode(
        left=ScanNode(2),
        right=JoinNode(left=ScanNode(1), right=ScanNode(0)),
    )
    assert Counter(execute_plan(forward, query, db)) == Counter(
        execute_plan(backward, query, db)
    )


def test_execution_missing_table():
    query = query_for("chain", 3, seed=7)
    db = Database()
    with pytest.raises(ValidationError):
        execute_plan(ScanNode(0), query, db)


def test_cardinality_estimates_track_reality():
    """On a moderately selective query the estimator's relative error
    stays within an order of magnitude of the true result size."""
    from repro.cost import CardinalityEstimator
    from repro.query import Query, QueryContext, JoinGraph

    g = JoinGraph(3, [(0, 1, 0.05), (1, 2, 0.1)])
    query = Query(
        graph=g,
        relation_names=("a", "b", "c"),
        cardinalities=(200.0, 150.0, 100.0),
    )
    db = generate_database(query, seed=8, max_rows=200)
    plan = DPsize().optimize(query).plan
    actual = len(execute_plan(plan, query, db))
    est = CardinalityEstimator(QueryContext(query))
    predicted = est.rows(0b111)
    assert actual > 0
    assert predicted / 10 <= actual <= predicted * 10
