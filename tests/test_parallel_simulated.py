"""Correctness and behaviour of the parallel framework on the simulated
backend.

The decisive invariant: for every kernel, thread count, and allocation
scheme, the parallel optimizer returns exactly the serial optimum (equal
cost, identical plan signature thanks to deterministic tie-breaking).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumerate import DPccp, DPsize, DPsub
from repro.parallel import PDPsize, PDPsub, PDPsva, ParallelDP
from repro.plans import plan_signature, validate_plan
from repro.query import QueryContext, WorkloadSpec, generate_query
from repro.simx import SimCostParams
from repro.sva import DPsva
from repro.util.errors import ValidationError

SERIAL_BY_NAME = {"dpsize": DPsize, "dpsub": DPsub, "dpsva": DPsva}


def query_for(topology, n, seed=0):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


@pytest.mark.parametrize("algorithm", ["dpsize", "dpsub", "dpsva"])
@pytest.mark.parametrize("threads", [1, 2, 3, 8])
def test_parallel_matches_serial_exactly(algorithm, threads):
    query = query_for("cycle", 8, seed=1)
    serial = SERIAL_BY_NAME[algorithm]().optimize(query)
    parallel = ParallelDP(algorithm=algorithm, threads=threads).optimize(query)
    assert parallel.cost == serial.cost
    assert plan_signature(parallel.plan) == plan_signature(serial.plan)
    assert parallel.memo_entries == serial.memo_entries


@pytest.mark.parametrize("topology", ["chain", "star", "clique", "random"])
@pytest.mark.parametrize(
    "allocation", ["round_robin", "chunked", "equi_depth", "dynamic"]
)
def test_parallel_all_allocations_correct(topology, allocation):
    query = query_for(topology, 7, seed=2)
    serial = DPsva().optimize(query)
    parallel = PDPsva(threads=4, allocation=allocation).optimize(query)
    assert parallel.cost == serial.cost
    assert plan_signature(parallel.plan) == plan_signature(serial.plan)


@settings(max_examples=15, deadline=None)
@given(
    topology=st.sampled_from(["chain", "cycle", "star", "clique", "random"]),
    n=st.integers(min_value=2, max_value=7),
    seed=st.integers(min_value=0, max_value=200),
    threads=st.integers(min_value=1, max_value=6),
    algorithm=st.sampled_from(["dpsize", "dpsub", "dpsva"]),
)
def test_property_parallel_equals_serial(topology, n, seed, threads, algorithm):
    if topology == "cycle" and n < 3:
        n = 3
    query = query_for(topology, n, seed=seed)
    serial = SERIAL_BY_NAME[algorithm]().optimize(query)
    parallel = ParallelDP(algorithm=algorithm, threads=threads).optimize(query)
    assert parallel.cost == serial.cost
    assert plan_signature(parallel.plan) == plan_signature(serial.plan)


def test_parallel_cross_products():
    query = query_for("chain", 6, seed=3)
    serial = DPsize(cross_products=True).optimize(query)
    parallel = PDPsize(threads=4, cross_products=True).optimize(query)
    assert parallel.cost == serial.cost


def test_parallel_work_conservation():
    """Valid pairs and memo inserts are identical to serial; only the
    improvement count may differ (emission order)."""
    query = query_for("star", 8, seed=4)
    serial = DPsva().optimize(query)
    parallel = PDPsva(threads=4).optimize(query)
    assert parallel.meter.pairs_valid == serial.meter.pairs_valid
    assert parallel.meter.memo_inserts == serial.meter.memo_inserts
    assert parallel.meter.pairs_considered == serial.meter.pairs_considered


def test_sim_report_attached_and_consistent():
    query = query_for("star", 8, seed=5)
    result = PDPsva(threads=4).optimize(query)
    report = result.extras["sim_report"]
    assert report.threads == 4
    assert report.algorithm == "dpsva"
    assert report.allocation == "equi_depth"
    assert len(report.strata) == 7  # strata 2..8
    assert report.total_time > 0
    assert report.busy_total > 0
    assert report.total_time >= max(s.wall_time for s in report.strata)
    for stratum in report.strata:
        assert stratum.imbalance >= 1.0
        assert stratum.wall_time >= max(stratum.thread_times, default=0.0)


def test_simulated_speedup_on_dense_query():
    """More threads must reduce simulated time on a work-dense query."""
    query = query_for("clique", 10, seed=6)
    times = {}
    for threads in [1, 2, 4, 8]:
        result = PDPsub(threads=threads).optimize(query)
        times[threads] = result.extras["sim_report"].total_time
    assert times[2] < times[1]
    assert times[4] < times[2]
    assert times[8] < times[4]
    # Speedup sanity: between 1x and ideal.
    assert 1.0 < times[1] / times[8] <= 8.0


def test_simulated_busy_total_stable_across_threads():
    """Total kernel work is (nearly) independent of the thread count."""
    query = query_for("star", 8, seed=7)
    busy = []
    for threads in [1, 4]:
        report = PDPsva(threads=threads).optimize(query).extras["sim_report"]
        busy.append(report.busy_total)
    # Improvement-count order effects allow a sliver of drift.
    assert busy[1] == pytest.approx(busy[0], rel=0.02)


def test_threads_one_has_no_sync_overhead():
    query = query_for("chain", 6, seed=8)
    report = PDPsva(threads=1).optimize(query).extras["sim_report"]
    assert report.spawn_cost == 0.0
    assert all(s.barrier_cost == 0.0 for s in report.strata)
    assert report.total_conflicts == 0


def test_contention_grows_with_threads():
    query = query_for("clique", 8, seed=9)
    small = PDPsize(threads=2).optimize(query).extras["sim_report"]
    large = PDPsize(threads=8).optimize(query).extras["sim_report"]
    assert large.total_conflicts >= small.total_conflicts


def test_custom_sim_params():
    params = SimCostParams(barrier_base=1e9)
    query = query_for("chain", 5, seed=10)
    expensive = PDPsva(threads=2, sim_params=params).optimize(query)
    cheap = PDPsva(threads=2).optimize(query)
    assert (
        expensive.extras["sim_report"].total_time
        > cheap.extras["sim_report"].total_time
    )
    # Barrier pricing must not affect correctness.
    assert expensive.cost == cheap.cost


def test_dynamic_allocation_oracle():
    """Dynamic assignment matches serial results and never loses to the
    static schemes on simulated time."""
    query = query_for("star", 9, seed=13)
    serial = DPsva().optimize(query)
    dynamic = ParallelDP(
        algorithm="dpsva", threads=4, allocation="dynamic"
    ).optimize(query)
    assert dynamic.cost == serial.cost
    assert plan_signature(dynamic.plan) == plan_signature(serial.plan)
    assert dynamic.extras["allocation_imbalances"][0] is None
    dynamic_time = dynamic.extras["sim_report"].total_time
    for scheme in ("round_robin", "chunked", "equi_depth"):
        static = ParallelDP(
            algorithm="dpsva", threads=4, allocation=scheme
        ).optimize(query)
        assert dynamic_time <= static.extras["sim_report"].total_time * 1.02


def test_dynamic_allocation_reports_realized_imbalance():
    # Every backend reports per-stratum realized (pairs-based) load
    # imbalance alongside the planned allocation imbalances.
    query = query_for("star", 7, seed=13)
    result = ParallelDP(
        algorithm="dpsva", threads=4, allocation="dynamic"
    ).optimize(query)
    realized = result.extras["realized_imbalances"]
    assert len(realized) == len(result.extras["allocation_imbalances"])
    assert all(value >= 1.0 for value in realized)


def test_parallel_validation():
    with pytest.raises(ValidationError):
        ParallelDP(algorithm="nope")
    with pytest.raises(ValidationError):
        ParallelDP(threads=0)
    with pytest.raises(ValidationError):
        ParallelDP(backend="quantum")


def test_parallel_plan_is_valid():
    query = query_for("random", 7, seed=11)
    result = PDPsva(threads=4).optimize(query)
    validate_plan(result.plan, QueryContext(query), require_connected=True)


def test_single_relation_parallel():
    query = query_for("chain", 1)
    result = PDPsva(threads=4).optimize(query)
    assert result.plan.size == 1


def test_extras_reporting():
    query = query_for("star", 7, seed=12)
    result = PDPsva(threads=4, allocation="round_robin").optimize(query)
    assert result.extras["allocation"] == "round_robin"
    assert result.extras["backend"] == "simulated"
    assert len(result.extras["allocation_imbalances"]) == 6
    assert all(i >= 1.0 for i in result.extras["allocation_imbalances"])
    assert all(c >= 1 for c in result.extras["unit_counts"])
