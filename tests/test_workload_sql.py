"""Tests for the seeded SQL workload generator (repro.sql.workload)."""

from __future__ import annotations

import pytest

from repro.sql import (
    SqlWorkload,
    SqlWorkloadSpec,
    generate_statement,
    parse_select,
)
from repro.util.errors import ValidationError


def test_workload_is_deterministic():
    spec = SqlWorkloadSpec(seed=3, count=5)
    a = [s.sql for s in SqlWorkload(spec)]
    b = [s.sql for s in SqlWorkload(spec)]
    assert a == b
    assert generate_statement(spec, 2).sql == a[2]


def test_seed_changes_statements():
    a = SqlWorkload(SqlWorkloadSpec(seed=1, count=4)).statements()
    b = SqlWorkload(SqlWorkloadSpec(seed=2, count=4)).statements()
    assert a != b


def test_every_statement_parses_and_binds():
    wl = SqlWorkload(SqlWorkloadSpec(seed=5, count=8, overlap=0.5))
    for item in wl:
        stmt = parse_select(item.sql)
        assert len(stmt.relations) == len(item.tables)
    queries = wl.queries()
    assert len(queries) == 8
    for query in queries:
        assert query.graph.is_connected()
        assert all(c >= 1.0 for c in query.cardinalities)


def test_core_members_share_the_core_exactly():
    spec = SqlWorkloadSpec(seed=7, count=6, core_tables=4, overlap=0.67)
    wl = SqlWorkload(spec)
    members = list(wl)
    core_members = [m for m in members if m.core_member]
    assert len(core_members) == spec.core_members == 4
    core_sets = {m.core_tables for m in core_members}
    assert len(core_sets) == 1
    (core,) = core_sets
    assert len(core) == 4
    for member in core_members:
        assert set(core) <= set(member.tables)
        # Core tables come first, so the shared prefix is textual too.
        assert member.tables[: len(core)] == core
    for member in members:
        if not member.core_member:
            assert member.core_tables == ()


def test_private_filters_never_touch_core_tables():
    spec = SqlWorkloadSpec(seed=7, count=6, core_tables=4, overlap=1.0)
    core = generate_statement(spec, 0).core_tables
    core_filter_sets = set()
    for index in range(spec.count):
        stmt = parse_select(generate_statement(spec, index).sql)
        core_filters = tuple(
            sorted(
                (f.column.table, f.column.column, f.value)
                for f in stmt.filters
                if f.column.table in core
            )
        )
        core_filter_sets.add(core_filters)
    # Identical shared filters on core tables across every member.
    assert len(core_filter_sets) == 1


def test_overlap_zero_disables_core():
    wl = SqlWorkload(SqlWorkloadSpec(seed=4, count=4, overlap=0.0))
    assert all(not m.core_member for m in wl)


def test_spec_validation():
    with pytest.raises(ValidationError):
        SqlWorkloadSpec(count=0)
    with pytest.raises(ValidationError):
        SqlWorkloadSpec(core_tables=1)
    with pytest.raises(ValidationError):
        SqlWorkloadSpec(overlap=1.5)
    with pytest.raises(ValidationError):
        SqlWorkloadSpec(extra_tables=(3, 2))
    with pytest.raises(ValidationError):
        SqlWorkloadSpec(core_tables=8, extra_tables=(1, 2))
    with pytest.raises(ValidationError):
        SqlWorkloadSpec(scale=0.0)
    with pytest.raises(ValidationError):
        generate_statement(SqlWorkloadSpec(count=2), 2)


def test_workload_sequence_protocol():
    spec = SqlWorkloadSpec(seed=0, count=3)
    wl = SqlWorkload(spec)
    assert len(wl) == 3
    assert wl[1].index == 1
    assert wl.spec.with_count(5).count == 5
    assert "SqlWorkload" in repr(wl)
