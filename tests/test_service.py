"""Plan cache, singleflight, and degradation behavior of the service."""

import threading
import time

import pytest

from repro import OptimizerConfig, OptimizerService, optimize
from repro.heuristics import HEURISTICS
from repro.plans.validate import validate_plan
from repro.query.context import QueryContext
from repro.query.workload import WorkloadSpec, generate_query
from repro.service import PlanCache
from repro.trace import RecordingTracer, per_cache_rows
from repro.util.errors import ValidationError


def query_for(topology="star", n=8, seed=1):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


# -- PlanCache ----------------------------------------------------------


def test_lru_eviction_order():
    cache = PlanCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a": now "b" is LRU
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    stats = cache.stats()
    assert stats.evictions == 1
    assert stats.entries == 2
    assert cache.keys() == ["a", "c"]


def test_put_refresh_does_not_evict():
    cache = PlanCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # refresh, not insert
    assert cache.stats().evictions == 0
    assert cache.get("a") == 10
    assert cache.get("b") == 2


def test_ttl_expiry_with_fake_clock():
    clock = [0.0]
    cache = PlanCache(max_entries=4, ttl_seconds=10.0, clock=lambda: clock[0])
    cache.put("a", 1)
    clock[0] = 5.0
    assert cache.get("a") == 1
    clock[0] = 10.5
    assert cache.get("a") is None
    stats = cache.stats()
    assert stats.stale == 1
    assert stats.hits == 1
    assert stats.misses == 1
    assert stats.entries == 0


def test_version_bump_invalidates_lazily():
    cache = PlanCache(max_entries=4)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.bump_version() == 1
    assert len(cache) == 2  # lazy: entries dropped on access
    assert cache.get("a") is None
    assert "b" not in cache
    assert cache.stats().invalidated >= 1
    cache.put("c", 3)  # new entries live under the new version
    assert cache.get("c") == 3


def test_explicit_invalidation_counts():
    cache = PlanCache(max_entries=4)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.invalidate("a") == 1
    assert cache.invalidate("missing") == 0
    assert cache.invalidate() == 1  # clears the rest
    assert cache.stats().invalidated == 2


def test_cache_validation():
    with pytest.raises(ValidationError):
        PlanCache(max_entries=0)
    with pytest.raises(ValidationError):
        PlanCache(ttl_seconds=0)


def test_cache_emits_tier_counters():
    tracer = RecordingTracer()
    cache = PlanCache(max_entries=1, tracer=tracer, tier="plan")
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    cache.put("b", 2)  # evicts "a"
    rows = per_cache_rows(tracer.events)
    assert len(rows) == 1
    row = rows[0]
    assert row["tier"] == "plan"
    assert row["hits"] == 1
    assert row["misses"] == 1
    assert row["evictions"] == 1
    assert row["hit_rate"] == 0.5


# -- OptimizerService ---------------------------------------------------


def test_hit_returns_identical_result_and_provenance():
    query = query_for()
    with OptimizerService(OptimizerConfig(algorithm="dpsize")) as svc:
        cold = svc.optimize(query)
        warm = svc.optimize(query)
    assert cold.source == "miss" and not cold.degraded
    assert warm.source == "hit" and not warm.degraded
    assert warm.result is cold.result  # the cached object itself
    assert warm.fingerprint == cold.fingerprint
    reference = optimize(query, config=OptimizerConfig(algorithm="dpsize"))
    assert cold.cost == reference.cost


def test_cache_hit_latency_at_least_10x_faster():
    # Acceptance: >= 10x latency reduction on hits for the 10-relation
    # star workload (measured ~1000x; 10x keeps CI noise-proof).
    query = query_for("star", 10, seed=0)
    with OptimizerService(OptimizerConfig(algorithm="dpsize")) as svc:
        cold = svc.optimize(query)
        warm = min(
            (svc.optimize(query) for _ in range(5)),
            key=lambda outcome: outcome.elapsed_seconds,
        )
    assert warm.source == "hit"
    assert cold.elapsed_seconds / warm.elapsed_seconds >= 10


def test_bench_cache_workload_rows():
    from repro.bench import cache_workload

    rows = cache_workload("star", 10, distinct=2, repeats=(3,), seed=0)
    assert len(rows) == 1
    row = rows[0]
    assert row["requests"] == 6
    assert row["hit_rate"] == pytest.approx(4 / 6, abs=1e-4)
    assert row["hit_speedup"] >= 10
    assert row["qps"] > 0


def test_singleflight_dedups_identical_concurrent_requests():
    query = query_for("star", 11, seed=2)
    tracer = RecordingTracer()
    config = OptimizerConfig(
        algorithm="dpsize", service_workers=4, tracer=tracer
    )
    workers = 8
    barrier = threading.Barrier(workers)
    outcomes = [None] * workers

    with OptimizerService(config) as svc:

        def request(slot):
            barrier.wait()
            outcomes[slot] = svc.optimize(query)

        threads = [
            threading.Thread(target=request, args=(slot,))
            for slot in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = svc.stats()

    # The singleflight guarantee, verified two ways: the service counter
    # and the work-metered optimize spans both say ONE optimization ran.
    assert stats.optimizations == 1
    assert len(tracer.spans("optimize")) == 1
    assert stats.requests == workers
    costs = {outcome.cost for outcome in outcomes}
    assert len(costs) == 1
    sources = sorted(outcome.source for outcome in outcomes)
    assert sources.count("miss") == 1
    assert all(s in ("miss", "shared", "hit") for s in sources)


def test_batch_dedups_and_preserves_order():
    a, b = query_for(seed=1), query_for(seed=2)
    with OptimizerService(OptimizerConfig(algorithm="dpsize")) as svc:
        outcomes = svc.optimize_batch([a, b, a, a, b])
        stats = svc.stats()
    assert stats.optimizations == 2  # one per distinct fingerprint
    assert [o.fingerprint for o in outcomes] == [
        outcomes[0].fingerprint,
        outcomes[1].fingerprint,
        outcomes[0].fingerprint,
        outcomes[0].fingerprint,
        outcomes[1].fingerprint,
    ]
    assert outcomes[0].cost == outcomes[2].cost == outcomes[3].cost
    assert outcomes[1].cost == outcomes[4].cost


def test_timeout_degrades_to_heuristic_plan():
    # star/13 DPsize takes ~0.5s serial; the 50ms deadline must expire.
    query = query_for("star", 13, seed=0)
    config = OptimizerConfig(algorithm="dpsize", request_timeout=0.05)
    with OptimizerService(config) as svc:
        outcome = svc.optimize(query)
        stats = svc.stats()
        assert outcome.source == "fallback"
        assert outcome.degraded
        assert outcome.result.algorithm == "goo"
        assert stats.fallbacks == 1
        validate_plan(outcome.plan, QueryContext(query))
        # The exact optimization keeps running and warms the cache.
        deadline = time.time() + 30
        while time.time() < deadline:
            warm = svc.optimize(query, timeout=None)
            if warm.source == "hit":
                break
            time.sleep(0.05)
        assert warm.source == "hit"
        assert not warm.degraded
        assert warm.cost <= outcome.cost


def test_fallback_algorithm_knob():
    query = query_for("star", 13, seed=0)
    config = OptimizerConfig(
        algorithm="dpsize", request_timeout=0.05,
        fallback_algorithm="ikkbz",
    )
    with OptimizerService(config) as svc:
        outcome = svc.optimize(query)
    assert outcome.degraded
    assert outcome.result.algorithm == HEURISTICS["ikkbz"].name


def test_stats_version_invalidation_forces_reoptimization():
    query = query_for()
    with OptimizerService(OptimizerConfig(algorithm="dpsize")) as svc:
        first = svc.optimize(query)
        svc.bump_stats_version()
        second = svc.optimize(query)
        stats = svc.stats()
    assert first.source == "miss"
    assert second.source == "miss"
    assert stats.optimizations == 2
    assert stats.plan_cache.invalidated == 1


def test_service_respects_cache_size():
    queries = [query_for(seed=s) for s in range(3)]
    # cache_shards=1: with the default sharded cache the eviction under
    # test depends on which shards the three fingerprints happen to hash
    # to (and thus on the config digest); a single shard makes the LRU
    # deterministic.
    config = OptimizerConfig(
        algorithm="dpsize", cache_size=2, cache_shards=1
    )
    with OptimizerService(config) as svc:
        for q in queries:
            svc.optimize(q)
        again = svc.optimize(queries[0])  # evicted by queries[2]
        stats = svc.stats()
    assert again.source == "miss"
    assert stats.plan_cache.evictions >= 1


def test_service_parallel_config():
    query = query_for("star", 9, seed=3)
    config = OptimizerConfig(algorithm="dpsva", threads=4)
    with OptimizerService(config) as svc:
        cold = svc.optimize(query)
        warm = svc.optimize(query)
    assert warm.source == "hit"
    assert cold.cost == warm.cost == optimize(query, config=config).cost


def test_closed_service_rejects_requests():
    svc = OptimizerService(OptimizerConfig())
    svc.close()
    with pytest.raises(ValidationError):
        svc.optimize(query_for())


def test_config_service_knob_validation():
    with pytest.raises(ValidationError):
        OptimizerConfig(cache_size=0)
    with pytest.raises(ValidationError):
        OptimizerConfig(cache_ttl=-1)
    with pytest.raises(ValidationError):
        OptimizerConfig(service_workers=0)
    with pytest.raises(ValidationError):
        OptimizerConfig(request_timeout=0)
    with pytest.raises(ValidationError):
        OptimizerConfig(fallback_algorithm="dpsize")  # not a heuristic


def test_frozen_config_derivations_are_cached():
    config = OptimizerConfig(algorithm="dpsize")
    assert config.effective_cost_model is config.effective_cost_model
    assert config.runner is config.runner
    assert config.digest == config.digest
    query = query_for()
    first = optimize(query, config=config)
    second = optimize(query, config=config)
    assert first.cost == second.cost
    # Distinct configs do not share derived state.
    other = config.with_options(cross_products=True)
    assert other.effective_cost_model is not config.effective_cost_model
    assert other.digest != config.digest


def test_digest_ignores_result_invariant_knobs():
    # shared_memo/vectorize are bit-identical execution strategies
    # (parity harness), so toggling them must not invalidate cached
    # plans or spilled warm-start files.
    base = OptimizerConfig(algorithm="dpsize", threads=2, backend="processes")
    tuned = base.with_options(shared_memo=True, vectorize=True)
    assert tuned.digest == base.digest
    assert base.with_options(vectorize=False).digest == base.digest
