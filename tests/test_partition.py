"""The quantifier-set hash partition behind the cluster backend.

Determinism is correctness here: every worker computes shard ownership
locally from nothing but the mask, so any instability (process-dependent
hashing, ordering sensitivity) would silently drop or duplicate sets.
"""

from __future__ import annotations

import pytest

from repro.parallel.partition import (
    identity_owner_map,
    owned,
    reassign,
    shard_balance,
    shard_of,
    shard_sizes,
)
from repro.query import QueryContext, WorkloadSpec, generate_query


def clique_masks(n: int) -> list[int]:
    query = generate_query(WorkloadSpec("clique", n, seed=0))
    ctx = QueryContext(query)
    return [
        m for m in range(1, ctx.all_mask + 1) if ctx.is_connected(m)
    ]


def test_shard_of_is_deterministic():
    # blake2b over the canonical bytes: stable across calls, processes,
    # and PYTHONHASHSEED (unlike the builtin hash()).
    for mask in (1, 0b1010, 0xFFFF, 1 << 63):
        assert shard_of(mask, 8) == shard_of(mask, 8)
    assert shard_of(0b1101, 4) == shard_of(0b1101, 4)


def test_shard_of_known_range():
    for mask in range(1, 500):
        for num in (1, 2, 3, 7, 8):
            assert 0 <= shard_of(mask, num) < num


def test_shard_of_single_shard_is_zero():
    assert shard_of(12345, 1) == 0
    assert shard_of(12345, 0) == 0


def test_every_mask_has_exactly_one_owner():
    masks = clique_masks(10)
    owner_map = identity_owner_map(4)
    shares = [owned(masks, owner_map, w) for w in range(4)]
    combined = sorted(m for share in shares for m in share)
    assert combined == sorted(masks)


def test_owned_preserves_order():
    masks = clique_masks(8)
    share = owned(masks, identity_owner_map(3), 1)
    assert share == [m for m in masks if m in set(share)]
    assert share == sorted(share)  # ascending input stays ascending


@pytest.mark.parametrize("num_shards", [2, 4, 8])
def test_shard_balance_clique14(num_shards):
    # The acceptance bound: max/mean shard size stays within 1.5x on the
    # full clique-14 search space (16k sets).
    masks = clique_masks(14)
    assert len(masks) > 16000
    balance = shard_balance(masks, num_shards)
    assert balance <= 1.5, f"{num_shards} shards: balance {balance:.3f}"
    sizes = shard_sizes(masks, num_shards)
    assert sum(sizes) == len(masks)
    assert all(s > 0 for s in sizes)


def test_shard_balance_empty_and_single():
    assert shard_balance([], 4) == 0.0
    assert shard_balance([5], 1) == 1.0


def test_reassign_deals_orphans_round_robin():
    owner_map = identity_owner_map(4)
    new_map = reassign(owner_map, dead={1, 3}, alive=[0, 2])
    assert new_map[0] == 0 and new_map[2] == 2
    # Orphaned shards in ascending order (1, 3) dealt to sorted
    # survivors round-robin.
    assert new_map[1] == 0 and new_map[3] == 2


def test_reassign_is_deterministic_and_pure():
    owner_map = identity_owner_map(5)
    a = reassign(owner_map, dead={0}, alive=[1, 2, 3, 4])
    b = reassign(owner_map, dead={0}, alive=[1, 2, 3, 4])
    assert a == b
    assert owner_map == identity_owner_map(5)  # input untouched


def test_reassign_chained_failures():
    owner_map = identity_owner_map(3)
    after_one = reassign(owner_map, dead={2}, alive=[0, 1])
    after_two = reassign(after_one, dead={1, 2}, alive=[0])
    assert set(after_two.values()) == {0}


def test_reassign_no_survivors_raises():
    with pytest.raises(ValueError):
        reassign(identity_owner_map(2), dead={0, 1}, alive=[])
