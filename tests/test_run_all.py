"""Smoke test for the standalone experiment driver."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path


def test_run_all_quick(tmp_path):
    script = Path(__file__).parent.parent / "benchmarks" / "run_all.py"
    proc = subprocess.run(
        [sys.executable, str(script), "--quick", "--out", str(tmp_path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "e1_serial_enumerators" in proc.stdout
    assert "e9_heuristics" in proc.stdout
    assert (tmp_path / "e1_serial_enumerators.json").exists()
    assert (tmp_path / "e9_heuristics.txt").exists()
