"""The OptimizerConfig front door: validation, kwargs-shim equivalence,
and the typed accessors on OptimizationResult.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro import (
    OptimizerConfig,
    RecordingTracer,
    Workload,
    WorkloadSpec,
    optimize,
)
from repro.config import ALL_ALGORITHMS
from repro.parallel import ParallelDP
from repro.plans import plan_signature
from repro.util.errors import ValidationError


def query_for(topology="cycle", n=7, seed=1):
    return Workload(WorkloadSpec(topology, n, seed=seed))[0]


# -- equivalence ---------------------------------------------------------


@pytest.mark.parametrize("algorithm", ["dpsize", "dpsub", "dpccp", "dpsva"])
def test_config_and_kwargs_agree_serial(algorithm):
    query = query_for()
    with pytest.warns(DeprecationWarning, match="config="):
        via_kwargs = optimize(query, algorithm=algorithm)
    via_config = optimize(query, config=OptimizerConfig(algorithm=algorithm))
    assert via_config.cost == via_kwargs.cost
    assert plan_signature(via_config.plan) == plan_signature(via_kwargs.plan)


@pytest.mark.parametrize("threads", [1, 4])
def test_config_and_kwargs_agree_parallel(threads):
    query = query_for("star", 7, seed=2)
    with pytest.warns(DeprecationWarning, match="config="):
        via_kwargs = optimize(
            query, algorithm="dpsva", threads=threads, allocation="equi_depth"
        )
    via_config = optimize(
        query,
        config=OptimizerConfig(
            algorithm="dpsva", threads=threads, allocation="equi_depth"
        ),
    )
    assert via_config.cost == via_kwargs.cost
    assert plan_signature(via_config.plan) == plan_signature(via_kwargs.plan)
    assert via_config.sim_report.total_time == pytest.approx(
        via_kwargs.sim_report.total_time
    )


def test_paralleldp_accepts_config():
    query = query_for()
    config = OptimizerConfig(algorithm="dpsize", threads=3)
    assert (
        ParallelDP(config=config).optimize(query).cost
        == ParallelDP(algorithm="dpsize", threads=3).optimize(query).cost
    )


# -- validation ----------------------------------------------------------


def test_unknown_algorithm():
    with pytest.raises(ValidationError, match="unknown algorithm"):
        OptimizerConfig(algorithm="dpmagic")
    assert "dpsize" in ALL_ALGORITHMS


def test_threads_must_be_positive():
    with pytest.raises(ValidationError, match="threads must be >= 1"):
        OptimizerConfig(algorithm="dpsize", threads=0)


def test_front_doors_share_default_algorithm():
    # Regression: ParallelDP used to default to "dpsva" while
    # OptimizerConfig and repro.optimize defaulted to "dpsize", so the
    # two front doors silently ran different kernels for the same call
    # shape.  All of them must agree.
    assert OptimizerConfig().algorithm == "dpsize"
    assert ParallelDP(threads=2).algorithm == "dpsize"
    query = query_for()
    assert optimize(query).algorithm == "dpsize"
    assert ParallelDP(threads=2).optimize(query).algorithm == "pdpsize"


def test_dpccp_has_no_parallel_kernel():
    with pytest.raises(ValidationError, match="no parallel kernel"):
        OptimizerConfig(algorithm="dpccp", threads=4)


def test_unknown_backend():
    with pytest.raises(ValidationError, match="unknown backend"):
        OptimizerConfig(algorithm="dpsva", threads=2, backend="gpu")


def test_parallel_options_require_threads():
    with pytest.raises(ValidationError, match="only apply to parallel"):
        OptimizerConfig(algorithm="dpsize", allocation="equi_depth")
    with pytest.raises(ValidationError, match="only apply to parallel"):
        OptimizerConfig(algorithm="dpsize", backend="threads")


def test_dynamic_allocation_accepted_by_all_backends():
    # Since the real backends grew true work stealing, every built-in
    # executor advertises supports_dynamic_allocation.
    for backend in ("simulated", "threads", "processes"):
        config = OptimizerConfig(
            algorithm="dpsva", threads=2, allocation="dynamic",
            backend=backend,
        )
        assert config.effective_allocation == "dynamic"


def test_dynamic_allocation_consults_capability_flag(monkeypatch):
    # An executor that opts out (the base-class default) is rejected at
    # config construction with one coherent error.
    from repro.parallel import executors as executors_mod
    from repro.parallel.executors.base import StratumExecutor

    class NoStealExecutor(StratumExecutor):
        def open(self, state):  # pragma: no cover - never run
            raise NotImplementedError

        def run_stratum(self, size, units, assignment):  # pragma: no cover
            raise NotImplementedError

        def close(self):  # pragma: no cover - never run
            raise NotImplementedError

    assert NoStealExecutor.supports_dynamic_allocation is False
    monkeypatch.setitem(executors_mod.EXECUTORS, "threads", NoStealExecutor)
    with pytest.raises(ValidationError, match="dynamic allocation"):
        OptimizerConfig(
            algorithm="dpsva", threads=2, allocation="dynamic",
            backend="threads",
        )


def test_tracer_must_be_a_tracer():
    with pytest.raises(ValidationError, match="tracer must be"):
        OptimizerConfig(algorithm="dpsize", tracer=object())


def test_config_is_frozen():
    config = OptimizerConfig(algorithm="dpsize")
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.algorithm = "dpsub"


def test_with_options_revalidates():
    config = OptimizerConfig(algorithm="dpsva", threads=4)
    assert config.with_options(threads=8).threads == 8
    with pytest.raises(ValidationError):
        config.with_options(threads=0)


def test_from_kwargs_rejects_unknown_options():
    with pytest.raises(ValidationError, match="unknown optimizer options"):
        OptimizerConfig.from_kwargs(algorithm="dpsize", turbo=True)


def test_optimize_rejects_config_plus_kwargs():
    query = query_for(n=4)
    with pytest.raises(ValidationError, match="not both"):
        optimize(
            query, config=OptimizerConfig(algorithm="dpsize"), threads=2
        )


def test_optimize_rejects_unknown_option():
    with pytest.warns(DeprecationWarning, match="config="):
        with pytest.raises(ValidationError, match="unknown optimizer options"):
            optimize(query_for(n=4), algorithm="dpsize", turbo=True)


def test_kwargs_shim_is_deprecated():
    query = query_for(n=4)
    with pytest.warns(DeprecationWarning, match="deprecated"):
        optimize(query, algorithm="dpsub")
    # The config= path and the all-defaults call stay silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        optimize(query)
        optimize(query, config=OptimizerConfig(algorithm="dpsub"))


def test_effective_defaults():
    serial = OptimizerConfig(algorithm="dpsize")
    assert not serial.is_parallel
    parallel = OptimizerConfig(algorithm="dpsva", threads=4)
    assert parallel.is_parallel
    assert parallel.effective_backend == "simulated"
    assert parallel.effective_allocation == "equi_depth"
    assert parallel.effective_oversubscription >= 1
    assert not parallel.effective_tracer.enabled


# -- typed accessors -----------------------------------------------------


def test_typed_accessors_parallel():
    tracer = RecordingTracer()
    result = optimize(
        query_for("star", 6, seed=4),
        config=OptimizerConfig(algorithm="dpsva", threads=2, tracer=tracer),
    )
    assert result.sim_report is result.extras["sim_report"]
    assert result.trace is tracer
    assert result.work_meter is result.meter


def test_typed_accessors_serial_defaults():
    result = optimize(query_for(n=5), config=OptimizerConfig(algorithm="dpsize"))
    assert result.sim_report is None
    assert result.trace is None
    assert result.work_meter.pairs_considered > 0


def test_optimize_sql_forwards_label(monkeypatch):
    from repro.catalog import generate_catalog
    from repro.sql import api as sql_api
    from repro.sql import optimize_sql, sql_to_query

    catalog = generate_catalog(4, seed=0)
    sql = "SELECT * FROM t0 a, t1 b WHERE a.c0 = b.c0"
    assert sql_to_query(sql, catalog, label="my-query").label == "my-query"

    seen = {}
    original = sql_api.sql_to_query

    def spy(sql, catalog, label="sql"):
        seen["label"] = label
        return original(sql, catalog, label=label)

    monkeypatch.setattr(sql_api, "sql_to_query", spy)
    result = optimize_sql(sql, catalog, label="my-query", algorithm="dpsize")
    assert seen["label"] == "my-query"
    assert result.cost > 0
