"""Tests for the plan-tree model."""

from __future__ import annotations

import pytest

from repro.plans import (
    JoinMethod,
    JoinNode,
    ScanNode,
    explain,
    plan_signature,
    validate_plan,
)
from repro.query import JoinGraph, Query, QueryContext
from repro.util.errors import ValidationError


def left_deep_3():
    return JoinNode(
        left=JoinNode(
            left=ScanNode(0), right=ScanNode(1), method=JoinMethod.HASH
        ),
        right=ScanNode(2),
        method=JoinMethod.NESTED_LOOP,
    )


def bushy_4():
    return JoinNode(
        left=JoinNode(left=ScanNode(0), right=ScanNode(1)),
        right=JoinNode(left=ScanNode(2), right=ScanNode(3)),
        method=JoinMethod.SORT_MERGE,
    )


def ctx_for(n, edges):
    g = JoinGraph(n, edges)
    q = Query(
        graph=g,
        relation_names=tuple(f"t{i}" for i in range(n)),
        cardinalities=tuple(10.0 for _ in range(n)),
    )
    return QueryContext(q)


def test_scan_node():
    s = ScanNode(3)
    assert s.mask == 0b1000
    assert s.size == 1
    assert s.depth() == 1
    assert s.is_left_deep()
    assert s.leaves() == [s]
    with pytest.raises(ValidationError):
        ScanNode(-1)


def test_join_node_mask_and_leaves():
    plan = left_deep_3()
    assert plan.mask == 0b111
    assert plan.size == 3
    assert [leaf.relation for leaf in plan.leaves()] == [0, 1, 2]
    assert plan.depth() == 3


def test_join_rejects_overlap():
    with pytest.raises(ValidationError):
        JoinNode(left=ScanNode(0), right=ScanNode(0))
    with pytest.raises(ValidationError):
        JoinNode(
            left=JoinNode(left=ScanNode(0), right=ScanNode(1)),
            right=ScanNode(1),
        )


def test_join_rejects_scan_method():
    with pytest.raises(ValidationError):
        JoinNode(left=ScanNode(0), right=ScanNode(1), method=JoinMethod.SCAN)


def test_left_deep_detection():
    assert left_deep_3().is_left_deep()
    assert not bushy_4().is_left_deep()
    right_deep = JoinNode(
        left=ScanNode(0),
        right=JoinNode(left=ScanNode(1), right=ScanNode(2)),
    )
    assert not right_deep.is_left_deep()


def test_plan_signature():
    assert plan_signature(left_deep_3()) == "((t0 HJ t1) NL t2)"
    assert plan_signature(ScanNode(7)) == "t7"
    assert plan_signature(bushy_4()) == "((t0 HJ t1) SM (t2 HJ t3))"


def test_explain_renders_tree():
    text = explain(left_deep_3(), relation_names=["a", "b", "c"])
    lines = text.splitlines()
    assert lines[0] == "NESTED_LOOP join"
    assert "  HASH join" in lines
    assert "    Scan a" in lines
    assert "  Scan c" in lines


def test_explain_annotation():
    text = explain(left_deep_3(), annotate=lambda node: f"size={node.size}")
    assert "[size=3]" in text
    assert "[size=1]" in text


def test_validate_plan_complete():
    ctx = ctx_for(3, [(0, 1, 0.1), (1, 2, 0.1)])
    validate_plan(left_deep_3(), ctx)
    partial = JoinNode(left=ScanNode(0), right=ScanNode(1))
    with pytest.raises(ValidationError):
        validate_plan(partial, ctx)
    validate_plan(partial, ctx, require_complete=False)


def test_validate_plan_out_of_range():
    ctx = ctx_for(2, [(0, 1, 0.1)])
    bad = JoinNode(left=ScanNode(0), right=ScanNode(5))
    with pytest.raises(ValidationError):
        validate_plan(bad, ctx, require_complete=False)


def test_validate_plan_cross_products():
    ctx = ctx_for(3, [(0, 1, 0.1), (1, 2, 0.1)])
    # (0 x 2) join 1 uses a cross product between 0 and 2.
    plan = JoinNode(
        left=JoinNode(left=ScanNode(0), right=ScanNode(2)),
        right=ScanNode(1),
    )
    validate_plan(plan, ctx)  # fine when cross products are allowed
    with pytest.raises(ValidationError):
        validate_plan(plan, ctx, require_connected=True)
    validate_plan(left_deep_3(), ctx, require_connected=True)


def test_join_method_properties():
    assert not JoinMethod.SCAN.is_join
    assert JoinMethod.HASH.is_join
    assert JoinMethod.SORT_MERGE.symmetric
    assert not JoinMethod.NESTED_LOOP.symmetric


def test_plan_to_dot_escapes_labels():
    # Regression: relation names containing quotes or backslashes used
    # to be interpolated raw into dot `label="..."` attributes,
    # producing unparseable Graphviz output.
    from repro.plans import plan_to_dot

    plan = JoinNode(left=ScanNode(0), right=ScanNode(1))
    dot = plan_to_dot(plan, relation_names=['evil"name', "back\\slash"])
    assert 'label="evil\\"name"' in dot
    assert 'label="back\\\\slash"' in dot
    # After removing escape pairs, every line's quotes stay balanced —
    # i.e. the raw quote in the name never terminates the attribute.
    for line in dot.splitlines():
        stripped = line.replace("\\\\", "").replace('\\"', "")
        assert stripped.count('"') % 2 == 0


def test_plan_signature_stability():
    # The signature is part of the diffing/caching surface: identical
    # trees must render identically and distinct shapes must differ.
    assert plan_signature(left_deep_3()) == plan_signature(left_deep_3())
    assert plan_signature(left_deep_3()) != plan_signature(bushy_4())
