"""Correctness of the real-thread and multiprocessing executors.

Both must produce exactly the serial optimum.  These tests use small
queries — the point is concurrency correctness, not performance (that is
benchmark E8's job).
"""

from __future__ import annotations

import sys

import pytest

from repro.parallel import PDPsize, PDPsva, ParallelDP
from repro.plans import plan_signature
from repro.query import WorkloadSpec, generate_query
from repro.sva import DPsva
from repro.enumerate import DPsize


def query_for(topology, n, seed=0):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_threaded_matches_serial(threads):
    query = query_for("cycle", 7, seed=1)
    serial = DPsva().optimize(query)
    parallel = PDPsva(threads=threads, backend="threads").optimize(query)
    assert parallel.cost == serial.cost
    assert plan_signature(parallel.plan) == plan_signature(serial.plan)
    assert parallel.meter.pairs_valid == serial.meter.pairs_valid
    assert parallel.extras["backend"] == "threads"
    walls = parallel.extras["stratum_wall_times"]
    assert len(walls) == 6
    assert all(w >= 0 for w in walls)


def test_threaded_latches_are_used():
    query = query_for("star", 6, seed=2)
    parallel = PDPsize(threads=2, backend="threads").optimize(query)
    assert parallel.meter.latch_acquisitions == parallel.meter.pairs_valid


@pytest.mark.parametrize("algorithm", ["dpsize", "dpsub", "dpsva"])
def test_threaded_all_algorithms(algorithm):
    query = query_for("random", 6, seed=3)
    serial = ParallelDP(algorithm=algorithm, threads=1).optimize(query)
    threaded = ParallelDP(
        algorithm=algorithm, threads=3, backend="threads"
    ).optimize(query)
    assert threaded.cost == serial.cost


@pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="needs fork()"
)
class TestProcessExecutor:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_process_matches_serial(self, threads):
        query = query_for("cycle", 7, seed=4)
        serial = DPsva().optimize(query)
        parallel = PDPsva(threads=threads, backend="processes").optimize(query)
        assert parallel.cost == serial.cost
        assert plan_signature(parallel.plan) == plan_signature(serial.plan)
        assert parallel.extras["rounds"] == 6
        assert parallel.extras["approx_bytes_sent"] > 0

    @pytest.mark.parametrize("algorithm", ["dpsize", "dpsub", "dpsva"])
    def test_process_all_algorithms(self, algorithm):
        query = query_for("star", 6, seed=5)
        serial = ParallelDP(algorithm=algorithm, threads=1).optimize(query)
        processed = ParallelDP(
            algorithm=algorithm, threads=2, backend="processes"
        ).optimize(query)
        assert processed.cost == serial.cost

    def test_process_meter_aggregation(self):
        """Worker meters must sum to the serial operation counts."""
        query = query_for("chain", 6, seed=6)
        serial = DPsize().optimize(query)
        parallel = PDPsize(threads=3, backend="processes").optimize(query)
        assert parallel.meter.pairs_valid == serial.meter.pairs_valid
        assert parallel.meter.pairs_considered == serial.meter.pairs_considered

    def test_process_cross_products(self):
        query = query_for("chain", 5, seed=7)
        serial = DPsize(cross_products=True).optimize(query)
        parallel = PDPsize(
            threads=2, backend="processes", cross_products=True
        ).optimize(query)
        assert parallel.cost == serial.cost
