"""Tests for the search-space analysis module."""

from __future__ import annotations

import math

import pytest

from repro.enumerate import DPsize, DPsub
from repro.query import QueryContext, WorkloadSpec, generate_query
from repro.query.analysis import (
    connected_sets_closed_form,
    count_connected_sets,
    count_csg_cmp_pairs_exact,
    csg_cmp_pairs_closed_form,
    dpsize_candidate_pairs,
    dpsub_submask_steps,
    plan_space_report,
    stratum_sizes,
)
from repro.util.errors import ValidationError


def ctx_for(topology, n, seed=0):
    return QueryContext(generate_query(WorkloadSpec(topology, n, seed=seed)))


@pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
@pytest.mark.parametrize("n", [3, 4, 5, 6, 8])
def test_closed_forms_match_exact_counts(topology, n):
    ctx = ctx_for(topology, n)
    assert count_connected_sets(ctx) == connected_sets_closed_form(topology, n)
    assert count_csg_cmp_pairs_exact(ctx) == csg_cmp_pairs_closed_form(
        topology, n
    )


def test_closed_form_edge_cases():
    assert connected_sets_closed_form("chain", 1) == 1
    assert connected_sets_closed_form("clique", 1) == 1
    with pytest.raises(ValidationError):
        connected_sets_closed_form("grid", 4)
    with pytest.raises(ValidationError):
        csg_cmp_pairs_closed_form("chain", 1)
    with pytest.raises(ValidationError):
        connected_sets_closed_form("chain", 0)


def test_stratum_sizes_sum():
    ctx = ctx_for("star", 6)
    sizes = stratum_sizes(ctx)
    assert sum(sizes) == count_connected_sets(ctx)
    assert sizes[1] == 6
    assert sizes[6] == 1


def test_dpsize_candidate_pairs_matches_meter():
    """The analytic candidate count equals DPsize's metered pairs."""
    for topology in ("chain", "star", "cycle"):
        query = generate_query(WorkloadSpec(topology, 7, seed=1))
        ctx = QueryContext(query)
        predicted = dpsize_candidate_pairs(stratum_sizes(ctx))
        measured = DPsize().optimize(query).meter.pairs_considered
        assert predicted == measured, topology


def test_dpsub_submask_steps_matches_meter():
    """The 3^n-style analytic count equals DPsub's metered submask walk
    when cross products are enabled."""
    query = generate_query(WorkloadSpec("chain", 6, seed=2))
    predicted = dpsub_submask_steps(6)
    measured = DPsub(cross_products=True).optimize(query).meter.submask_steps
    assert predicted == measured
    # Identity: sum_{k>=2} C(n,k)(2^k - 2) == 3^n - 2^(n+1) + 1.
    for n in range(2, 12):
        assert dpsub_submask_steps(n) == 3**n - 2 ** (n + 1) + 1


def test_plan_space_report():
    ctx = ctx_for("cycle", 6)
    report = plan_space_report(ctx)
    assert report["relations"] == 6
    assert report["edges"] == 6
    assert report["connected_sets"] == connected_sets_closed_form("cycle", 6)
    assert report["csg_cmp_pairs"] == csg_cmp_pairs_closed_form("cycle", 6)
    assert report["max_stratum"] >= 1
    assert report["dpsub_submask_steps"] == dpsub_submask_steps(6)


def test_clique_connected_sets_is_all_subsets():
    ctx = ctx_for("clique", 7)
    assert count_connected_sets(ctx) == 2**7 - 1
    assert stratum_sizes(ctx)[3] == math.comb(7, 3)
