"""Cross-run determinism guarantees.

The reproduction's measurement story rests on exact reproducibility:
workloads, optima, simulated clocks, and serialized artifacts must be
bit-identical across runs and independent of execution order.
"""

from __future__ import annotations

import pytest

from repro import (
    DPccp,
    DPsize,
    DPsub,
    ParallelDP,
    Workload,
    WorkloadSpec,
)
from repro.bench import result_to_dict, sim_report_to_dict
from repro.plans import plan_signature
from repro.sva import DPsva


def test_workload_bit_identical_across_instances():
    spec = WorkloadSpec("random", 8, seed=99, count=4)
    a = [q for q in Workload(spec)]
    b = [q for q in Workload(spec)]
    for qa, qb in zip(a, b):
        assert qa.cardinalities == qb.cardinalities
        assert [
            (e.u, e.v, e.selectivity) for e in qa.graph.edges
        ] == [(e.u, e.v, e.selectivity) for e in qb.graph.edges]


@pytest.mark.parametrize("algo_cls", [DPsize, DPsub, DPccp, DPsva])
def test_serial_runs_bit_identical(algo_cls):
    query = Workload(WorkloadSpec("cycle", 7, seed=5))[0]
    a = algo_cls().optimize(query)
    b = algo_cls().optimize(query)
    assert a.cost == b.cost
    assert plan_signature(a.plan) == plan_signature(b.plan)
    assert a.meter == b.meter


def test_sim_reports_bit_identical():
    query = Workload(WorkloadSpec("star", 9, seed=6))[0]
    optimizer = ParallelDP(algorithm="dpsva", threads=5)
    a = optimizer.optimize(query).extras["sim_report"]
    b = optimizer.optimize(query).extras["sim_report"]
    assert sim_report_to_dict(a) == sim_report_to_dict(b)


def test_plan_identical_across_all_algorithms_under_unique_costs():
    """With generic (non-tied) costs, every exact algorithm and every
    parallel configuration lands on the same plan signature."""
    query = Workload(WorkloadSpec("random", 7, seed=7))[0]
    signatures = set()
    for algo_cls in (DPsize, DPsub, DPccp, DPsva):
        signatures.add(plan_signature(algo_cls().optimize(query).plan))
    for threads in (1, 3, 8):
        for algorithm in ("dpsize", "dpsub", "dpsva"):
            result = ParallelDP(algorithm=algorithm, threads=threads).optimize(
                query
            )
            signatures.add(plan_signature(result.plan))
    assert len(signatures) == 1


def test_result_serialization_stable():
    query = Workload(WorkloadSpec("chain", 6, seed=8))[0]
    a = result_to_dict(ParallelDP(threads=2).optimize(query))
    b = result_to_dict(ParallelDP(threads=2).optimize(query))
    a.pop("elapsed_seconds")
    b.pop("elapsed_seconds")
    assert a == b
