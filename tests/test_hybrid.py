"""Hybrid optimizer: optimality-gap accounting, knob validation, tracing.

The adaptive contract under test:

* at or below the core cap the decomposition is a **single core** and
  the hybrid *is* exact DP — the gap is exactly zero, bit for bit;
* forced multi-core decompositions (small ``hybrid_core_cap``) stay
  within a stated bound of the DP optimum on the benchmark topologies,
  and are **never** worse than GOO (the flat-GOO backstop guarantee);
* every run is deterministic per seed and reports its decomposition
  through ``extras["hybrid"]`` and the ``hybrid.*`` trace group.
"""

from __future__ import annotations

import pytest

from repro import (
    GOO,
    OptimizerConfig,
    RecordingTracer,
    ValidationError,
    optimize,
)
from repro.hybrid import induced_subquery, relabel_plan
from repro.enumerate.base import make_context
from repro.plans import plan_signature
from repro.query.decompose import decompose
from repro.query.workload import WorkloadSpec, generate_query


def query_for(topology, n, seed=0):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


HYBRID = OptimizerConfig(algorithm="hybrid")
EXACT = OptimizerConfig(algorithm="dpsize")


# -- single-core decompositions: gap must be exactly zero -----------------

@pytest.mark.parametrize(
    "topology", ["chain", "cycle", "star", "grid", "random"]
)
@pytest.mark.parametrize("n", [5, 9, 12])
def test_single_core_gap_is_exactly_zero(topology, n):
    query = query_for(topology, n, seed=1)
    hybrid = optimize(query, config=HYBRID)
    exact = optimize(query, config=EXACT)
    info = hybrid.extras["hybrid"]
    assert len(info["core_sizes"]) == 1
    assert info["stitch_method"] == "single_core"
    assert info["dp_relations"] == n
    # Not approximately — the sub-query DP optimum re-priced globally is
    # the same float arithmetic as the full DP run.
    assert hybrid.cost == exact.cost


@pytest.mark.parametrize("n", [5, 9])
def test_single_core_gap_zero_on_cliques(n):
    query = query_for("clique", n, seed=1)
    hybrid = optimize(query, config=HYBRID)
    exact = optimize(query, config=EXACT)
    assert hybrid.extras["hybrid"]["stitch_method"] == "single_core"
    assert hybrid.cost == exact.cost


# -- forced multi-core: gap bounded, never worse than GOO -----------------

SMALL_CORES = OptimizerConfig(algorithm="hybrid", hybrid_core_cap=4)

# Stated bound: on star/chain/grid at 12 relations with cores capped at 4,
# the seeded decompositions stay within 2x of the bushy DP optimum
# (measured worst case 1.83, chain seed 1).
MULTI_CORE_BOUND = 2.0


@pytest.mark.parametrize("topology", ["star", "chain", "grid"])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_multi_core_gap_within_stated_bound(topology, seed):
    query = query_for(topology, 12, seed=seed)
    hybrid = optimize(query, config=SMALL_CORES)
    exact = optimize(query, config=EXACT)
    assert len(hybrid.extras["hybrid"]["core_sizes"]) > 1
    ratio = hybrid.cost / exact.cost
    assert 1.0 - 1e-9 <= ratio <= MULTI_CORE_BOUND


@pytest.mark.parametrize("topology", ["star", "chain", "cycle", "grid"])
@pytest.mark.parametrize("seed", [0, 1])
def test_multi_core_never_worse_than_goo(topology, seed):
    # Even where forced tiny cores hurt (cycles), the flat-GOO backstop
    # keeps the hybrid at or below its own heuristic baseline.
    query = query_for(topology, 12, seed=seed)
    hybrid = optimize(query, config=SMALL_CORES)
    goo = GOO().optimize(query)
    assert hybrid.cost <= goo.cost * (1.0 + 1e-9)


def test_hybrid_deterministic_per_seed():
    query = query_for("star", 30, seed=5)
    first = optimize(query, config=HYBRID)
    second = optimize(query, config=HYBRID)
    assert first.cost == second.cost
    assert plan_signature(first.plan) == plan_signature(second.plan)


def test_hybrid_parallel_cores_match_serial():
    query = query_for("star", 25, seed=2)
    serial = optimize(query, config=HYBRID)
    parallel = optimize(
        query,
        config=OptimizerConfig(algorithm="hybrid", threads=2),
    )
    # Parallel DP finds the same per-core optima; the stitch is seeded.
    assert parallel.cost == serial.cost


# -- decomposition and plumbing -------------------------------------------

def test_decomposition_covers_and_respects_cap():
    ctx = make_context(query_for("grid", 30, seed=0))
    decomposition = decompose(ctx, core_cap=6, density_threshold=0.3)
    union = 0
    for core in decomposition.cores:
        assert core.size <= 6
        assert union & core.mask == 0
        union |= core.mask
    assert union == ctx.all_mask


def test_induced_subquery_preserves_statistics():
    ctx = make_context(query_for("star", 10, seed=0))
    mask = 0b1011  # hub + two spokes
    sub = induced_subquery(ctx, mask, "core0")
    assert sub.graph.n == 3
    assert sub.cardinalities == (
        ctx.cards[0], ctx.cards[1], ctx.cards[3],
    )


def test_relabel_plan_maps_scans():
    ctx = make_context(query_for("chain", 4, seed=0))
    sub = induced_subquery(ctx, 0b1100, "core0")
    result = optimize(sub, config=EXACT)
    relabeled = relabel_plan(result.plan, {0: 2, 1: 3})
    assert relabeled.relations == 0b1100


def test_hybrid_trace_group():
    tracer = RecordingTracer()
    query = query_for("star", 20, seed=0)
    optimize(
        query, config=OptimizerConfig(algorithm="hybrid", tracer=tracer)
    )
    names = {event.name for event in tracer.events}
    assert "hybrid.decompose" in names
    assert "hybrid.dp_cores" in names
    assert "hybrid.stitch" in names
    assert "hybrid.cores" in names
    assert "hybrid.dp_share" in names
    assert "hybrid.stitch_cost" in names


def test_hybrid_extras_report_decomposition():
    query = query_for("star", 20, seed=0)
    result = optimize(query, config=HYBRID)
    info = result.extras["hybrid"]
    assert sum(info["core_sizes"]) == 20
    assert info["dp_relations"] + info["heuristic_relations"] == 20
    assert info["dp_algorithm"] == "dpsize"
    assert info["core_cap"] == 12


# -- knob validation -------------------------------------------------------

def test_hybrid_knobs_require_hybrid_algorithm():
    with pytest.raises(ValidationError):
        OptimizerConfig(algorithm="dpsize", hybrid_core_cap=8)
    with pytest.raises(ValidationError):
        OptimizerConfig(algorithm="goo", hybrid_density=0.5)
    with pytest.raises(ValidationError):
        OptimizerConfig(algorithm="dpsva", hybrid_dp="dpsize")


def test_hybrid_knob_ranges():
    with pytest.raises(ValidationError):
        OptimizerConfig(algorithm="hybrid", hybrid_core_cap=0)
    with pytest.raises(ValidationError):
        OptimizerConfig(algorithm="hybrid", hybrid_density=0.0)
    with pytest.raises(ValidationError):
        OptimizerConfig(algorithm="hybrid", hybrid_density=1.5)
    # The boundary density 1.0 (only cliques qualify as cores) is legal.
    OptimizerConfig(algorithm="hybrid", hybrid_density=1.0)


def test_hybrid_dp_must_be_exact():
    with pytest.raises(ValidationError):
        OptimizerConfig(algorithm="hybrid", hybrid_dp="goo")
    with pytest.raises(ValidationError):
        OptimizerConfig(algorithm="hybrid", hybrid_dp="exhaustive")


def test_hybrid_threads_require_parallel_core_kernel():
    # dpccp has no parallel variant, so threads cannot apply to it.
    with pytest.raises(ValidationError):
        OptimizerConfig(algorithm="hybrid", threads=4, hybrid_dp="dpccp")
    # The default kernel (dpsize) parallelizes fine.
    OptimizerConfig(algorithm="hybrid", threads=4)
