"""Unit and property tests for the bitmask quantifier-set utilities."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitsets import (
    all_subsets,
    bit,
    bits_of,
    first_bit,
    is_subset,
    iter_submasks,
    lowest_bit,
    mask_of,
    members,
    next_same_popcount,
    popcount,
    subsets_of_size,
    universe,
)

masks = st.integers(min_value=0, max_value=(1 << 20) - 1)
nonzero_masks = st.integers(min_value=1, max_value=(1 << 20) - 1)


def test_bit_and_mask_of():
    assert bit(0) == 1
    assert bit(5) == 32
    assert mask_of([0, 2, 4]) == 0b10101
    assert mask_of([]) == 0


def test_universe():
    assert universe(0) == 0
    assert universe(3) == 0b111
    assert popcount(universe(12)) == 12


def test_members_roundtrip():
    assert members(0b10110) == [1, 2, 4]
    assert mask_of(members(0b10110)) == 0b10110


@given(masks)
def test_members_sorted_and_consistent(mask):
    ms = members(mask)
    assert ms == sorted(ms)
    assert mask_of(ms) == mask
    assert len(ms) == popcount(mask)


def test_lowest_and_first_bit():
    assert lowest_bit(0b1100) == 0b100
    assert first_bit(0b1100) == 2
    with pytest.raises(ValueError):
        lowest_bit(0)


@given(nonzero_masks)
def test_first_bit_is_min_member(mask):
    assert first_bit(mask) == min(members(mask))


def test_is_subset():
    assert is_subset(0b0101, 0b1101)
    assert not is_subset(0b0011, 0b0101)
    assert is_subset(0, 0b1)
    assert is_subset(0, 0)


@given(masks, masks)
def test_is_subset_matches_set_semantics(a, b):
    assert is_subset(a, b) == set(members(a)).issubset(members(b))


def test_iter_submasks_small():
    assert sorted(iter_submasks(0b101)) == [0b001, 0b100]
    assert list(iter_submasks(0b1)) == []
    assert list(iter_submasks(0)) == []


@given(st.integers(min_value=0, max_value=(1 << 10) - 1))
def test_iter_submasks_complete(mask):
    subs = list(iter_submasks(mask))
    # All proper non-empty submasks, each exactly once.
    expected = {
        s for s in range(1, mask) if s & mask == s
    }
    assert set(subs) == expected
    assert len(subs) == len(expected)


@given(st.integers(min_value=0, max_value=(1 << 10) - 1))
def test_all_subsets_complete(mask):
    subs = list(all_subsets(mask))
    assert subs[0] == 0
    assert subs[-1] == mask
    assert len(subs) == 2 ** popcount(mask)
    assert subs == sorted(subs)


@given(st.integers(min_value=1, max_value=14), st.integers(min_value=0, max_value=14))
def test_subsets_of_size_counts(n, k):
    subs = subsets_of_size(universe(n), k)
    if k > n:
        assert subs == []
    else:
        assert len(subs) == math.comb(n, k)
        assert all(popcount(s) == k for s in subs)
        assert subs == sorted(subs)
        assert len(set(subs)) == len(subs)


def test_subsets_of_size_sparse_universe():
    subs = subsets_of_size(0b10101, 2)
    assert len(subs) == 3
    assert all(is_subset(s, 0b10101) for s in subs)


@given(nonzero_masks)
def test_next_same_popcount(mask):
    succ = next_same_popcount(mask)
    assert succ > mask
    assert popcount(succ) == popcount(mask)
    # No integer strictly between has the same popcount *and* ... (succ is
    # the immediate successor).
    for candidate in range(mask + 1, min(succ, mask + 64)):
        assert popcount(candidate) != popcount(mask) or candidate >= succ


@given(masks)
def test_bits_of_matches_members(mask):
    assert list(bits_of(mask)) == members(mask)
