"""Vectorized kernel tier ⇄ fused fast path parity.

The numpy tier (:class:`~repro.memo.vec.VecSoAMemo` batch costing plus the
:mod:`repro.enumerate.vkernels` filter kernels) is a performance upgrade of
the fused fast path, never a semantic one: memo contents and WorkMeter
totals must be bit-for-bit identical whether numpy is present, absent, or
explicitly disabled.  These tests pin that down serially (the executor
legs live in ``test_fast_path_parity.py``).
"""

from __future__ import annotations

import pytest

from repro import Workload, WorkloadSpec
from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CoutCostModel, StandardCostModel
from repro.enumerate.dpsize import DPsize
from repro.enumerate.dpsub import DPsub
from repro.memo.counters import WorkMeter
from repro.memo.soa import SoAMemo
from repro.memo.vec import PRESENCE_MAX_N, VecSoAMemo, make_vector_coster
from repro.query import QueryContext
from repro.sva.dpsva import DPsva
from repro.util.vectorize import numpy_available, resolve_vectorize

ALGORITHMS = {"dpsize": DPsize, "dpsub": DPsub, "dpsva": DPsva}

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy (perf extra) not installed"
)


def make_query(topology: str, n: int, seed: int):
    return Workload(WorkloadSpec(topology, n, seed=seed))[0]


def run_with_memo(
    algo_cls, query, memo_cls, cost_model=None, cross_products=False
):
    enum = algo_cls(cross_products=cross_products, fast_path=True)
    ctx = QueryContext(query)
    cost_model = cost_model or StandardCostModel()
    meter = WorkMeter()
    estimator = CardinalityEstimator(ctx, meter=meter)
    memo = memo_cls(ctx, cost_model, estimator=estimator, meter=meter)
    memo.init_scans()
    enum.populate(memo)
    return memo, meter


def memo_snapshot(memo) -> dict:
    return {
        e.mask: (e.cost, e.rows, e.left, e.right, int(e.method))
        for e in memo.entries()
    }


@needs_numpy
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize(
    "topology,n", [("chain", 9), ("star", 9), ("cycle", 9), ("clique", 7)]
)
def test_vec_memo_bit_for_bit(algorithm, topology, n):
    query = make_query(topology, n, seed=13)
    algo_cls = ALGORITHMS[algorithm]
    vec_memo, vec_meter = run_with_memo(algo_cls, query, VecSoAMemo)
    soa_memo, soa_meter = run_with_memo(algo_cls, query, SoAMemo)
    assert memo_snapshot(vec_memo) == memo_snapshot(soa_memo)
    assert vec_meter.as_dict() == soa_meter.as_dict()
    assert vec_memo.best().cost == soa_memo.best().cost


@needs_numpy
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_vec_cout_model_parity(algorithm):
    query = make_query("cycle", 8, seed=21)
    algo_cls = ALGORITHMS[algorithm]
    vec_memo, vec_meter = run_with_memo(
        algo_cls, query, VecSoAMemo, cost_model=CoutCostModel()
    )
    soa_memo, soa_meter = run_with_memo(
        algo_cls, query, SoAMemo, cost_model=CoutCostModel()
    )
    assert memo_snapshot(vec_memo) == memo_snapshot(soa_memo)
    assert vec_meter.as_dict() == soa_meter.as_dict()


@needs_numpy
@pytest.mark.parametrize("algorithm", ["dpsize", "dpsub"])
def test_vec_cross_products_parity(algorithm):
    """Cross products change both the admissible sets and the filter logic
    — the vectorized kernels must track the fused ones exactly."""
    query = make_query("chain", 8, seed=17)
    algo_cls = ALGORITHMS[algorithm]
    vec_memo, vec_meter = run_with_memo(
        algo_cls, query, VecSoAMemo, cross_products=True
    )
    soa_memo, soa_meter = run_with_memo(
        algo_cls, query, SoAMemo, cross_products=True
    )
    assert memo_snapshot(vec_memo) == memo_snapshot(soa_memo)
    assert vec_meter.as_dict() == soa_meter.as_dict()


@needs_numpy
def test_enumerator_auto_selects_vec_memo():
    """``vectorize=None`` (auto) upgrades to VecSoAMemo when numpy is
    importable; ``vectorize=False`` pins the plain SoA fast path.  Both
    land on identical results."""
    query = make_query("star", 8, seed=2)
    auto = DPsize(vectorize=None).optimize(query)
    forced_off = DPsize(vectorize=False).optimize(query)
    assert auto.cost == forced_off.cost
    assert auto.meter.as_dict() == forced_off.meter.as_dict()
    assert auto.memo_entries == forced_off.memo_entries


def test_resolve_vectorize_tristate():
    assert resolve_vectorize(False) is False
    assert resolve_vectorize(True) == numpy_available()
    assert resolve_vectorize(None) == numpy_available()


@needs_numpy
def test_presence_table_tracks_inserts():
    """The dense DPsub presence table flips exactly the inserted masks."""
    query = make_query("cycle", 7, seed=3)
    memo, _ = run_with_memo(DPsub, query, VecSoAMemo)
    presence = memo.presence_array
    assert presence is not None
    assert len(presence) == 1 << memo.ctx.n
    populated = {e.mask for e in memo.entries()}
    flagged = {i for i in range(len(presence)) if presence[i]}
    assert flagged == populated
    assert memo.ctx.n <= PRESENCE_MAX_N


@needs_numpy
def test_vec_coster_rejects_stale_subclass():
    """A cost-model subclass that overrides the scalar formula without
    refreshing the batched one must not get a vectorized coster."""

    class Stale(StandardCostModel):
        def join_cost(self, method, left_rows, right_rows, out_rows):
            return (
                super().join_cost(method, left_rows, right_rows, out_rows)
                + 1.0
            )

    assert make_vector_coster(StandardCostModel()) is not None
    assert make_vector_coster(CoutCostModel()) is not None
    assert make_vector_coster(Stale()) is None


@needs_numpy
@pytest.mark.parametrize("algorithm", ["dpsize", "dpsub"])
def test_vkernels_degrade_without_numpy(algorithm, monkeypatch):
    """With numpy masked out of the kernel module, the vectorized kernels
    delegate to the fused ones and still produce identical results (the
    no-numpy CI leg exercises the real ImportError path; this simulates
    it in-process)."""
    import repro.enumerate.vkernels as vk

    query = make_query("chain", 8, seed=5)
    algo_cls = ALGORITHMS[algorithm]
    baseline = algo_cls(vectorize=True).optimize(query)
    monkeypatch.setattr(vk, "_np", None)
    degraded = algo_cls(vectorize=True).optimize(query)
    assert degraded.cost == baseline.cost
    assert degraded.meter.as_dict() == baseline.meter.as_dict()
    assert degraded.memo_entries == baseline.memo_entries
