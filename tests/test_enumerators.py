"""Correctness tests for the serial enumerators.

The central invariant: DPsize, DPsub, DPccp, and DPsva must all find plans
of identical optimal cost, and for small queries that cost must equal the
brute-force optimum over every plan tree.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import (
    CardinalityEstimator,
    CoutCostModel,
    StandardCostModel,
    plan_cost,
)
from repro.enumerate import (
    DPccp,
    DPsize,
    DPsub,
    ExhaustiveEnumerator,
)
from repro.plans import validate_plan
from repro.query import QueryContext, WorkloadSpec, generate_query
from repro.sva import DPsva
from repro.util.errors import OptimizationError, ValidationError

ALL_DP = [DPsize, DPsub, DPccp, DPsva]
TOPOLOGIES = ["chain", "cycle", "star", "clique", "random"]


def query_for(topology, n, seed=0):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


@pytest.mark.parametrize("algo_cls", ALL_DP)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_dp_matches_exhaustive(algo_cls, topology):
    query = query_for(topology, 5, seed=3)
    reference = ExhaustiveEnumerator().optimize(query)
    result = algo_cls().optimize(query)
    assert result.cost == pytest.approx(reference.cost, rel=1e-12)
    validate_plan(result.plan, QueryContext(query), require_connected=True)


@pytest.mark.parametrize("algo_cls", ALL_DP)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_dp_matches_exhaustive_cross_products(algo_cls, topology):
    query = query_for(topology, 4, seed=5)
    reference = ExhaustiveEnumerator(cross_products=True).optimize(query)
    result = algo_cls(cross_products=True).optimize(query)
    assert result.cost == pytest.approx(reference.cost, rel=1e-12)
    validate_plan(result.plan, QueryContext(query))


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("n", [2, 3, 6, 8])
def test_all_dp_agree(topology, n):
    if topology == "cycle" and n < 3:
        pytest.skip("cycle needs n >= 3")
    query = query_for(topology, n, seed=n)
    costs = {}
    for algo_cls in ALL_DP:
        result = algo_cls().optimize(query)
        costs[algo_cls.__name__] = result.cost
    baseline = costs["DPsize"]
    for name, cost in costs.items():
        assert cost == pytest.approx(baseline, rel=1e-12), name


@settings(max_examples=25, deadline=None)
@given(
    topology=st.sampled_from(TOPOLOGIES),
    n=st.integers(min_value=2, max_value=7),
    seed=st.integers(min_value=0, max_value=1000),
    cross=st.booleans(),
)
def test_property_dp_agreement(topology, n, seed, cross):
    """All four DP enumerators agree on optimal cost for random queries."""
    if topology == "cycle" and n < 3:
        n = 3
    query = query_for(topology, n, seed=seed)
    results = [cls(cross_products=cross).optimize(query) for cls in ALL_DP]
    for result in results[1:]:
        assert result.cost == pytest.approx(results[0].cost, rel=1e-12)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=500),
)
def test_property_dp_optimal_vs_exhaustive(n, seed):
    query = query_for("random", n, seed=seed)
    reference = ExhaustiveEnumerator().optimize(query)
    for cls in ALL_DP:
        assert cls().optimize(query).cost == pytest.approx(
            reference.cost, rel=1e-12
        )


@pytest.mark.parametrize("algo_cls", ALL_DP)
def test_plan_cost_consistent_with_tree(algo_cls):
    """Memo-accumulated cost equals independent tree recosting."""
    query = query_for("random", 7, seed=9)
    result = algo_cls().optimize(query)
    ctx = QueryContext(query)
    est = CardinalityEstimator(ctx)
    recosted = plan_cost(result.plan, est, StandardCostModel())
    assert recosted == pytest.approx(result.cost, rel=1e-12)


@pytest.mark.parametrize("algo_cls", ALL_DP)
def test_cout_cost_model(algo_cls):
    query = query_for("chain", 6, seed=4)
    result = algo_cls().optimize(query, cost_model=CoutCostModel())
    reference = ExhaustiveEnumerator().optimize(query, cost_model=CoutCostModel())
    assert result.cost == pytest.approx(reference.cost, rel=1e-12)


def test_single_relation():
    query = query_for("chain", 1)
    for cls in ALL_DP:
        result = cls().optimize(query)
        assert result.plan.size == 1
        assert result.cost == pytest.approx(query.cardinalities[0])


def test_two_relations():
    query = query_for("chain", 2, seed=8)
    result = DPsize().optimize(query)
    assert result.plan.size == 2
    assert result.meter.pairs_valid == 2  # both operand orders


def test_disconnected_graph_rejected():
    from repro.query import JoinGraph, Query

    g = JoinGraph(4, [(0, 1, 0.1), (2, 3, 0.1)])
    q = Query(
        graph=g,
        relation_names=("a", "b", "c", "d"),
        cardinalities=(10.0, 10.0, 10.0, 10.0),
    )
    with pytest.raises(OptimizationError):
        DPsize().optimize(q)
    # With cross products it must succeed.
    result = DPsize(cross_products=True).optimize(q)
    assert result.plan.size == 4


def test_exhaustive_size_guard():
    query = query_for("chain", 9)
    with pytest.raises(ValidationError):
        ExhaustiveEnumerator(max_relations=8).optimize(query)


def test_result_reporting_fields():
    query = query_for("star", 6, seed=2)
    result = DPsize().optimize(query)
    assert result.algorithm == "dpsize"
    assert result.memo_entries >= 6
    assert result.elapsed_seconds >= 0
    assert result.meter.pairs_considered > 0
    assert "pairs=" in result.summary()


def test_dpsize_pairs_considered_cross_products():
    """With cross products, DPsize inspects the full stratum cross products."""
    query = query_for("chain", 5, seed=1)
    result = DPsize(cross_products=True).optimize(query)
    # All subsets memoized: strata sizes C(5,k).  Candidate pairs:
    # sum over s of sum over s1 of C(5,s1)*C(5,s-s1).
    import math

    expected = sum(
        math.comb(5, s1) * math.comb(5, s - s1)
        for s in range(2, 6)
        for s1 in range(1, s)
    )
    assert result.meter.pairs_considered == expected
