"""Shared-memory memo tier: unit protocol tests + segment hygiene.

Parity of shm runs against the packed-wire baseline lives in
``test_fast_path_parity.py``; this file covers the pieces in isolation
(:class:`~repro.memo.shm.RowSegment` round-trips, the publish/grow
generation protocol, the worker sync/overlay accounting, winner-slot
overflow) and the cleanup guarantee: **no leaked ``/dev/shm`` segments**
after normal close, worker crashes, or master-side mid-stratum faults.
"""

from __future__ import annotations

import pytest

from repro import Workload, WorkloadSpec
from repro.config import OptimizerConfig
from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import StandardCostModel
from repro.faults import InjectedFault
from repro.memo.counters import WorkMeter
from repro.memo.shm import (
    ROW_BYTES,
    SEGMENT_PREFIX,
    MasterShm,
    RowSegment,
    WorkerShmSession,
    list_segments,
    shm_available,
)
from repro.memo.soa import SoAMemo
from repro.parallel.scheduler import ParallelDP
from repro.query import QueryContext

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def make_memo(topology="chain", n=6, seed=1):
    query = Workload(WorkloadSpec(topology, n, seed=seed))[0]
    ctx = QueryContext(query)
    meter = WorkMeter()
    memo = SoAMemo(
        ctx,
        StandardCostModel(),
        estimator=CardinalityEstimator(ctx, meter=meter),
        meter=meter,
    )
    memo.init_scans()
    return memo


def snapshot(memo):
    return {
        e.mask: (e.cost, e.rows, e.left, e.right, int(e.method))
        for e in memo.entries()
    }


# -- RowSegment ---------------------------------------------------------


def test_row_segment_round_trip():
    memo = make_memo()
    rows = memo.row_count()
    seg = RowSegment.create(rows)
    try:
        assert seg.capacity == rows
        assert seg.nbytes == rows * ROW_BYTES
        assert seg.name.startswith(SEGMENT_PREFIX)
        seg.write_rows(0, memo.export_rows(0, rows))
        cols = seg.read_rows(0, rows)
        assert tuple(bytes(c) for c in cols) == tuple(
            bytes(c) for c in memo.export_rows(0, rows)
        )
    finally:
        seg.destroy()
    assert seg.name not in list_segments()


def test_row_segment_partial_write_offsets():
    """Rows written at an offset land in the right column slots."""
    memo = make_memo()
    rows = memo.row_count()
    seg = RowSegment.create(rows + 4)
    try:
        seg.write_rows(2, memo.export_rows(0, rows))
        cols = seg.read_rows(2, 2 + rows)
        assert tuple(bytes(c) for c in cols) == tuple(
            bytes(c) for c in memo.export_rows(0, rows)
        )
    finally:
        seg.destroy()


def test_destroy_is_idempotent():
    seg = RowSegment.create(8)
    seg.destroy()
    seg.destroy()  # already closed + unlinked: must not raise
    assert list_segments() == []


# -- MasterShm / WorkerShmSession protocol ------------------------------


def simulate_stratum(master_memo, inserts):
    """Append ``inserts`` candidate rows to the master memo the way
    ``apply_stratum`` would (min-merge of winner candidates)."""
    for mask, cost, rows, left, right, method in inserts:
        master_memo.merge_candidate(mask, cost, rows, left, right, method)


def fresh_candidates(memo, k):
    """``k`` synthetic next-stratum candidates not yet in the memo."""
    present = {e.mask for e in memo.entries()}
    n = memo.ctx.n
    out = []
    for mask in range(3, 1 << n):
        if mask in present or mask.bit_count() < 2:
            continue
        left = mask & -mask
        right = mask ^ left
        out.append((mask, float(mask), 10.0, left, right, 0))
        if len(out) == k:
            break
    return out


def test_publish_sync_round_trip():
    master_memo = make_memo()
    # Fork point: the replica starts as a copy of the seeded memo.
    replica = make_memo()
    master = MasterShm(master_memo, workers=1)
    session = WorkerShmSession(replica)
    try:
        # Stratum barrier: master merges new rows, publishes, worker syncs.
        batch = fresh_candidates(master_memo, 4)
        simulate_stratum(master_memo, batch)
        assert master.publish() == 4
        attached = session.sync(master.descriptor(0))
        assert attached == 1  # first descriptor → first attach
        assert snapshot(replica) == snapshot(master_memo)
        assert session.applied == master.published
        # Re-dispatch with no new published rows keeps the overlay.
        replica.merge_candidate(*fresh_candidates(replica, 1)[0])
        overlay_rows = replica.row_count() - session.overlay_base
        assert overlay_rows == 1
        assert session.sync(master.descriptor(0)) == 0
        assert replica.row_count() - session.overlay_base == 1
        # Next barrier: overlay dropped, replaced by master's merged rows.
        simulate_stratum(master_memo, fresh_candidates(master_memo, 2))
        master.publish()
        session.sync(master.descriptor(0))
        assert snapshot(replica) == snapshot(master_memo)
    finally:
        session.close()
        master.close()
    assert list_segments() == []


def test_grow_creates_new_generation_and_unlinks_old():
    # n=11 gives 2^11 candidate masks — enough to overflow the segment's
    # initial 1024-row capacity floor and force a generation change.
    master_memo = make_memo(n=11)
    master = MasterShm(master_memo, workers=1)
    try:
        first_name = master.descriptor(0)[1]
        capacity = master.segment_bytes // ROW_BYTES
        while master_memo.row_count() <= capacity:
            batch = fresh_candidates(master_memo, 64)
            assert batch, "ran out of masks before overflowing the segment"
            simulate_stratum(master_memo, batch)
        master.publish()
        second_name = master.descriptor(0)[1]
        assert second_name != first_name
        assert master.grows == 1
        assert first_name not in list_segments()
        # The new generation holds the *full* prefix, not just the tail.
        replica = make_memo(n=11)
        session = WorkerShmSession(replica)
        session.sync(master.descriptor(0))
        assert snapshot(replica) == snapshot(master_memo)
        session.close()
    finally:
        master.close()
    assert list_segments() == []


def test_winner_slot_overflow_and_grow(monkeypatch):
    # Shrink the initial slot so a handful of overlay rows overflows it.
    monkeypatch.setattr("repro.memo.shm.WINNER_SLOT_ROWS", 2)
    master_memo = make_memo(n=4)
    replica = make_memo(n=4)
    master = MasterShm(master_memo, workers=1)
    session = WorkerShmSession(replica)
    try:
        session.sync(master.descriptor(0))
        # Overlay bigger than the slot → write_winners refuses (wire
        # fallback) until the master grows the slot.
        simulate_stratum(replica, fresh_candidates(replica, 5))
        overlay = replica.row_count() - session.overlay_base
        assert overlay == 5
        assert session.write_winners() is None
        master.grow_winner_slot(0, 2 * overlay)
        assert master.winner_fallbacks == 1
        session.sync(master.descriptor(0))  # picks up the new slot name
        count = session.write_winners()
        assert count == overlay
        # Winner rows read back equal the overlay rows bit for bit.
        payload = master.read_winners(0, count)
        assert payload[0] == "shmwin"
        assert tuple(bytes(c) for c in payload[1:]) == tuple(
            bytes(c)
            for c in replica.export_rows(
                session.overlay_base, replica.row_count()
            )
        )
    finally:
        session.close()
        master.close()
    assert list_segments() == []


def test_retire_worker_unlinks_slot():
    memo = make_memo()
    master = MasterShm(memo, workers=2)
    try:
        slot_name = master.descriptor(1)[3]
        assert slot_name in list_segments()
        master.retire_worker(1)
        assert slot_name not in list_segments()
        # Descriptor for a retired worker carries no slot.
        assert master.descriptor(1)[3] == ""
    finally:
        master.close()
    assert list_segments() == []


def test_master_close_idempotent_and_counts():
    memo = make_memo()
    master = MasterShm(memo, workers=2)
    counters = master.close()
    assert counters["published_rows"] == memo.row_count()
    assert counters["published_bytes"] == memo.row_count() * ROW_BYTES
    again = master.close()
    assert again["published_rows"] == counters["published_rows"]
    assert list_segments() == []


# -- hygiene: executor runs must never leak segments --------------------


def run_shm(fault_plan=None, allocation=None, threads=3):
    query = Workload(WorkloadSpec("cycle", 9, seed=4))[0]
    dp = ParallelDP(
        config=OptimizerConfig(
            algorithm="dpsize",
            threads=threads,
            backend="processes",
            allocation=allocation,
            shared_memo=True,
            fault_plan=fault_plan,
        )
    )
    return dp.optimize(query)


def test_no_leak_after_normal_run():
    result = run_shm()
    assert result.extras["shm"]["enabled"]
    assert result.extras["shm"]["winner_fallbacks"] == 0
    assert list_segments() == []


def test_no_leak_after_worker_crash():
    result = run_shm(fault_plan="worker:crash@worker=1")
    assert result.extras["shm"]["enabled"]
    assert result.plan is not None
    assert list_segments() == []


def test_no_leak_after_repeated_worker_crashes():
    result = run_shm(
        fault_plan="worker:crash@worker=1,count=1;"
        "worker:crash@worker=2,count=1",
        threads=4,
    )
    assert result.plan is not None
    assert list_segments() == []


def test_no_leak_after_master_stratum_fault():
    """A master-side exception escapes the scheduler (by design), but its
    ``finally`` still reaches MasterShm.close — nothing leaks."""
    with pytest.raises(InjectedFault):
        run_shm(fault_plan="stratum:raise@stratum=3")
    assert list_segments() == []


def test_no_leak_dynamic_allocation():
    result = run_shm(allocation="dynamic")
    assert result.extras["shm"]["enabled"]
    assert list_segments() == []
