"""Tests for simulated-run timeline export."""

from __future__ import annotations

import pytest

from repro import PDPsva, Workload, WorkloadSpec
from repro.simx.timeline import render_gantt, timeline_rows


@pytest.fixture(scope="module")
def report():
    query = Workload(WorkloadSpec("star", 8, seed=4))[0]
    return PDPsva(threads=3).optimize(query).extras["sim_report"]


def test_timeline_rows_shape(report):
    rows = timeline_rows(report)
    assert len(rows) == 7 * 3  # strata 2..8, 3 threads
    for row in rows:
        assert row["busy"] >= 0
        assert row["contention"] >= 0
        assert row["idle"] >= -1e-9


def test_timeline_idle_accounting(report):
    """Per stratum, busy + contention + idle equals the slowest thread
    for every thread."""
    rows = timeline_rows(report)
    by_stratum: dict[int, list[dict]] = {}
    for row in rows:
        by_stratum.setdefault(row["stratum"], []).append(row)
    for stratum_rows in by_stratum.values():
        totals = [
            r["busy"] + r["contention"] + r["idle"] for r in stratum_rows
        ]
        assert max(totals) == pytest.approx(min(totals))


def test_render_gantt(report):
    chart = render_gantt(report)
    assert "dpsva x3" in chart
    assert chart.count("stratum") == 7
    # The slowest thread of a non-empty stratum has a full bar.
    assert "#" in chart
    for line in chart.splitlines():
        if line.startswith("  t"):
            bar = line.split(maxsplit=1)[1]
            assert len(bar) <= 49


def test_gantt_deterministic(report):
    query = Workload(WorkloadSpec("star", 8, seed=4))[0]
    other = PDPsva(threads=3).optimize(query).extras["sim_report"]
    assert render_gantt(other) == render_gantt(report)
    assert timeline_rows(other) == timeline_rows(report)
