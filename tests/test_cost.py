"""Tests for cardinality estimation and cost models."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog import generate_catalog
from repro.cost import (
    CardinalityEstimator,
    CoutCostModel,
    StandardCostModel,
    plan_cost,
    plan_rows,
)
from repro.plans import JoinMethod, JoinNode, ScanNode
from repro.query import JoinGraph, Query, QueryContext
from repro.util.bitsets import mask_of, universe
from repro.util.errors import ValidationError


@pytest.fixture
def tri_ctx():
    """Triangle query with hand-picked numbers for exact assertions."""
    g = JoinGraph(3, [(0, 1, 0.1), (1, 2, 0.01), (0, 2, 0.5)])
    q = Query(
        graph=g,
        relation_names=("a", "b", "c"),
        cardinalities=(100.0, 200.0, 50.0),
    )
    return QueryContext(q)


def test_singleton_rows(tri_ctx):
    est = CardinalityEstimator(tri_ctx)
    assert est.rows(0b001) == 100.0
    assert est.rows(0b010) == 200.0
    assert est.rows(0b100) == 50.0


def test_pair_rows(tri_ctx):
    est = CardinalityEstimator(tri_ctx)
    assert est.rows(0b011) == pytest.approx(100 * 200 * 0.1)
    assert est.rows(0b110) == pytest.approx(200 * 50 * 0.01)
    assert est.rows(0b101) == pytest.approx(100 * 50 * 0.5)


def test_full_rows_includes_all_edges(tri_ctx):
    est = CardinalityEstimator(tri_ctx)
    expected = 100 * 200 * 50 * 0.1 * 0.01 * 0.5
    assert est.rows(0b111) == pytest.approx(expected)


def test_rows_split_invariance(tri_ctx):
    """rows(L ∪ R) is independent of how the union is assembled."""
    est1 = CardinalityEstimator(tri_ctx)
    est2 = CardinalityEstimator(tri_ctx)
    # Force different memoization orders.
    a = est1.rows(0b111)
    est2.rows(0b110)
    est2.rows(0b101)
    b = est2.rows(0b111)
    assert a == pytest.approx(b)


def test_rows_clamped_to_one():
    g = JoinGraph(2, [(0, 1, 1e-4)])
    q = Query(graph=g, relation_names=("a", "b"), cardinalities=(2.0, 3.0))
    est = CardinalityEstimator(QueryContext(q))
    assert est.rows(0b11) == 1.0


def test_join_rows_equals_union(tri_ctx):
    est = CardinalityEstimator(tri_ctx)
    assert est.join_rows(0b001, 0b010) == est.rows(0b011)


def test_standard_cost_model_formulas():
    m = StandardCostModel(block_size=100)
    assert m.scan_cost(500) == 500
    assert m.join_cost(JoinMethod.NESTED_LOOP, 10, 20, 5) == 10 + 200
    assert m.join_cost(JoinMethod.BLOCK_NESTED_LOOP, 250, 20, 5) == 250 + 3 * 20
    assert m.join_cost(JoinMethod.HASH, 10, 20, 5) == pytest.approx(
        1.5 * 10 + 20
    )
    sm = m.join_cost(JoinMethod.SORT_MERGE, 8, 8, 5)
    assert sm == pytest.approx(2 * (8 * 3.169925001442312) + 16, rel=1e-6)


def test_sort_merge_symmetric():
    m = StandardCostModel()
    assert m.join_cost(JoinMethod.SORT_MERGE, 10, 99, 5) == pytest.approx(
        m.join_cost(JoinMethod.SORT_MERGE, 99, 10, 5)
    )


@given(
    st.floats(min_value=1, max_value=1e6),
    st.floats(min_value=1, max_value=1e6),
    st.floats(min_value=1, max_value=1e9),
)
def test_costs_positive(l, r, o):
    m = StandardCostModel()
    for method in m.methods:
        assert m.join_cost(method, l, r, o) > 0


def test_cheapest_join_picks_minimum():
    m = StandardCostModel()
    method, cost = m.cheapest_join(1000.0, 1000.0, 10.0)
    all_costs = {
        meth: m.join_cost(meth, 1000.0, 1000.0, 10.0) for meth in m.methods
    }
    assert cost == min(all_costs.values())
    assert all_costs[method] == cost


def test_cost_model_validation():
    with pytest.raises(ValidationError):
        StandardCostModel(block_size=0)
    with pytest.raises(ValidationError):
        StandardCostModel(hash_build_factor=0)


def test_cout_model(tri_ctx):
    m = CoutCostModel()
    est = CardinalityEstimator(tri_ctx)
    plan = JoinNode(
        left=JoinNode(
            left=ScanNode(0), right=ScanNode(1), method=JoinMethod.HASH
        ),
        right=ScanNode(2),
        method=JoinMethod.HASH,
    )
    expected = est.rows(0b011) + est.rows(0b111)
    assert plan_cost(plan, est, m) == pytest.approx(expected)


def test_plan_cost_matches_manual(tri_ctx):
    m = StandardCostModel()
    est = CardinalityEstimator(tri_ctx)
    plan = JoinNode(
        left=ScanNode(0), right=ScanNode(1), method=JoinMethod.NESTED_LOOP
    )
    expected = (
        m.scan_cost(100)
        + m.scan_cost(200)
        + m.join_cost(JoinMethod.NESTED_LOOP, 100, 200, est.rows(0b011))
    )
    assert plan_cost(plan, est, m) == pytest.approx(expected)
    assert plan_rows(plan, est) == est.rows(0b011)


def test_catalog_driven_estimates():
    catalog = generate_catalog(3, seed=2)
    g = JoinGraph(3, [(0, 1, 0.2), (1, 2, 0.3)])
    q = Query.from_catalog(catalog, g)
    est = CardinalityEstimator(QueryContext(q))
    assert est.rows(universe(3)) == pytest.approx(
        max(
            1.0,
            q.cardinalities[0]
            * q.cardinalities[1]
            * q.cardinalities[2]
            * 0.2
            * 0.3,
        )
    )
    assert est.rows(mask_of([0, 2])) == pytest.approx(
        q.cardinalities[0] * q.cardinalities[2]
    )
