"""AsyncOptimizerService: admission, quotas, singleflight, persistence.

The asyncio-native serving tier and its unified request/response API.
Complements ``test_service.py`` (which exercises the same semantics
through the synchronous facade) and ``test_sharded_cache.py`` (the cache
behind it).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json

import pytest

from repro import OptimizerConfig, optimize, optimize_batch
from repro.plans.validate import validate_plan
from repro.query.context import QueryContext
from repro.query.workload import WorkloadSpec, generate_query
from repro.service import (
    AsyncOptimizerService,
    OptimizeRequest,
    OptimizeResponse,
    OptimizerService,
    PERSIST_FORMAT,
    load_cache_file,
    spill_cache_file,
)
from repro.util.errors import ValidationError


def query_for(topology="star", n=8, seed=1):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


def run(coro):
    return asyncio.run(coro)


# -- request/response schema -------------------------------------------


def test_request_validation():
    query = query_for()
    assert OptimizeRequest(query).tenant == "default"
    with pytest.raises(ValidationError):
        OptimizeRequest(query, timeout=0)
    with pytest.raises(ValidationError):
        OptimizeRequest(query, timeout=-1.0)
    with pytest.raises(ValidationError):
        OptimizeRequest(query, tenant="")


def test_request_of_coercion():
    query = query_for()
    request = OptimizeRequest(query, tenant="etl")
    assert OptimizeRequest.of(request) is request
    override = OptimizeRequest.of(request, timeout=2.0)
    assert override.timeout == 2.0 and override.tenant == "etl"
    coerced = OptimizeRequest.of(query, tenant="adhoc")
    assert coerced.query is not None and coerced.tenant == "adhoc"


def test_response_validation():
    result = optimize(query_for(n=4))
    with pytest.raises(ValidationError):
        OptimizeResponse(result=result, source="wat", fingerprint="f",
                         elapsed_seconds=0.0)
    # Shed responses must carry a reason and the degraded flag.
    with pytest.raises(ValidationError):
        OptimizeResponse(result=None, source="shed", fingerprint=None,
                         elapsed_seconds=0.0, degraded=True)
    with pytest.raises(ValidationError):
        OptimizeResponse(result=None, source="shed", fingerprint=None,
                         elapsed_seconds=0.0, degraded=True,
                         shed_reason="bored")
    # Non-shed responses must carry a result.
    with pytest.raises(ValidationError):
        OptimizeResponse(result=None, source="hit", fingerprint="f",
                         elapsed_seconds=0.0)
    shed = OptimizeResponse(result=None, source="shed", fingerprint=None,
                            elapsed_seconds=0.0, degraded=True,
                            shed_reason="admission")
    assert shed.plan is None and shed.cost is None


# -- basic serving ------------------------------------------------------


def test_async_miss_then_hit():
    query = query_for()

    async def scenario():
        async with AsyncOptimizerService(
            OptimizerConfig(algorithm="dpsize")
        ) as service:
            cold = await service.optimize(query)
            warm = await service.optimize(query)
            stats = service.stats()
        return cold, warm, stats

    cold, warm, stats = run(scenario())
    assert cold.source == "miss" and not cold.degraded
    assert warm.source == "hit"
    assert warm.cost == cold.cost
    assert warm.fingerprint == cold.fingerprint
    assert stats.optimizations == 1 and stats.hits == 1


def test_singleflight_dedups_concurrent_async_misses():
    # The injected delay keeps the one real optimization on the worker
    # thread long enough that every other request finds the in-flight
    # entry and joins it as "shared" instead of racing to a warm cache.
    query = query_for(seed=3)

    async def scenario():
        async with AsyncOptimizerService(
            OptimizerConfig(
                algorithm="dpsize", cache_shards=4,
                fault_plan="service:delay@delay=0.2",
            )
        ) as service:
            responses = await asyncio.gather(
                *(service.optimize(query) for _ in range(8))
            )
            stats = service.stats()
        return responses, stats

    responses, stats = run(scenario())
    assert stats.optimizations == 1  # one DP run for eight requests
    sources = sorted(r.source for r in responses)
    assert sources.count("miss") == 1
    assert sources.count("shared") == 7
    assert len({r.cost for r in responses}) == 1
    assert all(not r.degraded for r in responses)


def test_deadline_degrades_to_fallback_plan():
    query = query_for("clique", 9, seed=5)

    async def scenario():
        async with AsyncOptimizerService(
            OptimizerConfig(algorithm="dpsub")
        ) as service:
            return await service.optimize(query, timeout=0.001)

    response = run(scenario())
    assert response.source == "fallback" and response.degraded
    validate_plan(response.plan, QueryContext(query))


def test_service_bound_to_one_loop_and_closed_rejects():
    query = query_for(n=4)
    service = run_holder = {}

    async def first():
        svc = AsyncOptimizerService(OptimizerConfig(algorithm="dpsize"))
        await svc.optimize(query)
        run_holder["svc"] = svc

    run(first())

    async def second():
        with pytest.raises(ValidationError, match="different event loop"):
            await run_holder["svc"].optimize(query)

    run(second())

    async def third():
        svc = AsyncOptimizerService(OptimizerConfig(algorithm="dpsize"))
        await svc.close()
        with pytest.raises(ValidationError, match="closed"):
            await svc.optimize(query)

    run(third())


# -- admission control --------------------------------------------------


def test_admission_sheds_waiting_overflow_and_recovers():
    slow, other = query_for(seed=11), query_for(seed=12)

    async def scenario():
        # The one-shot delay fault pins the first miss on the worker
        # thread so the admission counter is observably at the limit.
        async with AsyncOptimizerService(
            OptimizerConfig(
                algorithm="dpsize", admission_limit=1,
                fault_plan="service:delay@delay=0.3",
            )
        ) as service:
            first = asyncio.create_task(service.optimize(slow))
            while service._waiting < 1:  # first request is now suspended
                await asyncio.sleep(0.001)
            shed = await service.optimize(other)
            admitted = await first
            # Capacity freed: the same query is admitted afterwards.
            retry = await service.optimize(other)
            stats = service.stats()
        return shed, admitted, retry, stats

    shed, admitted, retry, stats = run(scenario())
    assert shed.source == "shed" and shed.shed_reason == "admission"
    assert shed.degraded and shed.result is None
    assert admitted.source == "miss"
    assert retry.source == "miss" and not retry.degraded
    assert stats.sheds == 1 and stats.quota_rejections == 0


def test_cache_hits_never_shed_under_admission_pressure():
    hot, cold = query_for(seed=21), query_for(seed=22)

    async def scenario():
        async with AsyncOptimizerService(
            OptimizerConfig(
                algorithm="dpsize", admission_limit=1,
                fault_plan="service:delay@delay=0.3,count=inf",
            )
        ) as service:
            await service.optimize(hot)  # warm the cache
            miss = asyncio.create_task(service.optimize(cold))
            while service._waiting < 1:
                await asyncio.sleep(0.001)
            hits = [await service.optimize(hot) for _ in range(5)]
            await miss
            stats = service.stats()
        return hits, stats

    hits, stats = run(scenario())
    assert all(h.source == "hit" for h in hits)
    assert stats.sheds == 0


# -- per-tenant quotas --------------------------------------------------


def test_quota_sheds_greedy_tenant_only():
    query = query_for(seed=31)

    async def scenario():
        async with AsyncOptimizerService(
            OptimizerConfig(
                algorithm="dpsize", quota_rate=0.5, quota_burst=1
            )
        ) as service:
            ok = await service.optimize(query, tenant="greedy")
            shed = await service.optimize(query, tenant="greedy")
            other = await service.optimize(query, tenant="patient")
            stats = service.stats()
        return ok, shed, other, stats

    ok, shed, other, stats = run(scenario())
    assert ok.source == "miss"
    assert shed.source == "shed" and shed.shed_reason == "quota"
    assert shed.tenant == "greedy"
    assert other.source == "hit"  # own bucket, and the plan is cached
    assert stats.quota_rejections == 1 and stats.sheds == 1


# -- warm-start persistence --------------------------------------------


def test_warm_start_round_trip(tmp_path):
    query = query_for(seed=41)
    config = OptimizerConfig(
        algorithm="dpsize", warm_start_path=str(tmp_path / "warm.jsonl")
    )

    async def cold_run():
        async with AsyncOptimizerService(config) as service:
            response = await service.optimize(query)
        return response

    cold = run(cold_run())
    assert cold.source == "miss"

    async def warm_run():
        async with AsyncOptimizerService(config) as service:
            response = await service.optimize(query)
            stats = service.stats()
        return response, stats

    warm, stats = run(warm_run())
    assert stats.warm_start_entries == 1
    assert warm.source == "hit"
    assert warm.cost == cold.cost
    assert warm.result.extras.get("warm_start") is True
    validate_plan(warm.plan, QueryContext(query))


def test_degraded_results_are_not_spilled(tmp_path):
    path = tmp_path / "warm.jsonl"
    good = optimize(query_for(n=5, seed=42))
    degraded = dataclasses.replace(
        good, extras={**good.extras, "source": "fallback"}
    )
    count = spill_cache_file(
        path, [("good", good), ("bad", degraded)],
        config_digest="d", algorithm="dpsize",
    )
    assert count == 1
    loaded = load_cache_file(path, config_digest="d")
    assert [key for key, _ in loaded] == ["good"]
    restored = loaded[0][1]
    assert restored.cost == good.cost
    assert restored.extras.get("warm_start") is True


def test_load_rejects_digest_and_format_mismatch(tmp_path):
    path = tmp_path / "warm.jsonl"
    result = optimize(query_for(n=5, seed=43))
    spill_cache_file(path, [("k", result)],
                     config_digest="digest-a", algorithm="dpsize")
    with pytest.raises(ValidationError, match="digest"):
        load_cache_file(path, config_digest="digest-b")

    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text(json.dumps({"format": "someone.else.v9"}) + "\n")
    with pytest.raises(ValidationError, match=PERSIST_FORMAT):
        load_cache_file(bogus, config_digest="digest-a")


def test_load_rejects_truncated_file(tmp_path):
    path = tmp_path / "warm.jsonl"
    results = [
        ("k1", optimize(query_for(n=5, seed=44))),
        ("k2", optimize(query_for(n=5, seed=45))),
    ]
    spill_cache_file(path, results, config_digest="d", algorithm="dpsize")
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")  # drop the last entry
    with pytest.raises(ValidationError):
        load_cache_file(path, config_digest="d")


def test_rejected_warm_start_file_is_ignored_not_fatal(tmp_path):
    path = tmp_path / "warm.jsonl"
    path.write_text("this is not json\n")
    config = OptimizerConfig(
        algorithm="dpsize", warm_start_path=str(path)
    )

    async def scenario():
        async with AsyncOptimizerService(config) as service:
            response = await service.optimize(query_for(seed=46))
            stats = service.stats()
        return response, stats

    response, stats = run(scenario())
    assert response.source == "miss"  # served fresh, corruption absorbed
    assert stats.warm_start_entries == 0


# -- API alignment ------------------------------------------------------


def test_module_level_batch_matches_service_batch():
    q1, q2 = query_for(seed=51), query_for(seed=52)
    config = OptimizerConfig(algorithm="dpsize")
    stream = [OptimizeRequest(q1), OptimizeRequest(q2), OptimizeRequest(q1)]

    module_responses = optimize_batch(stream, config)
    with OptimizerService(config) as service:
        service_responses = service.optimize_batch(stream)

    assert len(module_responses) == len(service_responses) == 3
    for mod, svc in zip(module_responses, service_responses):
        assert isinstance(mod, OptimizeResponse)
        assert isinstance(svc, OptimizeResponse)
        assert mod.cost == svc.cost
        assert mod.fingerprint == svc.fingerprint
        assert mod.tenant == svc.tenant == "default"
    # Identical provenance semantics: one cold optimization per distinct
    # query, and the duplicate answered from cache/singleflight.
    assert module_responses[0].source in ("miss", "shared")
    assert module_responses[2].source in ("hit", "shared")


def test_sync_facade_accepts_requests_and_tenants():
    query = query_for(seed=53)
    with OptimizerService(OptimizerConfig(algorithm="dpsize")) as service:
        cold = service.optimize(OptimizeRequest(query, tenant="etl"))
        warm = service.optimize(query, tenant="etl")
    assert cold.source == "miss" and cold.tenant == "etl"
    assert warm.source == "hit" and warm.tenant == "etl"
