"""Tests for the memo table and work meter."""

from __future__ import annotations

import pytest

from repro.cost import CardinalityEstimator, StandardCostModel
from repro.memo import LockStripedMemo, Memo, WorkMeter, extract_plan
from repro.memo.counters import FIELDS
from repro.plans import JoinMethod, validate_plan
from repro.query import JoinGraph, Query, QueryContext
from repro.util.errors import OptimizationError


@pytest.fixture
def ctx3():
    g = JoinGraph(3, [(0, 1, 0.1), (1, 2, 0.2)])
    q = Query(
        graph=g,
        relation_names=("a", "b", "c"),
        cardinalities=(100.0, 50.0, 20.0),
    )
    return QueryContext(q)


def make_memo(ctx, memo_cls=Memo):
    return memo_cls(ctx, StandardCostModel())


def test_init_scans(ctx3):
    memo = make_memo(ctx3)
    memo.init_scans()
    assert len(memo) == 3
    for rel in range(3):
        entry = memo.entry(1 << rel)
        assert entry is not None
        assert entry.is_scan
        assert entry.method is JoinMethod.SCAN
        assert entry.rows == ctx3.cards[rel]
        assert entry.cost == ctx3.cards[rel]  # scan cost = rows


def test_consider_join_inserts_and_improves(ctx3):
    memo = make_memo(ctx3)
    memo.init_scans()
    memo.consider_join(0b001, 0b010)
    entry = memo.entry(0b011)
    assert entry is not None
    assert not entry.is_scan
    first_cost = entry.cost
    # The reverse operand order may or may not improve; either way the
    # stored cost can only go down.
    memo.consider_join(0b010, 0b001)
    assert memo.entry(0b011).cost <= first_cost


def test_consider_join_keeps_cheapest_method(ctx3):
    memo = make_memo(ctx3)
    memo.init_scans()
    memo.consider_join(0b001, 0b010)
    entry = memo.entry(0b011)
    model = StandardCostModel()
    est = memo.estimator
    best = min(
        model.join_cost(m, 100.0, 50.0, est.rows(0b011))
        for m in model.methods
    )
    assert entry.cost == pytest.approx(100.0 + 50.0 + best)


def test_sets_of_size_sorted(ctx3):
    memo = make_memo(ctx3)
    memo.init_scans()
    memo.consider_join(0b010, 0b100)
    memo.consider_join(0b001, 0b010)
    sizes = memo.sets_of_size(2)
    assert sizes == sorted(sizes)
    assert set(sizes) == {0b011, 0b110}
    assert memo.sets_of_size(1) == [0b001, 0b010, 0b100]


def test_best_raises_without_complete_plan(ctx3):
    memo = make_memo(ctx3)
    memo.init_scans()
    with pytest.raises(OptimizationError):
        memo.best()


def test_extract_plan(ctx3):
    memo = make_memo(ctx3)
    memo.init_scans()
    memo.consider_join(0b001, 0b010)
    memo.consider_join(0b011, 0b100)
    plan = extract_plan(memo)
    validate_plan(plan, ctx3)
    assert plan.mask == 0b111
    with pytest.raises(OptimizationError):
        extract_plan(memo, 0b101)


def test_meter_counts_inserts(ctx3):
    meter = WorkMeter()
    memo = Memo(ctx3, StandardCostModel(), meter=meter)
    memo.init_scans()
    memo.consider_join(0b001, 0b010)
    assert meter.memo_inserts == 1
    assert meter.plans_emitted == len(StandardCostModel().methods)


def test_tie_breaking_is_order_independent(ctx3):
    """Equal-cost plans resolve by (left, right, method) key, so emission
    order does not matter."""
    from repro.cost import CoutCostModel

    # Under C_out all splits of the full set cost the same (same output),
    # so tie-breaking is fully exercised.
    def run(order):
        memo = Memo(ctx3, CoutCostModel())
        memo.init_scans()
        for left, right in order:
            memo.consider_join(left, right)
        return memo.entry(0b011).key()

    a = run([(0b001, 0b010), (0b010, 0b001)])
    b = run([(0b010, 0b001), (0b001, 0b010)])
    assert a == b


def test_merge_candidate(ctx3):
    memo = make_memo(ctx3)
    memo.init_scans()
    assert memo.merge_candidate(0b011, 42.0, 10.0, 0b001, 0b010, JoinMethod.HASH)
    assert not memo.merge_candidate(
        0b011, 50.0, 10.0, 0b010, 0b001, JoinMethod.HASH
    )
    assert memo.merge_candidate(
        0b011, 41.0, 10.0, 0b010, 0b001, JoinMethod.HASH
    )
    assert memo.entry(0b011).cost == 41.0


def test_meter_merge_and_dict():
    a = WorkMeter()
    b = WorkMeter()
    a.pairs_considered = 5
    b.pairs_considered = 3
    b.sva_skips = 2
    a.merge(b)
    assert a.pairs_considered == 8
    assert a.sva_skips == 2
    d = a.as_dict()
    assert set(d) == set(FIELDS)
    c = a.copy()
    assert c == a
    c.pairs_valid += 1
    assert c != a


def test_meter_rejected_property():
    m = WorkMeter()
    m.disjoint_fail = 2
    m.connectivity_fail = 3
    m.operand_missing = 1
    assert m.pairs_rejected == 6


def test_lock_striped_memo_matches_plain(ctx3):
    plain = make_memo(ctx3)
    plain.init_scans()
    plain.consider_join(0b001, 0b010)
    striped = make_memo(ctx3, LockStripedMemo)
    striped.init_scans()
    striped.consider_join(0b001, 0b010)
    assert striped.entry(0b011).cost == plain.entry(0b011).cost
    assert striped.meter.latch_acquisitions == 1


def test_estimator_shared_rows(ctx3):
    est = CardinalityEstimator(ctx3)
    memo = Memo(ctx3, StandardCostModel(), estimator=est)
    memo.init_scans()
    memo.consider_join(0b001, 0b010)
    assert memo.entry(0b011).rows == est.rows(0b011)
