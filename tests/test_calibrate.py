"""Tests for virtual-clock calibration."""

from __future__ import annotations

import pytest

from repro import DPsize, Workload, WorkloadSpec
from repro.simx import SimCostParams
from repro.simx.calibrate import calibrate_seconds_per_unit, estimated_seconds
from repro.util.errors import ValidationError


def test_calibration_positive_and_sane():
    scale = calibrate_seconds_per_unit(n=8, queries=2, seed=1)
    assert scale > 0
    # A virtual unit corresponds to a handful of Python bytecodes; on any
    # plausible host that is between a tenth of a nanosecond and a
    # millisecond.
    assert 1e-10 < scale < 1e-3


def test_calibration_predicts_serial_wall_time_same_host():
    """The fitted scale maps a *different* serial run's virtual work back
    to its wall time within a loose factor (same interpreter, same box)."""
    params = SimCostParams()
    scale = calibrate_seconds_per_unit(params, n=9, queries=2, seed=2)
    query = Workload(WorkloadSpec("cycle", 10, seed=3))[0]
    result = DPsize().optimize(query)
    predicted = estimated_seconds(params.work_time(result.meter), scale)
    assert predicted == pytest.approx(result.elapsed_seconds, rel=3.0)


def test_calibration_validation():
    with pytest.raises(ValidationError):
        calibrate_seconds_per_unit(queries=0)
    with pytest.raises(ValidationError):
        estimated_seconds(10.0, 0.0)
