"""The trace subsystem: tracer primitives, instrumentation coverage,
JSONL round-trips, cross-process aggregation, and CLI rendering.

The contract under test is the one docs/observability.md promises:
``NullTracer`` costs nothing, ``RecordingTracer`` sees per-stratum spans
and per-worker counters on every backend, and a saved trace file renders
back into the same tables.
"""

from __future__ import annotations

import sys

import pytest

from repro import (
    NullTracer,
    OptimizerConfig,
    RecordingTracer,
    TraceEvent,
    Workload,
    WorkloadSpec,
    optimize,
)
from repro.cli import main as cli_main
from repro.trace import (
    NULL_TRACER,
    events_to_jsonl,
    parse_jsonl,
    per_comm_rows,
    per_stratum_rows,
    per_worker_rows,
    read_jsonl,
    render_trace,
    trace_summary,
    tracer_from_jsonl,
    write_jsonl,
)

BACKENDS = ["simulated", "threads"]
if sys.platform in ("linux", "darwin"):
    BACKENDS.append("processes")


def query_for(topology="star", n=7, seed=3):
    return Workload(WorkloadSpec(topology, n, seed=seed))[0]


# -- primitives ----------------------------------------------------------


def test_span_nesting_depths():
    tracer = RecordingTracer()
    with tracer.span("outer"):
        with tracer.span("middle"):
            with tracer.span("inner"):
                pass
    by_name = {e.name: e for e in tracer.events}
    assert by_name["outer"].depth == 0
    assert by_name["middle"].depth == 1
    assert by_name["inner"].depth == 2
    # Spans record on exit, so the innermost lands first.
    assert [e.name for e in tracer.events] == ["inner", "middle", "outer"]


def test_span_records_on_exception():
    tracer = RecordingTracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    assert len(tracer.spans("doomed")) == 1


def test_counters_and_gauges():
    tracer = RecordingTracer()
    tracer.counter("hits")
    tracer.counter("hits", 4, size=2)
    tracer.gauge("level", 0.5, worker=1)
    assert tracer.total("hits") == 5
    assert tracer.counters("hits")[1].attrs == {"size": 2}
    assert tracer.gauges("level")[0].value == 0.5


def test_null_tracer_is_free():
    null = NullTracer()
    assert not null.enabled
    # The span context manager is one shared singleton: a disabled trace
    # point allocates nothing.
    assert null.span("a") is null.span("b", size=3)
    assert null.span("a") is NULL_TRACER.span("a")
    null.counter("x")
    null.gauge("y", 1.0)  # no-ops, nothing to assert beyond not raising


def test_recording_tracer_is_truthy_when_empty():
    # Regression: ``__len__`` made a fresh tracer falsy, which silently
    # disabled ``if tracer:`` guards in the process executor.
    tracer = RecordingTracer()
    assert len(tracer) == 0
    assert bool(tracer)


def test_ingest_stamps_extra_attrs():
    child = RecordingTracer()
    with child.span("worker.stratum", size=2):
        pass
    parent = RecordingTracer()
    parent.ingest(child.payload(), worker=7)
    (span,) = parent.spans("worker.stratum")
    assert span.attrs == {"size": 2, "worker": 7}


# -- instrumentation coverage -------------------------------------------


@pytest.mark.parametrize("algorithm", ["dpsize", "dpsub", "dpccp", "dpsva"])
def test_serial_enumerators_emit_strata(algorithm):
    tracer = RecordingTracer()
    result = optimize(
        query_for(n=6),
        config=OptimizerConfig(algorithm=algorithm, tracer=tracer),
    )
    assert result.trace is tracer
    assert len(tracer.spans("optimize")) == 1
    sizes = sorted(e.attrs["size"] for e in tracer.spans("stratum"))
    assert sizes == [2, 3, 4, 5, 6]
    assert tracer.total("pairs.considered") == result.meter.pairs_considered
    assert tracer.total("memo.inserts") == result.meter.memo_inserts


@pytest.mark.parametrize("backend", BACKENDS)
def test_parallel_backends_emit_strata_and_workers(backend):
    tracer = RecordingTracer()
    result = optimize(
        query_for(n=7),
        config=OptimizerConfig(
            algorithm="dpsize", threads=4, backend=backend, tracer=tracer
        ),
    )
    serial = optimize(
        query_for(n=7), config=OptimizerConfig(algorithm="dpsize")
    )
    assert result.cost == serial.cost
    sizes = sorted(e.attrs["size"] for e in tracer.spans("stratum"))
    assert sizes == [2, 3, 4, 5, 6, 7]
    workers = {e.attrs["worker"] for e in tracer.counters("worker.units")}
    assert workers == {0, 1, 2, 3}
    # Every stratum reports one units count and one barrier gauge per
    # worker, on every backend.
    assert len(tracer.counters("worker.units")) == 6 * 4
    assert len(tracer.gauges("worker.barrier_wait")) == 6 * 4
    assert all(g.value >= 0 for g in tracer.gauges("worker.barrier_wait"))


@pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="needs fork()"
)
def test_process_backend_aggregates_child_spans():
    tracer = RecordingTracer()
    optimize(
        query_for(n=7),
        config=OptimizerConfig(
            algorithm="dpsize", threads=4, backend="processes", tracer=tracer
        ),
    )
    child_spans = tracer.spans("worker.stratum")
    # 6 strata x 4 workers, each stamped with its worker id on ingest.
    assert len(child_spans) == 6 * 4
    assert {e.attrs["worker"] for e in child_spans} == {0, 1, 2, 3}
    assert {e.attrs["size"] for e in child_spans} == {2, 3, 4, 5, 6, 7}


def test_disabled_tracing_leaves_no_extras():
    result = optimize(query_for(n=6), config=OptimizerConfig(algorithm="dpsize"))
    assert result.trace is None
    assert "trace" not in result.extras


def test_memo_contention_counter_exists():
    tracer = RecordingTracer()
    result = optimize(
        query_for(n=7),
        config=OptimizerConfig(
            algorithm="dpsize", threads=4, backend="threads", tracer=tracer
        ),
    )
    # Contention is workload-dependent; the invariant is that every latch
    # take was metered and the counter never exceeds acquisitions.
    assert result.meter.latch_acquisitions >= result.meter.pairs_valid
    assert result.meter.latch_contended <= result.meter.latch_acquisitions


# -- export / render ----------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    tracer = RecordingTracer()
    with tracer.span("optimize", algorithm="dpsize"):
        tracer.counter("pairs.considered", 12, size=2)
        tracer.gauge("worker.busy", 1.5, size=2, worker=0)
    path = tmp_path / "run.jsonl"
    write_jsonl(tracer.events, str(path), meta={"threads": 4})
    events, meta = read_jsonl(str(path))
    assert meta["format"] == "repro-trace/1"
    assert meta["threads"] == 4
    assert [e.as_dict() for e in events] == [
        e.as_dict() for e in tracer.events
    ]
    # And the text form parses identically.
    assert parse_jsonl(events_to_jsonl(tracer.events))[0][0].name in {
        "pairs.considered",
        "optimize",
    }
    loaded = tracer_from_jsonl(str(path))
    assert len(loaded) == len(tracer)


def test_event_dict_round_trip():
    event = TraceEvent(
        kind="span", name="stratum", value=0.25, start=1.0, depth=1,
        attrs={"size": 3},
    )
    assert TraceEvent.from_dict(event.as_dict()) == event


def test_render_tables_from_real_run():
    tracer = RecordingTracer()
    optimize(
        query_for(n=7),
        config=OptimizerConfig(algorithm="dpsva", threads=4, tracer=tracer),
    )
    strata = per_stratum_rows(tracer.events)
    assert [row["size"] for row in strata] == [2, 3, 4, 5, 6, 7]
    assert all(row["span_s"] > 0 for row in strata)
    workers = per_worker_rows(tracer.events)
    assert [row["worker"] for row in workers] == [0, 1, 2, 3]
    summary = trace_summary(tracer.events)
    assert summary["strata"] == 6
    assert summary["events"] == len(tracer)
    text = render_trace(tracer.events, {"threads": 4})
    assert "per-stratum:" in text and "per-worker:" in text


def test_per_comm_rows_empty_without_comm_counters():
    tracer = RecordingTracer()
    optimize(
        query_for(n=6),
        config=OptimizerConfig(algorithm="dpsub", threads=2, tracer=tracer),
    )
    assert per_comm_rows(tracer.events) == []
    assert "comm:" not in render_trace(tracer.events)


@pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="needs fork()"
)
@pytest.mark.parametrize("backend", ["processes", "cluster"])
def test_comm_table_from_distributed_run(backend):
    # Both message-passing backends emit comm.* counters; the rendered
    # trace gains a per-stratum comm table showing the exchanged volume.
    tracer = RecordingTracer()
    optimize(
        query_for(n=7),
        config=OptimizerConfig(
            algorithm="dpsub", threads=2, backend=backend, tracer=tracer
        ),
    )
    rows = per_comm_rows(tracer.events)
    assert rows, f"{backend}: no comm rows"
    sizes = [row["size"] for row in rows]
    assert sizes == sorted(sizes)
    assert all(2 <= s <= 7 for s in sizes)
    total_out = sum(row["bytes_out"] for row in rows)
    assert total_out > 0
    assert all(row["barrier_wait"] >= 0 for row in rows)
    text = render_trace(tracer.events, {"backend": backend})
    assert "comm:" in text and "bytes_out" in text
    comm_only = render_trace(tracer.events, by="comm")
    assert "comm:" in comm_only and "per-stratum:" not in comm_only


# -- CLI -----------------------------------------------------------------


def test_cli_trace_round_trip(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    rc = cli_main(
        [
            "optimize", "--topology", "star", "-n", "7",
            "--threads", "4", "--trace", str(path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "per-stratum:" in out and "per-worker:" in out
    assert path.exists()

    rc = cli_main(["trace", str(path), "--by", "worker"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "per-worker:" in out and "per-stratum:" not in out


def test_cli_trace_missing_file(capsys):
    rc = cli_main(["trace", "/nonexistent/trace.jsonl"])
    assert rc == 1
    assert "error:" in capsys.readouterr().err
