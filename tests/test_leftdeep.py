"""Tests for DPsize's left-deep plan-space restriction."""

from __future__ import annotations

import itertools

import pytest

from repro.cost import CardinalityEstimator, StandardCostModel
from repro.enumerate import DPsize
from repro.heuristics.common import left_deep_cost, order_is_connected
from repro.query import QueryContext, WorkloadSpec, generate_query


def query_for(topology, n, seed=0):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


def brute_force_left_deep(ctx, cross_products):
    est = CardinalityEstimator(ctx)
    model = StandardCostModel()
    best = float("inf")
    for order in itertools.permutations(range(ctx.n)):
        if not cross_products and not order_is_connected(ctx, list(order)):
            continue
        best = min(best, left_deep_cost(ctx, est, model, list(order)))
    return best


@pytest.mark.parametrize("topology", ["chain", "star", "cycle", "random"])
@pytest.mark.parametrize("cross", [False, True])
def test_left_deep_dp_matches_brute_force(topology, cross):
    query = query_for(topology, 6, seed=4)
    ctx = QueryContext(query)
    result = DPsize(cross_products=cross, plan_space="left_deep").optimize(query)
    assert result.cost == pytest.approx(
        brute_force_left_deep(ctx, cross), rel=1e-12
    )
    assert result.plan.is_left_deep()


def test_left_deep_never_beats_bushy():
    for seed in range(5):
        query = query_for("random", 7, seed=seed)
        bushy = DPsize().optimize(query)
        left = DPsize(plan_space="left_deep").optimize(query)
        assert left.cost >= bushy.cost - 1e-9


def test_left_deep_considers_fewer_pairs():
    query = query_for("clique", 8, seed=5)
    bushy = DPsize().optimize(query)
    left = DPsize(plan_space="left_deep").optimize(query)
    assert left.meter.pairs_considered < bushy.meter.pairs_considered


def test_plan_space_validation():
    with pytest.raises(ValueError):
        DPsize(plan_space="zigzag")
