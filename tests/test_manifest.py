"""Tests for result serialization and plan export."""

from __future__ import annotations

import json

import pytest

from repro import OptimizerConfig, PDPsva, Workload, WorkloadSpec, optimize
from repro.bench import (
    load_manifest,
    plan_to_dict,
    result_to_dict,
    save_manifest,
    sim_report_to_dict,
)
from repro.plans import JoinMethod, JoinNode, ScanNode
from repro.plans.printer import plan_to_dot


@pytest.fixture
def query():
    return Workload(WorkloadSpec("star", 6, seed=3))[0]


def test_plan_to_dict_roundtrip_structure():
    plan = JoinNode(
        left=JoinNode(left=ScanNode(0), right=ScanNode(1),
                      method=JoinMethod.HASH),
        right=ScanNode(2),
        method=JoinMethod.SORT_MERGE,
    )
    d = plan_to_dict(plan)
    assert d["op"] == "join"
    assert d["method"] == "SORT_MERGE"
    assert d["left"]["method"] == "HASH"
    assert d["right"] == {"op": "scan", "relation": 2}
    json.dumps(d)  # serializable


def test_result_to_dict_serial(query):
    result = optimize(query, config=OptimizerConfig(algorithm="dpsva"))
    d = result_to_dict(result)
    assert d["algorithm"] == "dpsva"
    assert d["cost"] == result.cost
    assert d["meter"]["pairs_valid"] > 0
    assert d["plan_signature"].startswith("(")
    json.dumps(d)


def test_result_to_dict_parallel_includes_report(query):
    result = PDPsva(threads=4).optimize(query)
    d = result_to_dict(result)
    report = d["extras"]["sim_report"]
    assert report["threads"] == 4
    assert report["total_time"] > 0
    assert len(report["strata"]) == 5
    json.dumps(d)


def test_sim_report_to_dict_fields(query):
    report = PDPsva(threads=2).optimize(query).extras["sim_report"]
    d = sim_report_to_dict(report)
    assert d["busy_total"] == pytest.approx(report.busy_total)
    assert d["mean_imbalance"] >= 1.0
    assert all(len(s["busy"]) == 2 for s in d["strata"])


def test_save_and_load_manifest(tmp_path, query):
    result = optimize(query)
    rows = [result_to_dict(result)]
    path = save_manifest(
        tmp_path / "run.json", rows, metadata={"experiment": "unit-test"}
    )
    loaded_rows, metadata = load_manifest(path)
    assert metadata == {"experiment": "unit-test"}
    assert loaded_rows[0]["cost"] == result.cost
    assert loaded_rows[0]["plan_signature"] == rows[0]["plan_signature"]


def test_plan_to_dot(query):
    result = optimize(query)
    dot = plan_to_dot(result.plan, relation_names=query.relation_names)
    assert dot.startswith("digraph plan {")
    assert dot.rstrip().endswith("}")
    assert dot.count("shape=ellipse") == 6  # one per scan
    assert dot.count("->") == 2 * 5  # two edges per join
    assert "t0" in dot
