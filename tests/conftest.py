"""Shared test configuration.

Individual test modules build their queries through
``repro.query.generate_query(WorkloadSpec(...))`` with explicit seeds, so
every test is self-contained and reproducible; no shared fixtures are
needed beyond pytest defaults.
"""
