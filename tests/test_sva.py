"""Tests for skip vector arrays and DPsva."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumerate import DPsize
from repro.memo import WorkMeter
from repro.query import WorkloadSpec, generate_query
from repro.sva import DPsva, SkipVectorArray
from repro.util.bitsets import subsets_of_size, universe


def test_sva_orders_by_member_tuple():
    # {0,3} (=9) precedes {1,2} (=6) in member-lexicographic order even
    # though its bitmask is larger.
    sva = SkipVectorArray([0b0110, 0b1001])
    assert sva.masks == [0b1001, 0b0110]


def test_sva_scan_all():
    masks = subsets_of_size(universe(5), 2)
    sva = SkipVectorArray(masks)
    assert sorted(sva.scan_all()) == sorted(masks)
    assert len(sva) == len(masks)


def test_sva_rejects_mixed_sizes():
    with pytest.raises(ValueError):
        SkipVectorArray([0b1, 0b11])


def test_sva_empty():
    sva = SkipVectorArray([])
    meter = WorkMeter()
    assert sva.disjoint_partners(0b1, meter) == []
    assert meter.sva_steps == 0


def test_disjoint_partners_exact():
    masks = subsets_of_size(universe(4), 2)
    sva = SkipVectorArray(masks)
    meter = WorkMeter()
    partners = sva.disjoint_partners(0b0011, meter)
    assert sorted(partners) == [0b1100]
    # Scan positions + skipped entries account for every array element.
    assert meter.sva_steps + meter.sva_skipped_entries == len(masks)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=10),
    k=st.integers(min_value=1, max_value=5),
    outer_bits=st.integers(min_value=0, max_value=(1 << 10) - 1),
)
def test_property_disjoint_partners(n, k, outer_bits):
    """SVA scan returns exactly the disjoint sets, in member-lex order,
    and accounts for every entry either as a step or a skipped entry."""
    if k > n:
        k = n
    masks = subsets_of_size(universe(n), k)
    sva = SkipVectorArray(masks)
    outer = outer_bits & universe(n)
    meter = WorkMeter()
    partners = sva.disjoint_partners(outer, meter)
    expected = [m for m in sva.masks if m & outer == 0]
    assert partners == expected
    assert meter.sva_steps + meter.sva_skipped_entries == len(masks)
    assert meter.sva_steps <= len(masks)


def test_sva_build_metered():
    meter = WorkMeter()
    SkipVectorArray(subsets_of_size(universe(6), 3), meter=meter)
    assert meter.sva_build_ops == 20 * 3


def test_sva_skips_blocks_not_single_entries():
    """For a large stratum and a hub-heavy outer set, skips must jump
    multiple entries at once (the whole point of the structure)."""
    masks = subsets_of_size(universe(12), 4)
    sva = SkipVectorArray(masks)
    meter = WorkMeter()
    sva.disjoint_partners(0b1, meter)  # outer = {0}
    # All C(11,3) = 165 sets containing relation 0 form one leading block
    # in member-lex order; they must be skipped with a single jump.
    assert meter.sva_skips == 1
    assert meter.sva_skipped_entries == 164


def query_for(topology, n, seed=0):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


@pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
def test_dpsva_matches_dpsize(topology):
    query = query_for(topology, 8, seed=6)
    a = DPsize().optimize(query)
    b = DPsva().optimize(query)
    assert b.cost == pytest.approx(a.cost, rel=1e-12)
    # DPsva performs exactly the same valid joins.
    assert b.meter.pairs_valid == a.meter.pairs_valid


@pytest.mark.parametrize("topology", ["chain", "star"])
def test_dpsva_considers_fewer_pairs(topology):
    """pairs_considered for DPsva excludes all disjointness failures."""
    query = query_for(topology, 10, seed=2)
    a = DPsize().optimize(query)
    b = DPsva().optimize(query)
    assert b.meter.disjoint_fail == 0
    assert b.meter.pairs_considered < a.meter.pairs_considered
    assert (
        b.meter.pairs_considered
        == a.meter.pairs_considered - a.meter.disjoint_fail
    )


def test_dpsva_cross_products():
    query = query_for("chain", 6, seed=3)
    a = DPsize(cross_products=True).optimize(query)
    b = DPsva(cross_products=True).optimize(query)
    assert b.cost == pytest.approx(a.cost, rel=1e-12)
    assert b.meter.connectivity_fail == 0


def test_dpsva_skip_accounting_totals():
    """Steps + skipped entries == candidate pairs DPsize would inspect."""
    query = query_for("cycle", 9, seed=4)
    a = DPsize().optimize(query)
    b = DPsva().optimize(query)
    assert (
        b.meter.sva_steps + b.meter.sva_skipped_entries
        == a.meter.pairs_considered
    )
