"""Fast-path ⇄ reference-path parity.

The fast path (struct-of-arrays memo + fused kernels + packed wire format)
must be *observably identical* to the reference path: same plan, same
cost, bit-for-bit identical memo contents, and identical WorkMeter totals.
These tests hold it to that across randomized chain/star/clique/cycle
queries, all three kernels, and all three parallel executors.
"""

from __future__ import annotations

import pytest

from repro import Workload, WorkloadSpec
from repro.config import OptimizerConfig
from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CoutCostModel, StandardCostModel
from repro.enumerate.dpsize import DPsize
from repro.enumerate.dpsub import DPsub
from repro.memo.counters import WorkMeter
from repro.memo.shm import list_segments, shm_available
from repro.memo.soa import SoAMemo, fused_costing_consistent, soa_compatible
from repro.memo.table import Memo
from repro.parallel.scheduler import ParallelDP
from repro.plans import plan_signature
from repro.query import QueryContext
from repro.sva.dpsva import DPsva

ALGORITHMS = {"dpsize": DPsize, "dpsub": DPsub, "dpsva": DPsva}
TOPOLOGIES = ("chain", "star", "clique", "cycle")

#: (topology, n) — cliques kept smaller because their pair counts explode.
SERIAL_CASES = [
    ("chain", 9),
    ("star", 9),
    ("cycle", 9),
    ("clique", 7),
]


def make_query(topology: str, n: int, seed: int):
    return Workload(WorkloadSpec(topology, n, seed=seed))[0]


def run_serial(algo_cls, query, fast: bool, cost_model=None):
    """Drive one serial enumerator against an explicitly chosen backend,
    returning (memo, meter) so memo contents can be compared directly."""
    enum = algo_cls(fast_path=fast)
    ctx = QueryContext(query)
    cost_model = cost_model or StandardCostModel()
    meter = WorkMeter()
    estimator = CardinalityEstimator(ctx, meter=meter)
    memo_cls = SoAMemo if fast else Memo
    memo = memo_cls(ctx, cost_model, estimator=estimator, meter=meter)
    memo.init_scans()
    enum.populate(memo)
    return memo, meter


def memo_snapshot(memo) -> dict:
    """Full memo contents keyed by mask — the bit-for-bit comparison unit."""
    return {
        e.mask: (e.cost, e.rows, e.left, e.right, int(e.method))
        for e in memo.entries()
    }


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("topology,n", SERIAL_CASES)
@pytest.mark.parametrize("seed", [1, 12])
def test_serial_kernels_bit_for_bit(algorithm, topology, n, seed):
    query = make_query(topology, n, seed)
    algo_cls = ALGORITHMS[algorithm]
    fast_memo, fast_meter = run_serial(algo_cls, query, fast=True)
    ref_memo, ref_meter = run_serial(algo_cls, query, fast=False)
    assert memo_snapshot(fast_memo) == memo_snapshot(ref_memo)
    assert fast_meter.as_dict() == ref_meter.as_dict()
    assert fast_memo.best().cost == ref_memo.best().cost


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("topology,n", [("chain", 10), ("cycle", 9)])
def test_serial_cross_products_parity(algorithm, topology, n):
    query = make_query(topology, n, seed=4)
    algo_cls = ALGORITHMS[algorithm]
    fast = algo_cls(cross_products=True, fast_path=True).optimize(query)
    ref = algo_cls(cross_products=True, fast_path=False).optimize(query)
    assert fast.cost == ref.cost
    assert plan_signature(fast.plan) == plan_signature(ref.plan)
    assert fast.memo_entries == ref.memo_entries
    assert fast.meter.as_dict() == ref.meter.as_dict()


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("backend", ["simulated", "threads", "processes"])
def test_executor_parity(algorithm, backend):
    # Rotate topologies so every executor×kernel cell sees a different
    # graph shape across the matrix (cliques excluded — covered serially).
    shapes = ("chain", "star", "cycle")
    index = sorted(ALGORITHMS).index(algorithm)
    offset = ["simulated", "threads", "processes"].index(backend)
    query = make_query(shapes[(index + offset) % len(shapes)], 8, seed=7)
    results = {}
    for fast in (True, False):
        results[fast] = ParallelDP(
            algorithm=algorithm, threads=3, backend=backend, fast_path=fast
        ).optimize(query)
    fast_r, ref_r = results[True], results[False]
    assert fast_r.cost == ref_r.cost
    assert plan_signature(fast_r.plan) == plan_signature(ref_r.plan)
    assert fast_r.memo_entries == ref_r.memo_entries
    fast_counts = fast_r.meter.as_dict()
    ref_counts = ref_r.meter.as_dict()
    if backend == "threads":
        # Stripe-lock contention is timing-dependent, never semantic.
        fast_counts.pop("latch_contended")
        ref_counts.pop("latch_contended")
    assert fast_counts == ref_counts


@pytest.mark.parametrize("backend", ["simulated", "processes"])
def test_executor_fast_matches_serial_reference(backend):
    """The fast parallel path lands on the serial reference optimum."""
    query = make_query("star", 9, seed=3)
    serial = DPsize(fast_path=False).optimize(query)
    parallel = ParallelDP(
        algorithm="dpsize", threads=4, backend=backend, fast_path=True
    ).optimize(query)
    assert parallel.cost == serial.cost
    assert plan_signature(parallel.plan) == plan_signature(serial.plan)
    assert parallel.memo_entries == serial.memo_entries


def test_cout_cost_model_parity():
    query = make_query("chain", 9, seed=9)
    model = CoutCostModel()
    fast_memo, fast_meter = run_serial(DPsize, query, True, cost_model=model)
    ref_memo, ref_meter = run_serial(DPsize, query, False, cost_model=model)
    assert memo_snapshot(fast_memo) == memo_snapshot(ref_memo)
    assert fast_meter.as_dict() == ref_meter.as_dict()


class _InconsistentModel(StandardCostModel):
    """Overrides per-method costing without refreshing the batched one —
    exactly the subclass shape the eligibility probe must reject."""

    def join_cost(self, method, left_rows, right_rows, out_rows):
        return super().join_cost(method, left_rows, right_rows, out_rows) + 1.0


def test_fused_costing_probe_rejects_stale_batch_override():
    assert fused_costing_consistent(StandardCostModel())
    assert fused_costing_consistent(CoutCostModel())
    assert not fused_costing_consistent(_InconsistentModel())


def test_incompatible_cost_model_falls_back_to_reference():
    query = make_query("chain", 7, seed=2)
    ctx = QueryContext(query)
    model = _InconsistentModel()
    assert not soa_compatible(ctx, model)
    fast = DPsize(fast_path=True).optimize(query, cost_model=model)
    ref = DPsize(fast_path=False).optimize(query, cost_model=model)
    assert fast.cost == ref.cost
    assert plan_signature(fast.plan) == plan_signature(ref.plan)


# --- shared-memory memo + vectorized kernel executor legs ---------------

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def run_processes(
    algorithm,
    query,
    *,
    shared_memo=False,
    vectorize=False,
    allocation=None,
    fault_plan=None,
):
    """Run the process backend with explicit shm/vectorize knobs, keeping
    the master memo so contents can be compared bit for bit."""
    dp = ParallelDP(
        config=OptimizerConfig(
            algorithm=algorithm,
            threads=3,
            backend="processes",
            allocation=allocation,
            shared_memo=shared_memo,
            vectorize=vectorize,
            fault_plan=fault_plan,
        )
    )
    dp.keep_memo = True
    result = dp.optimize(query)
    return result, memo_snapshot(dp.last_memo)


@needs_shm
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("vectorize", [False, None])
def test_shm_executor_parity(algorithm, vectorize):
    """shm descriptors + winner rows replicate the packed-wire run exactly
    (memo contents, meter totals, plan cost), with or without numpy."""
    query = make_query("cycle", 9, seed=11)
    wire_r, wire_snap = run_processes(algorithm, query, shared_memo=False)
    shm_r, shm_snap = run_processes(
        algorithm, query, shared_memo=True, vectorize=vectorize
    )
    assert shm_r.extras["shm"]["enabled"], shm_r.extras["shm"]
    assert shm_snap == wire_snap
    assert shm_r.meter.as_dict() == wire_r.meter.as_dict()
    assert shm_r.cost == wire_r.cost
    assert plan_signature(shm_r.plan) == plan_signature(wire_r.plan)
    assert list_segments() == []


@needs_shm
def test_shm_dynamic_allocation_parity():
    """Dynamic batching is timing-dependent, so per-worker insert/improve
    counts legitimately vary between *any* two dynamic runs; the memo
    contents and the optimum must still match the wire run exactly."""
    query = make_query("star", 9, seed=5)
    wire_r, wire_snap = run_processes(
        "dpsize", query, shared_memo=False, allocation="dynamic"
    )
    shm_r, shm_snap = run_processes(
        "dpsize", query, shared_memo=True, allocation="dynamic"
    )
    assert shm_r.extras["shm"]["enabled"]
    assert shm_snap == wire_snap
    assert shm_r.cost == wire_r.cost
    assert plan_signature(shm_r.plan) == plan_signature(wire_r.plan)
    assert list_segments() == []


@needs_shm
@pytest.mark.parametrize(
    "fault_plan", ["worker:crash@worker=1", "worker:raise@worker=2"]
)
def test_shm_parity_under_single_fault(fault_plan):
    """E12-style single-fault plans: recovery over shm descriptors lands on
    the same memo and optimum as the healthy wire run."""
    query = make_query("chain", 9, seed=8)
    wire_r, wire_snap = run_processes("dpsize", query, shared_memo=False)
    shm_r, shm_snap = run_processes(
        "dpsize", query, shared_memo=True, fault_plan=fault_plan
    )
    assert shm_snap == wire_snap
    assert shm_r.cost == wire_r.cost
    assert list_segments() == []


def test_shm_requires_parallel_config():
    with pytest.raises(Exception, match="shared_memo"):
        OptimizerConfig(shared_memo=True)


def test_shm_falls_back_without_soa_memo():
    """Ineligible memo backend (reference path) → shm disabled with a
    recorded reason, run still correct."""
    query = make_query("chain", 7, seed=3)
    dp = ParallelDP(
        config=OptimizerConfig(
            algorithm="dpsize",
            threads=2,
            backend="processes",
            shared_memo=True,
            fast_path=False,
        )
    )
    result = dp.optimize(query)
    shm_info = result.extras["shm"]
    assert not shm_info["enabled"]
    assert "reason" in shm_info
    serial = DPsize(fast_path=False).optimize(query)
    assert result.cost == serial.cost


def test_soa_memo_is_a_memo_view():
    """extract_plan / entry / sets_of_size work unchanged on the SoA
    backend — the thin-view contract."""
    query = make_query("cycle", 8, seed=6)
    memo, _ = run_serial(DPsize, query, fast=True)
    assert isinstance(memo, SoAMemo)
    full = memo.ctx.all_mask
    assert full in memo
    entry = memo.entry(full)
    assert entry is not None and entry.mask == full
    assert memo.sets_of_size(1) == sorted(1 << i for i in range(memo.ctx.n))
    assert len(memo.entries()) == len(memo)
