"""Correctness of the shared-nothing cluster executor.

The memo-partitioned backend must be bit-identical to the serial
enumerators on every topology and worker count, survive worker crashes
mid-stratum through shard reassignment, and speak the same protocol over
its TCP transport as over forked ``socketpair`` meshes.
"""

from __future__ import annotations

import itertools
import os
import socket
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import OptimizerConfig, ParallelDP, ValidationError
from repro.parallel.executors.cluster import exchange_rounds
from repro.plans import plan_signature
from repro.query import WorkloadSpec, generate_query


def query_for(topology, n, seed=0):
    return generate_query(WorkloadSpec(topology, n, seed=seed))


def serial_result(query, algorithm="dpsub"):
    return ParallelDP(algorithm=algorithm, threads=1).optimize(query)


def cluster_dp(algorithm="dpsub", workers=2, **kwargs):
    return ParallelDP(
        config=OptimizerConfig(
            algorithm=algorithm,
            threads=workers,
            backend="cluster",
            **kwargs,
        )
    )


def memo_snapshot(memo):
    return {
        e.mask: (e.cost, e.rows, e.left, e.right, int(e.method))
        for e in memo.entries()
    }


# ---------------------------------------------------------------------------
# exchange schedule (pure function — no fork needed)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("count", [2, 3, 4, 5, 8])
def test_exchange_rounds_cover_every_pair_once(count):
    ids = list(range(count))
    rounds = exchange_rounds(ids)
    seen = [pair for pairs in rounds for pair in pairs]
    expected = {(a, b) for a, b in itertools.combinations(ids, 2)}
    assert set(seen) == expected
    assert len(seen) == len(expected)  # no pair twice


@pytest.mark.parametrize("count", [2, 3, 4, 7])
def test_exchange_rounds_disjoint_within_round(count):
    for pairs in exchange_rounds(list(range(count))):
        flat = [w for pair in pairs for w in pair]
        assert len(flat) == len(set(flat))
        assert all(a < b for a, b in pairs)


def test_exchange_rounds_degenerate():
    assert exchange_rounds([]) == []
    assert all(not pairs for pairs in exchange_rounds([5]))
    # Survivor ids need not be contiguous.
    rounds = exchange_rounds([0, 2, 5])
    seen = {pair for pairs in rounds for pair in pairs}
    assert seen == {(0, 2), (0, 5), (2, 5)}


# ---------------------------------------------------------------------------
# configuration surface
# ---------------------------------------------------------------------------


def test_cluster_workers_requires_cluster_backend():
    with pytest.raises(ValidationError):
        OptimizerConfig(backend="threads", cluster_workers=2)


def test_cluster_connect_rejects_bad_hostport():
    with pytest.raises(ValidationError):
        OptimizerConfig(backend="cluster", cluster_connect=("nonsense",))


def test_cluster_connect_must_match_worker_count():
    with pytest.raises(ValidationError):
        OptimizerConfig(
            backend="cluster",
            cluster_workers=3,
            cluster_connect=("localhost:9001", "localhost:9002"),
        )


def test_cli_worker_rejects_bad_listen_spec(capsys):
    from repro.cli import main as cli_main

    rc = cli_main(["worker", "--listen", "nonsense"])
    assert rc == 1
    assert "error:" in capsys.readouterr().err


def test_cluster_knobs_do_not_change_plan_digest():
    # Placement is result-invariant, so the digest (cache identity) must
    # not depend on how many workers ran the search.
    base = OptimizerConfig(backend="cluster", threads=2)
    more = OptimizerConfig(backend="cluster", threads=2, cluster_workers=8)
    assert base.digest == more.digest


# ---------------------------------------------------------------------------
# parity with the serial optimum (fork transport)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="needs fork()"
)
class TestClusterParity:
    @pytest.mark.parametrize("algorithm", ["dpsize", "dpsub", "dpsva"])
    @pytest.mark.parametrize("topology", ["star", "chain", "cycle", "clique"])
    def test_matches_serial(self, algorithm, topology):
        query = query_for(topology, 7, seed=1)
        serial = serial_result(query, algorithm)
        clustered = cluster_dp(algorithm, workers=2).optimize(query)
        assert clustered.cost == serial.cost
        assert plan_signature(clustered.plan) == plan_signature(serial.plan)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_counts(self, workers):
        query = query_for("clique", 8, seed=2)
        serial = serial_result(query)
        clustered = cluster_dp(workers=workers).optimize(query)
        assert clustered.cost == serial.cost
        assert plan_signature(clustered.plan) == plan_signature(serial.plan)

    def test_memo_snapshot_identical(self):
        query = query_for("cycle", 8, seed=3)
        serial_dp = ParallelDP(algorithm="dpsub", threads=1)
        serial_dp.keep_memo = True
        serial = serial_dp.optimize(query)
        dp = cluster_dp(workers=3)
        dp.keep_memo = True
        clustered = dp.optimize(query)
        assert clustered.cost == serial.cost
        assert memo_snapshot(dp.last_memo) == memo_snapshot(
            serial_dp.last_memo
        )

    def test_meter_exact_parity(self):
        # Single-owner enumeration means the summed worker meters equal
        # the serial counts exactly — not approximately.
        query = query_for("star", 7, seed=4)
        serial = serial_result(query)
        clustered = cluster_dp(workers=4).optimize(query)
        assert clustered.meter.pairs_considered == serial.meter.pairs_considered
        assert clustered.meter.pairs_valid == serial.meter.pairs_valid
        assert clustered.meter.plans_emitted == serial.meter.plans_emitted

    def test_extras_shape(self):
        query = query_for("chain", 6, seed=5)
        result = cluster_dp(workers=2).optimize(query)
        extras = result.extras
        assert extras["backend"] == "cluster"
        assert extras["mode"] == "fork"
        assert extras["workers"] == 2
        comm = extras["cluster_comm"]
        for key in ("bytes_out", "bytes_in", "rows_out", "rows_in",
                    "framed_out", "framed_in", "collect_rows",
                    "collect_bytes"):
            assert key in comm
        recovery = extras["fault_recovery"]
        assert recovery["worker_deaths"] == 0
        assert recovery["reassignments"] == 0
        assert set(extras["owner_map"].values()) == {0, 1}

    def test_comm_volume_positive_and_symmetric(self):
        query = query_for("clique", 7, seed=6)
        result = cluster_dp(workers=3).optimize(query)
        comm = result.extras["cluster_comm"]
        assert comm["bytes_out"] > 0
        assert comm["rows_out"] > 0
        # Everything sent over the mesh is received by a peer.
        assert comm["rows_out"] == comm["rows_in"]
        assert comm["bytes_out"] == comm["bytes_in"]
        assert comm["framed_out"] == comm["framed_in"]
        assert comm["collect_rows"] > 0

    def test_single_worker_skips_exchange(self):
        query = query_for("chain", 6, seed=7)
        result = cluster_dp(workers=1).optimize(query)
        comm = result.extras["cluster_comm"]
        assert comm["rows_out"] == 0
        assert result.cost == serial_result(query).cost


# ---------------------------------------------------------------------------
# fault recovery (fork transport)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="needs fork()"
)
class TestClusterRecovery:
    def test_crash_mid_stratum_reassigns_and_stays_exact(self):
        # A worker dies with SIGKILL semantics mid-optimization; its
        # shards move to survivors, who recompute the orphaned sets, and
        # the final plan is still the exact optimum.
        query = query_for("clique", 8, seed=8)
        serial = serial_result(query)
        dp = cluster_dp(
            workers=3, fault_plan="worker:crash@worker=1,stratum=4"
        )
        result = dp.optimize(query)
        assert result.cost == serial.cost
        assert plan_signature(result.plan) == plan_signature(serial.plan)
        recovery = result.extras["fault_recovery"]
        assert recovery["worker_deaths"] == 1
        assert recovery["reassignments"] >= 1
        assert recovery["recomputed_masks"] > 0
        # Every shard now maps to a survivor.
        assert 1 not in set(result.extras["owner_map"].values())

    def test_crash_during_exchange_phase(self):
        query = query_for("star", 8, seed=9)
        serial = serial_result(query)
        result = cluster_dp(
            workers=4, fault_plan="worker:crash@worker=2,stratum=3"
        ).optimize(query)
        assert result.cost == serial.cost
        assert result.extras["fault_recovery"]["worker_deaths"] == 1

    def test_raised_fault_redoes_stratum_with_exact_meters(self):
        # A raising worker stays in the pool; the stratum is redone with
        # forget-first so the operation counts still match serial exactly.
        query = query_for("cycle", 7, seed=10)
        serial = serial_result(query)
        result = cluster_dp(
            workers=2, fault_plan="worker:raise@worker=0,stratum=3"
        ).optimize(query)
        assert result.cost == serial.cost
        assert result.meter.pairs_valid == serial.meter.pairs_valid
        recovery = result.extras["fault_recovery"]
        assert recovery["worker_errors"] == 1
        assert recovery["worker_deaths"] == 0
        # The failed attempt's counts land in the partial meter, never
        # the main one (the fault fires before compute, so zeros here).
        assert all(v >= 0 for v in recovery["partial_meter"].values())

    def test_delay_fault_only_slows(self):
        query = query_for("chain", 6, seed=11)
        serial = serial_result(query)
        result = cluster_dp(
            workers=2,
            fault_plan="worker:delay@worker=1,stratum=2,delay=0.05",
        ).optimize(query)
        assert result.cost == serial.cost
        assert result.extras["fault_recovery"]["worker_errors"] == 0


@pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="needs fork()"
)
def test_cli_cluster_without_explicit_threads(capsys):
    # --backend cluster must not be silently dropped when --threads is
    # absent: the cluster knobs imply the worker count.
    from repro.cli import main as cli_main

    rc = cli_main(
        [
            "optimize", "--topology", "chain", "-n", "6",
            "--backend", "cluster", "--cluster-workers", "2",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "pdp" in out  # parallel driver ran, not the serial fallback


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------


def free_ports(count):
    socks = [socket.socket() for _ in range(count)]
    for s in socks:
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind(("127.0.0.1", 0))
    ports = [s.getsockname()[1] for s in socks]
    for s in socks:
        s.close()
    return ports


@pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="needs subprocesses"
)
def test_tcp_round_trip_matches_serial():
    # Two `repro worker --listen` processes on localhost, driven by a
    # master using cluster_connect — the full distributed deployment in
    # miniature.
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    addrs = [f"127.0.0.1:{port}" for port in free_ports(2)]
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--listen", addr],
            env=env,
        )
        for addr in addrs
    ]
    try:
        query = query_for("cycle", 7, seed=12)
        serial = serial_result(query)
        result = ParallelDP(
            config=OptimizerConfig(
                algorithm="dpsub",
                backend="cluster",
                cluster_connect=tuple(addrs),
            )
        ).optimize(query)
        assert result.cost == serial.cost
        assert plan_signature(result.plan) == plan_signature(serial.plan)
        assert result.extras["mode"] == "tcp"
        assert result.extras["workers"] == 2
        for proc in procs:
            assert proc.wait(timeout=30) == 0  # one-shot: clean exit
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
