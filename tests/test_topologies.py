"""Tests for topology generators and workloads."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.query import (
    TOPOLOGIES,
    Workload,
    WorkloadSpec,
    chain_graph,
    clique_graph,
    cycle_graph,
    generate_query,
    grid_graph,
    random_graph,
    star_graph,
)
from repro.util.errors import ValidationError


def test_chain_structure():
    g = chain_graph(5, seed=0)
    assert len(g.edges) == 4
    assert g.is_connected()
    degrees = [bin(g.adjacency(i)).count("1") for i in range(5)]
    assert sorted(degrees) == [1, 1, 2, 2, 2]


def test_cycle_structure():
    g = cycle_graph(5, seed=0)
    assert len(g.edges) == 5
    assert all(bin(g.adjacency(i)).count("1") == 2 for i in range(5))
    assert g.is_connected()


def test_star_structure():
    g = star_graph(6, seed=0)
    assert len(g.edges) == 5
    assert bin(g.adjacency(0)).count("1") == 5
    assert all(g.adjacency(i) == 1 for i in range(1, 6))


def test_clique_structure():
    g = clique_graph(5, seed=0)
    assert len(g.edges) == 10
    assert all(bin(g.adjacency(i)).count("1") == 4 for i in range(5))


def test_grid_structure():
    g = grid_graph(6, seed=0)  # 2 x 3 grid
    assert g.n == 6
    assert g.is_connected()
    assert len(g.edges) == 7  # 2*2 vertical + 3*1... rows=2, cols=3: 2*2 + 3 = 7


def test_grid_degenerate_to_chain():
    g = grid_graph(7, seed=0)  # prime: 1 x 7
    assert len(g.edges) == 6


@given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=5))
def test_random_graph_connected(n, seed):
    g = random_graph(n, seed=seed)
    assert g.is_connected()
    assert len(g.edges) >= n - 1


def test_topology_minimums():
    with pytest.raises(ValidationError):
        cycle_graph(2)
    with pytest.raises(ValidationError):
        star_graph(1)
    with pytest.raises(ValidationError):
        chain_graph(0)
    with pytest.raises(ValidationError):
        random_graph(3, edge_probability=1.5)


def test_determinism_per_seed():
    for name, gen in TOPOLOGIES.items():
        a = gen(6, seed=3)
        b = gen(6, seed=3)
        assert [e.selectivity for e in a.edges] == [
            e.selectivity for e in b.edges
        ], name


def test_selectivities_in_range():
    for name, gen in TOPOLOGIES.items():
        g = gen(8, seed=5)
        for e in g.edges:
            assert 1e-4 <= e.selectivity <= 0.5, name


def test_workload_spec_validation():
    with pytest.raises(ValidationError):
        WorkloadSpec("nope", 5)
    with pytest.raises(ValidationError):
        WorkloadSpec("chain", 0)
    with pytest.raises(ValidationError):
        WorkloadSpec("chain", 5, count=0)


def test_workload_iteration_and_determinism():
    spec = WorkloadSpec("star", 6, seed=1, count=3)
    wl = Workload(spec)
    assert len(wl) == 3
    queries = list(wl)
    assert len(queries) == 3
    # Distinct queries within the workload...
    assert queries[0].cardinalities != queries[1].cardinalities
    # ...but deterministic across instantiations.
    again = Workload(spec)
    assert again[1].cardinalities == queries[1].cardinalities
    assert queries[0].label == "star-n6-q0"


def test_generate_query_index_bounds():
    spec = WorkloadSpec("chain", 4, count=2)
    with pytest.raises(ValidationError):
        generate_query(spec, 2)
    with pytest.raises(ValidationError):
        generate_query(spec, -1)


def test_with_count():
    spec = WorkloadSpec("chain", 4, count=2)
    bigger = spec.with_count(10)
    assert bigger.count == 10
    assert bigger.topology == "chain"
    # Same query at same index regardless of count.
    assert generate_query(spec, 1).cardinalities == generate_query(bigger, 1).cardinalities


# ---------------------------------------------------------------------------
# Large-n hardening: generators must stay connected with exact edge counts
# far past the sizes the DP experiments exercise, and mis-sized output must
# raise instead of flowing silently into the large-query experiments.

LARGE_NS = [20, 50, 100]


def expected_edge_count(name: str, graph, n: int) -> int:
    if name == "chain":
        return n - 1
    if name == "cycle":
        return n
    if name == "star":
        return n - 1
    if name == "clique":
        return n * (n - 1) // 2
    if name == "grid":
        import math

        rows = max(1, int(math.isqrt(n)))
        while n % rows:
            rows -= 1
        cols = n // rows
        return rows * (cols - 1) + cols * (rows - 1)
    return len(graph.edges)  # random: count is stochastic but verified


@pytest.mark.parametrize("n", LARGE_NS)
@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_large_n_connected_with_exact_edge_counts(name, n):
    graph = TOPOLOGIES[name](n, seed=3)
    assert graph.n == n
    assert graph.is_connected()
    assert len(graph.edges) == expected_edge_count(name, graph, n)
    # Every relation participates in at least one join.
    assert all(graph.adjacency(i) != 0 for i in range(n))


@given(n=st.integers(min_value=3, max_value=64), seed=st.integers(0, 7))
def test_generator_sweep_property(n, seed):
    for name in ("chain", "cycle", "star", "grid"):
        graph = TOPOLOGIES[name](n, seed=seed)
        assert graph.is_connected()
        assert len(graph.edges) == expected_edge_count(name, graph, n)


def test_verified_rejects_missized_graph():
    from repro.query.topologies import _verified

    graph = chain_graph(6, seed=0)
    with pytest.raises(ValidationError, match="expected exactly"):
        _verified(graph, 99, "chain")


def test_verified_rejects_disconnected_graph():
    from repro.query import JoinGraph
    from repro.query.topologies import _verified

    graph = JoinGraph(4, [(0, 1, 0.5), (2, 3, 0.5)])
    with pytest.raises(ValidationError, match="disconnected"):
        _verified(graph, 2, "broken")
