"""Tests for the top-level public API."""

from __future__ import annotations

import pytest

import repro
from repro import (
    CoutCostModel,
    OptimizationResult,
    OptimizerConfig,
    Workload,
    WorkloadSpec,
    optimize,
)
from repro.util.errors import ValidationError


@pytest.fixture
def query():
    return Workload(WorkloadSpec("star", 6, seed=1))[0]


def test_version():
    assert repro.__version__


def test_optimize_serial_default(query):
    result = optimize(query)
    assert isinstance(result, OptimizationResult)
    assert result.algorithm == "dpsize"
    assert result.plan.size == 6


@pytest.mark.parametrize(
    "algorithm", ["dpsize", "dpsub", "dpccp", "dpsva", "exhaustive"]
)
def test_optimize_exact_algorithms_agree(query, algorithm):
    baseline = optimize(query)
    result = optimize(query, config=OptimizerConfig(algorithm=algorithm))
    assert result.cost == pytest.approx(baseline.cost, rel=1e-12)


@pytest.mark.parametrize(
    "algorithm",
    ["goo", "ikkbz", "iterated_improvement", "simulated_annealing"],
)
def test_optimize_heuristics(query, algorithm):
    dp = optimize(query, config=OptimizerConfig(cross_products=True))
    result = optimize(query, config=OptimizerConfig(algorithm=algorithm))
    assert result.algorithm == algorithm
    assert result.cost >= dp.cost - 1e-9


def test_optimize_parallel(query):
    serial = optimize(query, config=OptimizerConfig(algorithm="dpsva"))
    parallel = optimize(
        query, config=OptimizerConfig(algorithm="dpsva", threads=4)
    )
    assert parallel.cost == serial.cost
    assert "sim_report" in parallel.extras


def test_optimize_parallel_options(query):
    result = optimize(
        query,
        config=OptimizerConfig(
            algorithm="dpsize", threads=2, allocation="round_robin"
        ),
    )
    assert result.extras["allocation"] == "round_robin"


def test_optimize_cost_model(query):
    result = optimize(query, config=OptimizerConfig(cost_model=CoutCostModel()))
    reference = optimize(
        query,
        config=OptimizerConfig(algorithm="dpsub", cost_model=CoutCostModel()),
    )
    assert result.cost == pytest.approx(reference.cost, rel=1e-12)


def test_optimize_unknown_algorithm(query):
    with pytest.raises(ValidationError):
        optimize(query, config=OptimizerConfig(algorithm="magic"))


def test_optimize_rejects_orphan_options(query):
    with pytest.raises(ValidationError):
        optimize(query, config=OptimizerConfig(allocation="chunked"))


def test_optimize_cross_products(query):
    result = optimize(query, config=OptimizerConfig(cross_products=True))
    assert result.cost <= optimize(query).cost + 1e-9


def test_public_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name
