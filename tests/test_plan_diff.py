"""Tests for clause-level plan diffing (repro.plans.diff)."""

from __future__ import annotations

from repro.plans import (
    JoinMethod,
    JoinNode,
    ScanNode,
    diff_plans,
    render_diff,
)
from repro.plans.diff import Clause, block_map


def left_deep():
    return JoinNode(
        left=JoinNode(
            left=ScanNode(0), right=ScanNode(1), method=JoinMethod.HASH
        ),
        right=ScanNode(2),
        method=JoinMethod.NESTED_LOOP,
    )


def bushy():
    return JoinNode(
        left=JoinNode(
            left=ScanNode(0), right=ScanNode(1), method=JoinMethod.HASH
        ),
        right=JoinNode(
            left=ScanNode(2), right=ScanNode(3), method=JoinMethod.HASH
        ),
        method=JoinMethod.SORT_MERGE,
    )


def test_block_map_contents():
    blocks = block_map(left_deep())
    assert set(blocks) == {0b001, 0b010, 0b100, 0b011, 0b111}
    top = blocks[0b111]
    assert top.kind == "join"
    assert top.left == 0b011
    assert top.right == 0b100
    assert top.method == "NESTED_LOOP"
    scan = blocks[0b001]
    assert scan.kind == "scan"
    assert scan.method == "SCAN"


def test_diff_identical_plans():
    diff = diff_plans(left_deep(), left_deep())
    assert diff.identical
    assert not diff.changed and not diff.only_a and not diff.only_b
    text = render_diff(diff, ("a", "b", "c"))
    assert text.startswith("plans identical")


def test_diff_divergent_plans():
    diff = diff_plans(left_deep(), bushy())
    assert not diff.identical
    # The {0,1} HASH block is shared; the tops differ.
    assert 0b011 in diff.same
    changed_masks = set(diff.changed)
    only_b = set(diff.only_b)
    assert 0b1100 in only_b or 0b1000 in only_b
    assert 0b111 in set(diff.only_a) or 0b111 in changed_masks


def test_diff_method_change_is_changed_not_only():
    a = JoinNode(left=ScanNode(0), right=ScanNode(1), method=JoinMethod.HASH)
    b = JoinNode(
        left=ScanNode(0), right=ScanNode(1), method=JoinMethod.SORT_MERGE
    )
    diff = diff_plans(a, b)
    assert 0b11 in diff.changed
    before, after = diff.changed[0b11]
    assert isinstance(before, Clause) and isinstance(after, Clause)
    assert before.method == "HASH" and after.method == "SORT_MERGE"


def test_render_diff_markers():
    text = render_diff(
        diff_plans(left_deep(), bushy()), ("a", "b", "c", "d"),
        label_a="dp", label_b="heuristic",
    )
    assert "plans differ" in text.splitlines()[0]
    assert any(line.startswith("- ") for line in text.splitlines())
    assert any(line.startswith("+ ") for line in text.splitlines())
    assert "dp" in text and "heuristic" in text


def test_diff_is_symmetric_under_swap():
    d1 = diff_plans(left_deep(), bushy())
    d2 = diff_plans(bushy(), left_deep())
    assert set(d1.only_a) == set(d2.only_b)
    assert set(d1.only_b) == set(d2.only_a)
    assert set(d1.changed) == set(d2.changed)
    assert d1.same == d2.same
