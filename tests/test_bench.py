"""Tests for the bench harness (runners + reporting + registry)."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.bench import (
    BY_CLI,
    CLI_CHOICES,
    EXPERIMENTS,
    allocation_comparison,
    describe,
    format_table,
    heuristic_quality,
    median,
    render_curve,
    rows_to_csv,
    run_serial_grid,
    size_scaling,
    speedup_curve,
    sva_effectiveness,
)
from repro.util.errors import ValidationError

REPO = Path(__file__).resolve().parent.parent


def test_median():
    assert median([3, 1, 2]) == 2
    assert median([1.0, 4.0]) == 2.5


def test_format_table_alignment():
    rows = [
        {"a": 1, "b": "x", "c": 1.5},
        {"a": 22222, "b": "yyyy", "c": 0.25},
    ]
    text = format_table(rows)
    lines = text.splitlines()
    assert lines[0].split() == ["a", "b", "c"]
    assert len(lines) == 4
    assert "22,222" in lines[3]


def test_format_table_empty_and_columns():
    assert format_table([]) == "(no rows)"
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_format_value_ranges():
    rows = [{"v": 1234567.0}, {"v": 0.00001}, {"v": 0.0}, {"v": True}]
    text = format_table(rows)
    assert "1.23e+06" in text
    assert "1e-05" in text


def test_render_curve():
    text = render_curve([1, 2, 4], [1.0, 2.0, 4.0], label="speedup")
    lines = text.splitlines()
    assert lines[0] == "speedup"
    assert len(lines) == 4
    # Bars scale with value.
    assert lines[3].count("#") > lines[1].count("#")


def test_render_curve_empty():
    assert "(no data)" in render_curve([], [], label="x")


def test_rows_to_csv():
    rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
    csv = rows_to_csv(rows)
    assert csv.splitlines() == ["a,b", "1,x", "2,y"]
    assert rows_to_csv([]) == ""


def test_run_serial_grid_shape():
    rows = run_serial_grid(
        ["chain"], [4, 5], algorithms=("dpsize", "dpsva"), queries=2, seed=0
    )
    assert len(rows) == 4
    for row in rows:
        assert row["pairs"] >= row["valid_pairs"]
        assert row["memo"] > 0
        assert row["time_ms"] >= 0


def test_run_serial_grid_unknown_algorithm():
    with pytest.raises(ValidationError):
        run_serial_grid(["chain"], [4], algorithms=("magic",))


def test_sva_effectiveness_identity():
    rows = sva_effectiveness(["star"], [7], queries=2, seed=1)
    (row,) = rows
    assert row["sva_positions"] + row["skipped"] == row["dpsize_pairs"]
    assert 0 <= row["skip_ratio"] < 1


def test_speedup_curve_baseline_is_one():
    rows = speedup_curve("star", 7, thread_counts=(1, 2), queries=1, seed=2)
    assert rows[0]["threads"] == 1
    assert rows[0]["speedup"] == pytest.approx(1.0)
    assert rows[1]["efficiency"] == rows[1]["speedup"] / 2


def test_allocation_comparison_rows():
    rows = allocation_comparison("star", 7, threads=4, queries=1, seed=3)
    assert {r["scheme"] for r in rows} == {
        "round_robin", "chunked", "equi_depth", "dynamic",
    }
    for row in rows:
        assert row["imbalance"] >= 1.0
        assert row["sim_time"] > 0


def test_size_scaling_rows():
    rows = size_scaling("chain", [4, 5], thread_counts=(1, 2), queries=1)
    assert len(rows) == 4
    assert all(r["busy"] > 0 for r in rows)


def test_heuristic_quality_rows():
    rows = heuristic_quality(["chain"], n=5, queries=2, seed=4,
                             heuristics=("goo", "ikkbz"))
    assert len(rows) == 2
    for row in rows:
        assert row["vs_own_space_median"] >= 1.0 - 1e-9
        assert row["vs_bushy_median"] >= 1.0 - 1e-9
        assert row["space_gap"] >= 1.0 - 1e-9


# -- experiment registry ---------------------------------------------------
#
# The registry is the single source of truth: the CLI's --experiment
# choices and the standalone driver must both agree with it, so drift in
# either direction fails here instead of shipping a stale --help.


def test_registry_shape():
    assert len(EXPERIMENTS) >= 14
    eids = [exp.eid for exp in EXPERIMENTS]
    assert len(eids) == len(set(eids))
    for eid in eids:
        assert re.fullmatch(r"E\d+(/E\d+)?", eid)
    assert set(BY_CLI) == set(CLI_CHOICES)
    assert "cluster" in CLI_CHOICES
    assert BY_CLI["cluster"].eid == "E16"


def test_cli_parser_uses_registry():
    source = (REPO / "src" / "repro" / "cli.py").read_text()
    # The parser must take its choices from the registry, not a literal.
    assert "choices=CLI_CHOICES" in source
    # And every registered CLI experiment needs a dispatch branch.
    for cli in CLI_CHOICES:
        assert f'"{cli}"' in source, f"no bench branch for {cli!r}"


def test_run_all_driver_covers_registry():
    source = (REPO / "benchmarks" / "run_all.py").read_text()
    for exp in EXPERIMENTS:
        for eid in exp.eid.split("/"):
            token = f'"{eid.lower()}_'
            if exp.in_run_all:
                assert token in source, f"run_all.py missing {eid}"
            else:
                assert token not in source, (
                    f"run_all.py publishes {eid} but the registry says "
                    f"in_run_all=False"
                )


def test_describe_lists_every_experiment():
    text = describe()
    for exp in EXPERIMENTS:
        assert exp.eid in text
        if exp.cli:
            assert exp.cli in text
