"""Tests for the catalog substrate."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog import (
    Catalog,
    CatalogGeneratorConfig,
    Column,
    TableStats,
    generate_catalog,
)
from repro.util.errors import ValidationError


def test_table_stats_validation():
    with pytest.raises(ValidationError):
        TableStats(name="bad", cardinality=0)
    with pytest.raises(ValidationError):
        TableStats(name="bad", cardinality=10, tuple_width=0)
    with pytest.raises(ValidationError):
        TableStats(
            name="bad",
            cardinality=10,
            columns=(Column("a", 1), Column("a", 2)),
        )


def test_column_validation():
    with pytest.raises(ValidationError):
        Column(name="c", distinct_count=0)


def test_catalog_add_and_lookup():
    catalog = Catalog()
    catalog.add(TableStats(name="orders", cardinality=1000))
    catalog.add(TableStats(name="lineitem", cardinality=5000))
    assert "orders" in catalog
    assert len(catalog) == 2
    assert catalog.table("orders").cardinality == 1000
    assert catalog.names() == ["orders", "lineitem"]
    assert catalog.cardinalities() == [1000, 5000]
    with pytest.raises(ValidationError):
        catalog.add(TableStats(name="orders", cardinality=1))
    with pytest.raises(KeyError):
        catalog.table("nope")


def test_table_column_lookup():
    table = TableStats(
        name="t", cardinality=10, columns=(Column("a", 5), Column("b", 2))
    )
    assert table.column("b").distinct_count == 2
    with pytest.raises(KeyError):
        table.column("z")


def test_generate_catalog_deterministic():
    a = generate_catalog(8, seed=42)
    b = generate_catalog(8, seed=42)
    assert a.names() == b.names()
    assert a.cardinalities() == b.cardinalities()
    c = generate_catalog(8, seed=43)
    assert a.cardinalities() != c.cardinalities()


def test_generate_catalog_prefix_stability():
    """Growing the catalog must not change earlier tables (per-table seeds)."""
    small = generate_catalog(4, seed=9)
    big = generate_catalog(8, seed=9)
    assert big.cardinalities()[:4] == small.cardinalities()


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=10))
def test_generate_catalog_respects_bounds(n, seed):
    cfg = CatalogGeneratorConfig(min_cardinality=50, max_cardinality=500)
    catalog = generate_catalog(n, seed=seed, config=cfg)
    assert len(catalog) == n
    for table in catalog:
        assert 50 <= table.cardinality <= 500
        assert cfg.min_tuple_width <= table.tuple_width <= cfg.max_tuple_width
        for col in table.columns:
            assert 1 <= col.distinct_count <= table.cardinality


def test_generator_config_validation():
    with pytest.raises(ValidationError):
        CatalogGeneratorConfig(min_cardinality=0)
    with pytest.raises(ValidationError):
        CatalogGeneratorConfig(min_cardinality=10, max_cardinality=5)
    with pytest.raises(ValidationError):
        CatalogGeneratorConfig(columns_per_table=0)
    with pytest.raises(ValidationError):
        generate_catalog(0)
