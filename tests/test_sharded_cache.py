"""Sharding invariants of ShardedPlanCache.

The cache behind the async serving tier splits its key space N ways so
concurrent hits contend on per-shard locks instead of one global lock.
These tests pin the invariants the tier relies on: stable key routing,
eviction confined to the owning shard, aggregated counters equal to the
sum of the per-shard counters, and a catalog version kept coherent
across every shard.
"""

from __future__ import annotations

import pytest

from repro.service import PlanCache, ShardedPlanCache, shard_index
from repro.trace import RecordingTracer, per_cache_rows
from repro.util.errors import ValidationError


# -- key routing --------------------------------------------------------


def test_shard_index_is_stable_and_bounded():
    keys = [f"fingerprint-{i}" for i in range(200)]
    first = [shard_index(k, 8) for k in keys]
    second = [shard_index(k, 8) for k in keys]
    assert first == second  # deterministic, PYTHONHASHSEED-independent
    assert all(0 <= s < 8 for s in first)
    # The blake2b route actually spreads keys: every shard gets traffic.
    assert len(set(first)) == 8


def test_shard_of_matches_module_function():
    cache = ShardedPlanCache(shards=4)
    for key in ("a", "b", "c", "0123abc"):
        assert cache.shard_of(key) == shard_index(key, 4)


def test_single_shard_degenerates_to_one_cache():
    assert all(shard_index(f"k{i}", 1) == 0 for i in range(32))


# -- routing + round trips ---------------------------------------------


def test_roundtrip_and_membership():
    cache = ShardedPlanCache(shards=4, max_entries=64)
    for i in range(32):
        cache.put(f"k{i}", i)
    assert len(cache) == 32
    assert all(f"k{i}" in cache for i in range(32))
    assert cache.get("k7") == 7
    assert cache.get("missing", "fallback") == "fallback"
    assert sorted(cache.keys()) == sorted(f"k{i}" for i in range(32))
    assert dict(cache.items())["k9"] == 9


def test_eviction_is_confined_to_one_shard():
    # Total capacity 8 over 4 shards -> 2 entries per shard.  Overfilling
    # one shard evicts only within it; other shards keep everything.
    cache = ShardedPlanCache(shards=4, max_entries=8)
    per_shard = 8 // 4
    by_shard: dict[int, list[str]] = {s: [] for s in range(4)}
    i = 0
    while any(len(keys) < per_shard + 2 for keys in by_shard.values()):
        key = f"key-{i}"
        by_shard[cache.shard_of(key)].append(key)
        i += 1
    target_shard = 0
    target_keys = by_shard[target_shard]
    victim_shards = {s: ks[:per_shard] for s, ks in by_shard.items()
                     if s != target_shard}
    # Fill every *other* shard exactly to capacity.
    for keys in victim_shards.values():
        for key in keys:
            cache.put(key, key)
    # Now overfill the target shard.
    for key in target_keys:
        cache.put(key, key)
    stats = cache.shard_stats()
    assert stats[target_shard].evictions == len(target_keys) - per_shard
    for shard, keys in victim_shards.items():
        assert stats[shard].evictions == 0
        for key in keys:
            assert cache.get(key) == key  # untouched by the hot shard


def test_ttl_expiry_per_shard_with_fake_clock():
    clock = [0.0]
    cache = ShardedPlanCache(
        shards=4, max_entries=16, ttl_seconds=10.0, clock=lambda: clock[0]
    )
    cache.put("early", 1)
    clock[0] = 8.0
    cache.put("late", 2)
    clock[0] = 12.0
    assert cache.get("early") is None  # expired
    assert cache.get("late") == 2      # still fresh
    assert cache.stats().stale == 1


# -- aggregated counters ------------------------------------------------


def test_stats_is_sum_of_shard_stats():
    cache = ShardedPlanCache(shards=4, max_entries=8)
    for i in range(24):
        cache.put(f"k{i}", i)
    for i in range(24):
        cache.get(f"k{i}")
    cache.get("nope")
    total = cache.stats()
    shards = cache.shard_stats()
    for field in ("hits", "misses", "evictions", "stale", "invalidated",
                  "entries"):
        assert getattr(total, field) == sum(
            getattr(s, field) for s in shards
        ), field
    assert total.entries == len(cache) <= 8


def test_trace_counters_aggregate_under_one_tier():
    tracer = RecordingTracer()
    cache = ShardedPlanCache(
        shards=4, max_entries=16, tier="plan", tracer=tracer
    )
    for i in range(8):
        cache.put(f"k{i}", i)
        cache.get(f"k{i}")
    cache.get("missing")
    rows = per_cache_rows(tracer.events)
    assert len(rows) == 1  # every shard shares the tier label
    assert rows[0]["tier"] == "plan"
    assert rows[0]["hits"] == 8
    assert rows[0]["misses"] == 1


# -- version coherence --------------------------------------------------


def test_bump_version_covers_every_shard():
    cache = ShardedPlanCache(shards=4, max_entries=32)
    for i in range(16):
        cache.put(f"k{i}", i)
    assert cache.version == 0
    new_version = cache.bump_version()
    assert new_version == 1
    assert cache.version == 1
    # Every entry in every shard is now version-stale.
    assert all(cache.get(f"k{i}") is None for i in range(16))
    assert cache.stats().invalidated == 16


def test_invalidate_one_key_and_all():
    cache = ShardedPlanCache(shards=4, max_entries=32)
    for i in range(12):
        cache.put(f"k{i}", i)
    assert cache.invalidate("k3") == 1
    assert cache.get("k3") is None
    assert cache.invalidate() == 11
    assert len(cache) == 0


# -- validation ---------------------------------------------------------


def test_sharded_cache_validation():
    with pytest.raises(ValidationError):
        ShardedPlanCache(shards=0)
    with pytest.raises(ValidationError):
        ShardedPlanCache(shards=4, max_entries=0)


def test_capacity_splits_evenly():
    cache = ShardedPlanCache(shards=4, max_entries=10)
    # ceil(10/4) = 3 per shard.
    assert all(s.max_entries == 3 for s in cache._shards)
    plain = PlanCache(max_entries=10)
    assert plain.max_entries == 10
