"""WorkMeter round-trips, block-level flush exactness, estimator cache
metering, and None-tolerant imbalance extras.

The fast kernels accumulate counts in locals and flush once per block;
these tests pin the contract that flushing granularity never changes the
totals — however a stratum is split, and even when blocks are empty.
"""

from __future__ import annotations

from repro import Workload, WorkloadSpec
from repro.bench.manifest import result_to_dict, save_manifest, load_manifest
from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import StandardCostModel
from repro.enumerate.kernels import dpsize_pair_kernel, dpsize_pair_kernel_fast
from repro.memo.counters import FIELDS, WorkMeter
from repro.memo.table import Memo
from repro.parallel.scheduler import ParallelDP
from repro.query import QueryContext
from repro.trace.metrics import METER_COUNTERS, emit_meter_delta
from repro.trace.tracer import RecordingTracer


def query_for(topology, n, seed=0):
    return Workload(WorkloadSpec(topology, n, seed=seed))[0]


def test_meter_as_dict_merge_dict_round_trip():
    source = WorkMeter()
    for i, name in enumerate(FIELDS, start=1):
        setattr(source, name, i * 7)
    snapshot = source.as_dict()
    assert list(snapshot) == list(FIELDS)

    restored = WorkMeter()
    restored.merge_dict(snapshot)
    assert restored == source
    assert restored.as_dict() == snapshot

    # merge(meter) and merge_dict(meter.as_dict()) are the same operation.
    via_merge, via_dict = WorkMeter(), WorkMeter()
    via_merge.pairs_considered = via_dict.pairs_considered = 3
    via_merge.merge(source)
    via_dict.merge_dict(snapshot)
    assert via_merge == via_dict


def _seeded_memo(query, meter):
    ctx = QueryContext(query)
    estimator = CardinalityEstimator(ctx, meter=meter)
    memo = Memo(ctx, StandardCostModel(), estimator=estimator, meter=meter)
    memo.init_scans()
    return ctx, memo


def test_block_flush_matches_unsplit_reference():
    """Counts are exact whatever the block boundaries — including empty
    and single-element blocks."""
    query = query_for("cycle", 7, seed=5)

    ref_meter = WorkMeter()
    ctx, ref_memo = _seeded_memo(query, ref_meter)
    outer = ref_memo.sets_of_size(1)
    inner = ref_memo.sets_of_size(1)
    dpsize_pair_kernel(
        ref_memo, ctx, outer, inner, 0, len(outer), True, ref_meter
    )

    for boundaries in ([(0, len(outer))], [(0, 3), (3, 3), (3, len(outer))],
                       [(i, i + 1) for i in range(len(outer))]):
        meter = WorkMeter()
        ctx2, memo = _seeded_memo(query, meter)
        for start, stop in boundaries:
            dpsize_pair_kernel_fast(
                memo, ctx2, outer, inner, start, stop, True, meter
            )
        assert meter.as_dict() == ref_meter.as_dict()
        assert len(memo) == len(ref_memo)


def test_empty_block_leaves_meter_untouched():
    meter = WorkMeter()
    query = query_for("chain", 5)
    ctx, memo = _seeded_memo(query, meter)
    before = meter.as_dict()
    outer = memo.sets_of_size(1)
    dpsize_pair_kernel_fast(memo, ctx, outer, outer, 2, 2, True, meter)
    assert meter.as_dict() == before


def test_oversubscription_split_preserves_exact_counts():
    """More work units per stratum means more block flushes (some over
    empty assignments); fast totals must equal the reference totals at
    every granularity.  ``memo_improvements`` legitimately varies *across*
    granularities (running-min updates depend on pair order, on the
    reference path too), so cross-split comparison covers the
    order-independent counters only."""
    query = query_for("star", 8, seed=2)
    order_free = None
    for oversub in (1, 2, 7):
        counts_by_path = {}
        for fast in (True, False):
            result = ParallelDP(
                algorithm="dpsize",
                threads=5,
                oversubscription=oversub,
                fast_path=fast,
            ).optimize(query)
            counts_by_path[fast] = result.meter.as_dict()
        # Same split: bit-exact meter parity, improvements included.
        assert counts_by_path[True] == counts_by_path[False]
        stable = {
            k: v
            for k, v in counts_by_path[True].items()
            if k != "memo_improvements"
        }
        if order_free is None:
            order_free = stable
        assert stable == order_free


def test_empty_stratum_assignments_are_exact():
    # threads far exceed the available units, so most workers get empty
    # assignments each stratum; totals still match the serial reference.
    query = query_for("chain", 4)
    serial = ParallelDP(algorithm="dpsub", threads=1).optimize(query)
    wide = ParallelDP(algorithm="dpsub", threads=8).optimize(query)
    assert wide.meter.as_dict() == serial.meter.as_dict()


def test_estimator_cache_is_symmetric_and_metered():
    query = query_for("chain", 4)
    ctx = QueryContext(query)
    meter = WorkMeter()
    est = CardinalityEstimator(ctx, meter=meter)

    first = est.join_rows(0b0011, 0b0100)
    hits_after_first = meter.est_cache_hits
    mirrored = est.join_rows(0b0100, 0b0011)
    assert mirrored == first
    # The mirrored call is a pure cache hit: exactly one more hit, no
    # new cache entries.
    assert meter.est_cache_hits == hits_after_first + 1
    assert est.rows(0b0111) == first
    assert meter.est_cache_hits == hits_after_first + 2


def test_estimator_unmetered_when_meter_absent():
    query = query_for("chain", 4)
    est = CardinalityEstimator(QueryContext(query))
    assert est.join_rows(0b0011, 0b0100) == est.join_rows(0b0100, 0b0011)


def test_meter_delta_renders_estimator_hits():
    assert METER_COUNTERS["est_cache_hits"] == "estimator.cache_hits"
    tracer = RecordingTracer()
    before = WorkMeter().as_dict()
    after = dict(before, est_cache_hits=4)
    emit_meter_delta(tracer, before, after, size=3)
    events = [e for e in tracer.events if e.name == "estimator.cache_hits"]
    assert len(events) == 1
    assert events[0].value == 4
    assert events[0].attrs["size"] == 3


def test_dynamic_imbalances_are_none_and_serializable(tmp_path):
    """Dynamic allocation records None per stratum; every extras consumer
    (JSON manifests included) must tolerate that."""
    query = query_for("chain", 7, seed=1)
    result = ParallelDP(
        algorithm="dpsize", threads=3, allocation="dynamic"
    ).optimize(query)
    imbalances = result.extras["allocation_imbalances"]
    assert imbalances and all(i is None for i in imbalances)

    row = result_to_dict(result)
    assert row["extras"]["allocation_imbalances"] == imbalances
    path = save_manifest(tmp_path / "m.json", [row], {"exp": "meter"})
    rows, meta = load_manifest(path)
    assert rows[0]["extras"]["allocation_imbalances"] == imbalances
    assert meta["exp"] == "meter"
