"""DPsize: size-driven bottom-up enumeration.

The enumerator used by System R descendants (DB2, PostgreSQL) and the one
the VLDB 2008 paper parallelizes and accelerates with skip vector arrays.
Plans for quantifier sets of size ``s`` are built by combining memo strata
of sizes ``(1, s-1), (2, s-2), …, (s-1, 1)``; both operand orders arise
naturally from the split loop.

Its known pathology — the reason skip vector arrays exist — is that the
stratum cross products ``sets(s1) × sets(s2)`` are dominated by pairs that
fail the disjointness test.
"""

from __future__ import annotations

import math

from repro.enumerate.base import Enumerator
from repro.enumerate.kernels import dpsize_pair_kernel, dpsize_pair_kernel_fast
from repro.enumerate.vkernels import dpsize_pair_kernel_vec
from repro.memo.table import Memo
from repro.trace.metrics import stratum_scope
from repro.trace.tracer import Tracer


class DPsize(Enumerator):
    """Classic DPsize (serial).

    Args:
        cross_products: Admit cross-product joins.
        plan_space: ``"bushy"`` (default, the full space) or
            ``"left_deep"`` — restrict to plans whose inner operand is
            always a base relation, i.e. only splits ``(|S|-1, 1)`` are
            enumerated.  The left-deep optimum is the natural reference
            for the order-based heuristics (E9).
        tracer: Observability sink (see :class:`Enumerator`).
    """

    name = "dpsize"

    def __init__(
        self,
        cross_products: bool = False,
        plan_space: str = "bushy",
        tracer: Tracer | None = None,
        fast_path: bool = True,
        vectorize: bool | None = None,
    ) -> None:
        super().__init__(
            cross_products=cross_products, tracer=tracer,
            fast_path=fast_path, vectorize=vectorize,
        )
        if plan_space not in ("bushy", "left_deep"):
            raise ValueError(
                f"plan_space must be 'bushy' or 'left_deep', got {plan_space!r}"
            )
        self.plan_space = plan_space

    def populate(self, memo: Memo) -> None:
        ctx = memo.ctx
        n = ctx.n
        require_connected = not self.cross_products
        tracer = self.tracer
        if getattr(memo, "vectorized", False):
            kernel = dpsize_pair_kernel_vec
        elif self.fast_path:
            kernel = dpsize_pair_kernel_fast
        else:
            kernel = dpsize_pair_kernel
        for size in range(2, n + 1):
            outer_sizes = (
                range(1, size)
                if self.plan_space == "bushy"
                else (size - 1,)
            )
            with stratum_scope(tracer, memo.meter, size, algorithm=self.name):
                for outer_size in outer_sizes:
                    inner_size = size - outer_size
                    outer_sets = memo.sets_of_size(outer_size)
                    inner_sets = memo.sets_of_size(inner_size)
                    kernel(
                        memo,
                        ctx,
                        outer_sets,
                        inner_sets,
                        0,
                        len(outer_sets),
                        require_connected,
                        memo.meter,
                    )

def stratum_pair_count(memo: Memo, size: int) -> int:
    """Number of candidate pairs DPsize inspects for stratum ``size``.

    Used by the parallel framework's total-sum (equi-depth) allocation.
    """
    total = 0
    for outer_size in range(1, size):
        inner_size = size - outer_size
        total += len(memo.sets_of_size(outer_size)) * len(
            memo.sets_of_size(inner_size)
        )
    return total


def expected_memo_sizes(n: int, connected_counts: list[int] | None = None):
    """Upper-bound stratum sizes: C(n, k) per stratum when cross products
    are enabled, or the supplied per-size connected-set counts."""
    if connected_counts is not None:
        return list(connected_counts)
    return [math.comb(n, k) for k in range(n + 1)]
