"""Common infrastructure for enumerators.

Every enumerator (serial or parallel) produces an
:class:`OptimizationResult`: the optimal plan tree, its cost, the exact
operation counts, and wall-clock time.  Serial enumerators subclass
:class:`Enumerator` and implement :meth:`Enumerator.populate`, which fills
an already scan-seeded memo.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel, StandardCostModel
from repro.memo.counters import WorkMeter
from repro.memo.soa import SoAMemo, soa_compatible
from repro.memo.table import Memo, extract_plan
from repro.memo.vec import VecSoAMemo
from repro.util.vectorize import resolve_vectorize
from repro.plans.nodes import PlanNode
from repro.query.context import QueryContext
from repro.query.joingraph import Query
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.util.errors import OptimizationError


@dataclass
class OptimizationResult:
    """Outcome of one optimization run.

    Attributes:
        algorithm: Name of the enumerator that produced the result.
        plan: Optimal plan tree.
        cost: Total plan cost under the run's cost model.
        rows: Estimated result cardinality.
        meter: Exact operation counts for the whole run.
        memo_entries: Number of quantifier sets memoized (the paper's
            main-memory proxy).
        elapsed_seconds: Wall-clock optimization time.
        extras: Algorithm-specific extra reporting (e.g. the parallel
            framework attaches its simulated timeline here).
    """

    algorithm: str
    plan: PlanNode
    cost: float
    rows: float
    meter: WorkMeter
    memo_entries: int
    elapsed_seconds: float
    extras: dict[str, Any] = field(default_factory=dict)

    # Typed accessors over the well-known extras.  ``extras[...]`` remains
    # populated for backwards compatibility; new code should use these.

    @property
    def sim_report(self):
        """Simulated-backend timing report, or ``None`` for other runs."""
        return self.extras.get("sim_report")

    @property
    def trace(self):
        """The run's :class:`~repro.trace.RecordingTracer`, or ``None``
        when tracing was disabled."""
        return self.extras.get("trace")

    @property
    def work_meter(self) -> WorkMeter:
        """Exact operation counts (alias of :attr:`meter`)."""
        return self.meter

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm}: cost={self.cost:.4g} rows={self.rows:.4g} "
            f"pairs={self.meter.pairs_considered} "
            f"memo={self.memo_entries} "
            f"time={self.elapsed_seconds * 1e3:.2f}ms"
        )


def make_context(query: Query | QueryContext) -> QueryContext:
    """Coerce a query into a compiled context."""
    if isinstance(query, QueryContext):
        return query
    return QueryContext(query)


class Enumerator(ABC):
    """Base class for serial enumerators.

    Args:
        cross_products: When True, all quantifier sets are admissible and
            every disjoint split is a valid join (missing edges behave as
            selectivity-1 cross joins).  When False (default, and the
            standard optimizer setting), only connected sets are memoized
            and only edged splits are joined.
        tracer: Observability sink (:mod:`repro.trace`).  Defaults to the
            zero-cost null tracer; enumerators emit per-stratum spans and
            meter-delta counters against it, never per-pair events.
        fast_path: Run the fused enumeration kernels against the
            struct-of-arrays memo backend when the configuration is
            eligible (``soa_compatible``); falls back to the reference
            path automatically otherwise.  Results — plan, cost, memo
            contents, and meter totals — are identical either way.
        vectorize: Tri-state numpy upgrade of the fast path: ``None``
            (default) and ``True`` use the vectorized memo and filter
            kernels when numpy is importable, ``False`` forces the pure
            list-comprehension kernels.  Only applies where the fast path
            itself applies; results are identical in every case.
    """

    name: str = "enumerator"

    def __init__(
        self,
        cross_products: bool = False,
        tracer: Tracer | None = None,
        fast_path: bool = True,
        vectorize: bool | None = None,
    ) -> None:
        self.cross_products = cross_products
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.fast_path = fast_path
        self.vectorize = resolve_vectorize(vectorize)

    def _use_fast_path(self, ctx: QueryContext, cost_model: CostModel) -> bool:
        """Fast path requested *and* eligible for this (query, model)?"""
        return self.fast_path and soa_compatible(ctx, cost_model)

    def optimize(
        self,
        query: Query | QueryContext,
        cost_model: CostModel | None = None,
    ) -> OptimizationResult:
        """Find the optimal plan for ``query``."""
        ctx = make_context(query)
        if not self.cross_products and not ctx.query.graph.is_connected():
            raise OptimizationError(
                "join graph is disconnected; enable cross_products"
            )
        cost_model = cost_model or StandardCostModel()
        meter = WorkMeter()
        estimator = CardinalityEstimator(ctx, meter=meter)
        tracer = self.tracer
        if self._use_fast_path(ctx, cost_model):
            memo_cls = VecSoAMemo if self.vectorize else SoAMemo
        else:
            memo_cls = Memo
        memo = memo_cls(
            ctx, cost_model, estimator=estimator, meter=meter, tracer=tracer
        )
        start = time.perf_counter()
        with tracer.span("optimize", algorithm=self.name, n=ctx.n):
            memo.init_scans()
            if ctx.n > 1:
                self.populate(memo)
        elapsed = time.perf_counter() - start
        best = memo.best()
        extras: dict[str, Any] = {}
        if tracer.enabled:
            extras["trace"] = tracer
        return OptimizationResult(
            algorithm=self.name,
            plan=extract_plan(memo),
            cost=best.cost,
            rows=best.rows,
            meter=meter,
            memo_entries=len(memo),
            elapsed_seconds=elapsed,
            extras=extras,
        )

    @abstractmethod
    def populate(self, memo: Memo) -> None:
        """Fill a scan-seeded memo with join entries up to the full set."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(cross_products={self.cross_products})"
