"""Enumeration kernels.

The innermost loops of ``DPsize`` and ``DPsub``, factored out so that the
serial enumerators and the parallel framework run *identical* code: a
parallel run is the same kernel invoked over index sub-ranges by different
(virtual or real) threads.  Keeping one code path is what makes operation
counts comparable across serial and parallel runs — the basis of the
simulated-speedup methodology.

Each kernel has two implementations:

* the **reference** kernel — one meter increment per primitive step, one
  ``connects()`` graph walk per candidate pair; the executable spec.
* the **fused** kernel (``*_fast``) — per outer set, the neighbor mask is
  resolved once via :meth:`~repro.query.context.QueryContext.adj_union`
  (``adj_union(outer) & inner`` ≡ ``connects(outer, inner)`` for disjoint
  operands), filtering runs as list comprehensions with rejection counts
  recovered from length deltas, surviving pairs go through the memo's
  batched ``consider_joins``/``consider_pairs`` API, and all meter counts
  accumulate in locals flushed once per block.

The fused kernels produce *identical* memo contents and meter totals to
the reference kernels — only the increment granularity differs (per block
instead of per pair).  ``tests/test_fast_path_parity.py`` holds them to
that.
"""

from __future__ import annotations

from repro.memo.counters import WorkMeter
from repro.memo.table import Memo
from repro.query.context import QueryContext


def dpsize_pair_kernel(
    memo: Memo,
    ctx: QueryContext,
    outer_sets: list[int],
    inner_sets: list[int],
    outer_start: int,
    outer_stop: int,
    require_connected: bool,
    meter: WorkMeter,
) -> None:
    """DPsize inner loop over one block of outer sets.

    For each outer set in ``outer_sets[outer_start:outer_stop]``, every
    inner set is inspected; pairs failing disjointness (the dominant
    rejection, and the one skip vector arrays eliminate) or connectivity
    are counted and skipped, surviving pairs are costed into the memo.
    """
    connects = ctx.connects
    consider = memo.consider_join
    for i in range(outer_start, outer_stop):
        outer = outer_sets[i]
        for inner in inner_sets:
            meter.pairs_considered += 1
            if outer & inner:
                meter.disjoint_fail += 1
                continue
            if require_connected:
                meter.conn_checks += 1
                if not connects(outer, inner):
                    meter.connectivity_fail += 1
                    continue
            meter.pairs_valid += 1
            consider(outer, inner, meter)


def dpsize_pair_kernel_fast(
    memo: Memo,
    ctx: QueryContext,
    outer_sets: list[int],
    inner_sets: list[int],
    outer_start: int,
    outer_stop: int,
    require_connected: bool,
    meter: WorkMeter,
) -> None:
    """Fused DPsize inner loop; parity-equal to :func:`dpsize_pair_kernel`."""
    adj_union = ctx.adj_union
    consider_joins = memo.consider_joins
    inner_count = len(inner_sets)
    pairs_local = 0
    disjoint_local = 0
    conn_checks_local = 0
    conn_fail_local = 0
    valid_local = 0
    for i in range(outer_start, outer_stop):
        outer = outer_sets[i]
        pairs_local += inner_count
        free = [inner for inner in inner_sets if not outer & inner]
        disjoint_local += inner_count - len(free)
        if require_connected:
            conn_checks_local += len(free)
            nbr = adj_union(outer)
            valid = [inner for inner in free if nbr & inner]
            conn_fail_local += len(free) - len(valid)
        else:
            valid = free
        valid_local += len(valid)
        consider_joins(outer, valid, meter)
    meter.pairs_considered += pairs_local
    meter.disjoint_fail += disjoint_local
    meter.conn_checks += conn_checks_local
    meter.connectivity_fail += conn_fail_local
    meter.pairs_valid += valid_local


def dpsub_block_kernel(
    memo: Memo,
    ctx: QueryContext,
    candidate_masks: list[int],
    start: int,
    stop: int,
    require_connected: bool,
    meter: WorkMeter,
) -> None:
    """DPsub inner loop over one block of candidate result sets.

    ``candidate_masks`` is the raw size-``k`` subset stratum; when cross
    products are disabled each candidate is first connectivity-checked
    (metered — DPsub cannot avoid inspecting every subset, which is its
    defining inefficiency on sparse graphs).  For each surviving result
    set, every proper non-empty submask is tried as the outer operand (its
    complement within the set is the inner operand).  A split is valid iff
    both halves are memoized (i.e. connected); a crossing edge then exists
    automatically because the connected result set is partitioned into two
    connected halves.
    """
    entries_contain = memo.__contains__
    consider = memo.consider_join
    is_connected = ctx.is_connected
    for idx in range(start, stop):
        result = candidate_masks[idx]
        if require_connected:
            meter.conn_checks += 1
            if not is_connected(result):
                meter.connectivity_fail += 1
                continue
        sub = (result - 1) & result
        while sub:
            meter.submask_steps += 1
            meter.pairs_considered += 1
            complement = result ^ sub
            if require_connected and (
                not entries_contain(sub) or not entries_contain(complement)
            ):
                meter.operand_missing += 1
            else:
                meter.pairs_valid += 1
                consider(sub, complement, meter)
            sub = (sub - 1) & result


def dpsub_block_kernel_fast(
    memo: Memo,
    ctx: QueryContext,
    candidate_masks: list[int],
    start: int,
    stop: int,
    require_connected: bool,
    meter: WorkMeter,
) -> None:
    """Fused DPsub inner loop; parity-equal to :func:`dpsub_block_kernel`.

    The submask walk itself is inherently sequential, but the fast path
    collects each result set's valid splits into a batch handed to
    ``consider_pairs`` (one call per result set instead of one per split)
    and keeps all counts in locals until the block ends.
    """
    entries_contain = memo.__contains__
    consider_pairs = memo.consider_pairs
    is_connected = ctx.is_connected
    conn_checks_local = 0
    conn_fail_local = 0
    steps_local = 0
    missing_local = 0
    valid_local = 0
    for idx in range(start, stop):
        result = candidate_masks[idx]
        if require_connected:
            conn_checks_local += 1
            if not is_connected(result):
                conn_fail_local += 1
                continue
        splits: list[tuple[int, int]] = []
        sub = (result - 1) & result
        if require_connected:
            while sub:
                steps_local += 1
                complement = result ^ sub
                if not entries_contain(sub) or not entries_contain(complement):
                    missing_local += 1
                else:
                    splits.append((sub, complement))
                sub = (sub - 1) & result
        else:
            while sub:
                steps_local += 1
                splits.append((sub, result ^ sub))
                sub = (sub - 1) & result
        valid_local += len(splits)
        consider_pairs(splits, meter)
    meter.conn_checks += conn_checks_local
    meter.connectivity_fail += conn_fail_local
    meter.submask_steps += steps_local
    meter.pairs_considered += steps_local
    meter.operand_missing += missing_local
    meter.pairs_valid += valid_local
