"""Enumeration kernels.

The innermost loops of ``DPsize`` and ``DPsub``, factored out so that the
serial enumerators and the parallel framework run *identical* code: a
parallel run is the same kernel invoked over index sub-ranges by different
(virtual or real) threads.  Keeping one code path is what makes operation
counts comparable across serial and parallel runs — the basis of the
simulated-speedup methodology.
"""

from __future__ import annotations

from repro.memo.counters import WorkMeter
from repro.memo.table import Memo
from repro.query.context import QueryContext


def dpsize_pair_kernel(
    memo: Memo,
    ctx: QueryContext,
    outer_sets: list[int],
    inner_sets: list[int],
    outer_start: int,
    outer_stop: int,
    require_connected: bool,
    meter: WorkMeter,
) -> None:
    """DPsize inner loop over one block of outer sets.

    For each outer set in ``outer_sets[outer_start:outer_stop]``, every
    inner set is inspected; pairs failing disjointness (the dominant
    rejection, and the one skip vector arrays eliminate) or connectivity
    are counted and skipped, surviving pairs are costed into the memo.
    """
    connects = ctx.connects
    consider = memo.consider_join
    for i in range(outer_start, outer_stop):
        outer = outer_sets[i]
        for inner in inner_sets:
            meter.pairs_considered += 1
            if outer & inner:
                meter.disjoint_fail += 1
                continue
            if require_connected:
                meter.conn_checks += 1
                if not connects(outer, inner):
                    meter.connectivity_fail += 1
                    continue
            meter.pairs_valid += 1
            consider(outer, inner, meter)


def dpsub_block_kernel(
    memo: Memo,
    ctx: QueryContext,
    candidate_masks: list[int],
    start: int,
    stop: int,
    require_connected: bool,
    meter: WorkMeter,
) -> None:
    """DPsub inner loop over one block of candidate result sets.

    ``candidate_masks`` is the raw size-``k`` subset stratum; when cross
    products are disabled each candidate is first connectivity-checked
    (metered — DPsub cannot avoid inspecting every subset, which is its
    defining inefficiency on sparse graphs).  For each surviving result
    set, every proper non-empty submask is tried as the outer operand (its
    complement within the set is the inner operand).  A split is valid iff
    both halves are memoized (i.e. connected); a crossing edge then exists
    automatically because the connected result set is partitioned into two
    connected halves.
    """
    entries_contain = memo.__contains__
    consider = memo.consider_join
    is_connected = ctx.is_connected
    for idx in range(start, stop):
        result = candidate_masks[idx]
        if require_connected:
            meter.conn_checks += 1
            if not is_connected(result):
                meter.connectivity_fail += 1
                continue
        sub = (result - 1) & result
        while sub:
            meter.submask_steps += 1
            meter.pairs_considered += 1
            complement = result ^ sub
            if require_connected and (
                not entries_contain(sub) or not entries_contain(complement)
            ):
                meter.operand_missing += 1
            else:
                meter.pairs_valid += 1
                consider(sub, complement, meter)
            sub = (sub - 1) & result
