"""Exhaustive plan enumeration (reference implementation).

Enumerates *every* plan tree — all bushy shapes, all operand orders, all
join methods — without memoization, and scores each with the independent
tree-costing path (:func:`repro.cost.plan_cost.plan_cost`).  Exponential in
the worst way, usable only for small queries, and exactly what the test
suite needs: any DP enumerator must match its optimum bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel, StandardCostModel
from repro.cost.plan_cost import plan_cost
from repro.enumerate.base import OptimizationResult, make_context
from repro.memo.counters import WorkMeter
from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.query.context import QueryContext
from repro.query.joingraph import Query
from repro.util.bitsets import first_bit, iter_submasks, popcount
from repro.util.errors import OptimizationError, ValidationError


def all_plan_trees(
    ctx: QueryContext,
    mask: int | None = None,
    cross_products: bool = False,
    methods=None,
) -> Iterator[PlanNode]:
    """Yield every plan tree for ``mask`` (default: the full query).

    With ``cross_products=False``, only trees whose every join has a
    connecting edge are produced.  Join methods default to the full
    operator set.
    """
    from repro.plans.operators import JOIN_METHODS

    if mask is None:
        mask = ctx.all_mask
    methods = tuple(methods) if methods is not None else JOIN_METHODS

    def build(target: int) -> Iterator[PlanNode]:
        if popcount(target) == 1:
            yield ScanNode(relation=first_bit(target))
            return
        for left_mask in iter_submasks(target):
            right_mask = target ^ left_mask
            if not cross_products and not ctx.connects(left_mask, right_mask):
                continue
            for left in build(left_mask):
                for right in build(right_mask):
                    for method in methods:
                        yield JoinNode(left=left, right=right, method=method)

    yield from build(mask)


class ExhaustiveEnumerator:
    """Brute-force optimizer for verification.

    Refuses queries beyond ``max_relations`` — tree counts are Catalan-scale.
    """

    name = "exhaustive"

    def __init__(self, cross_products: bool = False, max_relations: int = 8) -> None:
        self.cross_products = cross_products
        self.max_relations = max_relations

    def optimize(
        self,
        query: Query | QueryContext,
        cost_model: CostModel | None = None,
    ) -> OptimizationResult:
        """Score every plan tree and return the cheapest."""
        import time

        ctx = make_context(query)
        if ctx.n > self.max_relations:
            raise ValidationError(
                f"exhaustive enumeration limited to {self.max_relations} "
                f"relations, got {ctx.n}"
            )
        cost_model = cost_model or StandardCostModel()
        estimator = CardinalityEstimator(ctx)
        start = time.perf_counter()
        best_plan: PlanNode | None = None
        best_cost = float("inf")
        count = 0
        for plan in all_plan_trees(ctx, cross_products=self.cross_products):
            count += 1
            cost = plan_cost(plan, estimator, cost_model)
            if cost < best_cost:
                best_cost = cost
                best_plan = plan
        if best_plan is None:
            raise OptimizationError(
                "no plan exists: disconnected graph without cross products"
            )
        meter = WorkMeter()
        meter.plans_emitted = count
        return OptimizationResult(
            algorithm=self.name,
            plan=best_plan,
            cost=best_cost,
            rows=estimator.rows(ctx.all_mask),
            meter=meter,
            memo_entries=0,
            elapsed_seconds=time.perf_counter() - start,
            extras={"plans_scored": count},
        )
