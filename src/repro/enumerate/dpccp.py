"""DPccp: enumeration of connected-subgraph / complement pairs.

Moerkotte & Neumann's (VLDB 2006) enumerator visits exactly the valid
csg-cmp pairs of the join graph — no disjointness or connectivity test ever
fails.  It is the strongest serial baseline on sparse graphs and the lower
bound the skip-vector results are judged against in E1/E2.

The implementation enumerates pairs with the canonical
``EnumerateCsg``/``EnumerateCmp`` recursion and buffers them per result
size, processing strata bottom-up.  Buffering trades memory for an
ordering guarantee that is trivially correct (operands of a size-``s``
result have sizes ``< s``), and gives DPccp the same stratum structure as
the other enumerators, which the parallel framework relies on.

DPccp requires a connected graph and never emits cross products; with
``cross_products=True`` the graph is treated as a clique (every pair of
relations adjacent, missing edges joining with selectivity 1), which makes
the plan space identical to DPsize/DPsub with cross products.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.enumerate.base import Enumerator
from repro.memo.table import Memo
from repro.query.context import QueryContext
from repro.trace.metrics import stratum_scope
from repro.util.bitsets import bits_of, popcount


def _neighbourhoods(ctx: QueryContext, as_clique: bool) -> list[int]:
    if not as_clique:
        return list(ctx.adjacency)
    full = ctx.all_mask
    return [full & ~(1 << i) for i in range(ctx.n)]


def _subsets_ascending(mask: int) -> Iterator[int]:
    """Non-empty submasks of ``mask`` in increasing numeric order."""
    sub = (-mask) & mask  # lowest bit
    while True:
        yield sub
        if sub == mask:
            return
        sub = (sub - mask) & mask


def enumerate_csg_cmp_pairs(
    ctx: QueryContext, as_clique: bool = False
) -> Iterator[tuple[int, int]]:
    """Yield every csg-cmp pair ``(S1, S2)`` of the query graph.

    Each unordered pair is emitted exactly once.  ``S1`` and ``S2`` are
    connected, disjoint, and joined by at least one edge.
    """
    n = ctx.n
    adjacency = _neighbourhoods(ctx, as_clique)

    def neighbours(mask: int, forbidden: int) -> int:
        out = 0
        for rel in bits_of(mask):
            out |= adjacency[rel]
        return out & ~forbidden & ~mask

    def enumerate_csg_rec(s: int, x: int) -> Iterator[int]:
        n_set = neighbours(s, x)
        if not n_set:
            return
        for sub in _subsets_ascending(n_set):
            yield s | sub
        for sub in _subsets_ascending(n_set):
            yield from enumerate_csg_rec(s | sub, x | n_set)

    def enumerate_csg() -> Iterator[int]:
        for i in range(n - 1, -1, -1):
            start = 1 << i
            yield start
            yield from enumerate_csg_rec(start, (1 << (i + 1)) - 1)

    def enumerate_cmp(s1: int) -> Iterator[int]:
        min_bit_mask = (1 << (s1 & -s1).bit_length()) - 1  # B_{min(S1)}
        x = min_bit_mask | s1
        n_set = neighbours(s1, x)
        for i in sorted(bits_of(n_set), reverse=True):
            start = 1 << i
            yield start
            below = (1 << (i + 1)) - 1
            yield from enumerate_csg_rec(start, x | (below & n_set))

    for s1 in enumerate_csg():
        for s2 in enumerate_cmp(s1):
            yield s1, s2


class DPccp(Enumerator):
    """DPccp (serial), stratified by result size."""

    name = "dpccp"

    def populate(self, memo: Memo) -> None:
        ctx = memo.ctx
        meter = memo.meter
        tracer = self.tracer
        strata: list[list[tuple[int, int]]] = [[] for _ in range(ctx.n + 1)]
        with tracer.span("enumerate_pairs", algorithm=self.name):
            for s1, s2 in enumerate_csg_cmp_pairs(
                ctx, as_clique=self.cross_products
            ):
                strata[popcount(s1 | s2)].append((s1, s2))
        consider = memo.consider_join
        for size, stratum in enumerate(strata):
            if not stratum:
                continue
            with stratum_scope(tracer, meter, size, algorithm=self.name):
                for s1, s2 in stratum:
                    # Each unordered pair is costed in both operand orders,
                    # matching the ordered-pair coverage of DPsize/DPsub.
                    meter.pairs_considered += 2
                    meter.pairs_valid += 2
                    consider(s1, s2, meter)
                    consider(s2, s1, meter)


def count_csg_cmp_pairs(ctx: QueryContext, as_clique: bool = False) -> int:
    """Number of csg-cmp pairs (unordered) of the query graph."""
    return sum(1 for _ in enumerate_csg_cmp_pairs(ctx, as_clique=as_clique))
