"""DPsub: subset-driven bottom-up enumeration.

Iterates result quantifier sets directly (grouped here by size so the
parallel framework can reuse the same stratum structure) and splits each
into every proper submask / complement pair with the classic
``s = (s - 1) & S`` walk.

DPsub wastes no time on non-disjoint pairs — its inefficiency on sparse
graphs is different: it visits all ``2^n`` subsets and all splits even when
almost none are connected.  The DPsize/DPsub contrast across topologies is
one of the serial results the evaluation reproduces (E1).
"""

from __future__ import annotations

from repro.enumerate.base import Enumerator
from repro.enumerate.kernels import dpsub_block_kernel, dpsub_block_kernel_fast
from repro.enumerate.vkernels import dpsub_block_kernel_vec
from repro.memo.table import Memo
from repro.trace.metrics import stratum_scope
from repro.util.bitsets import subsets_of_size


class DPsub(Enumerator):
    """Classic DPsub (serial)."""

    name = "dpsub"

    def populate(self, memo: Memo) -> None:
        ctx = memo.ctx
        require_connected = not self.cross_products
        tracer = self.tracer
        if getattr(memo, "vectorized", False):
            kernel = dpsub_block_kernel_vec
        elif self.fast_path:
            kernel = dpsub_block_kernel_fast
        else:
            kernel = dpsub_block_kernel
        for size in range(2, ctx.n + 1):
            with stratum_scope(tracer, memo.meter, size, algorithm=self.name):
                candidates = dpsub_stratum_candidates(ctx, size)
                kernel(
                    memo,
                    ctx,
                    candidates,
                    0,
                    len(candidates),
                    require_connected,
                    memo.meter,
                )


def dpsub_stratum_candidates(ctx, size: int) -> list[int]:
    """The raw size-``size`` subset stratum DPsub iterates (all C(n, size)
    subsets, in ascending bitmask order).

    Identical in every process, which is what lets the multiprocessing
    executor ship work units as index ranges into this list.
    """
    return subsets_of_size(ctx.all_mask, size)
