"""Serial dynamic-programming join enumerators.

Implements the three classic bottom-up enumerators the paper builds on —
``DPsize`` (size-driven, System-R/DB2/PostgreSQL style), ``DPsub``
(subset-driven), and ``DPccp`` (connected-subgraph/complement pairs,
Moerkotte & Neumann 2006) — plus an exhaustive reference enumerator used to
verify optimality in tests.  The skip-vector-accelerated ``DPsva`` lives in
:mod:`repro.sva`.
"""

from repro.enumerate.base import Enumerator, OptimizationResult
from repro.enumerate.dpccp import DPccp
from repro.enumerate.dpsize import DPsize
from repro.enumerate.dpsub import DPsub
from repro.enumerate.exhaustive import ExhaustiveEnumerator, all_plan_trees

SERIAL_ALGORITHMS = {
    "dpsize": DPsize,
    "dpsub": DPsub,
    "dpccp": DPccp,
}
"""Registry of serial enumerators keyed by benchmark name."""

__all__ = [
    "Enumerator",
    "OptimizationResult",
    "DPsize",
    "DPsub",
    "DPccp",
    "ExhaustiveEnumerator",
    "all_plan_trees",
    "SERIAL_ALGORITHMS",
]
