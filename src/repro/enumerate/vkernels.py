"""Vectorized enumeration kernels (numpy over the bitmask columns).

The third kernel tier, above the reference and fused (``*_fast``)
kernels in :mod:`repro.enumerate.kernels`: the candidate *filters* run as
elementwise numpy operations over a ``uint64`` view of the stratum mask
lists — HoneyComb-style flat columnar traversal of the join space —
while the surviving pairs still flow through the memo's batched
``consider_joins``/``consider_pairs`` API (vectorized costing when the
memo is a :class:`~repro.memo.vec.VecSoAMemo`).

All mask arithmetic is integer and exact, so the surviving-pair sets —
and therefore memo contents and meter totals — are identical to the
fused kernels by construction; ``tests/test_vec_kernels.py`` and the
parity harness hold all three tiers to bit-for-bit equality.

* **DPsize** — per outer set, disjointness (``inner & outer == 0``) and
  connectivity (``inner & adj_union(outer) != 0``) filter the whole inner
  stratum in two vector ops; rejection counts fall out of population
  counts.
* **DPsub** — per result set, the descending ``(sub-1) & S`` submask walk
  is generated in closed form: selector integers ``2^k-2 .. 1`` expanded
  through the set's bit weights (order-preserving, so the split sequence
  matches the scalar walk exactly), with operand existence tested by one
  fancy-indexed load from the memo's dense presence table.

Every kernel degrades to its fused sibling when numpy or a required memo
capability is absent — callers can select the vec tier unconditionally.
"""

from __future__ import annotations

from repro.enumerate.kernels import (
    dpsize_pair_kernel_fast,
    dpsub_block_kernel_fast,
)
from repro.memo.counters import WorkMeter
from repro.memo.table import Memo
from repro.query.context import QueryContext
from repro.util.vectorize import np as _np


def dpsize_pair_kernel_vec(
    memo: Memo,
    ctx: QueryContext,
    outer_sets: list[int],
    inner_sets: list[int],
    outer_start: int,
    outer_stop: int,
    require_connected: bool,
    meter: WorkMeter,
) -> None:
    """Vectorized DPsize inner loop; parity-equal to the fused kernel."""
    if _np is None:
        dpsize_pair_kernel_fast(
            memo, ctx, outer_sets, inner_sets, outer_start, outer_stop,
            require_connected, meter,
        )
        return
    np = _np
    inner_arr = np.array(inner_sets, dtype=np.uint64)
    inner_count = len(inner_sets)
    adj_union = ctx.adj_union
    consider_joins = memo.consider_joins
    zero = np.uint64(0)
    pairs_local = 0
    disjoint_local = 0
    conn_checks_local = 0
    conn_fail_local = 0
    valid_local = 0
    for i in range(outer_start, outer_stop):
        outer = outer_sets[i]
        pairs_local += inner_count
        free_sel = (inner_arr & np.uint64(outer)) == zero
        free_count = int(np.count_nonzero(free_sel))
        disjoint_local += inner_count - free_count
        if require_connected:
            conn_checks_local += free_count
            nbr = np.uint64(adj_union(outer))
            valid = inner_arr[free_sel & ((inner_arr & nbr) != zero)].tolist()
            conn_fail_local += free_count - len(valid)
        else:
            valid = inner_arr[free_sel].tolist()
        valid_local += len(valid)
        consider_joins(outer, valid, meter)
    meter.pairs_considered += pairs_local
    meter.disjoint_fail += disjoint_local
    meter.conn_checks += conn_checks_local
    meter.connectivity_fail += conn_fail_local
    meter.pairs_valid += valid_local


def dpsub_block_kernel_vec(
    memo: Memo,
    ctx: QueryContext,
    candidate_masks: list[int],
    start: int,
    stop: int,
    require_connected: bool,
    meter: WorkMeter,
) -> None:
    """Vectorized DPsub inner loop; parity-equal to the fused kernel.

    Requires the memo's dense presence table when connectivity is
    enforced (``VecSoAMemo.presence_array``); otherwise delegates to the
    fused kernel.
    """
    presence = getattr(memo, "presence_array", None)
    if _np is None or (require_connected and presence is None):
        dpsub_block_kernel_fast(
            memo, ctx, candidate_masks, start, stop, require_connected,
            meter,
        )
        return
    np = _np
    consider_pairs = memo.consider_pairs
    is_connected = ctx.is_connected
    one = np.uint64(1)
    conn_checks_local = 0
    conn_fail_local = 0
    steps_local = 0
    missing_local = 0
    valid_local = 0
    for idx in range(start, stop):
        result = candidate_masks[idx]
        if require_connected:
            conn_checks_local += 1
            if not is_connected(result):
                conn_fail_local += 1
                continue
        k = result.bit_count()
        nsubs = (1 << k) - 2
        steps_local += nsubs
        if nsubs <= 0:
            continue
        # Selector integers 2^k-2 .. 1 expanded through the ascending bit
        # weights of ``result`` enumerate exactly the proper non-empty
        # submasks in descending numeric order — the scalar
        # ``(sub-1) & S`` walk's sequence, in closed form.
        selectors = np.arange(nsubs, 0, -1, dtype=np.uint64)
        subs = np.zeros(nsubs, dtype=np.uint64)
        rest = result
        j = 0
        while rest:
            weight = rest & -rest
            subs |= ((selectors >> np.uint64(j)) & one) * np.uint64(weight)
            rest ^= weight
            j += 1
        comps = np.uint64(result) ^ subs
        if require_connected:
            ok = presence[subs] & presence[comps]
            sub_list = subs[ok].tolist()
            comp_list = comps[ok].tolist()
            missing_local += nsubs - len(sub_list)
        else:
            sub_list = subs.tolist()
            comp_list = comps.tolist()
        splits = list(zip(sub_list, comp_list))
        valid_local += len(splits)
        consider_pairs(splits, meter)
    meter.conn_checks += conn_checks_local
    meter.connectivity_fail += conn_fail_local
    meter.submask_steps += steps_local
    meter.pairs_considered += steps_local
    meter.operand_missing += missing_local
    meter.pairs_valid += valid_local
