"""Calibrating the virtual clock against wall time.

The simulated machine reports abstract units.  For readers who want
real-seconds estimates, :func:`calibrate_seconds_per_unit` measures serial
runs of a reference workload and fits the single scale factor

    seconds_per_unit = median( measured_elapsed / work_time(meter) )

Because parallel timing in the simulator is built from the same operation
counts, multiplying a :class:`~repro.simx.report.SimReport`'s totals by
this factor yields a "what a host like this one would take" estimate —
explicitly an extrapolation, not a measurement, and labelled as such in
the experiment outputs.
"""

from __future__ import annotations

import statistics

from repro.query.workload import WorkloadSpec, generate_query
from repro.simx.costparams import SimCostParams
from repro.sva.dpsva import DPsva
from repro.util.errors import ValidationError


def calibrate_seconds_per_unit(
    params: SimCostParams | None = None,
    topology: str = "star",
    n: int = 10,
    queries: int = 3,
    seed: int = 0,
) -> float:
    """Fit the real-seconds scale of the virtual clock on this host.

    Runs serial DPsva on ``queries`` reference queries and returns the
    median ratio of measured wall seconds to metered virtual units.
    """
    if queries < 1:
        raise ValidationError("queries must be >= 1")
    params = params or SimCostParams()
    spec = WorkloadSpec(topology, n, seed=seed, count=queries)
    ratios = []
    for index in range(queries):
        query = generate_query(spec, index)
        result = DPsva().optimize(query)
        virtual = params.work_time(result.meter)
        if virtual <= 0:
            raise ValidationError(
                "reference query produced no metered work; use a larger n"
            )
        ratios.append(result.elapsed_seconds / virtual)
    return statistics.median(ratios)


def estimated_seconds(total_virtual_time: float, seconds_per_unit: float) -> float:
    """Scale a simulated total into estimated host seconds."""
    if seconds_per_unit <= 0:
        raise ValidationError("seconds_per_unit must be positive")
    return total_virtual_time * seconds_per_unit
