"""Timeline rendering and export for simulated runs.

Turns a :class:`~repro.simx.report.SimReport` into a per-stratum,
per-thread table (CSV-able) and an ASCII Gantt-style chart that makes the
two failure modes of parallel enumeration visible at a glance: idle
threads (imbalance) and barrier-dominated strata (thin work).
"""

from __future__ import annotations

import io

from repro.simx.report import SimReport


def timeline_rows(report: SimReport) -> list[dict]:
    """One row per (stratum, thread) with busy/contention/idle breakdown.

    Idle time is measured against the stratum's slowest thread (the
    barrier releases everyone together).
    """
    rows: list[dict] = []
    for stratum in report.strata:
        slowest = max(stratum.thread_times, default=0.0)
        for t, (busy, contention) in enumerate(
            zip(stratum.busy, stratum.contention)
        ):
            rows.append(
                {
                    "stratum": stratum.size,
                    "thread": t,
                    "busy": busy,
                    "contention": contention,
                    "idle": slowest - (busy + contention),
                    "barrier": stratum.barrier_cost,
                }
            )
    return rows


def render_gantt(report: SimReport, width: int = 48) -> str:
    """ASCII Gantt chart: one block row per stratum, one line per thread.

    ``#`` is busy time, ``~`` contention, ``.`` idle-before-barrier; each
    stratum is scaled to its own wall time so shapes stay readable across
    exponentially growing strata.
    """
    out = io.StringIO()
    label = report.algorithm or "parallel"
    out.write(
        f"{label} x{report.threads}"
        f" — total {report.total_time:.0f} units\n"
    )
    for stratum in report.strata:
        slowest = max(stratum.thread_times, default=0.0)
        out.write(
            f"stratum {stratum.size:>2} "
            f"(wall {stratum.wall_time:,.0f}, "
            f"{stratum.unit_count} units)\n"
        )
        if slowest <= 0:
            continue
        for t in range(report.threads):
            busy = stratum.busy[t]
            contention = stratum.contention[t]
            busy_cells = round(width * busy / slowest)
            cont_cells = round(width * contention / slowest)
            idle_cells = max(0, width - busy_cells - cont_cells)
            out.write(
                f"  t{t:<2} "
                + "#" * busy_cells
                + "~" * cont_cells
                + "." * idle_cells
                + "\n"
            )
    return out.getvalue().rstrip("\n")
