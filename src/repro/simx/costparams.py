"""Virtual cost parameters for the simulated machine.

Unit costs are expressed in abstract "virtual nanoseconds".  The defaults
are proportioned after profiling the pure-Python kernels (a candidate-pair
check is the cheap unit; emitting and costing a plan is several times
that; synchronization costs are orders of magnitude above per-pair work,
matching the barrier/latch economics of the paper's setting).  Absolute
values only scale the clock; *relative* values shape the speedup curves.
The parameters are explicit and serializable precisely so that experiments
can state them and ablations (E6) can vary them.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.memo.counters import WorkMeter
from repro.util.errors import ValidationError


@dataclass(frozen=True, slots=True)
class SimCostParams:
    """Per-operation virtual costs and synchronization overheads.

    Attributes:
        pair_check: One candidate-pair inspection (incl. disjointness test).
        conn_check: One connectivity / crossing-edge test.
        emit: One (pair, join-method) plan costing.
        memo_insert: Installing a new memo entry.
        memo_improve: Improving an existing entry in place.
        submask_step: One step of the DPsub submask walk.
        sva_step: One skip-vector scan position.
        sva_skip: Taking one skip pointer.
        sva_build_op: One skip-vector construction operation.
        latch: Uncontended latch acquire/release around a memo update.
        latch_conflict: Extra penalty paid by a writer for each *other*
            thread updating the same memo entry within the same stratum.
        barrier_base: Fixed cost of one end-of-stratum barrier.
        barrier_per_thread: Additional barrier cost per participating thread.
        spawn_per_thread: One-time worker startup cost per thread.
        master_per_unit: Serial master-side cost of creating/assigning one
            work unit.
    """

    pair_check: float = 1.0
    conn_check: float = 2.0
    emit: float = 6.0
    memo_insert: float = 4.0
    memo_improve: float = 2.0
    submask_step: float = 1.0
    sva_step: float = 1.3
    sva_skip: float = 1.6
    sva_build_op: float = 2.5
    latch: float = 0.8
    latch_conflict: float = 0.5
    barrier_base: float = 500.0
    barrier_per_thread: float = 100.0
    spawn_per_thread: float = 1_000.0
    master_per_unit: float = 10.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValidationError(f"{f.name} must be >= 0")

    def work_time(self, meter: WorkMeter) -> float:
        """Virtual busy time of the operations recorded in ``meter``.

        Synchronization costs (latch conflicts, barriers, spawn) are *not*
        included — the machine accounts those separately; the uncontended
        latch cost is charged per valid pair, since every plan emission in
        the shared-memo design updates an entry under its latch.
        """
        return (
            self.pair_check * meter.pairs_considered
            + self.conn_check * meter.conn_checks
            + self.emit * meter.plans_emitted
            + self.memo_insert * meter.memo_inserts
            + self.memo_improve * meter.memo_improvements
            + self.submask_step * meter.submask_steps
            + self.sva_step * meter.sva_steps
            + self.sva_skip * meter.sva_skips
            + self.sva_build_op * meter.sva_build_ops
            + self.latch * meter.pairs_valid
        )

    def barrier_cost(self, threads: int) -> float:
        """Virtual cost of one barrier across ``threads`` workers."""
        if threads <= 1:
            return 0.0
        return self.barrier_base + self.barrier_per_thread * threads

    def as_dict(self) -> dict[str, float]:
        """All parameters as a plain dict (for experiment manifests)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
