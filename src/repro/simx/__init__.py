"""Simulated shared-memory multicore substrate.

The paper's headline measurement — wall-clock speedup of threads sharing a
memo table — cannot be reproduced with CPython threads (GIL).  This package
substitutes a *deterministic* multicore model: the DP work itself runs for
real (plans, costs, and memo contents are exact), while the clock is
virtual.  Each primitive enumeration operation has a fixed virtual cost
(:class:`~repro.simx.costparams.SimCostParams`); a virtual thread's busy
time is the weighted sum of the operations in its assigned work units; a
stratum's wall time is the busiest thread plus a barrier cost; memo-latch
contention adds a deterministic penalty per conflicting writer.

Because everything is a function of exact operation counts, simulated
speedup curves are reproducible to the bit and reflect precisely the
algorithmic properties (work partitioning, barrier count, contention) that
determined the paper's measured speedups.

>>> from repro import OptimizerConfig, optimize
>>> from repro.query import WorkloadSpec, generate_query
>>> query = generate_query(WorkloadSpec("star", 9, seed=4))
>>> config = OptimizerConfig(algorithm="dpsva", threads=4)
>>> result = optimize(query, config=config)       # simulated backend
>>> report = result.sim_report                    # typed accessor
>>> report.threads
4
>>> serial = optimize(query, config=OptimizerConfig(algorithm="dpsva"))
>>> result.cost == serial.cost
True
"""

from repro.simx.calibrate import calibrate_seconds_per_unit, estimated_seconds
from repro.simx.costparams import SimCostParams
from repro.simx.machine import SimulatedMachine
from repro.simx.report import SimReport, StratumTiming
from repro.simx.timeline import render_gantt, timeline_rows

__all__ = [
    "SimCostParams",
    "SimulatedMachine",
    "SimReport",
    "StratumTiming",
    "render_gantt",
    "timeline_rows",
    "calibrate_seconds_per_unit",
    "estimated_seconds",
]
