"""Timing reports produced by the simulated machine."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StratumTiming:
    """Virtual timing of one DP stratum.

    Attributes:
        size: Result quantifier-set size of the stratum.
        unit_count: Number of work units executed.
        busy: Per-thread busy time (kernel work only).
        contention: Per-thread latch-conflict penalty.
        barrier_cost: Cost of the end-of-stratum barrier.
        conflicts: Total latch-conflict events (pairs of concurrent writers
            counted per entry).
    """

    size: int
    unit_count: int
    busy: list[float]
    contention: list[float]
    barrier_cost: float
    conflicts: int

    @property
    def thread_times(self) -> list[float]:
        """Busy plus contention time per thread."""
        return [b + c for b, c in zip(self.busy, self.contention)]

    @property
    def wall_time(self) -> float:
        """Stratum wall time: the slowest thread plus the barrier."""
        slowest = max(self.thread_times, default=0.0)
        return slowest + self.barrier_cost

    @property
    def busy_total(self) -> float:
        """Sum of all threads' busy time (the stratum's total work)."""
        return sum(self.busy)

    @property
    def imbalance(self) -> float:
        """Max thread time over mean thread time; 1.0 is perfectly even.

        Only threads participating in the stratum are counted; an empty
        stratum reports 1.0.
        """
        times = self.thread_times
        total = sum(times)
        if total == 0:
            return 1.0
        mean = total / len(times)
        return max(times) / mean


@dataclass
class SimReport:
    """Virtual timing of one complete parallel optimization run.

    Attributes:
        threads: Worker threads simulated.
        strata: Per-stratum timings, in execution order.
        spawn_cost: One-time worker startup cost.
        master_cost: Serial master-side cost (unit generation/assignment).
        allocation: Name of the allocation scheme used.
        algorithm: Name of the parallel algorithm.
    """

    threads: int
    algorithm: str = ""
    allocation: str = ""
    strata: list[StratumTiming] = field(default_factory=list)
    spawn_cost: float = 0.0
    master_cost: float = 0.0

    @property
    def total_time(self) -> float:
        """End-to-end virtual wall time."""
        return (
            self.spawn_cost
            + self.master_cost
            + sum(s.wall_time for s in self.strata)
        )

    @property
    def busy_total(self) -> float:
        """Total kernel work across all threads and strata."""
        return sum(s.busy_total for s in self.strata)

    @property
    def sync_overhead(self) -> float:
        """Total overhead *work* across all threads: barriers, contention,
        spawn, and serial master time.  Aggregated over threads, so it is
        not a wall-clock quantity — see :attr:`overhead_wall` for that."""
        barriers = sum(s.barrier_cost for s in self.strata)
        contention = sum(sum(s.contention) for s in self.strata)
        return barriers + contention + self.spawn_cost + self.master_cost

    @property
    def critical_busy(self) -> float:
        """Kernel work on the critical path: the busiest thread's busy
        time, summed over strata."""
        return sum(max(s.busy, default=0.0) for s in self.strata)

    @property
    def overhead_wall(self) -> float:
        """Wall-clock time not spent on critical-path kernel work:
        barriers, spawn, master serial time, and contention delays on the
        slowest thread.  ``overhead_wall / total_time`` is the fraction of
        the run lost to synchronization."""
        return self.total_time - self.critical_busy

    @property
    def total_conflicts(self) -> int:
        """Latch-conflict events across the whole run."""
        return sum(s.conflicts for s in self.strata)

    @property
    def mean_imbalance(self) -> float:
        """Work-weighted mean of per-stratum imbalance."""
        weights = [s.busy_total for s in self.strata]
        total = sum(weights)
        if total == 0:
            return 1.0
        return (
            sum(s.imbalance * w for s, w in zip(self.strata, weights)) / total
        )

    def speedup_vs(self, serial_time: float) -> float:
        """Speedup relative to a serial virtual time."""
        if self.total_time == 0:
            return float("inf")
        return serial_time / self.total_time

    def efficiency_vs(self, serial_time: float) -> float:
        """Parallel efficiency: speedup / threads."""
        return self.speedup_vs(serial_time) / self.threads

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm or 'parallel'}[{self.allocation}] x{self.threads}: "
            f"time={self.total_time:.0f} busy={self.busy_total:.0f} "
            f"sync={self.sync_overhead:.0f} "
            f"imbalance={self.mean_imbalance:.3f} "
            f"conflicts={self.total_conflicts}"
        )
