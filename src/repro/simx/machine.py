"""The simulated multicore machine.

Accumulates a :class:`~repro.simx.report.SimReport` from per-unit work
meters handed over by the simulated executor.  The machine never runs
code itself — it is a pure accounting object, which keeps the timing model
auditable: every number in a report is a stated function of exact
operation counts.
"""

from __future__ import annotations

from repro.memo.counters import WorkMeter
from repro.simx.contention import contention_penalties
from repro.simx.costparams import SimCostParams
from repro.simx.report import SimReport, StratumTiming
from repro.util.errors import ValidationError


class SimulatedMachine:
    """Virtual-time accounting for one parallel optimization run."""

    def __init__(self, threads: int, params: SimCostParams | None = None) -> None:
        if threads < 1:
            raise ValidationError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self.params = params or SimCostParams()
        self.report = SimReport(threads=threads)
        self.report.spawn_cost = (
            self.params.spawn_per_thread * threads if threads > 1 else 0.0
        )

    def label(self, algorithm: str, allocation: str) -> None:
        """Attach run labels to the report."""
        self.report.algorithm = algorithm
        self.report.allocation = allocation

    def charge_master(self, unit_count: int) -> None:
        """Serial master-side cost of generating/assigning work units."""
        self.report.master_cost += self.params.master_per_unit * unit_count

    def unit_time(self, meter: WorkMeter) -> float:
        """Virtual busy time of one work unit."""
        return self.params.work_time(meter)

    def record_stratum(
        self,
        size: int,
        unit_count: int,
        busy: list[float],
        touches: list[dict[int, int]],
    ) -> StratumTiming:
        """Close a stratum: apply contention and the barrier, store timing."""
        if len(busy) != self.threads or len(touches) != self.threads:
            raise ValidationError(
                "busy/touches must have one slot per thread"
            )
        penalties, conflicts = contention_penalties(touches, self.params)
        timing = StratumTiming(
            size=size,
            unit_count=unit_count,
            busy=list(busy),
            contention=penalties,
            barrier_cost=self.params.barrier_cost(self.threads),
            conflicts=conflicts,
        )
        self.report.strata.append(timing)
        return timing
