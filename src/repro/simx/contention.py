"""Deterministic memo-latch contention model.

In the shared-memo design every plan emission updates the result set's
memo entry under a latch.  Within one stratum, entries touched by a single
thread never conflict; entries touched by ``w > 1`` threads cost each
writer a penalty proportional to the number of *other* writers.  The model
is intentionally order-free (it depends only on which threads touch which
entries, not on interleavings) so simulated times are exactly reproducible.
"""

from __future__ import annotations

from collections import Counter

from repro.simx.costparams import SimCostParams


def contention_penalties(
    touches: list[dict[int, int]],
    params: SimCostParams,
) -> tuple[list[float], int]:
    """Latch-conflict penalties per thread for one stratum.

    Args:
        touches: Per-thread map from memo-entry mask to number of updates
            performed by that thread within the stratum.
        params: Cost parameters (uses ``latch_conflict``).

    Returns:
        ``(penalties, conflicts)`` where ``penalties[t]`` is thread ``t``'s
        added virtual time and ``conflicts`` the total number of extra
        writers summed over contended entries.
    """
    writers: Counter[int] = Counter()
    for touched in touches:
        for mask in touched:
            writers[mask] += 1

    penalties = [0.0] * len(touches)
    conflicts = 0
    for mask, count in writers.items():
        if count > 1:
            conflicts += count - 1
    for t, touched in enumerate(touches):
        extra = 0
        for mask in touched:
            w = writers[mask]
            if w > 1:
                extra += w - 1
        penalties[t] = params.latch_conflict * extra
    return penalties, conflicts
