"""Adaptive DP/heuristic hybrid for queries past the exact-DP horizon.

See :mod:`repro.hybrid.optimizer` for the pipeline and
:mod:`repro.query.decompose` for the density-based partitioning pass.
"""

from repro.hybrid.optimizer import HybridOptimizer
from repro.hybrid.stitch import (
    StitchResult,
    induced_subquery,
    relabel_plan,
    stitch_cores,
)

__all__ = [
    "HybridOptimizer",
    "StitchResult",
    "induced_subquery",
    "relabel_plan",
    "stitch_cores",
]
