"""Stitching: compose per-core optimal sub-plans into one full plan.

The decomposer (:mod:`repro.query.decompose`) hands exact DP a set of
dense cores; each comes back as an optimal plan tree over its own
relations.  This module treats those trees as indivisible *macro
relations* and orders them with the repo's own heuristics:

* **GOO stitch** — greedy smallest-output pairing over the forest of core
  plans, producing a bushy composition (the Fegaras move, applied to
  cores instead of scans).
* **IKKBZ stitch** — a contracted *macro query* (one pseudo-relation per
  core, carrying the core's estimated output rows; one edge per connected
  core pair, carrying the product of the crossing selectivities) is
  handed to :class:`~repro.heuristics.ikkbz.IKKBZ`, whose left-deep core
  order is then materialized over the real core plans.
* **Local-search polish** — seeded hill climbing over left-deep core
  orders (swap / 3-cycle moves, the Steinbrunn move set) started from the
  best order found so far.

The cheapest composition wins.  Core-internal plans are never rewritten —
their costs are DP-optimal already — so stitching only ever decides the
shape *between* cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.estimator import ROWS_CAP, CardinalityEstimator
from repro.cost.model import CostModel
from repro.cost.plan_cost import plan_cost
from repro.heuristics.ikkbz import IKKBZ
from repro.memo.counters import WorkMeter
from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.query.context import QueryContext
from repro.query.joingraph import JoinGraph, Query
from repro.util.errors import OptimizationError
from repro.util.rng import derive_rng

_MACRO_SEL_FLOOR = 1e-300
"""Floor for contracted-edge selectivities.

The product of every selectivity crossing two large cores can underflow
float64 to exactly ``0.0``, which :class:`~repro.query.joingraph.JoinEdge`
rightly rejects.  The contracted macro query only needs the *ordering*
of edge strengths, so flooring at the smallest practical normal keeps
IKKBZ applicable without changing any comparison that matters."""


def relabel_plan(plan: PlanNode, mapping: dict[int, int]) -> PlanNode:
    """Rewrite a sub-query plan's relation indices into global numbering.

    DP optimizes each core as a standalone sub-query with relations
    ``0 … k-1``; ``mapping`` sends those local indices back to the parent
    query's numbering so the stitched tree prices correctly under the
    global estimator.
    """
    if isinstance(plan, ScanNode):
        return ScanNode(relation=mapping[plan.relation])
    if isinstance(plan, JoinNode):
        return JoinNode(
            left=relabel_plan(plan.left, mapping),
            right=relabel_plan(plan.right, mapping),
            method=plan.method,
        )
    raise TypeError(f"not a plan node: {plan!r}")


def induced_subquery(ctx: QueryContext, mask: int, label: str) -> Query:
    """The sub-query induced by ``mask``, relations renumbered ``0 … k-1``.

    Cardinalities and internal edge selectivities carry over unchanged, so
    the sub-query's DP optimum equals the globally-priced cost of the same
    tree — the property the zero-gap guarantee rests on.
    """
    relations = [r for r in range(ctx.n) if mask >> r & 1]
    local = {rel: i for i, rel in enumerate(relations)}
    edges = [
        (local[u], local[v], sel)
        for (u, v), sel in sorted(ctx.edge_selectivity.items())
        if u in local and v in local
    ]
    graph = JoinGraph(len(relations), edges)
    return Query(
        graph=graph,
        relation_names=tuple(
            ctx.query.relation_names[r] for r in relations
        ),
        cardinalities=tuple(ctx.cards[r] for r in relations),
        label=f"{ctx.query.label}/{label}",
    )


@dataclass
class StitchResult:
    """Outcome of composing core plans into one tree.

    Attributes:
        plan: The stitched full-query plan.
        cost: Its total cost (core-internal costs included).
        method: Which composition won (``goo`` / ``ikkbz`` /
            ``polished``).
        stitch_cost: Cost added on top of the summed core costs — the
            price of the inter-core joins (scans and core internals
            excluded).
        polish_improvements: Accepted cost-improving polish moves.
    """

    plan: PlanNode
    cost: float
    method: str
    stitch_cost: float
    polish_improvements: int


def _left_deep_over_cores(
    order: list[int],
    core_plans: list[PlanNode],
    estimator: CardinalityEstimator,
    cost_model: CostModel,
) -> PlanNode:
    """Materialize a left-deep composition joining cores in ``order``."""
    plan = core_plans[order[0]]
    for index in order[1:]:
        right = core_plans[index]
        rows_left = estimator.rows(plan.mask)
        rows_right = estimator.rows(right.mask)
        rows_out = estimator.rows(plan.mask | right.mask)
        method, _ = cost_model.cheapest_join(rows_left, rows_right, rows_out)
        plan = JoinNode(left=plan, right=right, method=method)
    return plan


def _order_join_cost(
    order: list[int],
    core_plans: list[PlanNode],
    ctx: QueryContext,
    estimator: CardinalityEstimator,
    cost_model: CostModel,
    meter: WorkMeter | None = None,
) -> float:
    """Inter-core join cost of a left-deep core order (core internals are
    order-invariant and excluded, so orders compare on this alone).

    Prefix rows are grown incrementally with the independence product rule
    (``rows(P ∪ C) = rows(P) · rows(C) · sel(P, C)``, clamped exactly like
    the estimator) rather than queried per prefix mask: local search
    evaluates thousands of orders and each order walks a fresh chain of
    prefix masks, so per-mask memoization buys nothing while the recursive
    expansion costs O(n²) per mask.  The core-mask lookups below are the
    memoized (hence cheap) ones.
    """
    prefix = core_plans[order[0]].mask
    prefix_rows = estimator.rows(prefix)
    cost = 0.0
    for index in order[1:]:
        mask = core_plans[index].mask
        right_rows = estimator.rows(mask)
        # cross_selectivity iterates bits of its first argument — pass the
        # (small) core mask, not the ever-growing prefix.
        out_rows = max(
            1.0,
            min(
                prefix_rows
                * right_rows
                * ctx.cross_selectivity(mask, prefix),
                ROWS_CAP,
            ),
        )
        _, join_cost = cost_model.cheapest_join(
            prefix_rows, right_rows, out_rows
        )
        cost += join_cost
        prefix |= mask
        prefix_rows = out_rows
        if meter is not None:
            meter.plans_emitted += len(cost_model.methods)
    return cost


def _goo_stitch(
    ctx: QueryContext,
    core_plans: list[PlanNode],
    estimator: CardinalityEstimator,
    cost_model: CostModel,
    meter: WorkMeter,
    cross_products: bool,
) -> PlanNode:
    """Greedy smallest-output bushy composition of the core forest."""
    forest = list(core_plans)
    while len(forest) > 1:
        best_pair: tuple[int, int] | None = None
        best_rows = float("inf")
        for i in range(len(forest)):
            for j in range(i + 1, len(forest)):
                left, right = forest[i], forest[j]
                meter.pairs_considered += 1
                if not cross_products and not ctx.connects(
                    left.mask, right.mask
                ):
                    meter.connectivity_fail += 1
                    continue
                meter.pairs_valid += 1
                rows = estimator.rows(left.mask | right.mask)
                if rows < best_rows:
                    best_rows = rows
                    best_pair = (i, j)
        if best_pair is None:
            raise OptimizationError(
                "hybrid stitch: no joinable core pair (disconnected "
                "contracted graph without cross products)"
            )
        i, j = best_pair
        left, right = forest[i], forest[j]
        method, _ = cost_model.cheapest_join(
            estimator.rows(left.mask), estimator.rows(right.mask), best_rows
        )
        meter.plans_emitted += len(cost_model.methods)
        joined = JoinNode(left=left, right=right, method=method)
        forest = [node for k, node in enumerate(forest) if k not in (i, j)]
        forest.append(joined)
    return forest[0]


def _ikkbz_core_order(
    ctx: QueryContext,
    core_plans: list[PlanNode],
    estimator: CardinalityEstimator,
    cost_model: CostModel,
) -> list[int] | None:
    """Left-deep core order from IKKBZ on the contracted macro query.

    Each core becomes one pseudo-relation whose cardinality is the core's
    estimated output rows; connected core pairs get one edge carrying the
    product of all crossing selectivities.  Returns ``None`` when the
    contracted graph is disconnected (cross-product stitching required —
    IKKBZ does not apply).
    """
    count = len(core_plans)
    edges = []
    for i in range(count):
        for j in range(i + 1, count):
            if ctx.connects(core_plans[i].mask, core_plans[j].mask):
                sel = ctx.cross_selectivity(
                    core_plans[i].mask, core_plans[j].mask
                )
                edges.append(
                    (i, j, min(1.0, max(sel, _MACRO_SEL_FLOOR)))
                )
    macro_graph = JoinGraph(count, edges)
    if not macro_graph.is_connected():
        return None
    macro = Query(
        graph=macro_graph,
        relation_names=tuple(f"core{i}" for i in range(count)),
        cardinalities=tuple(
            max(1.0, estimator.rows(plan.mask)) for plan in core_plans
        ),
        label=f"{ctx.query.label}/contracted",
    )
    result = IKKBZ().optimize(macro, cost_model=cost_model)
    return list(result.extras["order"])


def _polish_order(
    order: list[int],
    core_plans: list[PlanNode],
    ctx: QueryContext,
    estimator: CardinalityEstimator,
    cost_model: CostModel,
    meter: WorkMeter,
    seed: int,
    max_stall: int,
) -> tuple[list[int], float, int]:
    """Hill-climb over core orders with swap / 3-cycle moves (seeded)."""
    rng = derive_rng(seed, "hybrid-polish")
    count = len(order)
    best = list(order)
    best_cost = _order_join_cost(
        best, core_plans, ctx, estimator, cost_model
    )
    improvements = 0
    stall = 0
    while stall < max_stall:
        candidate = list(best)
        if count >= 3 and rng.random() < 0.5:
            i, j, k = rng.sample(range(count), 3)
            candidate[i], candidate[j], candidate[k] = (
                candidate[j], candidate[k], candidate[i],
            )
        else:
            i, j = rng.sample(range(count), 2)
            candidate[i], candidate[j] = candidate[j], candidate[i]
        cost = _order_join_cost(
            candidate, core_plans, ctx, estimator, cost_model, meter
        )
        if cost < best_cost:
            best, best_cost = candidate, cost
            improvements += 1
            stall = 0
        else:
            stall += 1
    return best, best_cost, improvements


def stitch_cores(
    ctx: QueryContext,
    core_plans: list[PlanNode],
    estimator: CardinalityEstimator,
    cost_model: CostModel,
    meter: WorkMeter,
    cross_products: bool = False,
    seed: int = 0,
    polish_stall: int | None = None,
) -> StitchResult:
    """Compose core sub-plans into the cheapest full-query plan found.

    Runs the GOO bushy stitch and the IKKBZ left-deep core order, polishes
    the best left-deep order with seeded local search, and returns the
    cheapest composition overall.  Deterministic per seed.
    """
    if not core_plans:
        raise OptimizationError("hybrid stitch: no core plans")
    if len(core_plans) == 1:
        plan = core_plans[0]
        return StitchResult(
            plan=plan,
            cost=plan_cost(plan, estimator, cost_model),
            method="single_core",
            stitch_cost=0.0,
            polish_improvements=0,
        )

    core_cost_total = sum(
        plan_cost(plan, estimator, cost_model) for plan in core_plans
    )

    goo_plan = _goo_stitch(
        ctx, core_plans, estimator, cost_model, meter, cross_products
    )
    goo_cost = plan_cost(goo_plan, estimator, cost_model)
    best_plan, best_cost, method = goo_plan, goo_cost, "goo"

    base_order = _ikkbz_core_order(ctx, core_plans, estimator, cost_model)
    if base_order is not None:
        ikkbz_plan = _left_deep_over_cores(
            base_order, core_plans, estimator, cost_model
        )
        ikkbz_cost = plan_cost(ikkbz_plan, estimator, cost_model)
        if ikkbz_cost < best_cost:
            best_plan, best_cost, method = ikkbz_plan, ikkbz_cost, "ikkbz"
    else:
        base_order = list(range(len(core_plans)))

    if polish_stall is None:
        polish_stall = max(40, 8 * len(core_plans))
    polished, _, improvements = _polish_order(
        base_order, core_plans, ctx, estimator, cost_model, meter,
        seed, polish_stall,
    )
    polished_plan = _left_deep_over_cores(
        polished, core_plans, estimator, cost_model
    )
    polished_cost = plan_cost(polished_plan, estimator, cost_model)
    if polished_cost < best_cost:
        best_plan, best_cost, method = (
            polished_plan, polished_cost, "polished",
        )

    return StitchResult(
        plan=best_plan,
        cost=best_cost,
        method=method,
        stitch_cost=best_cost - core_cost_total,
        polish_improvements=improvements,
    )
