"""The adaptive DP/heuristic hybrid optimizer.

``algorithm="hybrid"`` composes the repo's two halves for queries past the
exact-DP horizon: the decomposer (:mod:`repro.query.decompose`) partitions
the join graph into dense cores; exact DP — serial or any parallel
backend, fast-path and vectorized kernels included — optimizes each core
as a standalone sub-query; the stitcher (:mod:`repro.hybrid.stitch`)
orders the cores with GOO/IKKBZ and polishes the composition with seeded
local search.

Adaptivity is structural: a query at or below the core-size cap is a
single core, so the hybrid degenerates to pure exact DP with a **zero**
optimality gap — no mode switch, no cost threshold.  Past the cap, the
exponential work is bounded by the cap while the heuristic layer only
ever decides the plan shape *between* cores.

The run reports through the standard machinery: one
:class:`~repro.enumerate.base.OptimizationResult` whose meter and memo
counts aggregate the per-core DP runs, plus a ``hybrid.*`` trace group
(cores found, core sizes, DP vs heuristic share, stitch cost).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel
from repro.enumerate.base import OptimizationResult, make_context
from repro.heuristics.goo import GOO
from repro.hybrid.stitch import (
    induced_subquery,
    relabel_plan,
    stitch_cores,
)
from repro.memo.counters import WorkMeter
from repro.plans.nodes import ScanNode
from repro.query.decompose import Decomposition, decompose
from repro.util.errors import ValidationError

if TYPE_CHECKING:
    from repro.config import OptimizerConfig


class HybridOptimizer:
    """Decompose → per-core exact DP → heuristic stitch.

    Built from an :class:`~repro.config.OptimizerConfig` with
    ``algorithm="hybrid"``; the config's ``hybrid_dp`` kernel (and its
    ``threads``/``backend``/``fast_path``/``vectorize`` settings) run each
    core, so every execution substrate the DP framework supports is
    available per core.
    """

    name = "hybrid"

    def __init__(self, config: "OptimizerConfig") -> None:
        self.config = config

    @property
    def _core_config(self) -> "OptimizerConfig":
        """The per-core DP config: same substrate, DP kernel, no tracer.

        Core runs inherit threads/backend/fast-path/vectorize so parallel
        kernels apply inside each core; the tracer is dropped because the
        hybrid emits its own ``hybrid.*`` group and per-core DP spans
        would otherwise be misattributed to the full query.
        """
        return self.config.with_options(
            algorithm=self.config.effective_hybrid_dp,
            hybrid_core_cap=None,
            hybrid_density=None,
            hybrid_dp=None,
            tracer=None,
        )

    def optimize(
        self, query, cost_model: CostModel | None = None
    ) -> OptimizationResult:
        """Optimize ``query`` with the decompose/DP/stitch pipeline."""
        from repro import _run

        started = time.perf_counter()
        ctx = make_context(query)
        config = self.config
        cost_model = (
            cost_model
            if cost_model is not None
            else config.effective_cost_model
        )
        if not config.cross_products and not ctx.query.graph.is_connected():
            raise ValidationError(
                "hybrid: join graph is disconnected; no cross-product-"
                "free plan covers all relations (enable cross_products)"
            )
        tracer = config.effective_tracer
        meter = WorkMeter()
        estimator = CardinalityEstimator(ctx)
        core_config = self._core_config

        with tracer.span("optimize", algorithm=self.name, n=ctx.n):
            with tracer.span("hybrid.decompose", n=ctx.n):
                decomposition = decompose(
                    ctx,
                    core_cap=config.effective_hybrid_core_cap,
                    density_threshold=config.effective_hybrid_density,
                )
            self._trace_decomposition(tracer, ctx, decomposition)

            core_results = []
            with tracer.span(
                "hybrid.dp_cores", cores=len(decomposition.cores)
            ):
                for core in decomposition.cores:
                    if core.size == 1:
                        core_results.append(None)
                        continue
                    sub = induced_subquery(
                        ctx, core.mask, f"core{core.index}"
                    )
                    core_results.append(_run(sub, core_config))

            memo_entries = 0
            core_plans = []
            for core, sub_result in zip(
                decomposition.cores, core_results
            ):
                if sub_result is None:
                    core_plans.append(
                        ScanNode(relation=core.relations[0])
                    )
                    continue
                meter.merge(sub_result.meter)
                memo_entries += sub_result.memo_entries
                mapping = dict(enumerate(core.relations))
                core_plans.append(
                    relabel_plan(sub_result.plan, mapping)
                )

            with tracer.span(
                "hybrid.stitch", cores=len(core_plans)
            ):
                stitched = stitch_cores(
                    ctx,
                    core_plans,
                    estimator,
                    cost_model,
                    meter,
                    cross_products=config.cross_products,
                )
            tracer.counter(
                "hybrid.stitch_joins", len(core_plans) - 1
            )
            tracer.counter(
                "hybrid.polish_improvements",
                stitched.polish_improvements,
            )
            tracer.gauge("hybrid.stitch_cost", stitched.stitch_cost)

            plan = stitched.plan
            cost = stitched.cost
            stitch_method = stitched.method
            stitch_cost = stitched.stitch_cost
            if len(core_plans) > 1:
                # Adaptive backstop: on sparse topologies (chains above
                # all) core boundaries can cost more than per-core
                # optimality buys, and a flat greedy plan over the
                # original graph wins.  Pricing both and keeping the
                # cheaper makes the hybrid never worse than its own
                # heuristic baseline.
                with tracer.span("hybrid.flat_goo"):
                    flat = GOO(
                        cross_products=config.cross_products
                    ).optimize(ctx, cost_model=cost_model)
                meter.merge(flat.meter)
                if flat.cost < cost:
                    plan, cost = flat.plan, flat.cost
                    stitch_method = "flat_goo"
                    stitch_cost = 0.0

        extras: dict[str, Any] = {
            "hybrid": {
                "cores": [
                    list(core.relations)
                    for core in decomposition.cores
                ],
                "core_sizes": [
                    core.size for core in decomposition.cores
                ],
                "core_cap": decomposition.core_cap,
                "density_threshold": decomposition.density_threshold,
                "connector_edges": decomposition.connector_edges,
                "dp_relations": decomposition.dp_relations,
                "heuristic_relations": (
                    decomposition.heuristic_relations
                ),
                "dp_algorithm": core_config.algorithm,
                "stitch_method": stitch_method,
                "stitch_cost": stitch_cost,
                "polish_improvements": stitched.polish_improvements,
            },
        }
        if tracer.enabled:
            extras["trace"] = tracer
        return OptimizationResult(
            algorithm=self.name,
            plan=plan,
            cost=cost,
            rows=estimator.rows(ctx.all_mask),
            meter=meter,
            memo_entries=memo_entries,
            elapsed_seconds=time.perf_counter() - started,
            extras=extras,
        )

    def _trace_decomposition(
        self, tracer, ctx, decomposition: Decomposition
    ) -> None:
        """Emit the ``hybrid.*`` decomposition counters/gauges."""
        if not tracer.enabled:
            return
        sizes = [core.size for core in decomposition.cores]
        tracer.counter("hybrid.cores", len(sizes))
        tracer.gauge("hybrid.core_size_max", max(sizes))
        tracer.gauge(
            "hybrid.core_size_mean", sum(sizes) / len(sizes)
        )
        tracer.gauge(
            "hybrid.dp_share",
            decomposition.dp_relations / ctx.n,
        )
        tracer.counter(
            "hybrid.connector_edges", decomposition.connector_edges
        )

    def __repr__(self) -> str:
        return (
            f"HybridOptimizer(core_cap="
            f"{self.config.effective_hybrid_core_cap}, "
            f"density={self.config.effective_hybrid_density}, "
            f"dp={self.config.effective_hybrid_dp!r})"
        )
