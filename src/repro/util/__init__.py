"""Low-level utilities shared across the library.

The quantifier-set machinery in :mod:`repro.util.bitsets` is the foundation
of every enumerator: a set of relations (quantifiers, in the paper's
terminology) is represented as a plain Python ``int`` bitmask, which makes
set algebra (union, intersection, disjointness) single bytecode operations.
"""

from repro.util.bitsets import (
    all_subsets,
    bit,
    bits_of,
    first_bit,
    is_subset,
    iter_submasks,
    lowest_bit,
    mask_of,
    members,
    popcount,
    subsets_of_size,
    universe,
)
from repro.util.errors import ReproError, ValidationError
from repro.util.rng import derive_rng, spawn_seed

__all__ = [
    "all_subsets",
    "bit",
    "bits_of",
    "first_bit",
    "is_subset",
    "iter_submasks",
    "lowest_bit",
    "mask_of",
    "members",
    "popcount",
    "subsets_of_size",
    "universe",
    "ReproError",
    "ValidationError",
    "derive_rng",
    "spawn_seed",
]
