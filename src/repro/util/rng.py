"""Deterministic randomness helpers.

Every randomized component (catalog generation, workload generation, the
randomized heuristics) takes an explicit seed and derives child generators
through :func:`derive_rng`, so a workload is fully reproducible from a single
integer.
"""

from __future__ import annotations

import hashlib
import random

_DERIVE_SALT = b"repro.util.rng"


def spawn_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from ``seed`` and a sequence of labels.

    The derivation hashes the parent seed together with the labels, so
    distinct labels give statistically independent child streams and the
    mapping is stable across processes and Python versions (unlike
    ``hash()``, which is salted per process).
    """
    digest = hashlib.sha256()
    digest.update(_DERIVE_SALT)
    digest.update(str(int(seed)).encode())
    for label in labels:
        digest.update(b"\x1f")
        digest.update(repr(label).encode())
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(seed: int, *labels: object) -> random.Random:
    """Return a :class:`random.Random` seeded via :func:`spawn_seed`."""
    return random.Random(spawn_seed(seed, *labels))
