"""Quantifier sets as integer bitmasks.

Every join enumerator in this library identifies a set of relations
(*quantifier set* in the VLDB 2008 paper's terminology) by an ``int`` whose
bit ``i`` is set iff relation ``i`` is a member.  Integers keep set algebra
allocation-free: union is ``|``, intersection is ``&``, disjointness is
``a & b == 0`` — the test whose cost the paper's skip vector arrays exist to
avoid paying millions of times.

All functions here are pure and operate on non-negative integers.
"""

from __future__ import annotations

from collections.abc import Iterator


def bit(i: int) -> int:
    """Return the singleton mask ``{i}``."""
    return 1 << i


def mask_of(indices) -> int:
    """Build a mask from an iterable of member indices."""
    mask = 0
    for i in indices:
        mask |= 1 << i
    return mask


def universe(n: int) -> int:
    """Return the full set ``{0, …, n-1}``."""
    return (1 << n) - 1


def popcount(mask: int) -> int:
    """Number of members of ``mask``."""
    return mask.bit_count()


def members(mask: int) -> list[int]:
    """Member indices of ``mask`` in ascending order."""
    return list(bits_of(mask))


def bits_of(mask: int) -> Iterator[int]:
    """Yield member indices of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def lowest_bit(mask: int) -> int:
    """Return the singleton mask of the smallest member.

    ``mask`` must be non-empty.
    """
    if mask == 0:
        raise ValueError("empty mask has no lowest bit")
    return mask & -mask


def first_bit(mask: int) -> int:
    """Return the index of the smallest member of a non-empty ``mask``."""
    return lowest_bit(mask).bit_length() - 1


def is_subset(sub: int, sup: int) -> bool:
    """True iff every member of ``sub`` is a member of ``sup``."""
    return sub & sup == sub


def iter_submasks(mask: int) -> Iterator[int]:
    """Yield every non-empty *proper* submask of ``mask``.

    Uses the classic ``s = (s - 1) & mask`` walk, which enumerates submasks
    in decreasing numeric order.  This is the inner loop of ``DPsub``.
    """
    sub = (mask - 1) & mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


def all_subsets(mask: int) -> Iterator[int]:
    """Yield every submask of ``mask`` including ``0`` and ``mask`` itself.

    Enumerates in increasing numeric order.
    """
    sub = 0
    while True:
        yield sub
        if sub == mask:
            return
        sub = (sub - mask) & mask


def subsets_of_size(universe_mask: int, k: int) -> list[int]:
    """All submasks of ``universe_mask`` with exactly ``k`` members.

    Returned in increasing numeric order, which for masks over a contiguous
    universe coincides with colexicographic order of the member tuples.  The
    enumerators index their strata with these lists.
    """
    elems = members(universe_mask)
    n = len(elems)
    if k < 0 or k > n:
        return []
    if k == 0:
        return [0]
    out: list[int] = []

    def build(start: int, remaining: int, acc: int) -> None:
        if remaining == 0:
            out.append(acc)
            return
        # Stop when too few elements remain to complete the subset.
        for idx in range(start, n - remaining + 1):
            build(idx + 1, remaining - 1, acc | (1 << elems[idx]))

    build(0, k, 0)
    out.sort()
    return out


def next_same_popcount(mask: int) -> int:
    """Gosper's hack: next larger integer with the same popcount."""
    if mask == 0:
        raise ValueError("zero mask has no successor with equal popcount")
    low = mask & -mask
    ripple = mask + low
    ones = ((mask ^ ripple) >> 2) // low
    return ripple | ones
