"""Exception hierarchy for the library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ValidationError(ReproError):
    """An object failed a structural validity check.

    Raised e.g. for malformed join graphs (self-loops, out-of-range relation
    indices), invalid plan trees (duplicate leaves, non-disjoint join
    operands), or inconsistent enumerator configuration.
    """


class OptimizationError(ReproError):
    """An enumerator could not produce a complete plan.

    The usual cause is a disconnected join graph optimized with cross
    products disabled: no connected plan covers all relations.  Also
    raised when parallel fault recovery exhausts its retry budget and
    work units are irrecoverably lost.
    """


class InjectedFault(ReproError):
    """A fault raised on purpose by :class:`repro.faults.FaultInjector`.

    Only ever raised when a fault plan is configured; the recovery
    machinery (executor re-dispatch, service degradation) treats it like
    any other worker failure — it must never escape the service.
    """
