"""Numpy capability probe — the single import point for the optional
``perf`` extra.

Everything vectorized in the repo (the :class:`~repro.memo.vec.VecSoAMemo`
costing batches, the :mod:`repro.enumerate.vkernels` filter kernels) goes
through this module, so "is numpy installed?" is answered in exactly one
place and the pure-Python fallback is a data-driven decision rather than
scattered ``try: import numpy`` blocks.

``pip install repro[perf]`` provides numpy; without it, every consumer
degrades to the list-comprehension fast path automatically (identical
results — the vectorized code is a performance tier, never a semantic
one).
"""

from __future__ import annotations

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]


def numpy_available() -> bool:
    """True when the optional ``perf`` extra (numpy) is importable."""
    return np is not None


def resolve_vectorize(flag: bool | None) -> bool:
    """Resolve the ``OptimizerConfig.vectorize`` tri-state.

    ``None`` (auto) and ``True`` both enable vectorized kernels when
    numpy is present; ``True`` additionally *requesting* numpy still
    degrades gracefully when it is absent (capability probe, not a hard
    dependency).  ``False`` forces the pure-Python kernels.
    """
    if flag is False:
        return False
    return numpy_available()
