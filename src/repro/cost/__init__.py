"""Cardinality estimation and plan cost models.

The cost model is the pluggable piece the VLDB 2008 framework is agnostic
to: enumerators only ever call :meth:`CostModel.scan_cost` and
:meth:`CostModel.join_cost`.  :class:`StandardCostModel` implements the
textbook block-nested-loop / hash / sort-merge formulas of Steinbrunn et
al. (VLDBJ 1997); :class:`CoutCostModel` is the ``C_out`` metric common in
join-ordering analysis papers.
"""

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import (
    CostModel,
    CoutCostModel,
    StandardCostModel,
)
from repro.cost.plan_cost import plan_cost, plan_rows

__all__ = [
    "CardinalityEstimator",
    "CostModel",
    "StandardCostModel",
    "CoutCostModel",
    "plan_cost",
    "plan_rows",
]
