"""Cardinality estimation under the attribute-independence assumption.

The estimate for a quantifier set is the product of base cardinalities
multiplied by the selectivity of every join edge internal to the set.  This
makes the estimate *split-invariant*: ``rows(L ∪ R)`` is the same however
the set was assembled, which is the property the dynamic-programming
recurrence relies on (one row count per memo entry).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.query.context import QueryContext
from repro.util.bitsets import first_bit

if TYPE_CHECKING:  # imported lazily to avoid a cost ↔ memo import cycle
    from repro.memo.counters import WorkMeter

ROWS_CAP = 1e300
"""Saturation ceiling for row estimates.

At 100-relation scale the raw product of base cardinalities overflows
float64 to ``inf``, at which point every ``rows(a) < rows(b)`` comparison
the greedy heuristics rely on goes false and plan construction breaks.
Estimates saturate here instead: still astronomically past any real plan,
but finite, ordered, and safe to multiply by per-edge selectivities.  The
cap sits far above anything an exact-DP-sized query can produce, so
results for feasible queries are bit-identical with or without it."""


class CardinalityEstimator:
    """Memoized row-count estimates for quantifier sets of one query.

    The cache is keyed on the *union* mask, so it is symmetric by
    construction: ``join_rows(L, R)`` and ``join_rows(R, L)`` resolve to
    the same ``rows(L | R)`` entry.  Fast and reference enumeration paths
    therefore hit the identical cache state for the same candidate pairs.

    When a ``meter`` is attached, every cache hit (including hits taken
    by the recursive expansion of a miss) bumps its ``est_cache_hits``
    counter.  The recursion order is deterministic, so the count is too.
    """

    __slots__ = ("ctx", "meter", "_rows")

    def __init__(
        self, ctx: QueryContext, meter: "WorkMeter | None" = None
    ) -> None:
        self.ctx = ctx
        self.meter = meter
        self._rows: dict[int, float] = {
            1 << i: float(ctx.cards[i]) for i in range(ctx.n)
        }

    def rows(self, mask: int) -> float:
        """Estimated row count of the join over ``mask``.

        ``mask`` must be non-empty.  Estimates are clamped to
        ``[1, ROWS_CAP]``: a join that filters everything still produces
        a result the cost model can reason about (and zero-cost plans are
        ruled out), while very large queries saturate finitely instead of
        overflowing to ``inf`` (which would break every row comparison
        downstream).
        """
        cached = self._rows.get(mask)
        if cached is not None:
            if self.meter is not None:
                self.meter.est_cache_hits += 1
            return cached
        low = mask & -mask
        rest = mask ^ low
        rel = first_bit(mask)
        value = (
            self.rows(rest)
            * self.ctx.cards[rel]
            * self.ctx.cross_selectivity(low, rest)
        )
        value = max(1.0, min(value, ROWS_CAP))
        self._rows[mask] = value
        return value

    def join_rows(self, left: int, right: int) -> float:
        """Row count of joining two disjoint sets (== ``rows(left | right)``)."""
        return self.rows(left | right)
