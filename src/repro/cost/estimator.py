"""Cardinality estimation under the attribute-independence assumption.

The estimate for a quantifier set is the product of base cardinalities
multiplied by the selectivity of every join edge internal to the set.  This
makes the estimate *split-invariant*: ``rows(L ∪ R)`` is the same however
the set was assembled, which is the property the dynamic-programming
recurrence relies on (one row count per memo entry).
"""

from __future__ import annotations

from repro.query.context import QueryContext
from repro.util.bitsets import first_bit


class CardinalityEstimator:
    """Memoized row-count estimates for quantifier sets of one query."""

    __slots__ = ("ctx", "_rows")

    def __init__(self, ctx: QueryContext) -> None:
        self.ctx = ctx
        self._rows: dict[int, float] = {
            1 << i: float(ctx.cards[i]) for i in range(ctx.n)
        }

    def rows(self, mask: int) -> float:
        """Estimated row count of the join over ``mask``.

        ``mask`` must be non-empty.  Estimates are at least 1 row: a join
        that filters everything still produces a result the cost model can
        reason about, and clamping avoids degenerate zero-cost plans.
        """
        cached = self._rows.get(mask)
        if cached is not None:
            return cached
        low = mask & -mask
        rest = mask ^ low
        rel = first_bit(mask)
        value = (
            self.rows(rest)
            * self.ctx.cards[rel]
            * self.ctx.cross_selectivity(low, rest)
        )
        value = max(1.0, value)
        self._rows[mask] = value
        return value

    def join_rows(self, left: int, right: int) -> float:
        """Row count of joining two disjoint sets (== ``rows(left | right)``)."""
        return self.rows(left | right)
