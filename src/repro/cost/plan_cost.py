"""Costing of explicit plan trees.

The enumerators accumulate costs incrementally through memo entries; this
module is the independent re-derivation used by tests (DP results must
match tree costing exactly) and by the heuristics, which manipulate whole
trees.
"""

from __future__ import annotations

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel
from repro.plans.nodes import JoinNode, PlanNode, ScanNode


def plan_rows(plan: PlanNode, estimator: CardinalityEstimator) -> float:
    """Estimated output rows of ``plan``."""
    return estimator.rows(plan.mask)


def plan_cost(
    plan: PlanNode,
    estimator: CardinalityEstimator,
    cost_model: CostModel,
) -> float:
    """Total cost of ``plan`` under ``cost_model``.

    Computed bottom-up over the explicit tree; equals the cost a DP
    enumerator would accumulate for the same shape and methods.
    """
    if isinstance(plan, ScanNode):
        return cost_model.scan_cost(estimator.rows(plan.mask))
    if isinstance(plan, JoinNode):
        left_cost = plan_cost(plan.left, estimator, cost_model)
        right_cost = plan_cost(plan.right, estimator, cost_model)
        return (
            left_cost
            + right_cost
            + cost_model.join_cost(
                plan.method,
                estimator.rows(plan.left.mask),
                estimator.rows(plan.right.mask),
                estimator.rows(plan.mask),
            )
        )
    raise TypeError(f"not a plan node: {plan!r}")
