"""Plan cost models.

A cost model exposes which join algorithms exist and what each costs as a
function of input/output row counts.  Costs are operator-local: the
enumerators and :func:`repro.cost.plan_cost.plan_cost` add children
recursively, which is what lets memo entries carry a single accumulated
cost (Bellman optimality over quantifier sets).

Formulas follow Steinbrunn, Moerkotte & Kemper (VLDBJ 1997), in units of
tuple operations.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.plans.operators import JOIN_METHODS, JoinMethod
from repro.util.errors import ValidationError


class CostModel(ABC):
    """Interface between enumerators and cost estimation.

    Subclasses must be stateless (or effectively immutable): cost models
    are shared across worker threads and shipped to worker processes.
    """

    #: Join algorithms this model prices; enumerators evaluate each.
    methods: tuple[JoinMethod, ...] = JOIN_METHODS

    @abstractmethod
    def scan_cost(self, rows: float) -> float:
        """Cost of scanning a base relation of ``rows`` tuples."""

    @abstractmethod
    def join_cost(
        self,
        method: JoinMethod,
        left_rows: float,
        right_rows: float,
        out_rows: float,
    ) -> float:
        """Operator-local cost of one join (children excluded).

        ``left_rows`` is the outer operand.
        """

    def join_costs(
        self, left_rows: float, right_rows: float, out_rows: float
    ) -> tuple[float, ...]:
        """Operator-local cost of every method in :attr:`methods`, in order.

        The fused enumeration kernels call this once per candidate pair
        instead of looping over :meth:`join_cost`.  Overrides must return
        bit-identical floats to the per-method calls (same expressions in
        the same order) — the fast-path parity guarantee depends on it.
        """
        return tuple(
            self.join_cost(method, left_rows, right_rows, out_rows)
            for method in self.methods
        )

    def cheapest_join(
        self, left_rows: float, right_rows: float, out_rows: float
    ) -> tuple[JoinMethod, float]:
        """Cheapest method and its cost for the given operand sizes."""
        best_method = self.methods[0]
        best_cost = self.join_cost(best_method, left_rows, right_rows, out_rows)
        for method in self.methods[1:]:
            cost = self.join_cost(method, left_rows, right_rows, out_rows)
            if cost < best_cost:
                best_method, best_cost = method, cost
        return best_method, best_cost


class StandardCostModel(CostModel):
    """Textbook single-metric cost model.

    * nested loop: ``L + L·R``
    * block nested loop: ``L + ⌈L / block⌉·R``
    * hash: ``build·L + probe·R``
    * sort-merge: ``L·log₂(L+1) + R·log₂(R+1) + L + R`` (symmetric)

    Attributes:
        block_size: Tuples per block for the block-nested-loop join.
        hash_build_factor: Per-tuple cost of building the hash table.
        hash_probe_factor: Per-tuple cost of probing.
    """

    methods = JOIN_METHODS

    def __init__(
        self,
        block_size: int = 128,
        hash_build_factor: float = 1.5,
        hash_probe_factor: float = 1.0,
    ) -> None:
        if block_size < 1:
            raise ValidationError(f"block_size must be >= 1, got {block_size}")
        if hash_build_factor <= 0 or hash_probe_factor <= 0:
            raise ValidationError("hash factors must be positive")
        self.block_size = block_size
        self.hash_build_factor = hash_build_factor
        self.hash_probe_factor = hash_probe_factor

    def scan_cost(self, rows: float) -> float:
        return rows

    def join_cost(
        self,
        method: JoinMethod,
        left_rows: float,
        right_rows: float,
        out_rows: float,
    ) -> float:
        if method is JoinMethod.NESTED_LOOP:
            return left_rows + left_rows * right_rows
        if method is JoinMethod.BLOCK_NESTED_LOOP:
            blocks = math.ceil(left_rows / self.block_size)
            return left_rows + blocks * right_rows
        if method is JoinMethod.HASH:
            return (
                self.hash_build_factor * left_rows
                + self.hash_probe_factor * right_rows
            )
        if method is JoinMethod.SORT_MERGE:
            return (
                left_rows * math.log2(left_rows + 1.0)
                + right_rows * math.log2(right_rows + 1.0)
                + left_rows
                + right_rows
            )
        raise ValidationError(f"unpriced join method {method!r}")

    def join_costs(
        self, left_rows: float, right_rows: float, out_rows: float
    ) -> tuple[float, float, float, float]:
        """All four method costs at once, in :data:`JOIN_METHODS` order.

        Each expression mirrors the corresponding :meth:`join_cost` branch
        exactly, so the returned floats are bit-identical to per-method
        calls (fast-path parity requirement).
        """
        return (
            left_rows + left_rows * right_rows,
            left_rows + math.ceil(left_rows / self.block_size) * right_rows,
            self.hash_build_factor * left_rows
            + self.hash_probe_factor * right_rows,
            left_rows * math.log2(left_rows + 1.0)
            + right_rows * math.log2(right_rows + 1.0)
            + left_rows
            + right_rows,
        )

    def __repr__(self) -> str:
        return (
            f"StandardCostModel(block_size={self.block_size}, "
            f"hash_build_factor={self.hash_build_factor}, "
            f"hash_probe_factor={self.hash_probe_factor})"
        )


class CoutCostModel(CostModel):
    """The ``C_out`` metric: cost of a plan = sum of intermediate sizes.

    A single generic join method is priced so that each join contributes
    exactly its output cardinality.  ``C_out`` is the metric under which
    IKKBZ is provably optimal for acyclic queries and left-deep trees,
    which the heuristics tests exploit.
    """

    methods = (JoinMethod.HASH,)

    def scan_cost(self, rows: float) -> float:
        return 0.0

    def join_cost(
        self,
        method: JoinMethod,
        left_rows: float,
        right_rows: float,
        out_rows: float,
    ) -> float:
        return out_rows

    def join_costs(
        self, left_rows: float, right_rows: float, out_rows: float
    ) -> tuple[float]:
        return (out_rows,)

    def __repr__(self) -> str:
        return "CoutCostModel()"
