"""Command-line interface.

Four subcommands::

    python -m repro optimize --topology star -n 12 --threads 8 --explain
    python -m repro optimize --sql "SELECT * FROM t0 a, t0 b WHERE a.c0 = b.c1" \\
        --catalog-tables 8
    python -m repro optimize --topology star -n 12 --threads 8 --trace run.jsonl
    python -m repro trace run.jsonl --by worker
    python -m repro bench --experiment speedup --topology clique -n 10
    python -m repro inspect --topology cycle -n 9

``optimize`` runs one query end to end (``--trace PATH`` records the run
into a JSONL trace file and prints its summary tables), ``trace`` renders
a previously saved trace file, ``bench`` regenerates one of the experiment
families on a compact grid, ``inspect`` prints a query's statistics and
search-space numbers.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__, optimize
from repro.bench import (
    allocation_comparison,
    format_table,
    render_curve,
    run_serial_grid,
    speedup_curve,
    sva_effectiveness,
)
from repro.catalog import generate_catalog
from repro.plans import explain
from repro.query import TOPOLOGIES, WorkloadSpec, generate_query
from repro.trace import RecordingTracer, read_jsonl, render_trace, write_jsonl
from repro.util.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel dynamic-programming query optimization "
            "(VLDB 2008 reproduction)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    opt = sub.add_parser("optimize", help="optimize one query")
    opt.add_argument("--topology", choices=sorted(TOPOLOGIES), default="star")
    opt.add_argument("-n", "--relations", type=int, default=10)
    opt.add_argument("--seed", type=int, default=0)
    opt.add_argument("--sql", help="optimize an SPJ SQL statement instead")
    opt.add_argument(
        "--catalog-tables", type=int, default=8,
        help="tables in the generated catalog (SQL mode)",
    )
    opt.add_argument(
        "--algorithm", default="dpsva",
        help="dpsize/dpsub/dpccp/dpsva/exhaustive or a heuristic name",
    )
    opt.add_argument("--threads", type=int, default=None)
    opt.add_argument(
        "--allocation", default="equi_depth",
        help="work-unit allocation scheme (parallel runs)",
    )
    opt.add_argument(
        "--backend", default="simulated",
        choices=("simulated", "threads", "processes"),
    )
    opt.add_argument("--cross-products", action="store_true")
    opt.add_argument("--explain", action="store_true", help="print the plan")
    opt.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a trace of the run to PATH (JSONL) and print its "
        "summary tables",
    )

    trace = sub.add_parser(
        "trace", help="render a saved trace file (see optimize --trace)"
    )
    trace.add_argument("file", help="JSONL trace file to render")
    trace.add_argument(
        "--by", choices=("stratum", "worker", "both"), default="both",
        help="which aggregation table(s) to print",
    )

    bench = sub.add_parser("bench", help="regenerate an experiment family")
    bench.add_argument(
        "--experiment",
        choices=("serial", "sva", "speedup", "allocation"),
        default="speedup",
    )
    bench.add_argument("--topology", choices=sorted(TOPOLOGIES), default="star")
    bench.add_argument("-n", "--relations", type=int, default=10)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--queries", type=int, default=2)
    bench.add_argument(
        "--threads", type=int, nargs="+", default=[1, 2, 4, 8]
    )

    ins = sub.add_parser("inspect", help="print query statistics")
    ins.add_argument("--topology", choices=sorted(TOPOLOGIES), default="star")
    ins.add_argument("-n", "--relations", type=int, default=10)
    ins.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_optimize(args) -> int:
    tracer = RecordingTracer() if args.trace else None
    trace_options = {"tracer": tracer} if tracer is not None else {}
    if args.sql:
        from repro.sql import optimize_sql

        catalog = generate_catalog(args.catalog_tables, seed=args.seed)
        result = optimize_sql(
            args.sql,
            catalog,
            algorithm=args.algorithm,
            threads=args.threads,
            **(
                {"allocation": args.allocation, "backend": args.backend}
                if args.threads
                else {}
            ),
            **trace_options,
        )
        names = None
    else:
        query = generate_query(
            WorkloadSpec(args.topology, args.relations, seed=args.seed)
        )
        options = dict(trace_options)
        if args.threads:
            options.update(
                allocation=args.allocation,
                backend=args.backend,
            )
        result = optimize(
            query,
            algorithm=args.algorithm,
            threads=args.threads,
            cross_products=args.cross_products,
            **options,
        )
        names = query.relation_names
    print(result.summary())
    report = result.sim_report
    if report is not None:
        print(report.summary())
    if args.explain:
        print(explain(result.plan, relation_names=names))
    if tracer is not None:
        meta = {
            "algorithm": result.algorithm,
            "threads": args.threads or 1,
            "backend": args.backend if args.threads else "serial",
            "query": args.sql or f"{args.topology}/{args.relations}",
        }
        try:
            write_jsonl(tracer.events, args.trace, meta)
        except OSError as exc:
            print(f"error: cannot write trace file: {exc}", file=sys.stderr)
            return 1
        print(f"\ntrace: {len(tracer)} events -> {args.trace}")
        print()
        print(render_trace(tracer.events, meta))
    return 0


def _cmd_trace(args) -> int:
    try:
        events, meta = read_jsonl(args.file)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_trace(events, meta, by=args.by))
    return 0


def _cmd_bench(args) -> int:
    if args.experiment == "serial":
        rows = run_serial_grid(
            [args.topology], [args.relations],
            queries=args.queries, seed=args.seed,
        )
        print(format_table(rows))
    elif args.experiment == "sva":
        rows = sva_effectiveness(
            [args.topology], [args.relations],
            queries=args.queries, seed=args.seed,
        )
        print(format_table(rows))
    elif args.experiment == "speedup":
        rows = speedup_curve(
            args.topology, args.relations,
            thread_counts=tuple(args.threads),
            queries=args.queries, seed=args.seed,
        )
        print(format_table(rows))
        print()
        print(
            render_curve(
                [r["threads"] for r in rows],
                [r["speedup"] for r in rows],
                label=f"speedup — {args.topology} n={args.relations}",
            )
        )
    else:  # allocation
        rows = allocation_comparison(
            args.topology, args.relations,
            threads=max(args.threads), queries=args.queries, seed=args.seed,
        )
        print(format_table(rows))
    return 0


def _cmd_inspect(args) -> int:
    from repro.enumerate.dpccp import count_csg_cmp_pairs
    from repro.query import QueryContext
    from repro.util.bitsets import subsets_of_size

    query = generate_query(
        WorkloadSpec(args.topology, args.relations, seed=args.seed)
    )
    ctx = QueryContext(query)
    print(f"query:         {query.label}")
    print(f"relations:     {query.n}")
    print(f"edges:         {len(query.graph.edges)}")
    print(f"cardinalities: {[int(c) for c in query.cardinalities]}")
    connected = sum(
        1
        for k in range(1, query.n + 1)
        for m in subsets_of_size(ctx.all_mask, k)
        if ctx.is_connected(m)
    )
    print(f"connected quantifier sets: {connected}")
    print(f"csg-cmp pairs: {count_csg_cmp_pairs(ctx)}")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "optimize":
            return _cmd_optimize(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "bench":
            return _cmd_bench(args)
        return _cmd_inspect(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
