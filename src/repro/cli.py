"""Command-line interface.

Five subcommands::

    python -m repro optimize --topology star -n 12 --threads 8 --explain
    python -m repro optimize --sql "SELECT * FROM t0 a, t0 b WHERE a.c0 = b.c1" \\
        --catalog-tables 8
    python -m repro optimize --topology star -n 12 --cache --repeat 3
    python -m repro optimize --topology star -n 12 --threads 8 --trace run.jsonl
    python -m repro trace run.jsonl --by worker
    python -m repro serve-batch --topology star -n 10 --queries 4 --repeat 10
    python -m repro bench --experiment cache --topology star -n 10
    python -m repro bench --experiment kernels --topology clique -n 12
    python -m repro bench --experiment faults --topology chain -n 7
    python -m repro bench --experiment serving --topology star -n 10
    python -m repro optimize --topology star -n 10 --threads 2 \\
        --backend processes --fault-plan "worker:crash@worker=1"
    python -m repro worker --listen 127.0.0.1:7101 &
    python -m repro worker --listen 127.0.0.1:7102 &
    python -m repro optimize --topology star -n 10 --threads 2 \\
        --backend cluster --cluster-connect 127.0.0.1:7101 127.0.0.1:7102
    python -m repro inspect --topology cycle -n 9
    python -m repro explain --sql "SELECT ..." --diff goo
    python -m repro explain --topology star -n 8 --dot

``explain`` optimizes one query just to show its plan — rendered as an
indented operator tree or Graphviz ``dot`` (``--dot``) — and with
``--diff ALGORITHM`` optimizes the same query a second time and prints a
clause-level plan diff (:mod:`repro.plans.diff`): which join blocks the
two optimizers agree on, and where they diverge.
``optimize`` runs one query end to end (``--cache`` routes it through an
:class:`~repro.service.OptimizerService` and prints cache provenance;
``--trace PATH`` records the run into a JSONL trace file and prints its
summary tables), ``trace`` renders a previously saved trace file,
``serve-batch`` replays a repeated workload through the concurrent
optimization service and reports hit rates and latency, ``bench``
regenerates one of the experiment families on a compact grid (the
``--experiment`` list comes from the registry in
:mod:`repro.bench.experiments`), ``inspect`` prints a query's statistics
and search-space numbers, and ``worker`` serves one shared-nothing
cluster job over TCP (``docs/distributed.md``).
"""

from __future__ import annotations

import argparse
import statistics
import sys

from repro import OptimizerConfig, OptimizerService, __version__, optimize
from repro.bench import (
    CLI_CHOICES,
    allocation_comparison,
    cache_workload,
    cluster_comparison,
    fault_tolerance,
    format_table,
    kernel_speedup,
    large_query,
    real_backend_allocation,
    render_curve,
    run_serial_grid,
    serving_throughput,
    shm_comparison,
    speedup_curve,
    sva_effectiveness,
    wire_volume,
    workload_mqo,
)
from repro.catalog import generate_catalog
from repro.plans import explain
from repro.service.api import SOURCES
from repro.query import TOPOLOGIES, WorkloadSpec, generate_query
from repro.trace import RecordingTracer, read_jsonl, render_trace, write_jsonl
from repro.config import HYBRID_NAME, PARALLEL_ALGORITHMS
from repro.util.errors import ReproError, ValidationError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel dynamic-programming query optimization "
            "(VLDB 2008 reproduction)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    opt = sub.add_parser("optimize", help="optimize one query")
    opt.add_argument("--topology", choices=sorted(TOPOLOGIES), default="star")
    opt.add_argument("-n", "--relations", type=int, default=10)
    opt.add_argument("--seed", type=int, default=0)
    opt.add_argument("--sql", help="optimize an SPJ SQL statement instead")
    opt.add_argument(
        "--catalog-tables", type=int, default=8,
        help="tables in the generated catalog (SQL mode)",
    )
    opt.add_argument(
        "--algorithm", default="dpsva",
        help="dpsize/dpsub/dpccp/dpsva/exhaustive or a heuristic name",
    )
    opt.add_argument("--threads", type=int, default=None)
    opt.add_argument(
        "--allocation", default=None,
        help="work-unit allocation scheme (parallel runs; "
        "default equi_depth)",
    )
    opt.add_argument(
        "--backend", default=None,
        choices=("simulated", "threads", "processes", "cluster"),
        help="parallel execution substrate (default simulated)",
    )
    opt.add_argument(
        "--core-cap", type=int, default=None,
        help="hybrid: max relations per exact-DP core (default 12)",
    )
    opt.add_argument(
        "--density-threshold", type=float, default=None,
        help="hybrid: min internal edge density while growing a core "
        "(default 0.3)",
    )
    opt.add_argument(
        "--hybrid-dp", default=None,
        help="hybrid: exact DP kernel run on each core (default dpsize)",
    )
    opt.add_argument(
        "--cluster-workers", type=int, default=None,
        help="shard-owning workers for --backend cluster "
        "(default: --threads)",
    )
    opt.add_argument(
        "--cluster-connect", nargs="+", metavar="HOST:PORT", default=None,
        help="addresses of pre-started 'repro worker --listen' processes "
        "(--backend cluster; omit to fork workers in-process)",
    )
    opt.add_argument("--cross-products", action="store_true")
    opt.add_argument("--explain", action="store_true", help="print the plan")
    opt.add_argument(
        "--cache", action="store_true",
        help="route the request through an OptimizerService plan cache "
        "and print cache provenance",
    )
    opt.add_argument(
        "--repeat", type=int, default=1,
        help="issue the request this many times (with --cache, repeats "
        "after the first are served from the plan cache)",
    )
    opt.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a trace of the run to PATH (JSONL) and print its "
        "summary tables",
    )
    _add_fault_args(opt)

    serve = sub.add_parser(
        "serve-batch",
        help="replay a repeated workload through the optimization service",
    )
    serve.add_argument(
        "--topology", choices=sorted(TOPOLOGIES), default="star"
    )
    serve.add_argument("-n", "--relations", type=int, default=10)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--queries", type=int, default=4,
        help="number of distinct queries in the workload",
    )
    serve.add_argument(
        "--repeat", type=int, default=10,
        help="times each distinct query recurs in the request stream",
    )
    serve.add_argument(
        "--algorithm", default="dpsize",
        help="dpsize/dpsub/dpccp/dpsva/exhaustive or a heuristic name",
    )
    serve.add_argument("--threads", type=int, default=None)
    serve.add_argument(
        "--workers", type=int, default=None,
        help="service worker-pool size",
    )
    serve.add_argument(
        "--cache-size", type=int, default=None,
        help="plan-cache capacity (entries)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="per-request deadline in seconds (expiry degrades to a "
        "heuristic plan)",
    )
    serve.add_argument(
        "--shards", type=int, default=None,
        help="plan-cache shard count (default from the config)",
    )
    serve.add_argument(
        "--admission-limit", type=int, default=None,
        help="max requests waiting on optimizations before load shedding",
    )
    serve.add_argument(
        "--warm-start", metavar="PATH", default=None,
        help="warm-start file: reload cached plans on start, spill on exit",
    )
    serve.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record service + optimizer events to PATH (JSONL)",
    )
    _add_fault_args(serve)

    trace = sub.add_parser(
        "trace", help="render a saved trace file (see optimize --trace)"
    )
    trace.add_argument("file", help="JSONL trace file to render")
    trace.add_argument(
        "--by", choices=("stratum", "worker", "comm", "both"),
        default="both",
        help="which aggregation table(s) to print",
    )

    bench = sub.add_parser("bench", help="regenerate an experiment family")
    bench.add_argument(
        "--experiment",
        # One registry feeds this list, benchmarks/run_all.py, and the
        # artifact names — see repro.bench.experiments.
        choices=CLI_CHOICES,
        default="speedup",
    )
    bench.add_argument("--topology", choices=sorted(TOPOLOGIES), default="star")
    bench.add_argument("-n", "--relations", type=int, default=10)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--queries", type=int, default=2)
    bench.add_argument(
        "--threads", type=int, nargs="+", default=[1, 2, 4, 8]
    )

    exp = sub.add_parser(
        "explain",
        help="optimize one query and print (or diff) its plan",
    )
    exp.add_argument("--topology", choices=sorted(TOPOLOGIES), default="star")
    exp.add_argument("-n", "--relations", type=int, default=10)
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--sql", help="explain an SPJ SQL statement instead")
    exp.add_argument(
        "--catalog-tables", type=int, default=8,
        help="tables in the generated catalog (SQL mode)",
    )
    exp.add_argument(
        "--algorithm", default="dpsize",
        help="dpsize/dpsub/dpccp/dpsva/exhaustive or a heuristic name",
    )
    exp.add_argument(
        "--diff", metavar="ALGORITHM", default=None,
        help="optimize again with this algorithm and print a "
        "clause-level diff of the two plans",
    )
    exp.add_argument("--cross-products", action="store_true")
    exp.add_argument(
        "--dot", action="store_true",
        help="emit the plan as Graphviz dot instead of a tree",
    )

    ins = sub.add_parser("inspect", help="print query statistics")
    ins.add_argument("--topology", choices=sorted(TOPOLOGIES), default="star")
    ins.add_argument("-n", "--relations", type=int, default=10)
    ins.add_argument("--seed", type=int, default=0)

    worker = sub.add_parser(
        "worker",
        help="serve one cluster job as a TCP shard worker "
        "(see docs/distributed.md)",
    )
    worker.add_argument(
        "--listen", required=True, metavar="HOST:PORT",
        help="address to accept the coordinator and peer meshes on",
    )
    return parser


def _add_fault_args(parser) -> None:
    parser.add_argument(
        "--fault-plan", default=None,
        help="fault-injection plan, e.g. 'worker:crash@worker=1' "
        "(see repro.faults)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed for probabilistic fault specs",
    )
    parser.add_argument(
        "--retry-limit", type=int, default=None,
        help="recovery attempts before degrading/raising",
    )


def _fault_plan(args) -> str | None:
    """Assemble the fault plan string, folding in --fault-seed."""
    plan = getattr(args, "fault_plan", None)
    if plan is None:
        return None
    seed = getattr(args, "fault_seed", None)
    return plan if seed is None else f"seed={seed};{plan}"


def _check_knob_compatibility(args) -> None:
    """Reject flag combinations up front with CLI-level names.

    The config layer validates the same constraints, but its messages
    speak in keyword arguments (``threads=``, ``hybrid_core_cap=``);
    here the offending *flags* are named and the valid combinations
    suggested, so a shell user is never left translating.
    """
    algorithm = args.algorithm
    parallel_ok = (
        algorithm in PARALLEL_ALGORITHMS or algorithm == HYBRID_NAME
    )
    offending = []
    if not parallel_ok:
        if getattr(args, "threads", None):
            offending.append("--threads")
        if getattr(args, "backend", None) is not None:
            offending.append("--backend")
        if getattr(args, "allocation", None) is not None:
            offending.append("--allocation")
    if offending:
        flags = ", ".join(offending)
        raise ValidationError(
            f"{flags} only applies to parallel runs, but --algorithm "
            f"{algorithm} runs serially; drop {flags}, or pick a "
            f"parallel-capable algorithm "
            f"({', '.join(sorted(PARALLEL_ALGORITHMS))}), or use "
            f"--algorithm hybrid (which runs its DP cores in parallel)"
        )
    hybrid_only = [
        flag
        for flag, name in (
            ("--core-cap", "core_cap"),
            ("--density-threshold", "density_threshold"),
            ("--hybrid-dp", "hybrid_dp"),
        )
        if getattr(args, name, None) is not None
    ]
    if hybrid_only and algorithm != HYBRID_NAME:
        flags = ", ".join(hybrid_only)
        raise ValidationError(
            f"{flags} only applies to --algorithm hybrid, but "
            f"--algorithm {algorithm} was given; drop {flags} or switch "
            f"to --algorithm hybrid"
        )


def _build_config(args, tracer) -> "OptimizerConfig":
    """Resolve CLI optimizer arguments into one OptimizerConfig."""
    _check_knob_compatibility(args)
    kwargs = dict(
        algorithm=args.algorithm,
        threads=args.threads,
        cross_products=getattr(args, "cross_products", False),
        tracer=tracer,
        fault_plan=_fault_plan(args),
        retry_limit=getattr(args, "retry_limit", None),
    )
    backend = getattr(args, "backend", None)
    # The cluster knobs imply their own worker count, so --backend
    # cluster must survive even without an explicit --threads.
    if args.threads or backend == "cluster":
        kwargs.update(
            allocation=getattr(args, "allocation", None),
            backend=backend,
        )
        if backend == "cluster":
            connect = getattr(args, "cluster_connect", None)
            kwargs.update(
                cluster_workers=getattr(args, "cluster_workers", None),
                cluster_connect=tuple(connect) if connect else None,
            )
    if args.algorithm == HYBRID_NAME:
        kwargs.update(
            hybrid_core_cap=getattr(args, "core_cap", None),
            hybrid_density=getattr(args, "density_threshold", None),
            hybrid_dp=getattr(args, "hybrid_dp", None),
        )
        # Hybrid runs its DP cores on the configured substrate, so the
        # parallel knobs pass straight through.
        if args.threads:
            kwargs.update(
                backend=getattr(args, "backend", None),
                allocation=getattr(args, "allocation", None),
            )
    return OptimizerConfig(**kwargs)


def _cmd_optimize(args) -> int:
    tracer = RecordingTracer() if args.trace else None
    if args.sql:
        from repro.sql import sql_to_query

        catalog = generate_catalog(args.catalog_tables, seed=args.seed)
        query = sql_to_query(args.sql, catalog)
        names = None
        if not query.graph.is_connected() and not args.cross_products:
            # Mirror optimize_sql's override — and say so, instead of
            # silently flipping a flag the user never passed.
            args.cross_products = True
            print(
                "note: join graph is disconnected; enabling cross "
                "products (as if --cross-products were given)",
                file=sys.stderr,
            )
    else:
        query = generate_query(
            WorkloadSpec(args.topology, args.relations, seed=args.seed)
        )
        names = query.relation_names
    config = _build_config(args, tracer)
    repeat = max(1, args.repeat)
    if args.cache:
        with OptimizerService(config) as service:
            outcomes = [service.optimize(query) for _ in range(repeat)]
            stats = service.stats()
        for index, outcome in enumerate(outcomes):
            print(
                f"request {index}: source={outcome.source} "
                f"fingerprint={outcome.fingerprint.short()} "
                f"latency={outcome.elapsed_seconds * 1e3:.3f}ms"
            )
        cache = stats.plan_cache
        print(
            f"plan cache: hits={cache.hits} misses={cache.misses} "
            f"hit_rate={cache.hit_rate:.2f} evictions={cache.evictions}"
        )
        result = outcomes[-1].result
    else:
        for _ in range(repeat):
            result = optimize(query, config=config)
    print(result.summary())
    report = result.sim_report
    if report is not None:
        print(report.summary())
    if args.explain:
        print(explain(result.plan, relation_names=names))
    if tracer is not None:
        # Report the resolved config, not the raw flags: the cluster
        # knobs imply threads/backend without --threads being given.
        meta = {
            "algorithm": result.algorithm,
            "threads": config.threads or 1,
            "backend": (
                config.effective_backend if config.threads else "serial"
            ),
            "query": args.sql or f"{args.topology}/{args.relations}",
        }
        try:
            write_jsonl(tracer.events, args.trace, meta)
        except OSError as exc:
            print(f"error: cannot write trace file: {exc}", file=sys.stderr)
            return 1
        print(f"\ntrace: {len(tracer)} events -> {args.trace}")
        print()
        print(render_trace(tracer.events, meta))
    return 0


def _cmd_serve_batch(args) -> int:
    import time

    tracer = RecordingTracer() if args.trace else None
    distinct = max(1, args.queries)
    spec = WorkloadSpec(
        args.topology, args.relations, seed=args.seed, count=distinct
    )
    queries = [generate_query(spec, i) for i in range(distinct)]
    stream = [queries[i % distinct] for i in range(distinct * args.repeat)]
    config = OptimizerConfig(
        algorithm=args.algorithm,
        threads=args.threads,
        service_workers=args.workers,
        cache_size=args.cache_size,
        request_timeout=args.timeout,
        cache_shards=args.shards,
        admission_limit=args.admission_limit,
        warm_start_path=args.warm_start,
        tracer=tracer,
        fault_plan=_fault_plan(args),
        retry_limit=args.retry_limit,
    )
    with OptimizerService(config) as service:
        started = time.perf_counter()
        outcomes = service.optimize_batch(stream)
        wall = time.perf_counter() - started
        stats = service.stats()
    latencies = sorted(o.elapsed_seconds * 1e3 for o in outcomes)
    sources = {source: 0 for source in SOURCES}
    for outcome in outcomes:
        sources[outcome.source] += 1
    cache = stats.plan_cache
    print(
        f"serve-batch: {args.topology} n={args.relations} "
        f"distinct={distinct} repeat={args.repeat} requests={len(stream)} "
        f"algorithm={args.algorithm}"
    )
    print(f"wall: {wall:.3f}s  throughput: {len(stream) / wall:.1f} req/s")
    print(
        f"latency ms: p50={statistics.median(latencies):.3f} "
        f"p95={latencies[int(0.95 * (len(latencies) - 1))]:.3f} "
        f"max={latencies[-1]:.3f}"
    )
    print(
        "sources: "
        + " ".join(f"{name}={count}" for name, count in sources.items())
    )
    print(
        f"plan cache: hits={cache.hits} misses={cache.misses} "
        f"hit_rate={cache.hit_rate:.2f} evictions={cache.evictions} "
        f"stale={cache.stale}"
    )
    if stats.sheds or stats.warm_start_entries:
        print(
            f"serving: sheds={stats.sheds} "
            f"quota_rejections={stats.quota_rejections} "
            f"warm_start_entries={stats.warm_start_entries}"
        )
    if tracer is not None:
        meta = {
            "command": "serve-batch",
            "algorithm": args.algorithm,
            "requests": len(stream),
            "distinct": distinct,
            "query": f"{args.topology}/{args.relations}",
        }
        try:
            write_jsonl(tracer.events, args.trace, meta)
        except OSError as exc:
            print(f"error: cannot write trace file: {exc}", file=sys.stderr)
            return 1
        print(f"\ntrace: {len(tracer)} events -> {args.trace}")
        print()
        print(render_trace(tracer.events, meta))
    return 0


def _cmd_trace(args) -> int:
    try:
        events, meta = read_jsonl(args.file)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_trace(events, meta, by=args.by))
    return 0


def _cmd_bench(args) -> int:
    if args.experiment == "serial":
        rows = run_serial_grid(
            [args.topology], [args.relations],
            queries=args.queries, seed=args.seed,
        )
        print(format_table(rows))
    elif args.experiment == "sva":
        rows = sva_effectiveness(
            [args.topology], [args.relations],
            queries=args.queries, seed=args.seed,
        )
        print(format_table(rows))
    elif args.experiment == "speedup":
        rows = speedup_curve(
            args.topology, args.relations,
            thread_counts=tuple(args.threads),
            queries=args.queries, seed=args.seed,
        )
        print(format_table(rows))
        print()
        print(
            render_curve(
                [r["threads"] for r in rows],
                [r["speedup"] for r in rows],
                label=f"speedup — {args.topology} n={args.relations}",
            )
        )
    elif args.experiment == "cache":
        rows = cache_workload(
            args.topology, args.relations,
            distinct=args.queries, seed=args.seed,
        )
        print(format_table(rows))
    elif args.experiment == "kernels":
        rows = kernel_speedup(
            args.topology, args.relations,
            repeats=max(1, args.queries), seed=args.seed,
        )
        print(format_table(rows))
        print()
        rows = wire_volume(
            args.topology, args.relations,
            threads=max(args.threads), seed=args.seed,
        )
        print(format_table(rows))
    elif args.experiment == "faults":
        rows = fault_tolerance(
            args.topology, args.relations, seed=args.seed,
            threads=min(2, max(args.threads)),
        )
        print(format_table(rows))
    elif args.experiment == "large-query":
        rows = large_query(
            [args.topology], [args.relations],
            queries=args.queries, seed=args.seed,
        )
        print(format_table(rows))
    elif args.experiment == "serving":
        rows = serving_throughput(
            args.topology, args.relations, seed=args.seed,
            distinct=max(4, args.queries),
            requests_per_client=50,
            clients=max(args.threads),
        )
        print(format_table(rows))
    elif args.experiment == "shm":
        rows = shm_comparison(
            args.topology, args.relations,
            threads=max(args.threads),
            repeats=max(1, args.queries), seed=args.seed,
        )
        print(format_table(rows))
    elif args.experiment == "cluster":
        modes, strata = cluster_comparison(
            args.topology, args.relations,
            worker_counts=tuple(sorted(set(args.threads) - {1}) or [2]),
            repeats=max(1, args.queries), seed=args.seed,
        )
        print(format_table(modes))
        print()
        print(format_table(strata))
    elif args.experiment == "workload":
        rows = workload_mqo(
            seeds=(args.seed, args.seed + 1, args.seed + 3),
            count=max(2, args.queries * 3),
        )
        print(format_table(rows))
    elif args.experiment == "real-allocation":
        rows = real_backend_allocation(
            args.topology, args.relations,
            threads=max(args.threads), queries=args.queries, seed=args.seed,
        )
        print(
            format_table(
                [{k: v for k, v in r.items() if k != "costs"} for r in rows]
            )
        )
    else:  # allocation
        rows = allocation_comparison(
            args.topology, args.relations,
            threads=max(args.threads), queries=args.queries, seed=args.seed,
        )
        print(format_table(rows))
    return 0


def _cmd_explain(args) -> int:
    from repro.plans import diff_plans, plan_to_dot, render_diff

    if args.sql:
        from repro.sql import sql_to_query

        catalog = generate_catalog(args.catalog_tables, seed=args.seed)
        query = sql_to_query(args.sql, catalog)
        if not query.graph.is_connected() and not args.cross_products:
            args.cross_products = True
            print(
                "note: join graph is disconnected; enabling cross "
                "products (as if --cross-products were given)",
                file=sys.stderr,
            )
    else:
        query = generate_query(
            WorkloadSpec(args.topology, args.relations, seed=args.seed)
        )
    names = query.relation_names
    config = OptimizerConfig(
        algorithm=args.algorithm, cross_products=args.cross_products
    )
    result = optimize(query, config=config)
    if args.diff is not None:
        other = optimize(
            query, config=config.with_options(algorithm=args.diff)
        )
        diff = diff_plans(result.plan, other.plan)
        print(
            render_diff(
                diff, names, label_a=args.algorithm, label_b=args.diff
            )
        )
        print()
        print(
            f"{args.algorithm}: cost={result.cost:.6g}  "
            f"{args.diff}: cost={other.cost:.6g}"
        )
        return 0
    if args.dot:
        print(plan_to_dot(result.plan, relation_names=names))
        return 0
    print(explain(result.plan, relation_names=names))
    print(result.summary())
    return 0


def _cmd_worker(args) -> int:
    from repro.parallel.executors.cluster import serve_worker

    serve_worker(args.listen)
    return 0


def _cmd_inspect(args) -> int:
    from repro.enumerate.dpccp import count_csg_cmp_pairs
    from repro.query import QueryContext
    from repro.util.bitsets import subsets_of_size

    query = generate_query(
        WorkloadSpec(args.topology, args.relations, seed=args.seed)
    )
    ctx = QueryContext(query)
    print(f"query:         {query.label}")
    print(f"relations:     {query.n}")
    print(f"edges:         {len(query.graph.edges)}")
    print(f"cardinalities: {[int(c) for c in query.cardinalities]}")
    connected = sum(
        1
        for k in range(1, query.n + 1)
        for m in subsets_of_size(ctx.all_mask, k)
        if ctx.is_connected(m)
    )
    print(f"connected quantifier sets: {connected}")
    print(f"csg-cmp pairs: {count_csg_cmp_pairs(ctx)}")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "optimize":
            return _cmd_optimize(args)
        if args.command == "serve-batch":
            return _cmd_serve_batch(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "explain":
            return _cmd_explain(args)
        return _cmd_inspect(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
