"""Work-unit allocation schemes.

The paper's central scheduling observation: candidate-pair work within a
stratum is heavily skewed across size splits, so naive partitioning leaves
threads idle.  Three schemes are provided:

* ``round_robin`` — unit ``i`` goes to thread ``i mod T`` (naive baseline).
* ``chunked`` — contiguous unit ranges per thread (naive baseline).
* ``equi_depth`` — the paper's total-sum idea: balance the *weights*
  (candidate-pair counts), implemented as deterministic LPT greedy
  (heaviest unit first onto the least-loaded thread).

E5 compares the three by realized load imbalance and simulated speedup.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.parallel.workunits import WorkUnit
from repro.util.errors import ValidationError

Assignment = list[list[WorkUnit]]


def round_robin(units: list[WorkUnit], threads: int) -> Assignment:
    """Deal units to threads in generation order."""
    out: Assignment = [[] for _ in range(threads)]
    for i, unit in enumerate(units):
        out[i % threads].append(unit)
    return out


def chunked(units: list[WorkUnit], threads: int) -> Assignment:
    """Give each thread one contiguous run of units."""
    out: Assignment = [[] for _ in range(threads)]
    if not units:
        return out
    base = len(units) // threads
    extra = len(units) % threads
    pos = 0
    for t in range(threads):
        length = base + (1 if t < extra else 0)
        out[t] = list(units[pos : pos + length])
        pos += length
    return out


def equi_depth(units: list[WorkUnit], threads: int) -> Assignment:
    """Total-sum (LPT) allocation: balance unit weights across threads.

    Deterministic: ties in weight break by unit id, ties in load break by
    thread index (via the heap key).
    """
    out: Assignment = [[] for _ in range(threads)]
    heap = [(0, t) for t in range(threads)]
    heapq.heapify(heap)
    ordered = sorted(units, key=lambda u: (-u.weight, u.uid))
    for unit in ordered:
        load, t = heapq.heappop(heap)
        out[t].append(unit)
        heapq.heappush(heap, (load + unit.weight, t))
    for bucket in out:
        bucket.sort(key=lambda u: u.uid)
    return out


ALLOCATION_SCHEMES: dict[str, Callable[[list[WorkUnit], int], Assignment]] = {
    "round_robin": round_robin,
    "chunked": chunked,
    "equi_depth": equi_depth,
}
"""Registry of static allocation schemes keyed by benchmark name."""

DYNAMIC_ALLOCATION = "dynamic"
"""Online work-stealing: units are assigned to workers at execution time
instead of up front.  On the simulated backend this is the oracle —
least-loaded assignment by *actual* (not estimated) unit costs.  On the
real backends (``threads``/``processes``) workers pull unit batches from
a shared queue as they drain, so realized load adapts to measured unit
times; results stay bit-identical to the static schemes because memo
merges are idempotent, deterministically tie-broken min-merges.  Whether
a backend can run it is advertised by
:attr:`~repro.parallel.executors.base.StratumExecutor.supports_dynamic_allocation`."""


def allocate(
    units: list[WorkUnit], threads: int, scheme: str = "equi_depth"
) -> Assignment | None:
    """Assign units to ``threads`` workers using ``scheme``.

    Returns ``None`` for the :data:`DYNAMIC_ALLOCATION` scheme — the
    executor then assigns units online.
    """
    if threads < 1:
        raise ValidationError(f"threads must be >= 1, got {threads}")
    if scheme == DYNAMIC_ALLOCATION:
        return None
    try:
        fn = ALLOCATION_SCHEMES[scheme]
    except KeyError:
        raise ValidationError(
            f"unknown allocation scheme {scheme!r}; expected one of "
            f"{sorted(ALLOCATION_SCHEMES) + [DYNAMIC_ALLOCATION]}"
        ) from None
    return fn(units, threads)


def allocation_imbalance(assignment: Assignment) -> float:
    """Max thread weight over mean thread weight (1.0 = perfect).

    Empty assignments report 1.0.
    """
    return realized_imbalance(
        [sum(u.weight for u in bucket) for bucket in assignment]
    )


def realized_imbalance(loads: list[float]) -> float:
    """Max worker load over mean worker load (1.0 = perfect).

    The load currency is whatever the executor measured: per-worker
    *busy time* (wall clocks on the real backends, virtual thread time
    on the simulated one).  A high value means some workers idled at the
    stratum barrier while a straggler kept working — the realized-work
    counterpart of :func:`allocation_imbalance` (which is computed on
    estimated unit weights before execution).  Empty or all-zero loads
    report 1.0.
    """
    total = sum(loads)
    if not loads or total == 0:
        return 1.0
    return max(loads) / (total / len(loads))
