"""Wire format for per-stratum memo-entry traffic (process executor).

The multiprocessing executor broadcasts each completed stratum to every
worker and collects each worker's candidate entries back.  Two encodings
are supported:

* **legacy** — a list of ``(mask, cost, rows, left, right, method)``
  tuples.  Simple, but pickling pays one tuple header plus six boxed
  objects per entry.
* **packed** — six parallel ``array`` buffers (``'d'`` for cost/rows,
  ``'B'`` for methods, and the narrowest unsigned typecode that fits the
  stratum's masks — ``'H'`` up to 16 relations — for masks/operands)
  behind the ``"soa"`` marker.  ``array`` pickles as one contiguous
  ``bytes`` payload per column, so the per-entry cost drops to ~23 raw
  bytes (n ≤ 16) with no per-entry object overhead — the E8/E11
  broadcast-bytes reduction.

Both encodings carry the same information; :func:`apply_stratum` sniffs
which one it received, so mixed-version processes cannot misinterpret a
payload.  The packed encoding requires every mask to fit 64 bits
(``ctx.n <= 64`` — the same bound as the SoA memo columns).
"""

from __future__ import annotations

from array import array

from repro.memo.shm import CONTROL_NBYTES, DESCRIPTOR_TAG, WINNER_TAG
from repro.memo.table import Memo
from repro.plans.operators import JoinMethod

#: Marker distinguishing packed payloads from legacy tuple lists.
PACKED_TAG = "soa"

#: Marker for packed best-plan *summary* payloads — the cluster backend's
#: per-stratum exchange currency: three columns (mask, cost, rows), no
#: operands or method.  Summaries are all a peer needs to cost joins
#: against a remote shard's sets; the full rows travel once, at the final
#: collect (see :mod:`repro.parallel.executors.cluster`).
SUMMARY_TAG = "sum"

#: Nominal pickled size of one legacy entry tuple, used by the process
#: executor's approximate byte accounting (kept from the original
#: implementation so E8 numbers stay comparable).
LEGACY_ENTRY_BYTES = 48

LegacyPayload = list  # list[tuple[int, float, float, int, int, int]]
PackedPayload = tuple  # (PACKED_TAG, masks, costs, rows, lefts, rights, methods)


def _mask_typecode(highest: int) -> str:
    """Narrowest unsigned ``array`` typecode holding ``highest``."""
    if highest < 1 << 8:
        return "B"
    if highest < 1 << 16:
        return "H"
    if highest < 1 << 32:
        return "I"
    return "Q"


def encode_stratum(memo: Memo, size: int, packed: bool):
    """Encode all entries of one completed stratum for the wire."""
    return encode_entries(memo, memo.sets_of_size(size), packed)


def encode_entries(memo: Memo, masks, packed: bool):
    """Encode the full entries for ``masks`` (entry-less masks skipped).

    The general form of :func:`encode_stratum` over an arbitrary mask
    list — the cluster executor's final collect ships each worker's owned
    sets across all strata in one payload this way.
    """
    present = [mask for mask in masks if memo.entry(mask) is not None]
    if not packed:
        out = []
        for mask in present:
            entry = memo.entry(mask)
            out.append(
                (
                    entry.mask,
                    entry.cost,
                    entry.rows,
                    entry.left,
                    entry.right,
                    int(entry.method),
                )
            )
        return out
    # The result mask bounds its operands (mask == left | right), so one
    # typecode fits all three columns.
    code = _mask_typecode(max(present, default=0))
    col_mask = array(code)
    col_cost = array("d")
    col_rows = array("d")
    col_left = array(code)
    col_right = array(code)
    col_method = array("B")
    for mask in present:
        entry = memo.entry(mask)
        col_mask.append(entry.mask)
        col_cost.append(entry.cost)
        col_rows.append(entry.rows)
        col_left.append(entry.left)
        col_right.append(entry.right)
        col_method.append(int(entry.method))
    return (PACKED_TAG, col_mask, col_cost, col_rows, col_left, col_right,
            col_method)


def encode_summary(memo: Memo, masks, packed: bool):
    """Encode best-plan summaries (mask, cost, rows) for ``masks``.

    Masks without a memo entry (disconnected candidates) are skipped.
    Packed form is three parallel columns behind :data:`SUMMARY_TAG`;
    legacy form is a list of 3-tuples.
    """
    present = [mask for mask in masks if memo.entry(mask) is not None]
    if not packed:
        out = []
        for mask in present:
            entry = memo.entry(mask)
            out.append((entry.mask, entry.cost, entry.rows))
        return out
    code = _mask_typecode(max(present, default=0))
    col_mask = array(code)
    col_cost = array("d")
    col_rows = array("d")
    for mask in present:
        entry = memo.entry(mask)
        col_mask.append(entry.mask)
        col_cost.append(entry.cost)
        col_rows.append(entry.rows)
    return (SUMMARY_TAG, col_mask, col_cost, col_rows)


def apply_summary(memo: Memo, payload) -> int:
    """Install summary rows into ``memo``; returns the row count.

    Installation is via :meth:`~repro.memo.table.Memo.install_summary`,
    which never overwrites an existing entry — re-applying a summary (the
    cluster's post-recovery re-exchange) is a no-op, and a full local row
    is never downgraded to a summary.
    """
    install = memo.install_summary
    if (
        isinstance(payload, tuple)
        and payload
        and payload[0] == SUMMARY_TAG
    ):
        _, col_mask, col_cost, col_rows = payload
        for i in range(len(col_mask)):
            install(col_mask[i], col_cost[i], col_rows[i])
        return len(col_mask)
    for mask, cost, rows in payload:
        install(mask, cost, rows)
    return len(payload)


def apply_stratum(memo: Memo, payload) -> int:
    """Merge a wire payload into ``memo``; returns the entry count.

    Accepts the legacy tuple list, the packed columnar encoding, and the
    shared-memory winner payload (same column shape as packed, read from
    a winner slot instead of the pipe — see :mod:`repro.memo.shm`).
    """
    if (
        isinstance(payload, tuple)
        and payload
        and payload[0] in (PACKED_TAG, WINNER_TAG)
    ):
        _, col_mask, col_cost, col_rows, col_left, col_right, col_method = (
            payload
        )
        merge = memo.merge_candidate
        for i in range(len(col_mask)):
            merge(
                col_mask[i],
                col_cost[i],
                col_rows[i],
                col_left[i],
                col_right[i],
                JoinMethod(col_method[i]),
            )
        return len(col_mask)
    merge = memo.merge_candidate
    for mask, cost, rows, left, right, method in payload:
        merge(mask, cost, rows, left, right, JoinMethod(method))
    return len(payload)


def payload_entries(payload) -> int:
    """Number of entries a payload carries."""
    if (
        isinstance(payload, tuple)
        and payload
        and payload[0] in (PACKED_TAG, WINNER_TAG, SUMMARY_TAG)
    ):
        return len(payload[1])
    return len(payload)


def payload_nbytes(payload) -> int:
    """Approximate serialized size of a payload in bytes.

    Legacy lists keep the historical 48-bytes-per-entry estimate; packed
    payloads report the exact column buffer sizes (the dominant term —
    pickle framing adds a small constant per payload, not per entry).
    Shared-memory descriptors and winner payloads count only the nominal
    control-tuple size — the row bytes never cross the pipe (they move
    through ``/dev/shm`` and are accounted under ``memo.shm.*``).
    """
    if isinstance(payload, tuple) and payload:
        if payload[0] in (PACKED_TAG, SUMMARY_TAG):
            return sum(col.itemsize * len(col) for col in payload[1:])
        if payload[0] in (DESCRIPTOR_TAG, WINNER_TAG):
            return CONTROL_NBYTES
    return len(payload) * LEGACY_ENTRY_BYTES
