"""Length-prefixed socket framing for the cluster backend.

One framing layer serves both transports: ``socket.socketpair()`` links
for in-process (forked) clusters and TCP connections for
``repro worker --listen`` processes on other machines.  A frame is a
4-byte big-endian length followed by a pickled payload — the payloads
themselves are the packed columnar encodings from
:mod:`repro.parallel.wire`, so the per-entry wire cost matches the
process backend's and the two are directly comparable in E16.

:class:`Channel` counts the *actual framed bytes* it moves (prefix
included) in ``bytes_out``/``bytes_in``; the cluster executor surfaces
those as the ``framed_*`` fields of its ``cluster_comm`` extras (its
``comm.*`` trace counters report nominal payload bytes instead, matching
the process backend's accounting).  A peer closing its end (clean
shutdown or crash) surfaces as :class:`ChannelClosed` on the next read —
the failure-detection primitive the coordinator's shard reassignment is
built on.
"""

from __future__ import annotations

import pickle
import socket
import struct
import time

from repro.util.errors import ReproError

_LEN = struct.Struct(">I")

#: Frame-prefix overhead per message, exposed for byte accounting.
FRAME_OVERHEAD = _LEN.size


class ChannelClosed(ReproError):
    """The peer closed its end of the channel (EOF mid-protocol)."""


class Channel:
    """A framed, metered, pickle-speaking wrapper around one socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self.bytes_out = 0
        self.bytes_in = 0

    def fileno(self) -> int:
        return self._sock.fileno()

    def send(self, obj) -> None:
        """Send one frame; raises :class:`ChannelClosed` on a dead peer."""
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _LEN.pack(len(payload)) + payload
        try:
            self._sock.sendall(frame)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise ChannelClosed(f"peer closed channel: {exc}") from exc
        self.bytes_out += len(frame)

    def recv(self):
        """Receive one frame; raises :class:`ChannelClosed` on EOF."""
        header = self._recv_exact(_LEN.size)
        (length,) = _LEN.unpack(header)
        payload = self._recv_exact(length)
        self.bytes_in += _LEN.size + length
        return pickle.loads(payload)

    def _recv_exact(self, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except (ConnectionResetError, OSError) as exc:
                raise ChannelClosed(f"peer closed channel: {exc}") from exc
            if not chunk:
                raise ChannelClosed("peer closed channel (EOF)")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def channel_pair() -> tuple[Channel, Channel]:
    """A connected in-process channel pair (``socketpair`` underneath)."""
    a, b = socket.socketpair()
    return Channel(a), Channel(b)


def parse_hostport(spec: str) -> tuple[str, int]:
    """Parse ``"host:port"``; raises :class:`ValueError` on bad input."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected host:port, got {spec!r}")
    return host, int(port)


def listen(host: str, port: int, backlog: int = 16) -> socket.socket:
    """An accepting TCP socket (``SO_REUSEADDR`` set)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(backlog)
    return sock


def connect(
    host: str, port: int, retries: int = 40, delay: float = 0.05
) -> Channel:
    """Dial a peer, retrying while it finishes binding its listener."""
    last: Exception | None = None
    for _ in range(max(1, retries)):
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            sock.settimeout(None)
            return Channel(sock)
        except OSError as exc:
            last = exc
            time.sleep(delay)
    raise ChannelClosed(f"could not connect to {host}:{port}: {last}")
