"""Named parallel algorithms: PDPsize, PDPsub, PDPsva.

Thin presets over :class:`~repro.parallel.scheduler.ParallelDP`, matching
the paper's naming: ``PDP<kernel>`` is the parallel framework driving the
corresponding serial kernel.
"""

from __future__ import annotations

from repro.parallel.scheduler import ParallelDP


def parallel_optimizer(algorithm: str, threads: int, **kwargs) -> ParallelDP:
    """Construct a parallel optimizer by kernel name."""
    return ParallelDP(algorithm=algorithm, threads=threads, **kwargs)


class PDPsize(ParallelDP):
    """Parallel DPsize."""

    def __init__(self, threads: int = 8, **kwargs) -> None:
        super().__init__(algorithm="dpsize", threads=threads, **kwargs)


class PDPsub(ParallelDP):
    """Parallel DPsub."""

    def __init__(self, threads: int = 8, **kwargs) -> None:
        super().__init__(algorithm="dpsub", threads=threads, **kwargs)


class PDPsva(ParallelDP):
    """Parallel DPsva — the paper's headline algorithm."""

    def __init__(self, threads: int = 8, **kwargs) -> None:
        super().__init__(algorithm="dpsva", threads=threads, **kwargs)
