"""The parallel DP framework — the paper's primary contribution.

Optimization proceeds stratum by stratum (result quantifier-set size 2…n)
with a barrier after each stratum.  Within a stratum, the candidate work is
cut into :class:`~repro.parallel.workunits.WorkUnit`\\ s, an allocation
scheme distributes units across worker threads, and an executor runs them:

* ``simulated`` — exact DP with a deterministic virtual clock
  (:mod:`repro.simx`); the headline measurement substrate.
* ``threads`` — real CPython threads over a lock-striped memo
  (demonstrates the GIL gate, E8).
* ``processes`` — real ``multiprocessing`` workers with replicated memos
  and per-stratum delta broadcast (correct under true parallelism;
  quantifies the IPC cost of shared-nothing memo replication, E8).
* ``cluster`` — shared-nothing workers (forked or ``repro worker``
  TCP processes) that each own a hash shard of the memo and exchange
  per-stratum best-plan summaries peer to peer; the coordinator only
  sequences barriers (docs/distributed.md, E16).

``PDPsize``, ``PDPsub``, and ``PDPsva`` are presets of
:class:`~repro.parallel.scheduler.ParallelDP` for the three enumeration
kernels.
"""

from repro.parallel.allocation import (
    ALLOCATION_SCHEMES,
    allocate,
    allocation_imbalance,
)
from repro.parallel.algorithms import PDPsize, PDPsub, PDPsva, parallel_optimizer
from repro.parallel.scheduler import ParallelDP
from repro.parallel.workunits import WorkUnit, stratum_units

__all__ = [
    "ALLOCATION_SCHEMES",
    "allocate",
    "allocation_imbalance",
    "ParallelDP",
    "PDPsize",
    "PDPsub",
    "PDPsva",
    "parallel_optimizer",
    "WorkUnit",
    "stratum_units",
]
