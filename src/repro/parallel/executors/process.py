"""Multiprocessing executor.

Genuine parallelism on CPython: each worker process holds a *replica* of
the memo, runs its assigned units locally, and returns the stratum's new
entries; the master merges candidates (deterministic tie-break) and
broadcasts the merged stratum to all workers before the next one — the
shared-nothing rendition of the paper's per-stratum barrier.

Workers are forked once per run (after scan seeding) so replicas start
consistent; per-stratum traffic is one delta broadcast plus one candidate
collection per worker.  This is the executor behind the real-speedup half
of experiment E8.
"""

from __future__ import annotations

import multiprocessing as mp
from contextlib import nullcontext
from typing import Any

from repro.memo.counters import WorkMeter
from repro.parallel.allocation import Assignment
from repro.parallel.executors.base import RunState, StratumExecutor
from repro.parallel.wire import (
    apply_stratum,
    encode_stratum,
    payload_nbytes,
)
from repro.parallel.workunits import KernelCaches, WorkUnit, run_unit
from repro.trace.tracer import RecordingTracer
from repro.util.errors import ValidationError

EntryTuple = tuple[int, float, float, int, int, int]
"""(mask, cost, rows, left, right, method) — the legacy wire format for
entries; see :mod:`repro.parallel.wire` for the packed alternative."""


def _worker_loop(conn, state: RunState) -> None:
    """Worker process main loop (state inherited via fork).

    When the parent's tracer is enabled, each stratum is timed into a
    fresh child-side :class:`RecordingTracer` whose serialized event
    buffer rides back with the stratum reply; the parent merges it into
    the master tracer, stamped with the worker id.
    """
    import time

    memo = state.memo
    caches = KernelCaches(memo, WorkMeter())
    trace_enabled = state.tracer.enabled
    fast = state.fast_path
    packed = state.wire_packed
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _, size, delta, units = message
            apply_stratum(memo, delta)
            meter = WorkMeter()
            tracer = RecordingTracer() if trace_enabled else None
            start = time.perf_counter()
            span = (
                tracer.span("worker.stratum", size=size)
                if tracer is not None
                else nullcontext()
            )
            with span:
                for unit in units:
                    run_unit(
                        unit,
                        memo,
                        state.ctx,
                        caches,
                        state.require_connected,
                        meter,
                        fast=fast,
                    )
            elapsed = time.perf_counter() - start
            conn.send(
                (
                    encode_stratum(memo, size, packed),
                    meter.as_dict(),
                    elapsed,
                    tracer.payload() if tracer is not None else None,
                )
            )
    finally:
        conn.close()


class ProcessExecutor(StratumExecutor):
    """Forked worker processes with replicated memos."""

    def __init__(self) -> None:
        self._state: RunState | None = None
        self._procs: list[mp.Process] = []
        self._conns: list[Any] = []
        self._bytes_sent = 0
        self._rounds = 0

    def open(self, state: RunState) -> None:
        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise ValidationError(
                "ProcessExecutor requires the 'fork' start method"
            ) from exc
        self._state = state
        for _ in range(state.threads):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_loop, args=(child_conn, state), daemon=True
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        # Empty first delta in the run's wire encoding (size-0 stratum).
        self._pending_delta = encode_stratum(state.memo, 0, state.wire_packed)

    def run_stratum(
        self, size: int, units: list[WorkUnit], assignment: Assignment | None
    ) -> None:
        state = self._state
        assert state is not None
        if assignment is None:
            raise ValidationError(
                "dynamic allocation is only supported by the simulated "
                "executor"
            )
        delta = self._pending_delta
        for t, conn in enumerate(self._conns):
            conn.send(("stratum", size, delta, assignment[t]))
        self._bytes_sent += payload_nbytes(delta) * len(self._conns)
        tracer = state.tracer
        walls: list[float] = []
        pairs: list[int] = []
        for t, conn in enumerate(self._conns):
            candidates, meter_counts, elapsed, payload = conn.recv()
            apply_stratum(state.memo, candidates)
            state.meter.merge_dict(meter_counts)
            self._bytes_sent += payload_nbytes(candidates)
            walls.append(elapsed)
            pairs.append(meter_counts.get("pairs_considered", 0))
            if tracer.enabled and payload:
                tracer.ingest(payload, worker=t)
        if tracer.enabled:
            slowest = max(walls, default=0.0)
            for t in range(state.threads):
                tracer.counter(
                    "worker.units", len(assignment[t]), size=size, worker=t
                )
                tracer.counter("worker.pairs", pairs[t], size=size, worker=t)
                tracer.gauge("worker.busy", walls[t], size=size, worker=t)
                tracer.gauge(
                    "worker.barrier_wait",
                    slowest - walls[t],
                    size=size,
                    worker=t,
                )
        # The merged stratum becomes the next round's broadcast delta.
        self._pending_delta = encode_stratum(
            state.memo, size, state.wire_packed
        )
        self._rounds += 1

    def close(self) -> dict[str, Any]:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        for conn in self._conns:
            conn.close()
        self._procs.clear()
        self._conns.clear()
        return {
            "rounds": self._rounds,
            "approx_bytes_sent": self._bytes_sent,
        }
