"""Multiprocessing executor.

Genuine parallelism on CPython: each worker process holds a *replica* of
the memo, runs its assigned units locally, and returns the stratum's new
entries; the master merges candidates (deterministic tie-break) and
broadcasts the merged stratum to all workers before the next one — the
shared-nothing rendition of the paper's per-stratum barrier.

Workers are forked once per run (after scan seeding) so replicas start
consistent; per-stratum traffic is one delta broadcast plus one candidate
collection per worker.  This is the executor behind the real-speedup half
of experiment E8.

Shared-memory mode (``RunState.shared_memo``, resolved in :meth:`open`
before forking): the delta broadcast is replaced by a fixed-size sync
descriptor pointing into named shared-memory segments
(:mod:`repro.memo.shm`), and workers reply ``("okshm", count, ...)``
after bulk-copying their winner rows into a per-worker slot — the master
reads the slot and normalizes the reply to the classic candidate shape
in ``_collect``, so merge/recovery logic is mode-agnostic.  A worker
whose winner overlay outgrows its slot falls back to the classic packed
reply for that message and the master grows the slot.  See
``docs/memory.md`` for the protocol and cleanup guarantees.

Fault tolerance: the master treats worker failure as a first-class event.
A worker that raises mid-stratum reports ``("error", message, meter)``
and stays in the pool; a worker that dies (crash, kill, injected
``os._exit``) is detected by the broken pipe and retired.  Either way the
failed worker's units are re-dispatched to surviving workers with bounded
retries and exponential backoff (``RunState.retry_limit`` /
``retry_backoff``).  Replicas converge regardless: candidate merges are
idempotent min-merges, so re-running a partially completed unit cannot
change the optimum, and the main meter stays exact because a failed
attempt's partial counts are kept out of it (they are preserved
separately in the ``fault_recovery`` extras).  Only when every worker is
dead or the retry budget is exhausted does the run raise
:class:`~repro.util.errors.OptimizationError` — which the serving layer
degrades to a heuristic plan.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import deque
from contextlib import nullcontext
from multiprocessing import connection as mp_connection
from typing import Any

from repro.memo.counters import WorkMeter
from repro.memo.shm import (
    ROW_BYTES,
    MasterShm,
    WorkerShmSession,
    shm_available,
)
from repro.memo.soa import SoAMemo
from repro.parallel.allocation import Assignment, realized_imbalance
from repro.parallel.executors.base import RunState, StratumExecutor
from repro.parallel.wire import (
    apply_stratum,
    encode_stratum,
    payload_entries,
    payload_nbytes,
)
from repro.parallel.workunits import KernelCaches, WorkUnit, run_unit
from repro.trace.tracer import RecordingTracer
from repro.util.errors import InjectedFault, OptimizationError, ValidationError

EntryTuple = tuple[int, float, float, int, int, int]
"""(mask, cost, rows, left, right, method) — the legacy wire format for
entries; see :mod:`repro.parallel.wire` for the packed alternative."""

#: Exit status of a worker process killed by an injected crash fault.
CRASH_EXIT_CODE = 70

#: A dynamic-mode dispatch batch holds
#: ``max(1, len(units) // (workers * divisor))`` units — the pull-based
#: analogue of the threaded executor's steal chunk: large strata amortize
#: pipe round-trips over multi-unit batches, small strata degrade to
#: unit-at-a-time dispatch for maximal balance.
PULL_BATCH_DIVISOR = 4


def _worker_loop(conn, state: RunState, worker: int) -> None:
    """Worker process main loop (state inherited via fork).

    Two unit-bearing message kinds share one reply shape:

    * ``("stratum", size, delta, units)`` — static allocation's one-shot
      shipment: the whole stratum bucket at once.
    * ``("batch", size, delta_or_None, units, probe)`` — dynamic
      allocation's pull-based dispatch: the master hands out unit batches
      as workers drain.  The stratum's broadcast delta rides only on a
      worker's first batch (``None`` afterwards).  ``probe`` marks the
      injection opportunities — a worker's first batch of a stratum and
      any batch re-dispatching previously failed units — so faults fire
      once per (worker, stratum) plus once per retry, matching the
      static path's semantics (persistent plans can still exhaust the
      retry budget).

    In shared-memory mode the ``delta`` slot carries an shm sync
    descriptor instead of row data (applied via
    :class:`~repro.memo.shm.WorkerShmSession`), and replies prefer
    ``("okshm", winner_count, meter, elapsed, trace)`` over the packed
    ``"ok"`` shape whenever the winner rows fit the worker's slot.

    When the parent's tracer is enabled, each stratum is timed into a
    fresh child-side :class:`RecordingTracer` whose serialized event
    buffer rides back with the stratum reply; the parent merges it into
    the master tracer, stamped with the worker id.

    Failures never leave the loop silently: any exception while running
    units (a raising cost model, an injected fault) is reported to the
    master as an ``("error", message, partial_meter)`` reply and the loop
    keeps serving — the worker stays available for re-dispatched units.
    An injected ``crash`` fault exits the process abruptly instead; the
    master sees the broken pipe.
    """
    memo = state.memo
    caches = KernelCaches(memo, WorkMeter())
    injector = state.injector
    trace_enabled = state.tracer.enabled
    fast = state.fast_path
    packed = state.wire_packed
    shm = WorkerShmSession(memo) if state.shared_memo else None
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            kind, size, delta, units = message[:4]
            probe = True if kind == "stratum" else message[4]
            attached = 0
            if delta is not None:
                if shm is not None:
                    attached = shm.sync(delta)
                else:
                    apply_stratum(memo, delta)
            meter = WorkMeter()
            tracer = RecordingTracer() if trace_enabled else None
            if tracer is not None and attached:
                tracer.counter("memo.shm.attach", attached, size=size)
            start = time.perf_counter()
            span = (
                tracer.span("worker.stratum", size=size)
                if tracer is not None
                else nullcontext()
            )
            try:
                with span:
                    if injector.enabled and probe:
                        action = injector.fire(
                            "worker",
                            worker=worker,
                            stratum=size,
                            backend="processes",
                        )
                        if action is not None:
                            if action.kind == "crash":
                                os._exit(CRASH_EXIT_CODE)
                            if action.kind == "delay":
                                time.sleep(action.delay_seconds)
                            else:
                                raise InjectedFault(action.message)
                    for unit in units:
                        run_unit(
                            unit,
                            memo,
                            state.ctx,
                            caches,
                            state.require_connected,
                            meter,
                            fast=fast,
                        )
            except Exception as exc:
                conn.send(
                    (
                        "error",
                        f"{type(exc).__name__}: {exc}",
                        meter.as_dict(),
                    )
                )
                continue
            elapsed = time.perf_counter() - start
            trace_payload = tracer.payload() if tracer is not None else None
            if shm is not None:
                count = shm.write_winners()
                if count is not None:
                    conn.send(
                        ("okshm", count, meter.as_dict(), elapsed,
                         trace_payload)
                    )
                    continue
                # Winner slot too small for this overlay: classic packed
                # reply; the master grows the slot for the next stratum.
            conn.send(
                (
                    "ok",
                    encode_stratum(memo, size, packed),
                    meter.as_dict(),
                    elapsed,
                    trace_payload,
                )
            )
    finally:
        if shm is not None:
            shm.close()
        conn.close()


class ProcessExecutor(StratumExecutor):
    """Forked worker processes with replicated memos and crash recovery."""

    supports_dynamic_allocation = True

    def __init__(self) -> None:
        self._state: RunState | None = None
        self._procs: list[mp.Process | None] = []
        self._conns: list[Any] = []
        self._bytes_sent = 0
        self._rounds = 0
        self._realized_imbalances: list[float] = []
        self._recovery = {
            "worker_errors": 0,
            "worker_deaths": 0,
            "redispatched_units": 0,
            "redispatch_attempts": 0,
        }
        self._partial_meter = WorkMeter()
        self._shm: MasterShm | None = None
        self._shm_requested = False
        self._shm_fallback_reason: str | None = None

    def open(self, state: RunState) -> None:
        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise ValidationError(
                "ProcessExecutor requires the 'fork' start method"
            ) from exc
        self._state = state
        # Refine the requested shared-memo mode to the effective one
        # BEFORE forking: workers inherit ``state.shared_memo`` and must
        # agree with the master on the sync protocol.  Creating the
        # segments here also starts the resource tracker pre-fork.
        self._shm_requested = state.shared_memo
        if state.shared_memo:
            if not isinstance(state.memo, SoAMemo):
                self._shm_fallback_reason = "memo backend is not SoA"
            elif not shm_available():  # pragma: no cover - needs /dev/shm
                self._shm_fallback_reason = "shared memory unavailable"
            else:
                self._shm = MasterShm(state.memo, state.threads)
            state.shared_memo = self._shm is not None
        for t in range(state.threads):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_loop, args=(child_conn, state, t), daemon=True
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        # Empty first delta in the run's wire encoding (size-0 stratum);
        # in shm mode the delta is a per-worker sync descriptor instead.
        self._pending_delta = (
            None
            if self._shm is not None
            else encode_stratum(state.memo, 0, state.wire_packed)
        )

    def _delta_for(self, t: int):
        """The delta to ride on worker ``t``'s next stratum message."""
        if self._shm is not None:
            return self._shm.descriptor(t)
        return self._pending_delta

    def _publish_stratum(self, size: int) -> None:
        """Make the merged stratum visible to workers for the next round:
        publish to the shm segment, or re-encode the wire delta."""
        state = self._state
        assert state is not None
        if self._shm is not None:
            published = self._shm.publish()
            if state.tracer.enabled:
                state.tracer.counter(
                    "memo.shm.published_rows", published, size=size
                )
                state.tracer.counter(
                    "memo.shm.published_bytes",
                    published * ROW_BYTES,
                    size=size,
                )
        else:
            self._pending_delta = encode_stratum(
                state.memo, size, state.wire_packed
            )

    # -- worker bookkeeping ---------------------------------------------

    def _alive(self) -> list[int]:
        return [t for t, conn in enumerate(self._conns) if conn is not None]

    def _retire(self, t: int, size: int) -> None:
        """Retire a dead worker: close its pipe, reap its process."""
        conn, proc = self._conns[t], self._procs[t]
        self._conns[t] = None
        self._procs[t] = None
        if conn is not None:
            conn.close()
        if proc is not None:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        if self._shm is not None:
            self._shm.retire_worker(t)
        self._recovery["worker_deaths"] += 1
        state = self._state
        if state is not None and state.tracer.enabled:
            state.tracer.counter("fault.worker_dead", size=size, worker=t)

    def _collect(self, t: int, size: int):
        """Receive one reply from worker ``t``.

        Returns the successful reply tuple, or ``None`` when the worker
        failed (errored or died) — in which case it has been counted and,
        if dead, retired.  Shared-memory ``okshm`` replies are normalized
        here: the winner rows are read from the worker's slot into a
        winner payload, so every caller sees the uniform ``("ok",
        candidates, ...)`` shape.
        """
        state = self._state
        assert state is not None
        try:
            reply = self._conns[t].recv()
        except (EOFError, ConnectionResetError, OSError):
            self._retire(t, size)
            return None
        if reply[0] == "error":
            _, message, partial_counts = reply
            self._recovery["worker_errors"] += 1
            # Keep the failed attempt's partial counts out of the main
            # meter (its units are re-run in full by a survivor) but
            # preserve them for observability.
            self._partial_meter.merge_dict(partial_counts)
            if state.tracer.enabled:
                state.tracer.counter(
                    "fault.worker_error", size=size, worker=t
                )
            return None
        if reply[0] == "okshm":
            _, count, meter_counts, elapsed, payload = reply
            candidates = self._shm.read_winners(t, count)
            if state.tracer.enabled:
                state.tracer.counter(
                    "memo.shm.winner_rows", count, size=size, worker=t
                )
                state.tracer.counter(
                    "memo.shm.winner_bytes",
                    count * ROW_BYTES,
                    size=size,
                    worker=t,
                )
            return ("ok", candidates, meter_counts, elapsed, payload)
        if self._shm is not None:
            # A classic packed reply in shm mode is a winner-slot
            # overflow: grow the slot so the next stratum fits.
            self._shm.grow_winner_slot(t, 2 * payload_entries(reply[1]))
        return reply

    def _redispatch(
        self, size: int, units: list[WorkUnit], prefer: list[int]
    ) -> None:
        """Re-run a failed worker's units on survivors, bounded retries.

        ``prefer`` lists workers that completed the stratum cleanly; they
        are tried first so re-dispatched units land on replicas whose
        meters stay exact.  Attempt ``k`` sleeps ``retry_backoff * 2**k``
        first (exponential backoff), and after ``retry_limit`` extra
        attempts the remaining units are declared lost.
        """
        state = self._state
        assert state is not None
        # Survivors already hold the stratum's broadcast: wire mode sends
        # an empty delta, shm mode its (idempotent, tiny) descriptor.
        empty_delta = (
            None
            if self._shm is not None
            else encode_stratum(state.memo, 0, state.wire_packed)
        )
        last_error = "no surviving workers"
        for attempt in range(state.retry_limit + 1):
            targets = [t for t in prefer if self._conns[t] is not None]
            targets += [t for t in self._alive() if t not in targets]
            if not targets:
                break
            if attempt and state.retry_backoff:
                time.sleep(state.retry_backoff * (2 ** (attempt - 1)))
            target = targets[attempt % len(targets)]
            self._recovery["redispatch_attempts"] += 1
            if state.tracer.enabled:
                state.tracer.counter(
                    "fault.redispatch", len(units), size=size, worker=target
                )
            delta = (
                self._delta_for(target)
                if self._shm is not None
                else empty_delta
            )
            try:
                self._conns[target].send(("stratum", size, delta, units))
            except (BrokenPipeError, OSError):
                self._retire(target, size)
                continue
            self._bytes_sent += payload_nbytes(delta)
            reply = self._collect(target, size)
            if reply is None:
                last_error = f"worker {target} failed during re-dispatch"
                continue
            _, candidates, meter_counts, _elapsed, payload = reply
            apply_stratum(state.memo, candidates)
            state.meter.merge_dict(meter_counts)
            self._bytes_sent += payload_nbytes(candidates)
            if state.tracer.enabled and payload:
                state.tracer.ingest(payload, worker=target)
            self._recovery["redispatched_units"] += len(units)
            return
        raise OptimizationError(
            f"stratum {size}: {len(units)} work units lost after "
            f"{state.retry_limit + 1} recovery attempts ({last_error})"
        )

    # -- the stratum barrier --------------------------------------------

    def run_stratum(
        self, size: int, units: list[WorkUnit], assignment: Assignment | None
    ) -> None:
        if assignment is None:
            self._run_stratum_dynamic(size, units)
            return
        state = self._state
        assert state is not None
        alive = self._alive()
        if not alive:
            raise OptimizationError(
                "all worker processes have died; cannot run stratum "
                f"{size}"
            )
        # Workers retired in earlier strata leave orphaned buckets; fold
        # them into the survivors round-robin (replicas are identical, so
        # any worker can run any unit).
        buckets = {t: list(assignment[t]) for t in alive}
        orphaned = [
            unit
            for t in range(len(assignment))
            if t not in buckets
            for unit in assignment[t]
        ]
        for i, unit in enumerate(orphaned):
            buckets[alive[i % len(alive)]].append(unit)

        tracer = state.tracer
        sent: list[int] = []
        failed_units: list[WorkUnit] = []
        for t in alive:
            delta = self._delta_for(t)
            try:
                self._conns[t].send(("stratum", size, delta, buckets[t]))
            except (BrokenPipeError, OSError):
                self._retire(t, size)
                failed_units.extend(buckets[t])
                continue
            sent.append(t)
            self._bytes_sent += payload_nbytes(delta)
            if tracer.enabled:
                tracer.counter(
                    "comm.bytes_out", payload_nbytes(delta), size=size,
                    worker=t,
                )

        walls: dict[int, float] = {}
        pairs: dict[int, int] = {}
        clean: list[int] = []
        for t in sent:
            reply = self._collect(t, size)
            if reply is None:
                failed_units.extend(buckets[t])
                continue
            _, candidates, meter_counts, elapsed, payload = reply
            apply_stratum(state.memo, candidates)
            state.meter.merge_dict(meter_counts)
            self._bytes_sent += payload_nbytes(candidates)
            if tracer.enabled:
                tracer.counter(
                    "comm.bytes_in", payload_nbytes(candidates), size=size,
                    worker=t,
                )
                tracer.counter(
                    "comm.rows", payload_entries(candidates), size=size,
                    worker=t,
                )
            walls[t] = elapsed
            pairs[t] = meter_counts.get("pairs_considered", 0)
            clean.append(t)
            if tracer.enabled and payload:
                tracer.ingest(payload, worker=t)
        if failed_units:
            self._redispatch(size, failed_units, prefer=clean)
        self._realized_imbalances.append(
            realized_imbalance([walls.get(t, 0.0) for t in buckets])
        )
        if tracer.enabled:
            slowest = max(walls.values(), default=0.0)
            for t in clean:
                tracer.counter(
                    "worker.units", len(buckets[t]), size=size, worker=t
                )
                tracer.counter("worker.pairs", pairs[t], size=size, worker=t)
                tracer.gauge(
                    "worker.realized_load", walls[t], size=size, worker=t
                )
                tracer.gauge("worker.busy", walls[t], size=size, worker=t)
                tracer.gauge(
                    "worker.barrier_wait",
                    slowest - walls[t],
                    size=size,
                    worker=t,
                )
                tracer.gauge(
                    "comm.barrier_wait",
                    slowest - walls[t],
                    size=size,
                    worker=t,
                )
        # The merged stratum becomes the next round's broadcast (wire
        # delta or shm publish).
        self._publish_stratum(size)
        self._rounds += 1

    def _run_stratum_dynamic(self, size: int, units: list[WorkUnit]) -> None:
        """One stratum with pull-based dispatch: the master hands out
        unit batches over the existing pipes as workers drain.

        Every alive worker's first message carries the stratum's
        broadcast delta (so replicas stay in sync even when a worker gets
        no units); subsequent batches ship units only.  A worker that
        errors keeps serving and its batch returns to the queue front; a
        worker that dies is retired and its outstanding batch is
        re-queued — the PR-4 recovery semantics, now at batch instead of
        stratum granularity.  The merged meter stays exact because a
        batch's counts are merged only from its one successful reply.
        """
        state = self._state
        assert state is not None
        alive = self._alive()
        if not alive:
            raise OptimizationError(
                "all worker processes have died; cannot run stratum "
                f"{size}"
            )
        tracer = state.tracer
        # Heaviest-first service order (greedy list scheduling): expensive
        # units go out early so the tail stays fine-grained.
        queue: deque[WorkUnit] = deque(
            sorted(units, key=lambda u: (-u.weight, u.uid))
        )
        batch_size = max(1, len(units) // (len(alive) * PULL_BATCH_DIVISOR))
        outstanding: dict[int, list[WorkUnit]] = {}
        need_delta = set(alive)
        requeued: set[int] = set()  # uids whose next dispatch must probe
        walls: dict[int, float] = {}
        pairs: dict[int, int] = {}
        units_done: dict[int, int] = {}
        batches: dict[int, int] = {}
        dispatched: dict[int, int] = {}
        stolen: dict[int, int] = {}
        failures = 0

        def send_batch(t: int) -> bool:
            first = t in need_delta
            if not queue and not first:
                return False
            batch: list[WorkUnit] = []
            while queue and len(batch) < batch_size:
                batch.append(queue.popleft())
            probe = first or any(u.uid in requeued for u in batch)
            delta = self._delta_for(t) if first else None
            try:
                self._conns[t].send(("batch", size, delta, batch, probe))
            except (BrokenPipeError, OSError):
                self._retire(t, size)
                queue.extendleft(reversed(batch))
                return False
            for unit in batch:
                requeued.discard(unit.uid)
            if first:
                need_delta.discard(t)
                self._bytes_sent += payload_nbytes(delta)
                if tracer.enabled:
                    tracer.counter(
                        "comm.bytes_out", payload_nbytes(delta), size=size,
                        worker=t,
                    )
            outstanding[t] = batch
            batches[t] = batches.get(t, 0) + 1
            dispatched[t] = dispatched.get(t, 0) + len(batch)
            if batches[t] > 1:
                stolen[t] = stolen.get(t, 0) + len(batch)
            return True

        for t in alive:
            send_batch(t)
        while outstanding or queue:
            if not outstanding:
                # Failed sends left work queued with nothing in flight;
                # try the survivors (the target set shrinks on each
                # failed send, so this terminates).
                targets = self._alive()
                if not targets:
                    raise OptimizationError(
                        "all worker processes have died; cannot run "
                        f"stratum {size}"
                    )
                for t in targets:
                    send_batch(t)
                continue
            conn_map = {self._conns[t]: t for t in outstanding}
            for conn in mp_connection.wait(list(conn_map)):
                t = conn_map[conn]
                batch = outstanding.pop(t)
                reply = self._collect(t, size)
                if reply is None:
                    # Errored (stays in pool) or died (retired): the
                    # outstanding batch returns to the queue; its partial
                    # counts never reach the main meter.
                    queue.extendleft(reversed(batch))
                    requeued.update(unit.uid for unit in batch)
                    failures += 1
                    self._recovery["redispatch_attempts"] += 1
                    self._recovery["redispatched_units"] += len(batch)
                    if tracer.enabled:
                        tracer.counter(
                            "fault.redispatch",
                            len(batch),
                            size=size,
                            worker=t,
                        )
                    if failures > state.retry_limit:
                        raise OptimizationError(
                            f"stratum {size}: {len(batch)} work units "
                            f"lost after {state.retry_limit + 1} recovery "
                            f"attempts"
                        )
                    if state.retry_backoff:
                        time.sleep(
                            state.retry_backoff * (2 ** (failures - 1))
                        )
                else:
                    _, candidates, meter_counts, elapsed, payload = reply
                    apply_stratum(state.memo, candidates)
                    state.meter.merge_dict(meter_counts)
                    self._bytes_sent += payload_nbytes(candidates)
                    if tracer.enabled:
                        tracer.counter(
                            "comm.bytes_in", payload_nbytes(candidates),
                            size=size, worker=t,
                        )
                        tracer.counter(
                            "comm.rows", payload_entries(candidates),
                            size=size, worker=t,
                        )
                    walls[t] = walls.get(t, 0.0) + elapsed
                    pairs[t] = pairs.get(t, 0) + meter_counts.get(
                        "pairs_considered", 0
                    )
                    units_done[t] = units_done.get(t, 0) + len(batch)
                    if tracer.enabled and payload:
                        tracer.ingest(payload, worker=t)
                if self._conns[t] is not None and queue:
                    send_batch(t)
        self._realized_imbalances.append(
            realized_imbalance([walls.get(t, 0.0) for t in alive])
        )
        if tracer.enabled:
            slowest = max(walls.values(), default=0.0)
            for t in sorted(set(alive) | set(dispatched)):
                tracer.counter(
                    "alloc.dispatch", dispatched.get(t, 0), size=size,
                    worker=t,
                )
                tracer.counter(
                    "alloc.steal", stolen.get(t, 0), size=size, worker=t
                )
                tracer.counter(
                    "worker.units", units_done.get(t, 0), size=size,
                    worker=t,
                )
                tracer.counter(
                    "worker.pairs", pairs.get(t, 0), size=size, worker=t
                )
                tracer.gauge(
                    "worker.realized_load", walls.get(t, 0.0), size=size,
                    worker=t,
                )
                tracer.gauge(
                    "worker.busy", walls.get(t, 0.0), size=size, worker=t
                )
                tracer.gauge(
                    "worker.barrier_wait",
                    slowest - walls.get(t, 0.0),
                    size=size,
                    worker=t,
                )
                tracer.gauge(
                    "comm.barrier_wait",
                    slowest - walls.get(t, 0.0),
                    size=size,
                    worker=t,
                )
        # The merged stratum becomes the next round's broadcast (wire
        # delta or shm publish).
        self._publish_stratum(size)
        self._rounds += 1

    def close(self) -> dict[str, Any]:
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        for conn in self._conns:
            if conn is not None:
                conn.close()
        self._procs.clear()
        self._conns.clear()
        recovery = dict(self._recovery)
        recovery["partial_meter"] = self._partial_meter.as_dict()
        extras = {
            "rounds": self._rounds,
            "approx_bytes_sent": self._bytes_sent,
            "realized_imbalances": list(self._realized_imbalances),
            "fault_recovery": recovery,
        }
        if self._shm_requested:
            if self._shm is not None:
                shm_extras: dict[str, Any] = {"enabled": True}
                shm_extras.update(self._shm.close())
                self._shm = None
            else:
                shm_extras = {
                    "enabled": False,
                    "reason": self._shm_fallback_reason,
                }
            extras["shm"] = shm_extras
        return extras
