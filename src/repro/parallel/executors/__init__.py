"""Stratum executors: simulated, threads, processes, cluster."""

from repro.parallel.executors.base import RunState, StratumExecutor
from repro.parallel.executors.cluster import ClusterExecutor
from repro.parallel.executors.process import ProcessExecutor
from repro.parallel.executors.simulated import SimulatedExecutor
from repro.parallel.executors.threaded import ThreadedExecutor

EXECUTORS = {
    "simulated": SimulatedExecutor,
    "threads": ThreadedExecutor,
    "processes": ProcessExecutor,
    "cluster": ClusterExecutor,
}
"""Registry of executor backends keyed by scheduler name."""

__all__ = [
    "RunState",
    "StratumExecutor",
    "SimulatedExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "ClusterExecutor",
    "EXECUTORS",
]
