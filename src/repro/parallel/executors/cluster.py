"""Shared-nothing cluster executor: memo-partitioned, summary exchange.

Every other backend replicates the memo and has the coordinator
re-broadcast each merged stratum — the master is the comms bottleneck
Trummer & Koch's shared-nothing formulation removes.  Here the DP search
space itself is partitioned: each of N workers owns the quantifier sets
hashing to its shard (:mod:`repro.parallel.partition`), enumerates *only*
plans whose result set it owns, and per stratum exchanges best-plan
**summary rows** — (mask, cost, rows), no operands — directly with its
peers over a deterministic round-robin tournament schedule.  The
coordinator never touches plan data mid-run: it sequences the two phases
of each stratum barrier (compute, then exchange), merges
:class:`~repro.memo.counters.WorkMeter` dicts, and drives recovery.  Full
rows (operands + method) travel exactly once, at the final collect.

Why this is bit-identical to the serial optimum: every quantifier set has
exactly one owner, ownership is a pure function of the mask, and the
owner enumerates *all* splits of its sets via the DPsub submask walk — the
same candidate (outer, inner) pair set any kernel produces — against
children whose (cost, rows) are the deterministic optima regardless of
which worker computed them.  The memo tie-break is total, so the winning
(left, right, method) per set is emission-order-independent.  The
``algorithm`` knob therefore selects the same results here by
construction; the cluster always enumerates with the DPsub block kernel
over owned masks (a per-set enumeration is the only one compatible with
set ownership).

Two transports share one protocol (:mod:`repro.parallel.net`):

* **in-process** — workers forked from the master (scan-seeded memo
  replicas inherited), linked by ``socketpair`` meshes.  The default;
  what the parity and chaos suites run.
* **TCP** — pre-started ``repro worker --listen HOST:PORT`` processes;
  the master connects, ships a pickled job spec (query, cost model,
  flags), and workers dial each other to form the mesh.  Fault injectors
  hold locks and do not pickle, so TCP workers run without injection.

Failure handling (PR-4 semantics): a worker that *raises* stays in the
pool and is told to ``redo`` the stratum (forget-owned-then-recompute, so
the main meter stays exact; the failed attempt's partial counts are kept
aside).  A worker that *dies* is detected by EOF on its channel; the
coordinator deals its shards to survivors round-robin
(:func:`~repro.parallel.partition.reassign`) and the new owners recompute
the orphaned sets for every completed stratum — summaries of those sets
already exist everywhere (the dead worker exchanged before dying), but
their full rows died with it, and a summary's ``(0, 0, 0)`` tie-break key
would shadow any recompute, so the placeholders are forgotten first.
Recomputed strata below the current one are charged to the recovery
meter (their work was already counted from the dead worker's earlier
replies); the current stratum is charged to the main meter only if the
dead worker never reported it.  Both recovery paths are bounded by
``retry_limit`` with exponential backoff.

Observability: workers time their strata into
:class:`~repro.trace.tracer.RecordingTracer` buffers merged master-side,
and the coordinator emits the ``comm.*`` group — ``comm.bytes_out`` /
``comm.bytes_in`` / ``comm.rows`` counters and the ``comm.barrier_wait``
gauge, per stratum and worker — rendered by ``repro trace`` as the
``comm`` table.  The counters report nominal payload bytes (the
:func:`~repro.parallel.wire.payload_nbytes` basis the process backend's
comm counters also use, so E16 compares like with like); the *actual
framed bytes* the channels moved — pickle framing and length prefixes
included — are surfaced separately as ``framed_out``/``framed_in`` in the
``cluster_comm`` extras.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import socket
import time
import uuid
from contextlib import nullcontext
from typing import Any

from repro.enumerate.dpsub import dpsub_stratum_candidates
from repro.enumerate.kernels import (
    dpsub_block_kernel,
    dpsub_block_kernel_fast,
)
from repro.faults import NULL_INJECTOR
from repro.memo.counters import WorkMeter
from repro.memo.table import Memo
from repro.parallel.allocation import Assignment
from repro.parallel.executors.base import RunState, StratumExecutor
from repro.parallel.executors.process import CRASH_EXIT_CODE
from repro.parallel.net import (
    Channel,
    ChannelClosed,
    connect,
    listen,
    parse_hostport,
)
from repro.parallel.partition import (
    identity_owner_map,
    owned,
    reassign,
    shard_of,
)
from repro.parallel.wire import (
    apply_stratum,
    apply_summary,
    encode_entries,
    encode_summary,
    payload_entries,
    payload_nbytes,
)
from repro.parallel.workunits import WorkUnit
from repro.trace.tracer import RecordingTracer
from repro.util.errors import (
    InjectedFault,
    OptimizationError,
    ValidationError,
)


def exchange_rounds(ids: list[int]) -> list[list[tuple[int, int]]]:
    """Round-robin tournament schedule over ``ids`` (the circle method).

    Every participant computes the identical schedule from the same id
    list; within a round the pairs are disjoint, so with the fixed
    lower-id-sends-first discipline the all-to-all exchange cannot
    deadlock regardless of payload size.
    """
    players: list[int | None] = sorted(ids)
    if len(players) % 2:
        players.append(None)
    m = len(players)
    rounds: list[list[tuple[int, int]]] = []
    arr = players[:]
    for _ in range(max(0, m - 1)):
        pairs = []
        for i in range(m // 2):
            a, b = arr[i], arr[m - 1 - i]
            if a is not None and b is not None:
                pairs.append((min(a, b), max(a, b)))
        rounds.append(pairs)
        arr = [arr[0], arr[-1], *arr[1:-1]]
    return rounds


class _ClusterWorker:
    """Worker-side protocol loop, shared by the fork and TCP transports.

    Holds this worker's memo replica (scans + own full rows + peer
    summaries), the control channel to the coordinator, and one mesh
    channel per peer.  See the module docstring for the message protocol.
    """

    def __init__(
        self,
        ctrl: Channel,
        peers: dict[int, Channel],
        worker: int,
        num_workers: int,
        memo: Memo,
        qctx,
        require_connected: bool,
        fast: bool,
        packed: bool,
        injector=NULL_INJECTOR,
        trace_enabled: bool = False,
    ) -> None:
        self.ctrl = ctrl
        self.peers = peers
        self.worker = worker
        self.num_workers = num_workers
        self.memo = memo
        self.qctx = qctx
        self.require_connected = require_connected
        self.kernel = dpsub_block_kernel_fast if fast else dpsub_block_kernel
        self.packed = packed
        self.injector = injector
        self.trace_enabled = trace_enabled
        self.owner_map = identity_owner_map(num_workers)
        self.dead: set[int] = set()
        self._strata: dict[int, list[int]] = {}

    # -- partition views -------------------------------------------------

    def _stratum(self, size: int) -> list[int]:
        masks = self._strata.get(size)
        if masks is None:
            masks = dpsub_stratum_candidates(self.qctx, size)
            self._strata[size] = masks
        return masks

    def _owned(self, size: int) -> list[int]:
        return owned(self._stratum(size), self.owner_map, self.worker)

    # -- message handlers --------------------------------------------------

    def serve(self) -> None:
        """Serve coordinator messages until ``stop`` or coordinator EOF."""
        try:
            while True:
                msg = self.ctrl.recv()
                kind = msg[0]
                if kind == "stop":
                    break
                if kind in ("go", "redo"):
                    self._compute(msg[1], forget_first=kind == "redo")
                elif kind == "exchange":
                    self._exchange(msg[1], msg[2])
                elif kind == "reassign":
                    self._reassign(*msg[1:])
                elif kind == "collect":
                    self._collect()
        except ChannelClosed:
            pass  # coordinator gone; nothing left to report to
        finally:
            self.ctrl.close()
            for ch in self.peers.values():
                ch.close()

    def _compute(self, size: int, forget_first: bool = False) -> None:
        """Enumerate all owned result sets of one stratum.

        ``forget_first`` (the ``redo`` path) drops any partial results of
        a failed attempt so the recompute's insert/improvement counts
        match a clean run exactly.
        """
        memo = self.memo
        masks = self._owned(size)
        meter = WorkMeter()
        tracer = RecordingTracer() if self.trace_enabled else None
        error: str | None = None
        start = time.perf_counter()
        span = (
            tracer.span("worker.stratum", size=size)
            if tracer is not None
            else nullcontext()
        )
        try:
            with span:
                if self.injector.enabled:
                    action = self.injector.fire(
                        "worker",
                        worker=self.worker,
                        stratum=size,
                        backend="cluster",
                    )
                    if action is not None:
                        if action.kind == "crash":
                            os._exit(CRASH_EXIT_CODE)
                        if action.kind == "delay":
                            time.sleep(action.delay_seconds)
                        else:
                            raise InjectedFault(action.message)
                if forget_first:
                    for mask in masks:
                        memo.forget(mask)
                self.kernel(
                    memo,
                    self.qctx,
                    masks,
                    0,
                    len(masks),
                    self.require_connected,
                    meter,
                )
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        elapsed = time.perf_counter() - start
        payload = tracer.payload() if tracer is not None else None
        self.ctrl.send(
            ("done", size, error, meter.as_dict(), len(masks), elapsed,
             payload)
        )

    def _exchange(self, size: int, alive: list[int]) -> None:
        """All-to-all summary exchange for one stratum among ``alive``.

        Within each tournament round, the lower id sends first then
        receives; the higher id does the reverse.  A peer dying
        mid-exchange is recorded and skipped — the coordinator reassigns
        its shards and re-runs the exchange (summary installation is
        idempotent, so the re-run is safe).
        """
        memo = self.memo
        payload = encode_summary(memo, self._owned(size), self.packed)
        my_rows = payload_entries(payload)
        my_nbytes = payload_nbytes(payload)
        rows_out = rows_in = sends = bytes_in = 0
        before_out = sum(ch.bytes_out for ch in self.peers.values())
        before_in = sum(ch.bytes_in for ch in self.peers.values())
        for rnd in exchange_rounds(alive):
            peer = None
            for a, b in rnd:
                if a == self.worker:
                    peer = b
                    break
                if b == self.worker:
                    peer = a
                    break
            if peer is None or peer in self.dead:
                continue
            ch = self.peers[peer]
            try:
                if self.worker < peer:
                    ch.send(payload)
                    sends += 1
                    rows_out += my_rows
                    incoming = ch.recv()
                    bytes_in += payload_nbytes(incoming)
                    rows_in += apply_summary(memo, incoming)
                else:
                    incoming = ch.recv()
                    bytes_in += payload_nbytes(incoming)
                    rows_in += apply_summary(memo, incoming)
                    ch.send(payload)
                    sends += 1
                    rows_out += my_rows
            except ChannelClosed:
                self.dead.add(peer)
        # bytes_out/bytes_in are nominal payload bytes (same
        # payload_nbytes basis the process backend's comm counters use,
        # so E16 compares like with like); framed_* are the actual bytes
        # the channels moved, pickle framing and length prefixes included.
        comm = {
            "bytes_out": my_nbytes * sends,
            "bytes_in": bytes_in,
            "rows_out": rows_out,
            "rows_in": rows_in,
            "framed_out": (
                sum(ch.bytes_out for ch in self.peers.values()) - before_out
            ),
            "framed_in": (
                sum(ch.bytes_in for ch in self.peers.values()) - before_in
            ),
        }
        self.ctrl.send(("exchanged", size, sorted(self.dead), comm))

    def _reassign(
        self,
        new_map: dict[int, int],
        size: int,
        count_size_in_main: bool,
        dead_list: list[int],
    ) -> None:
        """Adopt a post-failure owner map; recompute newly gained sets.

        Gained sets are recomputed in ascending stratum order so each
        recompute finds its children (own rows, peer summaries, or
        just-recovered gained sets) already present.  Their summary
        placeholders are forgotten first — see the module docstring.
        The adoption is relative to *this worker's* current map, so a
        worker that failed a previous adoption self-heals on the retry.
        """
        memo = self.memo
        self.dead.update(dead_list)
        main = WorkMeter()
        recovery = WorkMeter()
        error: str | None = None
        recomputed = 0
        num = self.num_workers
        try:
            for t in range(2, size + 1):
                gained = [
                    mask
                    for mask in self._stratum(t)
                    if new_map[shard_of(mask, num)] == self.worker
                    and self.owner_map[shard_of(mask, num)] != self.worker
                ]
                if not gained:
                    continue
                for mask in gained:
                    memo.forget(mask)
                meter = (
                    main if (t == size and count_size_in_main) else recovery
                )
                self.kernel(
                    memo,
                    self.qctx,
                    gained,
                    0,
                    len(gained),
                    self.require_connected,
                    meter,
                )
                recomputed += len(gained)
            self.owner_map = dict(new_map)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        self.ctrl.send(
            ("reassigned", size, error, main.as_dict(), recovery.as_dict(),
             recomputed)
        )

    def _collect(self) -> None:
        """Ship full rows for every owned set — the one full-row transfer."""
        masks: list[int] = []
        for t in range(2, self.qctx.n + 1):
            masks.extend(self._owned(t))
        self.ctrl.send(("rows", encode_entries(self.memo, masks, self.packed)))


def _fork_worker_main(
    state: RunState, worker: int, num_workers: int, control, mesh
) -> None:
    """Entry point of a forked in-process cluster worker.

    FD hygiene is load-bearing: every socket end this worker does not own
    is closed, so a peer's death produces a clean EOF on the surviving
    ends instead of a silently held-open descriptor.
    """
    ctrl = Channel(control[worker][1])
    peers: dict[int, Channel] = {}
    for (i, j), (a, b) in mesh.items():
        if i == worker:
            peers[j] = Channel(a)
            b.close()
        elif j == worker:
            peers[i] = Channel(b)
            a.close()
        else:
            a.close()
            b.close()
    for w, (master_end, child_end) in enumerate(control):
        master_end.close()
        if w != worker:
            child_end.close()
    _ClusterWorker(
        ctrl,
        peers,
        worker,
        num_workers,
        memo=state.memo,
        qctx=state.ctx,
        require_connected=state.require_connected,
        fast=state.fast_path,
        packed=state.wire_packed,
        injector=state.injector,
        trace_enabled=state.tracer.enabled,
    ).serve()


def serve_worker(listen_spec: str) -> None:
    """Run one TCP cluster worker: the ``repro worker --listen`` loop.

    One-shot lifecycle: bind, accept exactly one coordinator, receive the
    job spec, mesh up with the peers it names (dial lower ids, accept
    higher ids, token-checked hellos), serve the run, exit.  Start one
    process per address the coordinator will list in ``cluster_connect``.
    """
    try:
        host, port = parse_hostport(listen_spec)
    except ValueError as exc:
        raise ValidationError(f"--listen {exc}") from exc
    lsock = listen(host, port)
    conn, _ = lsock.accept()
    ctrl = Channel(conn)
    msg = ctrl.recv()
    if msg[0] != "job":
        raise ValidationError(f"expected a job message, got {msg[0]!r}")
    spec = msg[1]
    worker = spec["worker"]
    num = spec["workers"]
    token = spec["token"]
    addrs = spec["peers"]
    peers: dict[int, Channel] = {}
    for j in range(worker):
        peer_host, peer_port = parse_hostport(addrs[j])
        ch = connect(peer_host, peer_port)
        ch.send(("hello", worker, token))
        peers[j] = ch
    for _ in range(num - 1 - worker):
        peer_conn, _ = lsock.accept()
        ch = Channel(peer_conn)
        hello = ch.recv()
        if hello[0] != "hello" or hello[2] != token:
            raise ValidationError("cluster peer handshake failed (bad token)")
        peers[hello[1]] = ch
    lsock.close()
    from repro.enumerate.base import make_context

    qctx = make_context(spec["query"])
    memo = Memo(qctx, spec["cost_model"])
    memo.init_scans()
    ctrl.send(("ready",))
    _ClusterWorker(
        ctrl,
        peers,
        worker,
        num,
        memo=memo,
        qctx=qctx,
        require_connected=spec["require_connected"],
        fast=spec["fast_path"],
        packed=spec["packed"],
        trace_enabled=spec["trace"],
    ).serve()


class ClusterExecutor(StratumExecutor):
    """Coordinator for the shared-nothing cluster backend."""

    supports_dynamic_allocation = False
    partitions_search_space = True

    def __init__(self) -> None:
        self._state: RunState | None = None
        self._chans: dict[int, Channel | None] = {}
        self._procs: dict[int, mp.Process] = {}
        self._owner_map: dict[int, int] = {}
        self._num_workers = 0
        self._mode = "fork"
        self._dead: set[int] = set()
        self._dead_unhandled = False
        self._rounds = 0
        self._failed = False
        self._partial_meter = WorkMeter()
        self._comm = {"bytes_out": 0, "bytes_in": 0, "rows_out": 0,
                      "rows_in": 0, "framed_out": 0, "framed_in": 0}
        self._recovery = {
            "worker_errors": 0,
            "worker_deaths": 0,
            "reassignments": 0,
            "recomputed_masks": 0,
        }

    # -- lifecycle -------------------------------------------------------

    def open(self, state: RunState) -> None:
        self._state = state
        workers = state.cluster_workers or state.threads
        self._num_workers = workers
        self._owner_map = identity_owner_map(workers)
        if state.cluster_connect:
            self._mode = "tcp"
            self._open_tcp(state, workers)
        else:
            self._open_fork(state, workers)

    def _open_fork(self, state: RunState, workers: int) -> None:
        try:
            ctx_mp = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise ValidationError(
                "the cluster backend's in-process mode requires the "
                "'fork' start method"
            ) from exc
        # Create every socket before the first fork so all children
        # inherit the full mesh, then let each side close what it does
        # not own.
        control = [socket.socketpair() for _ in range(workers)]
        mesh = {
            (i, j): socket.socketpair()
            for i in range(workers)
            for j in range(i + 1, workers)
        }
        for w in range(workers):
            proc = ctx_mp.Process(
                target=_fork_worker_main,
                args=(state, w, workers, control, mesh),
                daemon=True,
            )
            proc.start()
            self._procs[w] = proc
        for a, b in mesh.values():
            a.close()
            b.close()
        for w, (master_end, child_end) in enumerate(control):
            child_end.close()
            self._chans[w] = Channel(master_end)

    def _open_tcp(self, state: RunState, workers: int) -> None:
        token = uuid.uuid4().hex
        addrs = list(state.cluster_connect)
        spec_common = {
            "workers": workers,
            "peers": addrs,
            "token": token,
            "query": state.ctx.query,
            "cost_model": state.memo.cost_model,
            "require_connected": state.require_connected,
            "fast_path": state.fast_path,
            "packed": state.wire_packed,
            "trace": state.tracer.enabled,
        }
        for w, addr in enumerate(addrs):
            host, port = parse_hostport(addr)
            self._chans[w] = connect(host, port)
        for w in range(workers):
            self._chans[w].send(("job", {**spec_common, "worker": w}))
        for w in range(workers):
            reply = self._recv(w, 0)
            if reply is None or reply[0] != "ready":
                self._failed = True
                raise OptimizationError(
                    f"cluster worker {w} failed to initialize"
                )

    # -- worker bookkeeping ----------------------------------------------

    def _alive(self) -> list[int]:
        return sorted(w for w, ch in self._chans.items() if ch is not None)

    def _retire(self, w: int, size: int) -> None:
        ch = self._chans.get(w)
        if ch is None:
            return
        self._chans[w] = None
        ch.close()
        proc = self._procs.pop(w, None)
        if proc is not None:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        self._dead.add(w)
        self._dead_unhandled = True
        self._recovery["worker_deaths"] += 1
        state = self._state
        if state is not None and state.tracer.enabled:
            state.tracer.counter("fault.worker_dead", size=size, worker=w)

    def _send(self, w: int, message, size: int) -> bool:
        ch = self._chans.get(w)
        if ch is None:
            return False
        try:
            ch.send(message)
            return True
        except ChannelClosed:
            self._retire(w, size)
            return False

    def _recv(self, w: int, size: int):
        ch = self._chans.get(w)
        if ch is None:
            return None
        try:
            return ch.recv()
        except ChannelClosed:
            self._retire(w, size)
            return None

    # -- the stratum barrier ---------------------------------------------

    def run_stratum(
        self, size: int, units: list[WorkUnit], assignment: Assignment | None
    ) -> None:
        state = self._state
        assert state is not None
        self._phase_compute(size)
        if size < state.ctx.n:
            # The full-query stratum's summary interests nobody; its full
            # row arrives with the final collect.
            self._phase_exchange(size)
        self._rounds += 1

    def _phase_compute(self, size: int) -> None:
        state = self._state
        assert state is not None
        tracer = state.tracer
        done: dict[int, tuple[int, float]] = {}
        errors: list[int] = []

        def dispatch(targets: list[int], message) -> None:
            sent = [w for w in targets if self._send(w, message, size)]
            for w in sent:
                reply = self._recv(w, size)
                if reply is None:
                    continue
                _, _rsize, error, meter_d, owned_count, elapsed, payload = (
                    reply
                )
                if error is not None:
                    errors.append(w)
                    self._partial_meter.merge_dict(meter_d)
                    self._recovery["worker_errors"] += 1
                    if tracer.enabled:
                        tracer.counter(
                            "fault.worker_error", size=size, worker=w
                        )
                    continue
                state.meter.merge_dict(meter_d)
                done[w] = (owned_count, elapsed)
                if tracer.enabled and payload:
                    tracer.ingest(payload, worker=w)

        dispatch(self._alive(), ("go", size))
        attempts = 0
        while self._dead_unhandled or errors:
            attempts += 1
            if attempts > state.retry_limit + 1:
                self._failed = True
                raise OptimizationError(
                    f"stratum {size}: cluster recovery exhausted after "
                    f"{state.retry_limit + 1} attempts"
                )
            if state.retry_backoff and attempts > 1:
                time.sleep(state.retry_backoff * (2 ** (attempts - 2)))
            if self._dead_unhandled:
                # The dead worker never reported this stratum, so the
                # recovered sets' stratum-``size`` work belongs in the
                # main meter.
                self._do_reassign(size, count_size_in_main=True)
                errors = [w for w in errors if self._chans.get(w) is not None]
            if errors:
                redo, errors = list(errors), []
                dispatch(redo, ("redo", size))
        if not self._alive():
            self._failed = True
            raise OptimizationError("all cluster workers died")
        if tracer.enabled:
            slowest = max((e for _, e in done.values()), default=0.0)
            for w, (owned_count, elapsed) in sorted(done.items()):
                tracer.counter(
                    "worker.units", owned_count, size=size, worker=w
                )
                tracer.gauge("worker.busy", elapsed, size=size, worker=w)
                tracer.gauge(
                    "worker.barrier_wait",
                    slowest - elapsed,
                    size=size,
                    worker=w,
                )
                tracer.gauge(
                    "comm.barrier_wait",
                    slowest - elapsed,
                    size=size,
                    worker=w,
                )

    def _do_reassign(self, size: int, count_size_in_main: bool) -> bool:
        """Deal dead workers' shards to survivors; drive the recompute.

        Returns True when every surviving worker adopted cleanly.  A
        worker that errors (or dies) mid-adoption leaves
        ``_dead_unhandled`` set, so the caller's bounded retry loop
        re-runs the reassignment — adoption is computed against each
        worker's own current map, making the retry self-healing and
        idempotent for workers that already adopted.
        """
        state = self._state
        assert state is not None
        tracer = state.tracer
        alive = self._alive()
        if not alive:
            self._failed = True
            raise OptimizationError("all cluster workers died")
        self._dead_unhandled = False
        new_map = reassign(self._owner_map, self._dead, alive)
        self._owner_map = new_map
        self._recovery["reassignments"] += 1
        clean = True
        message = (
            "reassign", new_map, size, count_size_in_main, sorted(self._dead)
        )
        sent = [w for w in alive if self._send(w, message, size)]
        if len(sent) < len(alive):
            clean = False
        for w in sent:
            reply = self._recv(w, size)
            if reply is None:
                clean = False
                continue
            _, _rsize, error, main_d, recovery_d, recomputed = reply
            if error is not None:
                clean = False
                self._partial_meter.merge_dict(main_d)
                self._partial_meter.merge_dict(recovery_d)
                self._recovery["worker_errors"] += 1
                continue
            state.meter.merge_dict(main_d)
            self._partial_meter.merge_dict(recovery_d)
            self._recovery["recomputed_masks"] += recomputed
            if tracer.enabled and recomputed:
                tracer.counter(
                    "fault.redispatch", recomputed, size=size, worker=w
                )
        if not clean and not self._dead_unhandled:
            self._dead_unhandled = True  # force the caller to retry
        return clean

    def _phase_exchange(self, size: int) -> None:
        state = self._state
        assert state is not None
        tracer = state.tracer
        attempts = 0
        while True:
            alive = self._alive()
            if len(alive) <= 1:
                return
            sent = [
                w
                for w in alive
                if self._send(w, ("exchange", size, alive), size)
            ]
            peer_dead: set[int] = set()
            clean = len(sent) == len(alive)
            for w in sent:
                reply = self._recv(w, size)
                if reply is None:
                    clean = False
                    continue
                _, _rsize, dead_list, comm = reply
                peer_dead.update(dead_list)
                for key in self._comm:
                    self._comm[key] += comm[key]
                if tracer.enabled:
                    tracer.counter(
                        "comm.bytes_out", comm["bytes_out"], size=size,
                        worker=w,
                    )
                    tracer.counter(
                        "comm.bytes_in", comm["bytes_in"], size=size,
                        worker=w,
                    )
                    tracer.counter(
                        "comm.rows", comm["rows_in"], size=size, worker=w
                    )
            for w in sorted(peer_dead):
                if self._chans.get(w) is not None:
                    self._retire(w, size)
            if clean and not self._dead_unhandled:
                return
            attempts += 1
            if attempts > state.retry_limit + 1:
                self._failed = True
                raise OptimizationError(
                    f"stratum {size}: cluster exchange failed after "
                    f"{state.retry_limit + 1} attempts"
                )
            if state.retry_backoff and attempts > 1:
                time.sleep(state.retry_backoff * (2 ** (attempts - 2)))
            # The dead worker reported this stratum's compute before the
            # exchange broke, so recovered work is all recovery-metered;
            # the re-run of the (idempotent) exchange follows.
            self._do_reassign(size, count_size_in_main=False)

    # -- teardown --------------------------------------------------------

    def close(self) -> dict[str, Any]:
        state = self._state
        collected = 0
        collect_bytes = 0
        if state is not None and not self._failed and self._alive():
            before = sum(
                ch.bytes_in for ch in self._chans.values() if ch is not None
            )
            for w in self._alive():
                if not self._send(w, ("collect",), 0):
                    continue
                reply = self._recv(w, 0)
                if reply is None:
                    continue
                collected += apply_stratum(state.memo, reply[1])
            collect_bytes = (
                sum(
                    ch.bytes_in
                    for ch in self._chans.values()
                    if ch is not None
                )
                - before
            )
            if state.tracer.enabled:
                state.tracer.counter("comm.collect_rows", collected)
                state.tracer.counter("comm.collect_bytes", collect_bytes)
        for w in self._alive():
            self._send(w, ("stop",), 0)
        for w, proc in list(self._procs.items()):
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        self._procs.clear()
        control_out = sum(
            ch.bytes_out for ch in self._chans.values() if ch is not None
        )
        control_in = sum(
            ch.bytes_in for ch in self._chans.values() if ch is not None
        )
        for ch in self._chans.values():
            if ch is not None:
                ch.close()
        self._chans.clear()
        recovery = dict(self._recovery)
        recovery["partial_meter"] = self._partial_meter.as_dict()
        return {
            "rounds": self._rounds,
            "workers": self._num_workers,
            "mode": self._mode,
            "cluster_comm": {
                **self._comm,
                "collect_rows": collected,
                "collect_bytes": collect_bytes,
                "control_bytes_out": control_out,
                "control_bytes_in": control_in,
            },
            "fault_recovery": recovery,
            "owner_map": dict(self._owner_map),
        }
