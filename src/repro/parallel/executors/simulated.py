"""The simulated-multicore executor.

Runs every work unit for real (so memo contents are exact) but serially,
attributing each unit's metered operations to its assigned virtual thread.
Per-stratum timing — busiest thread + contention penalty + barrier — is
accounted by :class:`~repro.simx.machine.SimulatedMachine`.

Memo updates are routed through a recording view so the contention model
knows which threads touched which entries within the stratum.

Fault tolerance: injected worker faults fire per (virtual thread,
stratum).  A ``delay`` fault is charged as *virtual* straggler time on
the target thread (no real sleep — the simulated clock absorbs it, so
chaos runs stay fast and deterministic); ``raise``/``crash`` faults move
the thread's remaining units to the next virtual thread with bounded
retries.  Unit meters are merged only after a unit completes, so the
merged totals stay exact under recovery.
"""

from __future__ import annotations

from typing import Any

from repro.memo.counters import WorkMeter
from repro.parallel.allocation import Assignment, realized_imbalance
from repro.parallel.executors.base import RunState, StratumExecutor
from repro.parallel.workunits import WorkUnit, run_unit
from repro.simx.costparams import SimCostParams
from repro.simx.machine import SimulatedMachine
from repro.util.errors import InjectedFault, OptimizationError


class _RecordingMemoView:
    """Memo facade that records which entries a unit updates.

    Only the operations the kernels use are exposed; updates delegate to
    the real memo (which enforces the deterministic tie-break), while the
    touch map feeds the contention model.
    """

    __slots__ = ("_memo", "_touches")

    def __init__(self, memo, touches: dict[int, int]) -> None:
        self._memo = memo
        self._touches = touches

    def __contains__(self, mask: int) -> bool:
        return mask in self._memo

    def sets_of_size(self, k: int) -> list[int]:
        return self._memo.sets_of_size(k)

    def consider_join(self, left: int, right: int, meter=None) -> None:
        result = left | right
        self._touches[result] = self._touches.get(result, 0) + 1
        self._memo.consider_join(left, right, meter)

    def consider_joins(self, left: int, rights: list[int], meter=None) -> None:
        touches = self._touches
        for right in rights:
            result = left | right
            touches[result] = touches.get(result, 0) + 1
        self._memo.consider_joins(left, rights, meter)

    def consider_pairs(self, pairs: list[tuple[int, int]], meter=None) -> None:
        touches = self._touches
        for left, right in pairs:
            result = left | right
            touches[result] = touches.get(result, 0) + 1
        self._memo.consider_pairs(pairs, meter)


class SimulatedExecutor(StratumExecutor):
    """Deterministic virtual-time executor."""

    supports_dynamic_allocation = True

    def __init__(self, params: SimCostParams | None = None) -> None:
        self.params = params or SimCostParams()
        self._state: RunState | None = None
        self.machine: SimulatedMachine | None = None
        self._realized_imbalances: list[float] = []
        self._recovery = {"worker_errors": 0, "redispatched_units": 0,
                          "redispatch_attempts": 0}

    def open(self, state: RunState) -> None:
        self._state = state
        self.machine = SimulatedMachine(state.threads, self.params)
        self.machine.label(state.algorithm, "")
        self._realized_imbalances = []

    def run_stratum(
        self, size: int, units: list[WorkUnit], assignment: Assignment | None
    ) -> None:
        state = self._state
        machine = self.machine
        assert state is not None and machine is not None
        machine.charge_master(len(units))
        threads = state.threads
        busy = [0.0] * threads
        unit_counts = [0] * threads
        pair_counts = [0] * threads
        touches: list[dict[int, int]] = [{} for _ in range(threads)]
        views = [
            _RecordingMemoView(state.memo, touches[t]) for t in range(threads)
        ]
        # Charge shared-structure builds (SVAs) that happen in this stratum
        # to the serial master segment: built once, used by all threads.
        build_before = self.params.work_time(state.caches_meter)

        def run_on(unit: WorkUnit, t: int) -> None:
            unit_meter = WorkMeter()
            run_unit(
                unit,
                views[t],
                state.ctx,
                state.caches,
                state.require_connected,
                unit_meter,
                real_memo=state.memo,
                fast=state.fast_path,
            )
            busy[t] += machine.unit_time(unit_meter)
            unit_counts[t] += 1
            pair_counts[t] += unit_meter.pairs_considered
            state.meter.merge(unit_meter)

        injector = state.injector
        tracer = state.tracer

        def probe(t: int) -> None:
            # One injection opportunity per (virtual thread, stratum
            # touch); delay is charged as virtual straggler time.
            if not injector.enabled:
                return
            action = injector.fire(
                "worker", worker=t, stratum=size, backend="simulated"
            )
            if action is None:
                return
            if action.kind == "delay":
                busy[t] += action.delay_seconds
                return
            raise InjectedFault(action.message)

        def run_bucket(t: int, bucket) -> None:
            # Run a bucket on thread ``t``, migrating the remaining units
            # to the next virtual thread on failure (bounded retries).
            # Unit meters merge only on unit completion, so recovery
            # never double-counts.
            pending = list(bucket)
            target = t
            attempt = 0
            while pending:
                try:
                    probe(target)
                    while pending:
                        run_on(pending[0], target)
                        pending.pop(0)
                except Exception as exc:
                    self._recovery["worker_errors"] += 1
                    if tracer.enabled:
                        tracer.counter(
                            "fault.worker_error", size=size, worker=target
                        )
                    attempt += 1
                    if attempt > state.retry_limit:
                        raise OptimizationError(
                            f"stratum {size}: virtual thread {t} failed "
                            f"and {state.retry_limit + 1} recovery "
                            f"attempts were exhausted "
                            f"({type(exc).__name__}: {exc})"
                        ) from exc
                    target = (target + 1) % threads
                    self._recovery["redispatch_attempts"] += 1
                    self._recovery["redispatched_units"] += len(pending)
                    if tracer.enabled:
                        tracer.counter(
                            "fault.redispatch",
                            len(pending),
                            size=size,
                            worker=target,
                        )

        if assignment is None:
            # Dynamic (work-stealing oracle): each unit goes to the thread
            # with the least *actual* accumulated time so far.
            for unit in units:
                t = min(range(threads), key=lambda i: (busy[i], i))
                run_bucket(t, [unit])
        else:
            for t, bucket in enumerate(assignment):
                run_bucket(t, bucket)
        build_after = self.params.work_time(state.caches_meter)
        machine.report.master_cost += build_after - build_before
        timing = machine.record_stratum(size, len(units), busy, touches)
        # Realized load = per-thread virtual busy time (incl. contention),
        # the same currency the real backends measure with wall clocks.
        self._realized_imbalances.append(
            realized_imbalance(list(timing.thread_times))
        )
        tracer = state.tracer
        if tracer.enabled and assignment is None:
            # The oracle's dispatch/steal accounting: every unit is an
            # individual online dispatch; grabs beyond a thread's first
            # count as steals (matching the real backends' definition).
            for t in range(threads):
                tracer.counter(
                    "alloc.dispatch", unit_counts[t], size=size, worker=t
                )
                tracer.counter(
                    "alloc.steal",
                    max(0, unit_counts[t] - 1),
                    size=size,
                    worker=t,
                )
        if tracer.enabled:
            # Barrier wait in virtual time: each thread idles until the
            # stratum's busiest thread (incl. contention) reaches the
            # barrier.
            thread_times = timing.thread_times
            slowest = max(thread_times, default=0.0)
            for t in range(threads):
                tracer.counter(
                    "worker.units", unit_counts[t], size=size, worker=t
                )
                tracer.counter(
                    "worker.pairs", pair_counts[t], size=size, worker=t
                )
                tracer.gauge(
                    "worker.realized_load",
                    thread_times[t],
                    size=size,
                    worker=t,
                )
                tracer.gauge(
                    "worker.busy", thread_times[t], size=size, worker=t
                )
                tracer.gauge(
                    "worker.barrier_wait",
                    slowest - thread_times[t],
                    size=size,
                    worker=t,
                )

    def close(self) -> dict[str, Any]:
        assert self.machine is not None
        return {
            "sim_report": self.machine.report,
            "fault_recovery": dict(self._recovery),
            "realized_imbalances": list(self._realized_imbalances),
        }
