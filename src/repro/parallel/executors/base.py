"""Executor interface shared by the three backends."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.cost.estimator import CardinalityEstimator
from repro.faults import NULL_INJECTOR
from repro.memo.counters import WorkMeter
from repro.memo.table import Memo
from repro.parallel.allocation import Assignment
from repro.parallel.workunits import KernelCaches, WorkUnit
from repro.query.context import QueryContext
from repro.trace.tracer import NULL_TRACER, Tracer


@dataclass
class RunState:
    """Everything an executor needs to run one optimization.

    Attributes:
        ctx: Compiled query.
        memo: The master memo (scan-seeded before ``open``).
        estimator: Shared cardinality estimator.
        meter: Master meter; executors merge all per-unit/per-worker
            counts into it.
        caches: Kernel caches (SVAs, DPsub strata) for the master side.
        caches_meter: Meter charged for shared-structure builds (SVAs).
        require_connected: True when cross products are disabled.
        algorithm: Kernel name (``dpsize``/``dpsub``/``dpsva``).
        threads: Degree of parallelism.
        tracer: Observability sink; executors emit per-worker counters
            (``worker.units``, ``worker.pairs``) and gauges
            (``worker.busy``, ``worker.barrier_wait``) against it.
        fast_path: Run the fused enumeration kernels (identical results,
            batched inner loops); executors pass this through to
            :func:`~repro.parallel.workunits.run_unit`.
        wire_packed: Process backend only — ship per-stratum entry deltas
            in the packed columnar wire format instead of lists of
            6-tuples (requires masks to fit 64 bits).
        shared_memo: Process backend only — requested shared-memory memo
            tier (:mod:`repro.memo.shm`).  The executor refines this to
            the *effective* mode in ``open`` (eligibility probing with
            automatic fallback) before forking, so workers and master
            agree on the protocol.
        injector: Fault injector consulted once per (worker, stratum);
            the shared null injector when no fault plan is configured.
        retry_limit: Extra recovery attempts an executor may spend
            re-dispatching a failed worker's units before raising.
        retry_backoff: Exponential-backoff base slept between recovery
            attempts, in seconds.
        cluster_workers: Cluster backend only — number of shard-owning
            workers (defaults to ``threads`` upstream; 0 elsewhere).
        cluster_connect: Cluster backend only — ``host:port`` addresses
            of pre-started ``repro worker`` processes; empty selects the
            in-process (forked) cluster.
    """

    ctx: QueryContext
    memo: Memo
    estimator: CardinalityEstimator
    meter: WorkMeter
    caches: KernelCaches
    caches_meter: WorkMeter
    require_connected: bool
    algorithm: str
    threads: int
    tracer: Tracer = NULL_TRACER
    fast_path: bool = False
    wire_packed: bool = False
    shared_memo: bool = False
    injector: object = NULL_INJECTOR
    retry_limit: int = 2
    retry_backoff: float = 0.02
    cluster_workers: int = 0
    cluster_connect: tuple = ()


class StratumExecutor(ABC):
    """Runs the work units of each stratum on some substrate."""

    #: Whether this executor can run a stratum with ``assignment=None``
    #: (the ``dynamic`` allocation scheme): units are handed to workers
    #: online as they drain instead of via a precomputed assignment.
    #: Config validation consults this flag — it is the single source of
    #: truth replacing the per-executor "simulated only" guards — and the
    #: scheduler re-checks it defensively before the first stratum.
    supports_dynamic_allocation: bool = False

    #: Whether this executor partitions the search space itself
    #: (shared-nothing memo sharding).  When true the scheduler skips
    #: work-unit generation and allocation entirely — ``run_stratum``
    #: receives ``units=[]``/``assignment=None`` and the executor derives
    #: each worker's share from the hash partition
    #: (:mod:`repro.parallel.partition`).  Such an executor is also
    #: allowed to leave the master memo without the stratum's full rows
    #: until ``close`` (the coordinator collects shard contents once, at
    #: the end).
    partitions_search_space: bool = False

    @abstractmethod
    def open(self, state: RunState) -> None:
        """Bind the run state; called once before the first stratum."""

    @abstractmethod
    def run_stratum(
        self, size: int, units: list[WorkUnit], assignment: Assignment
    ) -> None:
        """Execute one stratum; must leave the master memo complete for
        ``size`` before returning (the barrier).  ``assignment`` is
        ``None`` for dynamic allocation (only when
        :attr:`supports_dynamic_allocation` is true)."""

    @abstractmethod
    def close(self) -> dict[str, Any]:
        """Release resources and return backend-specific extras for the
        :class:`~repro.enumerate.base.OptimizationResult`."""
