"""Real-thread executor.

Faithfully reproduces the paper's shared-memory design with CPython
threads: one shared lock-striped memo, per-stratum thread teams, a join as
the barrier.  Under CPython's GIL the kernels cannot overlap, so measured
wall time does *not* drop with the thread count — this executor exists to
demonstrate exactly that gate (experiment E8) and to validate that the
parallel decomposition is correct under true concurrency (final memo
contents are identical to serial runs thanks to the deterministic
tie-break).
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.memo.concurrent import LockStripedMemo
from repro.memo.counters import WorkMeter
from repro.parallel.allocation import Assignment
from repro.parallel.executors.base import RunState, StratumExecutor
from repro.parallel.workunits import WorkUnit, run_unit
from repro.util.errors import ValidationError


class ThreadedExecutor(StratumExecutor):
    """One real thread per worker, shared lock-striped memo."""

    def __init__(self) -> None:
        self._state: RunState | None = None
        self._stratum_walls: list[float] = []

    def open(self, state: RunState) -> None:
        if not isinstance(state.memo, LockStripedMemo):
            raise ValidationError(
                "ThreadedExecutor requires a LockStripedMemo"
            )
        self._state = state
        self._stratum_walls = []

    def run_stratum(
        self, size: int, units: list[WorkUnit], assignment: Assignment | None
    ) -> None:
        state = self._state
        assert state is not None
        if assignment is None:
            raise ValidationError(
                "dynamic allocation is only supported by the simulated "
                "executor"
            )
        # Pre-build shared structures (SVAs, DPsub strata) on the master
        # thread, as the paper does, so workers only read them.
        for unit in units:
            if unit.algorithm == "dpsva":
                state.caches.sva.for_size(unit.size - unit.outer_size)
            elif unit.algorithm == "dpsub":
                state.caches.dpsub_stratum(unit.size)
        meters = [WorkMeter() for _ in range(state.threads)]
        busy = [0.0] * state.threads

        def work(t: int) -> None:
            t0 = time.perf_counter()
            for unit in assignment[t]:
                run_unit(
                    unit,
                    state.memo,
                    state.ctx,
                    state.caches,
                    state.require_connected,
                    meters[t],
                    fast=state.fast_path,
                )
            busy[t] = time.perf_counter() - t0

        start = time.perf_counter()
        workers = [
            threading.Thread(target=work, args=(t,), name=f"pdp-worker-{t}")
            for t in range(state.threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()  # the stratum barrier
        wall = time.perf_counter() - start
        self._stratum_walls.append(wall)
        for meter in meters:
            state.meter.merge(meter)
        tracer = state.tracer
        if tracer.enabled:
            for t in range(state.threads):
                tracer.counter(
                    "worker.units", len(assignment[t]), size=size, worker=t
                )
                tracer.counter(
                    "worker.pairs",
                    meters[t].pairs_considered,
                    size=size,
                    worker=t,
                )
                tracer.gauge("worker.busy", busy[t], size=size, worker=t)
                tracer.gauge(
                    "worker.barrier_wait",
                    max(0.0, wall - busy[t]),
                    size=size,
                    worker=t,
                )

    def close(self) -> dict[str, Any]:
        return {"stratum_wall_times": list(self._stratum_walls)}
