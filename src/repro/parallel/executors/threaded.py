"""Real-thread executor.

Faithfully reproduces the paper's shared-memory design with CPython
threads: one shared lock-striped memo, per-stratum thread teams, a join as
the barrier.  Under CPython's GIL the kernels cannot overlap, so measured
wall time does *not* drop with the thread count — this executor exists to
demonstrate exactly that gate (experiment E8) and to validate that the
parallel decomposition is correct under true concurrency (final memo
contents are identical to serial runs thanks to the deterministic
tie-break).

Two allocation modes:

* **static** (an :data:`~repro.parallel.allocation.Assignment`): each
  worker runs its precomputed bucket — the paper's baseline.
* **dynamic** (``assignment=None``): true online work stealing.  The
  stratum's units sit in one lock-guarded shared queue; workers grab
  chunks (``max(1, units // (threads * STEAL_CHUNK_DIVISOR))`` at a
  time, bounding lock contention) and come back for more when they
  drain.  Realized per-worker load therefore adapts to *measured* unit
  times instead of estimated weights.  Results are bit-identical to the
  static schemes: every unit runs exactly once, and memo writes are
  idempotent, deterministically tie-broken min-merges, so execution
  order cannot change the optimum.

Fault tolerance: a worker thread that raises (broken cost model, injected
fault) is caught at the stratum barrier and its unfinished units are
re-run on the master thread with bounded retries and exponential backoff.
In static mode the whole bucket re-runs (its partial meter is discarded);
in dynamic mode per-unit meters merge only on unit completion, so only
the in-flight remainder of the failed worker's last grab re-runs — either
way each unit is counted by exactly one successful attempt and the merged
meter stays exact.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.memo.concurrent import LockStripedMemo
from repro.memo.counters import WorkMeter
from repro.parallel.allocation import Assignment, realized_imbalance
from repro.parallel.executors.base import RunState, StratumExecutor
from repro.parallel.workunits import WorkUnit, run_unit
from repro.util.errors import OptimizationError, ValidationError

#: A dynamic-mode grab takes ``max(1, len(units) // (threads * divisor))``
#: units: large strata amortize the queue lock over multi-unit chunks,
#: small strata degrade to unit-at-a-time grabs for maximal balance.
STEAL_CHUNK_DIVISOR = 4


class _UnitQueue:
    """Lock-guarded shared unit queue with chunked grabs.

    Units are handed out heaviest-first (greedy list scheduling: serving
    the expensive units early keeps the tail fine-grained, the same
    reason LPT sorts before assigning); ``grab`` returns the next chunk
    (or an empty list when drained).  One lock acquisition per grab — the
    contention bound the chunking buys.

    Each grab starts with a ``sleep(0)`` GIL yield: without it a CPython
    worker that finishes a sub-switch-interval unit immediately re-grabs
    while still holding the GIL and a single thread drains the whole
    queue, so the other workers park at the barrier exactly like a bad
    static assignment.  The yield gives every worker a scheduling
    opportunity per grab, which is what makes the realized per-worker
    load converge.
    """

    __slots__ = ("_units", "_pos", "_chunk", "_lock")

    def __init__(self, units: list[WorkUnit], chunk: int) -> None:
        self._units = sorted(units, key=lambda u: (-u.weight, u.uid))
        self._pos = 0
        self._chunk = max(1, chunk)
        self._lock = threading.Lock()

    def grab(self) -> list[WorkUnit]:
        time.sleep(0)
        with self._lock:
            start = self._pos
            if start >= len(self._units):
                return []
            self._pos = min(start + self._chunk, len(self._units))
            return self._units[start : self._pos]

    def drain(self) -> list[WorkUnit]:
        """Take every remaining unit (recovery when all workers failed)."""
        with self._lock:
            rest = self._units[self._pos :]
            self._pos = len(self._units)
            return rest


class ThreadedExecutor(StratumExecutor):
    """One real thread per worker, shared lock-striped memo."""

    supports_dynamic_allocation = True

    def __init__(self) -> None:
        self._state: RunState | None = None
        self._stratum_walls: list[float] = []
        self._realized_imbalances: list[float] = []
        self._recovery = {"worker_errors": 0, "redispatched_units": 0,
                          "redispatch_attempts": 0}

    def open(self, state: RunState) -> None:
        if not isinstance(state.memo, LockStripedMemo):
            raise ValidationError(
                "ThreadedExecutor requires a LockStripedMemo"
            )
        self._state = state
        self._stratum_walls = []
        self._realized_imbalances = []

    def _prebuild(self, units: list[WorkUnit]) -> None:
        """Build shared structures (SVAs, DPsub strata) on the master
        thread, as the paper does, so workers only read them."""
        state = self._state
        assert state is not None
        for unit in units:
            if unit.algorithm == "dpsva":
                state.caches.sva.for_size(unit.size - unit.outer_size)
            elif unit.algorithm == "dpsub":
                state.caches.dpsub_stratum(unit.size)

    def run_stratum(
        self, size: int, units: list[WorkUnit], assignment: Assignment | None
    ) -> None:
        if assignment is None:
            self._run_stratum_dynamic(size, units)
            return
        state = self._state
        assert state is not None
        self._prebuild(units)
        meters = [WorkMeter() for _ in range(state.threads)]
        busy = [0.0] * state.threads
        errors: list[Exception | None] = [None] * state.threads
        injector = state.injector

        def work(t: int) -> None:
            t0 = time.perf_counter()
            try:
                if injector.enabled:
                    # A thread cannot crash the process the way a worker
                    # process can; check() maps crash to raise.
                    injector.check(
                        "worker", worker=t, stratum=size, backend="threads"
                    )
                for unit in assignment[t]:
                    run_unit(
                        unit,
                        state.memo,
                        state.ctx,
                        state.caches,
                        state.require_connected,
                        meters[t],
                        fast=state.fast_path,
                    )
            except Exception as exc:
                # Discard the partial meter: the bucket is re-run whole
                # at the barrier, so keeping partial counts would double
                # count (memo writes are idempotent and need no undo).
                errors[t] = exc
                meters[t] = WorkMeter()
            busy[t] = time.perf_counter() - t0

        start = time.perf_counter()
        workers = [
            threading.Thread(target=work, args=(t,), name=f"pdp-worker-{t}")
            for t in range(state.threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()  # the stratum barrier
        wall = time.perf_counter() - start
        self._stratum_walls.append(wall)
        for t in range(state.threads):
            if errors[t] is not None:
                meters[t] = self._recover(size, t, assignment[t], errors[t])
        for meter in meters:
            state.meter.merge(meter)
        self._realized_imbalances.append(realized_imbalance(busy))
        tracer = state.tracer
        if tracer.enabled:
            for t in range(state.threads):
                tracer.counter(
                    "worker.units", len(assignment[t]), size=size, worker=t
                )
                tracer.counter(
                    "worker.pairs",
                    meters[t].pairs_considered,
                    size=size,
                    worker=t,
                )
                tracer.gauge(
                    "worker.realized_load", busy[t], size=size, worker=t
                )
                tracer.gauge("worker.busy", busy[t], size=size, worker=t)
                tracer.gauge(
                    "worker.barrier_wait",
                    max(0.0, wall - busy[t]),
                    size=size,
                    worker=t,
                )

    def _run_stratum_dynamic(self, size: int, units: list[WorkUnit]) -> None:
        """One stratum with online work stealing from a shared queue.

        Every worker loops grab → run → grab until the queue drains; a
        grab after a worker's first is counted as a *steal* (work a
        static allocation would have parked elsewhere).  Per-unit meters
        merge into the worker meter only on unit completion, so a failed
        worker leaves behind exactly its unfinished units (recovered at
        the barrier) and never a partial count.
        """
        state = self._state
        assert state is not None
        self._prebuild(units)
        threads = state.threads
        queue = _UnitQueue(
            units, len(units) // (threads * STEAL_CHUNK_DIVISOR)
        )
        meters = [WorkMeter() for _ in range(threads)]
        busy = [0.0] * threads
        done_units = [0] * threads
        dispatched = [0] * threads
        stolen = [0] * threads
        errors: list[Exception | None] = [None] * threads
        leftovers: list[list[WorkUnit]] = [[] for _ in range(threads)]
        injector = state.injector

        def work(t: int) -> None:
            t0 = time.perf_counter()
            pending: list[WorkUnit] = []
            try:
                if injector.enabled:
                    injector.check(
                        "worker", worker=t, stratum=size, backend="threads"
                    )
                grabs = 0
                while True:
                    batch = queue.grab()
                    if not batch:
                        break
                    grabs += 1
                    dispatched[t] += len(batch)
                    if grabs > 1:
                        stolen[t] += len(batch)
                    pending = list(batch)
                    while pending:
                        unit_meter = WorkMeter()
                        run_unit(
                            pending[0],
                            state.memo,
                            state.ctx,
                            state.caches,
                            state.require_connected,
                            unit_meter,
                            fast=state.fast_path,
                        )
                        # Merge only after the unit completes: a failure
                        # mid-unit leaves no partial count behind.
                        meters[t].merge(unit_meter)
                        done_units[t] += 1
                        pending.pop(0)
            except Exception as exc:
                errors[t] = exc
                leftovers[t] = pending
            busy[t] = time.perf_counter() - t0

        start = time.perf_counter()
        workers = [
            threading.Thread(target=work, args=(t,), name=f"pdp-worker-{t}")
            for t in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()  # the stratum barrier
        wall = time.perf_counter() - start
        self._stratum_walls.append(wall)
        # If every worker failed, un-grabbed units are still queued; fold
        # them into the first failed worker's recovery batch.  (Any worker
        # finishing cleanly implies it saw the queue empty.)
        remaining = queue.drain()
        if remaining:
            first_failed = next(
                t for t in range(threads) if errors[t] is not None
            )
            leftovers[first_failed].extend(remaining)
        for t in range(threads):
            if errors[t] is not None:
                # Only the failed worker's in-flight remainder re-runs:
                # completed units already merged exactly once, and the
                # rest of the queue was drained by the other workers.
                recovered = self._recover(size, t, leftovers[t], errors[t])
                meters[t].merge(recovered)
                done_units[t] += len(leftovers[t])
        for meter in meters:
            state.meter.merge(meter)
        self._realized_imbalances.append(realized_imbalance(busy))
        tracer = state.tracer
        if tracer.enabled:
            for t in range(threads):
                tracer.counter(
                    "alloc.dispatch", dispatched[t], size=size, worker=t
                )
                tracer.counter("alloc.steal", stolen[t], size=size, worker=t)
                tracer.counter(
                    "worker.units", done_units[t], size=size, worker=t
                )
                tracer.counter(
                    "worker.pairs",
                    meters[t].pairs_considered,
                    size=size,
                    worker=t,
                )
                tracer.gauge(
                    "worker.realized_load", busy[t], size=size, worker=t
                )
                tracer.gauge("worker.busy", busy[t], size=size, worker=t)
                tracer.gauge(
                    "worker.barrier_wait",
                    max(0.0, wall - busy[t]),
                    size=size,
                    worker=t,
                )

    def _recover(
        self,
        size: int,
        t: int,
        units: list[WorkUnit],
        error: Exception,
    ) -> WorkMeter:
        """Re-run a failed worker thread's units on the master thread.

        Bounded retries with exponential backoff; the injector is
        consulted again per attempt (with a ``retry`` coordinate) so
        persistent fault plans can exhaust the budget.  Returns the
        successful attempt's meter.
        """
        state = self._state
        assert state is not None
        self._recovery["worker_errors"] += 1
        if state.tracer.enabled:
            state.tracer.counter("fault.worker_error", size=size, worker=t)
        last = error
        for attempt in range(state.retry_limit + 1):
            if attempt and state.retry_backoff:
                time.sleep(state.retry_backoff * (2 ** (attempt - 1)))
            self._recovery["redispatch_attempts"] += 1
            if state.tracer.enabled:
                state.tracer.counter(
                    "fault.redispatch", len(units), size=size, worker=t
                )
            retry_meter = WorkMeter()
            try:
                if state.injector.enabled:
                    state.injector.check(
                        "worker",
                        worker=t,
                        stratum=size,
                        backend="threads",
                        retry=attempt + 1,
                    )
                for unit in units:
                    run_unit(
                        unit,
                        state.memo,
                        state.ctx,
                        state.caches,
                        state.require_connected,
                        retry_meter,
                        fast=state.fast_path,
                    )
            except Exception as exc:
                last = exc
                continue
            self._recovery["redispatched_units"] += len(units)
            return retry_meter
        raise OptimizationError(
            f"stratum {size}: worker {t} failed and "
            f"{state.retry_limit + 1} recovery attempts were exhausted "
            f"({type(last).__name__}: {last})"
        ) from last

    def close(self) -> dict[str, Any]:
        return {
            "stratum_wall_times": list(self._stratum_walls),
            "realized_imbalances": list(self._realized_imbalances),
            "fault_recovery": dict(self._recovery),
        }
