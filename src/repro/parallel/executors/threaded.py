"""Real-thread executor.

Faithfully reproduces the paper's shared-memory design with CPython
threads: one shared lock-striped memo, per-stratum thread teams, a join as
the barrier.  Under CPython's GIL the kernels cannot overlap, so measured
wall time does *not* drop with the thread count — this executor exists to
demonstrate exactly that gate (experiment E8) and to validate that the
parallel decomposition is correct under true concurrency (final memo
contents are identical to serial runs thanks to the deterministic
tie-break).

Fault tolerance: a worker thread that raises (broken cost model, injected
fault) is caught at the stratum barrier; its partial meter is discarded
and its whole bucket is re-run on the master thread with bounded retries
and exponential backoff.  Memo writes are idempotent min-merges, so the
re-run converges on exactly the serial optimum and the merged meter stays
exact (each unit is counted by exactly one successful attempt).
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.memo.concurrent import LockStripedMemo
from repro.memo.counters import WorkMeter
from repro.parallel.allocation import Assignment
from repro.parallel.executors.base import RunState, StratumExecutor
from repro.parallel.workunits import WorkUnit, run_unit
from repro.util.errors import OptimizationError, ValidationError


class ThreadedExecutor(StratumExecutor):
    """One real thread per worker, shared lock-striped memo."""

    def __init__(self) -> None:
        self._state: RunState | None = None
        self._stratum_walls: list[float] = []
        self._recovery = {"worker_errors": 0, "redispatched_units": 0,
                          "redispatch_attempts": 0}

    def open(self, state: RunState) -> None:
        if not isinstance(state.memo, LockStripedMemo):
            raise ValidationError(
                "ThreadedExecutor requires a LockStripedMemo"
            )
        self._state = state
        self._stratum_walls = []

    def run_stratum(
        self, size: int, units: list[WorkUnit], assignment: Assignment | None
    ) -> None:
        state = self._state
        assert state is not None
        if assignment is None:
            raise ValidationError(
                "dynamic allocation is only supported by the simulated "
                "executor"
            )
        # Pre-build shared structures (SVAs, DPsub strata) on the master
        # thread, as the paper does, so workers only read them.
        for unit in units:
            if unit.algorithm == "dpsva":
                state.caches.sva.for_size(unit.size - unit.outer_size)
            elif unit.algorithm == "dpsub":
                state.caches.dpsub_stratum(unit.size)
        meters = [WorkMeter() for _ in range(state.threads)]
        busy = [0.0] * state.threads
        errors: list[Exception | None] = [None] * state.threads
        injector = state.injector

        def work(t: int) -> None:
            t0 = time.perf_counter()
            try:
                if injector.enabled:
                    # A thread cannot crash the process the way a worker
                    # process can; check() maps crash to raise.
                    injector.check(
                        "worker", worker=t, stratum=size, backend="threads"
                    )
                for unit in assignment[t]:
                    run_unit(
                        unit,
                        state.memo,
                        state.ctx,
                        state.caches,
                        state.require_connected,
                        meters[t],
                        fast=state.fast_path,
                    )
            except Exception as exc:
                # Discard the partial meter: the bucket is re-run whole
                # at the barrier, so keeping partial counts would double
                # count (memo writes are idempotent and need no undo).
                errors[t] = exc
                meters[t] = WorkMeter()
            busy[t] = time.perf_counter() - t0

        start = time.perf_counter()
        workers = [
            threading.Thread(target=work, args=(t,), name=f"pdp-worker-{t}")
            for t in range(state.threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()  # the stratum barrier
        wall = time.perf_counter() - start
        self._stratum_walls.append(wall)
        for t in range(state.threads):
            if errors[t] is not None:
                meters[t] = self._recover(size, t, assignment[t], errors[t])
        for meter in meters:
            state.meter.merge(meter)
        tracer = state.tracer
        if tracer.enabled:
            for t in range(state.threads):
                tracer.counter(
                    "worker.units", len(assignment[t]), size=size, worker=t
                )
                tracer.counter(
                    "worker.pairs",
                    meters[t].pairs_considered,
                    size=size,
                    worker=t,
                )
                tracer.gauge("worker.busy", busy[t], size=size, worker=t)
                tracer.gauge(
                    "worker.barrier_wait",
                    max(0.0, wall - busy[t]),
                    size=size,
                    worker=t,
                )

    def _recover(
        self,
        size: int,
        t: int,
        units: list[WorkUnit],
        error: Exception,
    ) -> WorkMeter:
        """Re-run a failed worker thread's bucket on the master thread.

        Bounded retries with exponential backoff; the injector is
        consulted again per attempt (with a ``retry`` coordinate) so
        persistent fault plans can exhaust the budget.  Returns the
        successful attempt's meter.
        """
        state = self._state
        assert state is not None
        self._recovery["worker_errors"] += 1
        if state.tracer.enabled:
            state.tracer.counter("fault.worker_error", size=size, worker=t)
        last = error
        for attempt in range(state.retry_limit + 1):
            if attempt and state.retry_backoff:
                time.sleep(state.retry_backoff * (2 ** (attempt - 1)))
            self._recovery["redispatch_attempts"] += 1
            if state.tracer.enabled:
                state.tracer.counter(
                    "fault.redispatch", len(units), size=size, worker=t
                )
            retry_meter = WorkMeter()
            try:
                if state.injector.enabled:
                    state.injector.check(
                        "worker",
                        worker=t,
                        stratum=size,
                        backend="threads",
                        retry=attempt + 1,
                    )
                for unit in units:
                    run_unit(
                        unit,
                        state.memo,
                        state.ctx,
                        state.caches,
                        state.require_connected,
                        retry_meter,
                        fast=state.fast_path,
                    )
            except Exception as exc:
                last = exc
                continue
            self._recovery["redispatched_units"] += len(units)
            return retry_meter
        raise OptimizationError(
            f"stratum {size}: worker {t} failed and "
            f"{state.retry_limit + 1} recovery attempts were exhausted "
            f"({type(last).__name__}: {last})"
        ) from last

    def close(self) -> dict[str, Any]:
        return {
            "stratum_wall_times": list(self._stratum_walls),
            "fault_recovery": dict(self._recovery),
        }
