"""Work units: the partitionable quantum of enumeration work.

A :class:`WorkUnit` describes a contiguous slice of one stratum's work by
*indices into deterministic lists* (the sorted per-size memo strata, or the
raw subset stratum for DPsub).  Units carry no object references, so they
are trivially picklable and — crucially for the multiprocessing executor —
mean the same thing in every process, because the referenced lists are
identical across memo replicas.

Unit weights are the candidate-pair counts the paper's total-sum
allocation balances on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.enumerate.dpsub import dpsub_stratum_candidates
from repro.enumerate.kernels import (
    dpsize_pair_kernel,
    dpsize_pair_kernel_fast,
    dpsub_block_kernel,
    dpsub_block_kernel_fast,
)
from repro.enumerate.vkernels import (
    dpsize_pair_kernel_vec,
    dpsub_block_kernel_vec,
)
from repro.memo.counters import WorkMeter
from repro.memo.table import Memo
from repro.query.context import QueryContext
from repro.sva.dpsva import SvaCache, dpsva_pair_kernel, dpsva_pair_kernel_fast
from repro.util.errors import ValidationError

PARALLEL_ALGORITHMS = ("dpsize", "dpsub", "dpsva")
"""Enumeration kernels the parallel framework can drive."""


@dataclass(frozen=True, slots=True)
class WorkUnit:
    """One slice of stratum work.

    Attributes:
        uid: Unique id within the stratum (deterministic tie-breaker).
        algorithm: Kernel this unit runs (``dpsize``/``dpsub``/``dpsva``).
        size: Result-set size of the stratum.
        outer_size: Outer-operand size for pair kernels; 0 for DPsub.
        start: First index of the slice (into the outer stratum list for
            pair kernels, into the subset stratum for DPsub).
        stop: One past the last index.
        weight: Estimated candidate pairs — the allocation currency.
    """

    uid: int
    algorithm: str
    size: int
    outer_size: int
    start: int
    stop: int
    weight: int


class KernelCaches:
    """Per-run caches shared by work units: SVAs and DPsub strata.

    Each process (and the simulated run) holds its own instance; contents
    are deterministic functions of the memo, so replicas agree.
    """

    def __init__(self, memo: Memo, meter: WorkMeter) -> None:
        self.sva = SvaCache(memo, meter)
        self._dpsub_strata: dict[int, list[int]] = {}
        self._ctx = memo.ctx

    def dpsub_stratum(self, size: int) -> list[int]:
        """Raw size-``size`` subset stratum (cached)."""
        stratum = self._dpsub_strata.get(size)
        if stratum is None:
            stratum = dpsub_stratum_candidates(self._ctx, size)
            self._dpsub_strata[size] = stratum
        return stratum


def _chunk_ranges(total: int, chunks: int):
    """Split ``range(total)`` into at most ``chunks`` near-equal slices."""
    chunks = max(1, min(chunks, total))
    base = total // chunks
    extra = total % chunks
    start = 0
    for i in range(chunks):
        length = base + (1 if i < extra else 0)
        if length == 0:
            continue
        yield start, start + length
        start += length


def stratum_units(
    algorithm: str,
    memo: Memo,
    ctx: QueryContext,
    caches: KernelCaches,
    size: int,
    threads: int,
    oversubscription: int = 4,
) -> list[WorkUnit]:
    """Generate the work units of one stratum.

    For the pair kernels (DPsize/DPsva) each size split ``(s1, s2)``
    contributes units slicing the outer stratum; for DPsub units slice the
    raw subset stratum.  ``threads * oversubscription`` bounds the unit
    count per split so the allocation scheme has enough granularity to
    balance skewed splits without drowning the master in units.
    """
    if algorithm not in PARALLEL_ALGORITHMS:
        raise ValidationError(
            f"unknown parallel algorithm {algorithm!r}; "
            f"expected one of {PARALLEL_ALGORITHMS}"
        )
    if oversubscription < 1:
        raise ValidationError("oversubscription must be >= 1")
    target_chunks = threads * oversubscription
    units: list[WorkUnit] = []
    uid = 0
    if algorithm == "dpsub":
        stratum = caches.dpsub_stratum(size)
        splits_per_set = (1 << size) - 2  # ordered proper splits per set
        for start, stop in _chunk_ranges(len(stratum), target_chunks):
            units.append(
                WorkUnit(
                    uid=uid,
                    algorithm=algorithm,
                    size=size,
                    outer_size=0,
                    start=start,
                    stop=stop,
                    weight=(stop - start) * splits_per_set,
                )
            )
            uid += 1
        return units

    for outer_size in range(1, size):
        inner_size = size - outer_size
        outer_count = len(memo.sets_of_size(outer_size))
        inner_count = len(memo.sets_of_size(inner_size))
        if outer_count == 0 or inner_count == 0:
            continue
        # Chunk each split proportionally to its share of the stratum's
        # candidate pairs, so unit weights end up comparable across splits.
        split_chunks = max(
            1,
            math.ceil(target_chunks / max(1, size - 1)),
        )
        for start, stop in _chunk_ranges(outer_count, split_chunks):
            units.append(
                WorkUnit(
                    uid=uid,
                    algorithm=algorithm,
                    size=size,
                    outer_size=outer_size,
                    start=start,
                    stop=stop,
                    weight=(stop - start) * inner_count,
                )
            )
            uid += 1
    return units


def run_unit(
    unit: WorkUnit,
    memo,
    ctx: QueryContext,
    caches: KernelCaches,
    require_connected: bool,
    meter: WorkMeter,
    real_memo: Memo | None = None,
    fast: bool = False,
) -> None:
    """Execute one work unit against ``memo``.

    ``memo`` may be a recording view (simulated executor); ``real_memo``
    supplies the stratum lists and SVA source when the view does not
    (defaults to ``memo`` itself).  ``fast`` selects the fused kernels
    (identical memo contents and meter totals; see
    :mod:`repro.enumerate.kernels`).  A memo carrying the ``vectorized``
    marker (:class:`~repro.memo.vec.VecSoAMemo`) upgrades DPsize/DPsub to
    the numpy filter kernels (:mod:`repro.enumerate.vkernels`) — still
    result-identical.
    """
    source = real_memo if real_memo is not None else memo
    vec = getattr(memo, "vectorized", False)
    if unit.algorithm == "dpsize":
        if vec:
            kernel = dpsize_pair_kernel_vec
        else:
            kernel = dpsize_pair_kernel_fast if fast else dpsize_pair_kernel
        kernel(
            memo,
            ctx,
            source.sets_of_size(unit.outer_size),
            source.sets_of_size(unit.size - unit.outer_size),
            unit.start,
            unit.stop,
            require_connected,
            meter,
        )
    elif unit.algorithm == "dpsva":
        kernel = dpsva_pair_kernel_fast if fast else dpsva_pair_kernel
        kernel(
            memo,
            ctx,
            source.sets_of_size(unit.outer_size),
            caches.sva.for_size(unit.size - unit.outer_size),
            unit.start,
            unit.stop,
            require_connected,
            meter,
        )
    elif unit.algorithm == "dpsub":
        if vec:
            kernel = dpsub_block_kernel_vec
        else:
            kernel = dpsub_block_kernel_fast if fast else dpsub_block_kernel
        kernel(
            memo,
            ctx,
            caches.dpsub_stratum(unit.size),
            unit.start,
            unit.stop,
            require_connected,
            meter,
        )
    else:  # pragma: no cover - guarded by stratum_units
        raise ValidationError(f"unknown algorithm {unit.algorithm!r}")
