"""The parallel DP scheduler (master side).

Implements the paper's master loop: strata of increasing result size,
work-unit generation, allocation to threads, execution on a pluggable
backend, and a barrier between strata.  The master's own work — generating
and assigning units — is linear in the unit count and charged to the
serial segment of the simulated clock.

Configuration is an :class:`~repro.config.OptimizerConfig`; the positional
keyword arguments remain as a compatibility shim that builds one (and
therefore shares its validation).
"""

from __future__ import annotations

import time

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel, StandardCostModel
from repro.enumerate.base import OptimizationResult, make_context
from repro.memo.concurrent import LockStripedMemo
from repro.memo.counters import WorkMeter
from repro.memo.soa import SoAMemo, soa_compatible
from repro.memo.table import Memo, extract_plan
from repro.memo.vec import VecSoAMemo
from repro.util.vectorize import resolve_vectorize
from repro.parallel.allocation import (
    DYNAMIC_ALLOCATION,
    allocate,
    allocation_imbalance,
)
from repro.parallel.executors import EXECUTORS
from repro.parallel.executors.base import RunState
from repro.parallel.executors.simulated import SimulatedExecutor
from repro.parallel.workunits import KernelCaches, stratum_units
from repro.query.context import QueryContext
from repro.query.joingraph import Query
from repro.simx.costparams import SimCostParams
from repro.trace.metrics import emit_meter_delta
from repro.trace.tracer import Tracer
from repro.util.errors import OptimizationError, ValidationError


class ParallelDP:
    """Massively parallel bottom-up DP join enumeration.

    Args:
        algorithm: Enumeration kernel — ``"dpsize"``, ``"dpsub"``, or
            ``"dpsva"`` (the paper's headline).
        threads: Degree of parallelism.
        allocation: Work-unit allocation scheme
            (:data:`repro.parallel.allocation.ALLOCATION_SCHEMES`).
        backend: ``"simulated"`` (virtual clock, default), ``"threads"``
            (real CPython threads — GIL-bound, for validation), or
            ``"processes"`` (real multiprocessing).
        cross_products: Allow cross-product joins.
        oversubscription: Work units generated per thread per stratum
            split; higher values give the allocator more granularity.
        sim_params: Virtual cost parameters for the simulated backend.
        tracer: Observability sink (:mod:`repro.trace`); per-stratum spans
            and per-worker counters are emitted when it is enabled.
        config: An :class:`~repro.config.OptimizerConfig` carrying all of
            the above.  When given, the other arguments must be left at
            their defaults.
        fast_path: Use the fused kernels (and, on the simulated/processes
            backends, the struct-of-arrays memo plus the packed wire
            format).  Result-identical to the reference path; see
            :class:`~repro.config.OptimizerConfig`.
    """

    def __init__(
        self,
        algorithm: str = "dpsize",
        threads: int = 8,
        allocation: str | None = None,
        backend: str | None = None,
        cross_products: bool = False,
        oversubscription: int | None = None,
        sim_params: SimCostParams | None = None,
        tracer: Tracer | None = None,
        config=None,
        fast_path: bool = True,
    ) -> None:
        from repro.config import OptimizerConfig

        if config is None:
            config = OptimizerConfig(
                algorithm=algorithm,
                threads=threads,
                allocation=allocation,
                backend=backend,
                cross_products=cross_products,
                oversubscription=oversubscription,
                sim_params=sim_params,
                tracer=tracer,
                fast_path=fast_path,
            )
        elif not isinstance(config, OptimizerConfig):
            raise ValidationError(
                f"config must be an OptimizerConfig, got "
                f"{type(config).__name__}"
            )
        if config.threads is None:
            raise ValidationError(
                "ParallelDP requires a parallel config (threads must be set)"
            )
        self.config = config
        self.algorithm = config.algorithm
        self.threads = config.threads
        self.allocation = config.effective_allocation
        self.backend = config.effective_backend
        self.cross_products = config.cross_products
        self.oversubscription = config.effective_oversubscription
        self.sim_params = config.sim_params or SimCostParams()
        self.tracer = config.effective_tracer
        self.fast_path = config.fast_path
        self.shared_memo = config.shared_memo
        self.vectorize = resolve_vectorize(config.vectorize)
        self.name = f"p{self.algorithm}"
        #: Diagnostic: when set, :meth:`optimize` keeps the final memo on
        #: :attr:`last_memo` so tests can compare memo contents across
        #: allocation schemes and backends.  Off by default — memos for
        #: large queries are big.
        self.keep_memo = False
        self.last_memo: Memo | None = None

    def _make_executor(self):
        if self.backend == "simulated":
            return SimulatedExecutor(self.sim_params)
        return EXECUTORS[self.backend]()

    def _make_memo(self, ctx, cost_model, estimator, meter) -> Memo:
        if self.backend == "cluster":
            # Cluster workers need install_summary/forget (shard recovery
            # and summary exchange); the SoA memo carries neither, and
            # sharded workers see too few sets for its batching to pay.
            return Memo(
                ctx, cost_model, estimator=estimator, meter=meter,
                tracer=self.tracer,
            )
        if self.backend == "threads":
            # The threads backend needs the stripe locks; the fused
            # kernels still apply, but the memo stays the reference one.
            return LockStripedMemo(
                ctx, cost_model, estimator=estimator, meter=meter,
                tracer=self.tracer,
            )
        if self.fast_path and soa_compatible(ctx, cost_model):
            memo_cls = VecSoAMemo if self.vectorize else SoAMemo
            return memo_cls(
                ctx, cost_model, estimator=estimator, meter=meter,
                tracer=self.tracer,
            )
        return Memo(
            ctx, cost_model, estimator=estimator, meter=meter,
            tracer=self.tracer,
        )

    def optimize(
        self,
        query: Query | QueryContext,
        cost_model: CostModel | None = None,
    ) -> OptimizationResult:
        """Find the optimal plan for ``query`` with parallel enumeration."""
        ctx = make_context(query)
        if not self.cross_products and not ctx.query.graph.is_connected():
            raise OptimizationError(
                "join graph is disconnected; enable cross_products"
            )
        cost_model = cost_model or self.config.cost_model or StandardCostModel()
        meter = WorkMeter()
        # The threads backend shares one estimator across worker threads;
        # its cache-hit increments would race on the shared meter, so hit
        # metering stays off there (identically for fast and reference
        # paths — parity within a backend is what matters).
        estimator = CardinalityEstimator(
            ctx, meter=None if self.backend == "threads" else meter
        )
        memo = self._make_memo(ctx, cost_model, estimator, meter)
        caches_meter = WorkMeter()
        executor = self._make_executor()
        if (
            self.allocation == DYNAMIC_ALLOCATION
            and not executor.supports_dynamic_allocation
        ):
            # Config validation already enforces this; re-check here so a
            # hand-built executor can never silently receive a None
            # assignment it does not understand.
            raise ValidationError(
                f"backend {self.backend!r} does not support dynamic "
                f"allocation (executor {type(executor).__name__} opts out "
                f"via supports_dynamic_allocation)"
            )
        tracer = self.tracer
        injector = self.config.effective_fault_injector

        start = time.perf_counter()
        with tracer.span(
            "optimize",
            algorithm=self.name,
            n=ctx.n,
            threads=self.threads,
            backend=self.backend,
            allocation=self.allocation,
        ):
            memo.init_scans()
            caches = KernelCaches(memo, caches_meter)
            state = RunState(
                ctx=ctx,
                memo=memo,
                estimator=estimator,
                meter=meter,
                caches=caches,
                caches_meter=caches_meter,
                require_connected=not self.cross_products,
                algorithm=self.algorithm,
                threads=self.threads,
                tracer=tracer,
                fast_path=self.fast_path,
                wire_packed=self.fast_path and ctx.n <= 64,
                shared_memo=self.shared_memo and self.backend == "processes",
                injector=injector,
                retry_limit=self.config.effective_retry_limit,
                retry_backoff=self.config.effective_retry_backoff,
                cluster_workers=self.config.effective_cluster_workers or 0,
                cluster_connect=tuple(self.config.cluster_connect or ()),
            )
            executor.open(state)
            # A search-space-partitioning executor (cluster) derives each
            # worker's share from the hash partition; unit generation and
            # allocation would be dead work — and would force-sort memo
            # strata the master does not even hold mid-run.
            partitioned = getattr(executor, "partitions_search_space", False)
            # Dynamic allocation has no precomputed assignment, so its
            # strata record None; extras consumers must tolerate that.
            imbalances: list[float | None] = []
            unit_counts: list[int] = []
            try:
                for size in range(2, ctx.n + 1):
                    if injector.enabled:
                        # Master-side stratum fault: a raise here escapes
                        # executor-level recovery by design (the serving
                        # layer absorbs it); recovery below this point is
                        # the executors' job.
                        injector.check(
                            "stratum", stratum=size, backend=self.backend
                        )
                    if partitioned:
                        units = []
                        assignment = None
                    else:
                        units = stratum_units(
                            self.algorithm,
                            memo,
                            ctx,
                            caches,
                            size,
                            self.threads,
                            self.oversubscription,
                        )
                        assignment = allocate(
                            units, self.threads, self.allocation
                        )
                    imbalance = (
                        None
                        if assignment is None
                        else allocation_imbalance(assignment)
                    )
                    imbalances.append(imbalance)
                    unit_counts.append(len(units))
                    if not tracer.enabled:
                        executor.run_stratum(size, units, assignment)
                        continue
                    before = meter.as_dict()
                    with tracer.span("stratum", size=size, units=len(units)):
                        executor.run_stratum(size, units, assignment)
                    tracer.counter("stratum.units", len(units), size=size)
                    if imbalance is not None:
                        tracer.gauge(
                            "allocation.imbalance", imbalance, size=size
                        )
                    emit_meter_delta(
                        tracer, before, meter.as_dict(), size=size
                    )
            finally:
                extras = executor.close()
        elapsed = time.perf_counter() - start

        meter.merge(caches_meter)
        best = memo.best()
        sim_report = extras.get("sim_report")
        if sim_report is not None:
            sim_report.allocation = self.allocation
        extras.update(
            {
                "allocation_imbalances": imbalances,
                "unit_counts": unit_counts,
                "threads": self.threads,
                "allocation": self.allocation,
                "backend": self.backend,
            }
        )
        if tracer.enabled:
            extras["trace"] = tracer
        if self.keep_memo:
            self.last_memo = memo
        return OptimizationResult(
            algorithm=self.name,
            plan=extract_plan(memo),
            cost=best.cost,
            rows=best.rows,
            meter=meter,
            memo_entries=len(memo),
            elapsed_seconds=elapsed,
            extras=extras,
        )

    def __repr__(self) -> str:
        return (
            f"ParallelDP(algorithm={self.algorithm!r}, threads={self.threads}, "
            f"allocation={self.allocation!r}, backend={self.backend!r})"
        )
