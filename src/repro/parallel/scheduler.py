"""The parallel DP scheduler (master side).

Implements the paper's master loop: strata of increasing result size,
work-unit generation, allocation to threads, execution on a pluggable
backend, and a barrier between strata.  The master's own work — generating
and assigning units — is linear in the unit count and charged to the
serial segment of the simulated clock.
"""

from __future__ import annotations

import time

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel, StandardCostModel
from repro.enumerate.base import OptimizationResult, make_context
from repro.memo.concurrent import LockStripedMemo
from repro.memo.counters import WorkMeter
from repro.memo.table import Memo, extract_plan
from repro.parallel.allocation import allocate, allocation_imbalance
from repro.parallel.executors import EXECUTORS
from repro.parallel.executors.base import RunState
from repro.parallel.executors.simulated import SimulatedExecutor
from repro.parallel.workunits import (
    PARALLEL_ALGORITHMS,
    KernelCaches,
    stratum_units,
)
from repro.query.context import QueryContext
from repro.query.joingraph import Query
from repro.simx.costparams import SimCostParams
from repro.util.errors import OptimizationError, ValidationError


class ParallelDP:
    """Massively parallel bottom-up DP join enumeration.

    Args:
        algorithm: Enumeration kernel — ``"dpsize"``, ``"dpsub"``, or
            ``"dpsva"`` (the paper's headline).
        threads: Degree of parallelism.
        allocation: Work-unit allocation scheme
            (:data:`repro.parallel.allocation.ALLOCATION_SCHEMES`).
        backend: ``"simulated"`` (virtual clock, default), ``"threads"``
            (real CPython threads — GIL-bound, for validation), or
            ``"processes"`` (real multiprocessing).
        cross_products: Allow cross-product joins.
        oversubscription: Work units generated per thread per stratum
            split; higher values give the allocator more granularity.
        sim_params: Virtual cost parameters for the simulated backend.
    """

    def __init__(
        self,
        algorithm: str = "dpsva",
        threads: int = 8,
        allocation: str = "equi_depth",
        backend: str = "simulated",
        cross_products: bool = False,
        oversubscription: int = 4,
        sim_params: SimCostParams | None = None,
    ) -> None:
        if algorithm not in PARALLEL_ALGORITHMS:
            raise ValidationError(
                f"unknown algorithm {algorithm!r}; "
                f"expected one of {PARALLEL_ALGORITHMS}"
            )
        if threads < 1:
            raise ValidationError(f"threads must be >= 1, got {threads}")
        if backend not in EXECUTORS:
            raise ValidationError(
                f"unknown backend {backend!r}; "
                f"expected one of {sorted(EXECUTORS)}"
            )
        self.algorithm = algorithm
        self.threads = threads
        self.allocation = allocation
        self.backend = backend
        self.cross_products = cross_products
        self.oversubscription = oversubscription
        self.sim_params = sim_params or SimCostParams()
        self.name = f"p{algorithm}"

    def _make_executor(self):
        if self.backend == "simulated":
            return SimulatedExecutor(self.sim_params)
        return EXECUTORS[self.backend]()

    def _make_memo(self, ctx, cost_model, estimator, meter) -> Memo:
        if self.backend == "threads":
            return LockStripedMemo(ctx, cost_model, estimator=estimator, meter=meter)
        return Memo(ctx, cost_model, estimator=estimator, meter=meter)

    def optimize(
        self,
        query: Query | QueryContext,
        cost_model: CostModel | None = None,
    ) -> OptimizationResult:
        """Find the optimal plan for ``query`` with parallel enumeration."""
        ctx = make_context(query)
        if not self.cross_products and not ctx.query.graph.is_connected():
            raise OptimizationError(
                "join graph is disconnected; enable cross_products"
            )
        cost_model = cost_model or StandardCostModel()
        estimator = CardinalityEstimator(ctx)
        meter = WorkMeter()
        memo = self._make_memo(ctx, cost_model, estimator, meter)
        caches_meter = WorkMeter()
        executor = self._make_executor()

        start = time.perf_counter()
        memo.init_scans()
        caches = KernelCaches(memo, caches_meter)
        state = RunState(
            ctx=ctx,
            memo=memo,
            estimator=estimator,
            meter=meter,
            caches=caches,
            caches_meter=caches_meter,
            require_connected=not self.cross_products,
            algorithm=self.algorithm,
            threads=self.threads,
        )
        executor.open(state)
        imbalances: list[float] = []
        unit_counts: list[int] = []
        try:
            for size in range(2, ctx.n + 1):
                units = stratum_units(
                    self.algorithm,
                    memo,
                    ctx,
                    caches,
                    size,
                    self.threads,
                    self.oversubscription,
                )
                assignment = allocate(units, self.threads, self.allocation)
                imbalances.append(
                    None
                    if assignment is None
                    else allocation_imbalance(assignment)
                )
                unit_counts.append(len(units))
                executor.run_stratum(size, units, assignment)
        finally:
            extras = executor.close()
        elapsed = time.perf_counter() - start

        meter.merge(caches_meter)
        best = memo.best()
        sim_report = extras.get("sim_report")
        if sim_report is not None:
            sim_report.allocation = self.allocation
        extras.update(
            {
                "allocation_imbalances": imbalances,
                "unit_counts": unit_counts,
                "threads": self.threads,
                "allocation": self.allocation,
                "backend": self.backend,
            }
        )
        return OptimizationResult(
            algorithm=self.name,
            plan=extract_plan(memo),
            cost=best.cost,
            rows=best.rows,
            meter=meter,
            memo_entries=len(memo),
            elapsed_seconds=elapsed,
            extras=extras,
        )

    def __repr__(self) -> str:
        return (
            f"ParallelDP(algorithm={self.algorithm!r}, threads={self.threads}, "
            f"allocation={self.allocation!r}, backend={self.backend!r})"
        )
