"""Hash partitioning of the DP search space (cluster backend).

Trummer & Koch's shared-nothing formulation partitions the *memo itself*:
every quantifier set is owned by exactly one worker, determined by a
stable hash of the set.  A worker enumerates only the result sets it
owns, which makes candidate traffic disjoint by construction — no two
workers ever compute a plan for the same set, so the per-stratum exchange
carries each winner exactly once instead of the replicated-memo backends'
overlapping candidate streams.

The hash must be identical across processes, machines, and Python
versions (``hash()`` is salted per process, so it is unusable here):
:func:`shard_of` feeds the canonical big-endian byte encoding of the
quantifier-set bitmask through ``blake2b`` and reduces the first eight
digest bytes modulo the shard count.  Placement is therefore a pure
function of ``(mask, num_shards)`` — deterministic, testable, and
independent of who computes it.

Shards are a level of indirection above workers: ownership is
``owner_map[shard_of(mask, num_shards)]``.  With one shard per worker
(the default) the map starts as the identity; when a worker dies, its
shards are reassigned to survivors (:func:`reassign`) without moving any
other shard — the recovery story in ``docs/distributed.md``.
"""

from __future__ import annotations

from hashlib import blake2b

__all__ = [
    "shard_of",
    "shard_sizes",
    "shard_balance",
    "identity_owner_map",
    "reassign",
    "owned",
]


def _canonical_bytes(mask: int) -> bytes:
    """Minimal big-endian byte encoding of a bitmask (canonical form)."""
    return mask.to_bytes((mask.bit_length() + 7) // 8 or 1, "big")


def shard_of(mask: int, num_shards: int) -> int:
    """Shard owning quantifier set ``mask`` — stable across processes.

    >>> shard_of(0b1011, 4) == shard_of(0b1011, 4)
    True
    >>> 0 <= shard_of(0b1011, 4) < 4
    True
    """
    if num_shards <= 1:
        return 0
    digest = blake2b(_canonical_bytes(mask), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


def shard_sizes(masks, num_shards: int) -> list[int]:
    """Number of masks landing in each shard."""
    sizes = [0] * num_shards
    for mask in masks:
        sizes[shard_of(mask, num_shards)] += 1
    return sizes


def shard_balance(masks, num_shards: int) -> float:
    """Max/mean shard size — 1.0 is perfect balance.

    Returns 0.0 for an empty mask collection (nothing to balance).
    """
    sizes = shard_sizes(masks, num_shards)
    total = sum(sizes)
    if total == 0:
        return 0.0
    return max(sizes) / (total / num_shards)


def identity_owner_map(num_shards: int) -> dict[int, int]:
    """The initial shard → worker map: one shard per worker."""
    return {shard: shard for shard in range(num_shards)}


def reassign(
    owner_map: dict[int, int], dead: set[int], alive: list[int]
) -> dict[int, int]:
    """New owner map with dead workers' shards spread over survivors.

    Deterministic: orphaned shards are taken in ascending order and dealt
    round-robin to the ascending survivor list, so every participant can
    compute the same map from the same failure report.  Shards already on
    survivors do not move.
    """
    if not alive:
        raise ValueError("cannot reassign shards: no surviving workers")
    survivors = sorted(alive)
    new_map = dict(owner_map)
    orphaned = sorted(s for s, w in owner_map.items() if w in dead)
    for i, shard in enumerate(orphaned):
        new_map[shard] = survivors[i % len(survivors)]
    return new_map


def owned(masks, owner_map: dict[int, int], worker: int) -> list[int]:
    """The subsequence of ``masks`` owned by ``worker`` under ``owner_map``.

    Order-preserving, so passing an ascending stratum keeps the kernels'
    deterministic iteration order.
    """
    num_shards = len(owner_map)
    return [
        mask
        for mask in masks
        if owner_map[shard_of(mask, num_shards)] == worker
    ]
