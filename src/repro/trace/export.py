"""JSON-lines import/export for recorded traces.

One event per line, in emission order — the format ``repro optimize
--trace`` writes and the ``repro trace`` subcommand reads.  A header line
(``kind: "meta"``) carries the producing run's identity so a saved file is
self-describing.
"""

from __future__ import annotations

import json
from typing import Any

from repro.trace.tracer import RecordingTracer, TraceEvent
from repro.util.errors import ValidationError

FORMAT = "repro-trace/1"
"""Wire-format identifier written in the meta line."""


def events_to_jsonl(
    events: list[TraceEvent], meta: dict[str, Any] | None = None
) -> str:
    """Serialize events (plus an optional meta header) as JSONL text."""
    lines = [json.dumps({"kind": "meta", "format": FORMAT, **(meta or {})})]
    lines.extend(json.dumps(event.as_dict()) for event in events)
    return "\n".join(lines) + "\n"


def write_jsonl(
    events: list[TraceEvent],
    path: str,
    meta: dict[str, Any] | None = None,
) -> None:
    """Write events to ``path`` in JSONL form."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(events_to_jsonl(events, meta))


def parse_jsonl(text: str) -> tuple[list[TraceEvent], dict[str, Any]]:
    """Parse JSONL text into (events, meta)."""
    events: list[TraceEvent] = []
    meta: dict[str, Any] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"not a trace file: line {lineno} is not JSON ({exc.msg})"
            ) from exc
        if not isinstance(data, dict):
            raise ValidationError(
                f"not a trace file: line {lineno} is not a JSON object"
            )
        if data.get("kind") == "meta":
            meta = {k: v for k, v in data.items() if k != "kind"}
        else:
            try:
                events.append(TraceEvent.from_dict(data))
            except KeyError as exc:
                raise ValidationError(
                    f"not a trace file: line {lineno} is missing the "
                    f"{exc.args[0]!r} field"
                ) from exc
    return events, meta


def read_jsonl(path: str) -> tuple[list[TraceEvent], dict[str, Any]]:
    """Read a trace file written by :func:`write_jsonl`."""
    with open(path, encoding="utf-8") as handle:
        return parse_jsonl(handle.read())


def tracer_from_jsonl(path: str) -> RecordingTracer:
    """Load a saved trace back into a queryable :class:`RecordingTracer`."""
    events, _ = read_jsonl(path)
    tracer = RecordingTracer()
    tracer.events.extend(events)
    return tracer
