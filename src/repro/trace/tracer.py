"""Tracer primitives: spans, counters, gauges.

The tracer is the repo's observability substrate.  Every layer of the
optimizer — serial enumerators, the parallel scheduler, the executors, the
memo — emits events against a :class:`Tracer` at *stratum/worker*
granularity (never inside the pair-enumeration hot loops).  Two concrete
tracers exist:

* :class:`NullTracer` (the default, exposed as the :data:`NULL_TRACER`
  singleton) — every operation is a no-op and ``enabled`` is False, so
  instrumented code can skip snapshotting work entirely.  ``span`` returns
  a shared no-op context manager, so a disabled trace point allocates
  nothing.
* :class:`RecordingTracer` — appends :class:`TraceEvent` records to an
  in-memory buffer.  Span nesting is tracked per thread, so worker threads
  can emit concurrently; buffers from other processes are merged with
  :meth:`RecordingTracer.ingest`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "NULL_TRACER",
]


@dataclass
class TraceEvent:
    """One recorded observation.

    Attributes:
        kind: ``"span"``, ``"counter"``, or ``"gauge"``.
        name: Event name (dotted, e.g. ``"worker.barrier_wait"``).
        value: Span duration (seconds), counter increment, or gauge level.
        start: Span start time, relative to the tracer's epoch; ``None``
            for counters and gauges (which record their emission time).
        depth: Span nesting depth within its emitting thread; 0 for
            counters and gauges.
        attrs: Free-form labels (``size``, ``worker``, ``algorithm`` …).
    """

    kind: str
    name: str
    value: float
    start: float | None = None
    depth: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form (the JSONL wire format)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "value": self.value,
            "start": self.start,
            "depth": self.depth,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`as_dict`."""
        return cls(
            kind=data["kind"],
            name=data["name"],
            value=data["value"],
            start=data.get("start"),
            depth=data.get("depth", 0),
            attrs=dict(data.get("attrs", {})),
        )


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """The tracing protocol.

    Subclasses override the three emission primitives.  ``enabled`` is the
    contract with instrumented code: when False, callers must not pay for
    snapshotting (and the primitives are guaranteed no-ops), which is what
    keeps the default configuration zero-cost.
    """

    enabled: bool = False

    def span(self, name: str, **attrs):
        """Context manager timing a region; records on exit."""
        return _NULL_SPAN

    def counter(self, name: str, value: int = 1, **attrs) -> None:
        """Record a monotonic increment."""

    def gauge(self, name: str, value: float, **attrs) -> None:
        """Record a point-in-time level."""


class NullTracer(Tracer):
    """The default tracer: records nothing, costs nothing."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()
"""Module-level singleton used wherever no tracer was configured."""


class _RecordedSpan:
    """Context manager that appends a span event on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_depth")

    def __init__(self, tracer: "RecordingTracer", name: str, attrs) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_RecordedSpan":
        stack = self._tracer._stack()
        self._depth = len(stack)
        stack.append(self)
        self._start = self._tracer._now()
        return self

    def __exit__(self, *exc_info) -> None:
        end = self._tracer._now()
        self._tracer._stack().pop()
        self._tracer._append(
            TraceEvent(
                kind="span",
                name=self._name,
                value=end - self._start,
                start=self._start,
                depth=self._depth,
                attrs=self._attrs,
            )
        )


class RecordingTracer(Tracer):
    """In-memory tracer: every emission becomes a :class:`TraceEvent`.

    Safe for concurrent emission from worker threads (event append is
    lock-guarded; span nesting state is thread-local).  Events from worker
    *processes* are serialized with :meth:`payload` on the child side and
    merged with :meth:`ingest` on the parent side.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- internals ------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, event: TraceEvent) -> None:
        with self._lock:
            self.events.append(event)

    # -- emission -------------------------------------------------------

    def span(self, name: str, **attrs) -> _RecordedSpan:
        return _RecordedSpan(self, name, attrs)

    def counter(self, name: str, value: int = 1, **attrs) -> None:
        self._append(
            TraceEvent(
                kind="counter",
                name=name,
                value=value,
                start=self._now(),
                attrs=attrs,
            )
        )

    def gauge(self, name: str, value: float, **attrs) -> None:
        self._append(
            TraceEvent(
                kind="gauge",
                name=name,
                value=value,
                start=self._now(),
                attrs=attrs,
            )
        )

    # -- aggregation ----------------------------------------------------

    def payload(self) -> list[dict[str, Any]]:
        """Picklable snapshot of all events (child-process side)."""
        with self._lock:
            return [event.as_dict() for event in self.events]

    def ingest(self, payload: list[dict[str, Any]], **extra_attrs) -> None:
        """Merge a :meth:`payload` from another tracer (parent side).

        ``extra_attrs`` are stamped onto every ingested event — the process
        executor uses this to label events with the worker id.
        """
        events = [TraceEvent.from_dict(data) for data in payload]
        if extra_attrs:
            for event in events:
                event.attrs.update(extra_attrs)
        with self._lock:
            self.events.extend(events)

    # -- inspection -----------------------------------------------------

    def spans(self, name: str | None = None) -> list[TraceEvent]:
        """Recorded spans, optionally filtered by name."""
        return [
            e
            for e in self.events
            if e.kind == "span" and (name is None or e.name == name)
        ]

    def counters(self, name: str | None = None) -> list[TraceEvent]:
        """Recorded counters, optionally filtered by name."""
        return [
            e
            for e in self.events
            if e.kind == "counter" and (name is None or e.name == name)
        ]

    def gauges(self, name: str | None = None) -> list[TraceEvent]:
        """Recorded gauges, optionally filtered by name."""
        return [
            e
            for e in self.events
            if e.kind == "gauge" and (name is None or e.name == name)
        ]

    def total(self, name: str) -> float:
        """Sum of all counter/gauge values with ``name``."""
        return sum(
            e.value for e in self.events if e.name == name and e.kind != "span"
        )

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        # An empty tracer is still a tracer: without this, ``__len__``
        # would make a freshly created instance falsy, silently disabling
        # ``if tracer:`` guards before the first event lands.
        return True

    def __repr__(self) -> str:
        return f"RecordingTracer(events={len(self.events)})"
