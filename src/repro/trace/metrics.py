"""Bridging helpers between :class:`~repro.memo.counters.WorkMeter` and
the tracer.

The enumeration hot loops already maintain exact operation counts on work
meters; rather than double-count inside those loops, instrumented code
snapshots the meter around each stratum and emits the *delta* as trace
counters.  All snapshotting is guarded by ``tracer.enabled``, so the
disabled path does no dictionary work at all.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.memo.counters import WorkMeter
from repro.trace.tracer import Tracer

METER_COUNTERS: dict[str, str] = {
    "pairs_considered": "pairs.considered",
    "pairs_valid": "pairs.valid",
    "plans_emitted": "plans.emitted",
    "memo_inserts": "memo.inserts",
    "memo_improvements": "memo.improvements",
    "est_cache_hits": "estimator.cache_hits",
    "sva_build_ops": "sva.build_ops",
    "sva_skipped_entries": "sva.skipped_entries",
    "latch_acquisitions": "memo.latch_acquisitions",
    "latch_contended": "memo.latch_contended",
}
"""Meter fields surfaced as trace counters, with their event names."""


def emit_meter_delta(
    tracer: Tracer,
    before: dict[str, int],
    after: dict[str, int],
    **attrs,
) -> None:
    """Emit counters for every surfaced meter field that advanced."""
    for field, name in METER_COUNTERS.items():
        delta = after[field] - before[field]
        if delta:
            tracer.counter(name, delta, **attrs)


@contextmanager
def stratum_scope(tracer: Tracer, meter: WorkMeter, size: int, **attrs):
    """Span one DP stratum and emit its meter-delta counters.

    A no-op (beyond the generator frame) when the tracer is disabled; the
    serial enumerators and the parallel scheduler wrap each stratum body
    in this scope.
    """
    if not tracer.enabled:
        yield
        return
    before = meter.as_dict()
    with tracer.span("stratum", size=size, **attrs):
        yield
    emit_meter_delta(tracer, before, meter.as_dict(), size=size)
