"""Structured tracing for the optimizer (spans, counters, gauges).

The observability layer behind :class:`~repro.config.OptimizerConfig`'s
``tracer`` option: a zero-cost-when-disabled :class:`Tracer` protocol, an
in-memory :class:`RecordingTracer`, a JSON-lines exporter, and table
renderers for per-stratum / per-worker analysis (``repro trace``).

Instrumentation convention (all at stratum/worker granularity — never in
the pair-enumeration hot loops):

======================  =======  ==========================================
event                   kind     meaning
======================  =======  ==========================================
``optimize``            span     one whole optimization run
``stratum``             span     one DP stratum (attr ``size``)
``stratum.units``       counter  work units generated for a stratum
``allocation.imbalance``gauge    max/mean unit-weight ratio per stratum
``worker.units``        counter  units executed by one worker (attr
                                 ``worker``)
``worker.pairs``        counter  candidate pairs inspected by one worker
``worker.busy``         gauge    per-worker busy time (virtual for the
                                 simulated backend, seconds for real ones)
``worker.barrier_wait`` gauge    time a worker idled at the stratum barrier
``pairs.*``/``memo.*``  counter  meter deltas per stratum (see
                                 :data:`repro.trace.metrics.METER_COUNTERS`)
``cache.*``             counter  plan-cache traffic per tier (attr
                                 ``tier``): ``hit`` / ``miss`` /
                                 ``eviction`` / ``stale`` /
                                 ``invalidated`` (:mod:`repro.service`)
``service.request``     counter  requests accepted by a serving tier
``service.fallback``    counter  deadline expiries degraded to a heuristic
``service.error``       counter  failed optimizations degraded to heuristic
``service.retry``       counter  optimization retry attempts
``service.shed``        counter  requests refused by admission control or
                                 a tenant quota (attr ``reason``:
                                 ``admission`` / ``quota``)
``service.warm_start``  counter  plans restored from the warm-start file
======================  =======  ==========================================
"""

from repro.trace.export import (
    events_to_jsonl,
    parse_jsonl,
    read_jsonl,
    tracer_from_jsonl,
    write_jsonl,
)
from repro.trace.metrics import METER_COUNTERS, emit_meter_delta, stratum_scope
from repro.trace.render import (
    per_cache_rows,
    per_service_rows,
    per_comm_rows,
    per_shm_rows,
    per_stratum_rows,
    per_worker_rows,
    render_trace,
    trace_summary,
)
from repro.trace.tracer import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "TraceEvent",
    "NULL_TRACER",
    "METER_COUNTERS",
    "emit_meter_delta",
    "stratum_scope",
    "events_to_jsonl",
    "parse_jsonl",
    "read_jsonl",
    "write_jsonl",
    "tracer_from_jsonl",
    "per_cache_rows",
    "per_service_rows",
    "per_comm_rows",
    "per_shm_rows",
    "per_stratum_rows",
    "per_worker_rows",
    "render_trace",
    "trace_summary",
]
