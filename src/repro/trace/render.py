"""Aggregation and rendering of recorded traces.

Turns a flat event list into the two tables the paper's analysis needs —
per-stratum (where does each DP round spend its time?) and per-worker
(how even is the load?) — plus a one-paragraph run summary.  Used by the
``repro trace`` CLI subcommand and the bench runner's trace summaries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.trace.tracer import TraceEvent

_STRATUM_COUNTERS = (
    ("stratum.units", "units"),
    ("pairs.considered", "pairs"),
    ("pairs.valid", "valid"),
    ("memo.inserts", "inserts"),
    ("memo.improvements", "improves"),
)

_WORKER_SERIES = (
    ("worker.units", "counter", "units"),
    ("worker.pairs", "counter", "pairs"),
    ("alloc.steal", "counter", "steals"),
    ("worker.busy", "gauge", "busy"),
    ("worker.barrier_wait", "gauge", "barrier_wait"),
)


def per_stratum_rows(events: list[TraceEvent]) -> list[dict[str, Any]]:
    """One row per stratum size: span wall time plus meter counters."""
    strata: dict[int, dict[str, Any]] = {}

    def row(size: int) -> dict[str, Any]:
        if size not in strata:
            strata[size] = {
                "size": size,
                "span_s": 0.0,
                "units": 0,
                "pairs": 0,
                "valid": 0,
                "inserts": 0,
                "improves": 0,
                "barrier_wait": 0.0,
            }
        return strata[size]

    names = dict(_STRATUM_COUNTERS)
    for event in events:
        size = event.attrs.get("size")
        if size is None:
            continue
        if event.kind == "span" and event.name == "stratum":
            row(size)["span_s"] += event.value
        elif event.kind == "counter" and event.name in names:
            row(size)[names[event.name]] += event.value
        elif event.kind == "gauge" and event.name == "worker.barrier_wait":
            row(size)["barrier_wait"] += event.value
    return [strata[size] for size in sorted(strata)]


def per_worker_rows(events: list[TraceEvent]) -> list[dict[str, Any]]:
    """One row per worker: units, pairs, busy time, barrier waits."""
    workers: dict[int, dict[str, float]] = defaultdict(
        lambda: {label: 0 for _, _, label in _WORKER_SERIES}
    )
    for event in events:
        worker = event.attrs.get("worker")
        if worker is None:
            continue
        for name, kind, label in _WORKER_SERIES:
            if event.kind == kind and event.name == name:
                workers[worker][label] += event.value
    return [
        {"worker": worker, **workers[worker]} for worker in sorted(workers)
    ]


_CACHE_COUNTERS = (
    ("cache.hit", "hits"),
    ("cache.miss", "misses"),
    ("cache.eviction", "evictions"),
    ("cache.stale", "stale"),
    ("cache.invalidated", "invalidated"),
)


def per_cache_rows(events: list[TraceEvent]) -> list[dict[str, Any]]:
    """One row per cache tier: hit/miss/eviction/stale/invalidated counts.

    Aggregates the ``cache.*`` counters the service's caches emit
    (:mod:`repro.service.cache`), keyed by their ``tier`` attribute.
    Returns an empty list for runs with no cache activity.
    """
    names = dict(_CACHE_COUNTERS)
    tiers: dict[str, dict[str, Any]] = {}
    for event in events:
        if event.kind != "counter" or event.name not in names:
            continue
        tier = event.attrs.get("tier", "plan")
        if tier not in tiers:
            tiers[tier] = {
                "tier": tier,
                **{label: 0 for _, label in _CACHE_COUNTERS},
            }
        tiers[tier][names[event.name]] += int(event.value)
    rows = [tiers[tier] for tier in sorted(tiers)]
    for row in rows:
        lookups = row["hits"] + row["misses"]
        row["hit_rate"] = round(row["hits"] / lookups, 4) if lookups else 0.0
    return rows


_SHM_COUNTERS = (
    ("memo.shm.attach", "attaches"),
    ("memo.shm.published_rows", "published_rows"),
    ("memo.shm.published_bytes", "published_bytes"),
    ("memo.shm.winner_rows", "winner_rows"),
    ("memo.shm.winner_bytes", "winner_bytes"),
)


def per_shm_rows(events: list[TraceEvent]) -> list[dict[str, Any]]:
    """One row per stratum size of the ``memo.shm.*`` counter group the
    shared-memory memo tier emits (:mod:`repro.memo.shm` via the process
    executor): segment attaches, rows/bytes the master published at the
    barrier, and winner rows/bytes read back from worker slots.  Returns
    an empty list for runs without the shm tier.
    """
    names = dict(_SHM_COUNTERS)
    strata: dict[int, dict[str, Any]] = {}
    for event in events:
        if event.kind != "counter" or event.name not in names:
            continue
        size = event.attrs.get("size", 0)
        if size not in strata:
            strata[size] = {
                "size": size,
                **{label: 0 for _, label in _SHM_COUNTERS},
            }
        strata[size][names[event.name]] += int(event.value)
    return [strata[size] for size in sorted(strata)]


_COMM_COUNTERS = (
    ("comm.bytes_out", "bytes_out"),
    ("comm.bytes_in", "bytes_in"),
    ("comm.rows", "rows"),
)


def per_comm_rows(events: list[TraceEvent]) -> list[dict[str, Any]]:
    """One row per stratum size of the ``comm.*`` group the distributed
    executors emit: bytes sent/received on the data path (cluster summary
    exchange, or the process backend's delta broadcast + candidate
    collection), rows moved, and the barrier-wait gauge summed across
    workers.  Returns an empty list for runs without comm counters.
    """
    names = dict(_COMM_COUNTERS)
    strata: dict[int, dict[str, Any]] = {}

    def row(size: int) -> dict[str, Any]:
        if size not in strata:
            strata[size] = {
                "size": size,
                **{label: 0 for _, label in _COMM_COUNTERS},
                "barrier_wait": 0.0,
            }
        return strata[size]

    for event in events:
        if event.kind == "counter" and event.name in names:
            size = event.attrs.get("size", 0)
            row(size)[names[event.name]] += int(event.value)
        elif event.kind == "gauge" and event.name == "comm.barrier_wait":
            size = event.attrs.get("size", 0)
            row(size)["barrier_wait"] += event.value
    return [strata[size] for size in sorted(strata)]


_SERVICE_COUNTERS = (
    ("service.request", "requests"),
    ("service.fallback", "fallbacks"),
    ("service.error", "errors"),
    ("service.retry", "retries"),
    ("service.shed", "sheds"),
    ("service.cache_error", "cache_errors"),
    ("service.warm_start", "warm_start"),
    ("service.warm_start_rejected", "warm_start_rejected"),
)


def per_service_rows(events: list[TraceEvent]) -> list[dict[str, Any]]:
    """Single-row aggregate of the ``service.*`` counters a serving tier
    emits (:mod:`repro.service.async_service`): request volume,
    degradations, sheds (with the quota subset), retries, cache faults,
    and warm-start activity.  Returns an empty list for runs with no
    service activity."""
    names = dict(_SERVICE_COUNTERS)
    totals = {label: 0 for _, label in _SERVICE_COUNTERS}
    totals["quota_sheds"] = 0
    seen = False
    for event in events:
        if event.kind != "counter" or event.name not in names:
            continue
        seen = True
        totals[names[event.name]] += int(event.value)
        if (
            event.name == "service.shed"
            and event.attrs.get("reason") == "quota"
        ):
            totals["quota_sheds"] += int(event.value)
    if not seen:
        return []
    requests = totals["requests"]
    totals["shed_rate"] = (
        round(totals["sheds"] / requests, 4) if requests else 0.0
    )
    return [totals]


def trace_summary(events: list[TraceEvent]) -> dict[str, Any]:
    """Aggregate totals for one run (the bench runner's trace columns)."""
    spans = [e for e in events if e.kind == "span"]
    optimize = [e for e in spans if e.name == "optimize"]
    return {
        "events": len(events),
        "spans": len(spans),
        "strata": len({e.attrs.get("size") for e in spans if e.name == "stratum"}),
        "wall_s": sum(e.value for e in optimize),
        "barrier_wait": sum(
            e.value
            for e in events
            if e.kind == "gauge" and e.name == "worker.barrier_wait"
        ),
        "worker_busy": sum(
            e.value
            for e in events
            if e.kind == "gauge" and e.name == "worker.busy"
        ),
    }


def render_trace(
    events: list[TraceEvent],
    meta: dict[str, Any] | None = None,
    by: str = "both",
) -> str:
    """Human-readable report: per-stratum and/or per-worker tables, a
    per-stratum comm table when the trace carries ``comm.*`` counters
    (process/cluster runs; ``by="comm"`` prints it alone), plus a
    per-cache-tier table when the trace carries ``cache.*`` counters
    (service runs)."""
    from repro.bench.reporting import format_table

    sections: list[str] = []
    if meta:
        run = {k: v for k, v in meta.items() if k != "format"}
        if run:
            sections.append(
                "run: "
                + " ".join(f"{key}={value}" for key, value in run.items())
            )
    if by in ("stratum", "both"):
        rows = per_stratum_rows(events)
        sections.append("per-stratum:\n" + format_table(rows))
    if by in ("worker", "both"):
        rows = per_worker_rows(events)
        if rows:
            sections.append("per-worker:\n" + format_table(rows))
        elif by == "worker":
            sections.append("per-worker: (no worker events — serial run?)")
    if by in ("comm", "stratum", "worker", "both"):
        comm_rows = per_comm_rows(events)
        if comm_rows:
            sections.append("comm:\n" + format_table(comm_rows))
        elif by == "comm":
            sections.append(
                "comm: (no comm events — replicated-memo or serial run?)"
            )
    shm_rows = per_shm_rows(events)
    if shm_rows:
        sections.append("memo.shm:\n" + format_table(shm_rows))
    cache_rows = per_cache_rows(events)
    if cache_rows:
        sections.append("per-cache-tier:\n" + format_table(cache_rows))
    service_rows = per_service_rows(events)
    if service_rows:
        sections.append("service:\n" + format_table(service_rows))
    summary = trace_summary(events)
    sections.append(
        f"totals: events={summary['events']} strata={summary['strata']} "
        f"barrier_wait={summary['barrier_wait']:.4g} "
        f"worker_busy={summary['worker_busy']:.4g}"
    )
    return "\n\n".join(sections)
