"""Seeded workload generation.

A :class:`WorkloadSpec` names a topology, a query size, and a seed; a
:class:`Workload` is a reproducible sequence of queries drawn from it.  This
mirrors the paper's evaluation procedure: for each (topology, n) grid point,
many random queries are generated and the reported number is an aggregate.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, replace

from repro.catalog.generator import CatalogGeneratorConfig, generate_catalog
from repro.query.joingraph import Query
from repro.query.topologies import TOPOLOGIES
from repro.util.errors import ValidationError
from repro.util.rng import spawn_seed


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Description of a family of random queries.

    Attributes:
        topology: One of :data:`repro.query.topologies.TOPOLOGIES`.
        n_relations: Number of relations per query.
        seed: Master seed; queries ``0 … count-1`` derive child seeds.
        count: Number of queries in the workload.
        catalog_config: Cardinality/width ranges for the synthetic catalog.
    """

    topology: str
    n_relations: int
    seed: int = 0
    count: int = 1
    catalog_config: CatalogGeneratorConfig = CatalogGeneratorConfig()

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValidationError(
                f"unknown topology {self.topology!r}; "
                f"expected one of {sorted(TOPOLOGIES)}"
            )
        if self.n_relations < 1:
            raise ValidationError("n_relations must be >= 1")
        if self.count < 1:
            raise ValidationError("count must be >= 1")

    def with_count(self, count: int) -> "WorkloadSpec":
        """Copy of this spec with a different query count."""
        return replace(self, count=count)


def generate_query(spec: WorkloadSpec, index: int = 0) -> Query:
    """Generate the ``index``-th query of a workload spec.

    Deterministic in ``(spec, index)``: the catalog and graph seeds are both
    derived from the spec seed and the query index.
    """
    if not 0 <= index < spec.count:
        raise ValidationError(
            f"query index {index} out of range for count={spec.count}"
        )
    child = spawn_seed(spec.seed, spec.topology, spec.n_relations, index)
    catalog = generate_catalog(
        spec.n_relations, seed=child, config=spec.catalog_config
    )
    graph = TOPOLOGIES[spec.topology](spec.n_relations, seed=child)
    label = f"{spec.topology}-n{spec.n_relations}-q{index}"
    return Query.from_catalog(catalog, graph, label=label)


class Workload:
    """A reproducible sequence of queries from one spec."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec

    def __len__(self) -> int:
        return self.spec.count

    def __iter__(self) -> Iterator[Query]:
        for index in range(self.spec.count):
            yield generate_query(self.spec, index)

    def __getitem__(self, index: int) -> Query:
        return generate_query(self.spec, index)

    def __repr__(self) -> str:
        s = self.spec
        return (
            f"Workload({s.topology}, n={s.n_relations}, count={s.count}, "
            f"seed={s.seed})"
        )
