"""Compiled query representation used by the enumerators.

:class:`QueryContext` freezes a :class:`~repro.query.joingraph.Query` into
flat arrays (adjacency bitmasks, cardinalities) and memoizes the two
predicates the enumerators evaluate in their innermost loops: connectivity
of a quantifier set and existence of a join edge between two sets.  All
enumerators — serial and parallel — run against this object, so their
operation counts are directly comparable.
"""

from __future__ import annotations

from repro.query.joingraph import Query
from repro.util.bitsets import bits_of, universe


class QueryContext:
    """Flat, read-only view of a query.

    The context is shared between worker threads in the parallel framework;
    it must therefore stay immutable after construction, with the exception
    of the internal connectivity memo, whose entries are idempotent (safe
    under racing duplicate computation).
    """

    __slots__ = (
        "query",
        "n",
        "all_mask",
        "cards",
        "adjacency",
        "edge_selectivity",
        "_connected_memo",
        "_adj_union_memo",
    )

    def __init__(self, query: Query) -> None:
        self.query = query
        self.n = query.n
        self.all_mask = universe(query.n)
        self.cards: tuple[float, ...] = tuple(query.cardinalities)
        graph = query.graph
        self.adjacency: tuple[int, ...] = tuple(
            graph.adjacency(i) for i in range(query.n)
        )
        self.edge_selectivity: dict[tuple[int, int], float] = {
            (e.u, e.v): e.selectivity for e in graph.edges
        }
        self._connected_memo: dict[int, bool] = {}
        self._adj_union_memo: dict[int, int] = {}

    def adj_union(self, mask: int) -> int:
        """Union of the adjacency masks of every relation in ``mask``.

        Memoized.  For any set ``other`` disjoint from ``mask``,
        ``adj_union(mask) & other != 0`` is equivalent to
        ``connects(mask, other)`` — the fused kernels exploit this to
        replace the per-pair graph walk with a single AND.
        """
        cached = self._adj_union_memo.get(mask)
        if cached is not None:
            return cached
        out = 0
        adjacency = self.adjacency
        for rel in bits_of(mask):
            out |= adjacency[rel]
        self._adj_union_memo[mask] = out
        return out

    def neighbours(self, mask: int) -> int:
        """Relations adjacent to ``mask``, excluding ``mask`` itself."""
        out = 0
        for rel in bits_of(mask):
            out |= self.adjacency[rel]
        return out & ~mask

    def connects(self, left: int, right: int) -> bool:
        """True iff a join edge crosses between ``left`` and ``right``."""
        adjacency = self.adjacency
        for rel in bits_of(left):
            if adjacency[rel] & right:
                return True
        return False

    def is_connected(self, mask: int) -> bool:
        """Memoized connectivity of the subgraph induced by ``mask``."""
        cached = self._connected_memo.get(mask)
        if cached is not None:
            return cached
        result = self._compute_connected(mask)
        self._connected_memo[mask] = result
        return result

    def _compute_connected(self, mask: int) -> bool:
        if mask == 0 or mask & (mask - 1) == 0:
            return True
        adjacency = self.adjacency
        start = mask & -mask
        frontier = start
        rest = mask ^ start
        while frontier and rest:
            grown = 0
            for rel in bits_of(frontier):
                grown |= adjacency[rel]
            grown &= rest
            rest ^= grown
            frontier = grown
        return rest == 0

    def cross_selectivity(self, left: int, right: int) -> float:
        """Product of selectivities of all join edges crossing the split."""
        product = 1.0
        adjacency = self.adjacency
        selectivity = self.edge_selectivity
        for rel in bits_of(left):
            crossing = adjacency[rel] & right
            for other in bits_of(crossing):
                key = (rel, other) if rel < other else (other, rel)
                product *= selectivity[key]
        return product

    def __repr__(self) -> str:
        return f"QueryContext({self.query.label!r}, n={self.n})"
