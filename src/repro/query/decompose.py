"""Join-graph decomposition for the adaptive DP/heuristic hybrid.

Exact DP is exponential in the number of relations, so past ~14 relations
it stops being an option — but real join graphs at that scale are rarely
*uniformly* dense.  Following the decomposition idea in massively-parallel
join optimization for large queries (Mancini et al., see PAPERS.md), the
graph is partitioned into **dense cores** — connected vertex sets whose
induced edge density stays above a threshold — and **sparse connectors**,
the leftover relations whose neighbourhoods are too thin to reward
exponential search.  Exact DP then optimizes each core as a sub-query
while cheap heuristics order the cores, bounding the exponential work by
the core-size cap instead of the query size.

The partition is computed from query-graph topology alone (degrees and
induced edge counts — a cheap treewidth proxy), never from cardinalities,
so it is deterministic per graph and independent of the catalog.

>>> from repro.query import WorkloadSpec, generate_query
>>> from repro.query.context import QueryContext
>>> from repro.query.decompose import decompose
>>> ctx = QueryContext(generate_query(WorkloadSpec("star", 30, seed=1)))
>>> d = decompose(ctx, core_cap=12, density_threshold=0.3)
>>> d.is_single_core
False
>>> max(core.size for core in d.cores) <= 12
True
>>> sorted(r for core in d.cores for r in core.relations) == list(range(30))
True
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.context import QueryContext
from repro.util.bitsets import bits_of, popcount
from repro.util.errors import ValidationError

DEFAULT_CORE_CAP = 12
"""Largest sub-query handed to exact DP (clique-12 is sub-second with the
fast-path kernels; every query at or below this size is a single core,
which is what makes the hybrid *adaptive*: small queries degenerate to
pure exact DP with a zero optimality gap)."""

DEFAULT_DENSITY_THRESHOLD = 0.3
"""Minimum induced edge density ``edges / C(size, 2)`` a growing core must
keep.  Chains (density ``2/k``) stop growing around six relations; cliques
(density 1) grow to the cap; stars shed their spokes as connectors."""


@dataclass(frozen=True)
class Core:
    """One dense core: a connected set of relations optimized by exact DP.

    Attributes:
        index: Position in the decomposition's core list.
        mask: Bitmask of the member relations (global numbering).
        relations: Member relations, ascending.
        internal_edges: Join edges with both endpoints inside the core.
    """

    index: int
    mask: int
    relations: tuple[int, ...]
    internal_edges: int

    @property
    def size(self) -> int:
        """Number of member relations."""
        return len(self.relations)

    @property
    def density(self) -> float:
        """Induced edge density ``edges / C(size, 2)`` (1.0 for singletons)."""
        if self.size < 2:
            return 1.0
        return self.internal_edges / (self.size * (self.size - 1) / 2)


@dataclass(frozen=True)
class Decomposition:
    """A partition of a join graph into dense cores.

    Every relation belongs to exactly one core; cores are connected
    subgraphs.  Edges not internal to any core are the *connector* edges
    the stitcher prices when it orders the cores.
    """

    cores: tuple[Core, ...]
    connector_edges: int
    core_cap: int
    density_threshold: float

    @property
    def is_single_core(self) -> bool:
        """True when the whole query fits in one core (pure exact DP)."""
        return len(self.cores) == 1

    @property
    def dp_relations(self) -> int:
        """Relations inside multi-relation cores (the exact-DP share)."""
        return sum(core.size for core in self.cores if core.size > 1)

    @property
    def heuristic_relations(self) -> int:
        """Singleton-core relations ordered purely by the heuristics."""
        return sum(core.size for core in self.cores if core.size == 1)

    def summary(self) -> str:
        """One-line human-readable description."""
        sizes = sorted((core.size for core in self.cores), reverse=True)
        return (
            f"{len(self.cores)} cores (sizes {sizes}), "
            f"{self.connector_edges} connector edges, "
            f"dp_share={self.dp_relations}/"
            f"{self.dp_relations + self.heuristic_relations}"
        )


def _internal_edges(ctx: QueryContext, mask: int) -> int:
    """Join edges with both endpoints in ``mask``."""
    count = 0
    for rel in bits_of(mask):
        count += popcount(ctx.adjacency[rel] & mask)
    return count // 2


def decompose(
    ctx: QueryContext,
    core_cap: int = DEFAULT_CORE_CAP,
    density_threshold: float = DEFAULT_DENSITY_THRESHOLD,
) -> Decomposition:
    """Partition ``ctx``'s join graph into dense cores.

    Greedy densest-first growth: seed a core at the highest-degree
    unassigned relation, then repeatedly absorb the neighbour with the
    most edges into the core, stopping when the cap is reached, the
    enlarged core's density would fall below ``density_threshold``, or no
    neighbour remains.  Repeats until every relation is assigned; isolated
    leftovers become singleton cores.  When the whole query fits under the
    cap the result is a single core — the adaptive fast path back to pure
    exact DP.

    Cores are connected by construction (growth only follows join edges),
    which the stitcher and the DP sub-queries both rely on.
    """
    if core_cap < 1:
        raise ValidationError(f"core_cap must be >= 1, got {core_cap}")
    if not 0.0 < density_threshold <= 1.0:
        raise ValidationError(
            f"density_threshold must be in (0, 1], got {density_threshold}"
        )
    n = ctx.n
    cores: list[Core] = []

    def emit(mask: int) -> None:
        cores.append(
            Core(
                index=len(cores),
                mask=mask,
                relations=tuple(bits_of(mask)),
                internal_edges=_internal_edges(ctx, mask),
            )
        )

    if n <= core_cap:
        emit(ctx.all_mask)
    else:
        remaining = ctx.all_mask
        while remaining:
            seed = max(
                bits_of(remaining),
                key=lambda r: (popcount(ctx.adjacency[r] & remaining), -r),
            )
            core = 1 << seed
            size = 1
            while size < core_cap:
                frontier = ctx.adj_union(core) & remaining & ~core
                if not frontier:
                    break
                candidate = max(
                    bits_of(frontier),
                    key=lambda r: (
                        popcount(ctx.adjacency[r] & core),
                        popcount(ctx.adjacency[r] & remaining),
                        -r,
                    ),
                )
                grown = core | (1 << candidate)
                grown_size = size + 1
                density = _internal_edges(ctx, grown) / (
                    grown_size * (grown_size - 1) / 2
                )
                if density < density_threshold:
                    break
                core = grown
                size = grown_size
            emit(core)
            remaining &= ~core

    total_edges = len(ctx.edge_selectivity)
    internal = sum(core.internal_edges for core in cores)
    decomposition = Decomposition(
        cores=tuple(cores),
        connector_edges=total_edges - internal,
        core_cap=core_cap,
        density_threshold=density_threshold,
    )
    _check_partition(ctx, decomposition)
    return decomposition


def _check_partition(ctx: QueryContext, decomposition: Decomposition) -> None:
    """Defensive invariants: exact cover and per-core connectivity."""
    union = 0
    for core in decomposition.cores:
        if union & core.mask:
            raise ValidationError(
                f"decomposition cores overlap at mask {union & core.mask:#x}"
            )
        union |= core.mask
        if not ctx.is_connected(core.mask):
            raise ValidationError(
                f"decomposition produced a disconnected core "
                f"{list(core.relations)}"
            )
    if union != ctx.all_mask:
        raise ValidationError(
            f"decomposition does not cover the query: missing "
            f"{list(bits_of(ctx.all_mask & ~union))}"
        )
