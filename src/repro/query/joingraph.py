"""Join graphs and queries.

Relations are identified by contiguous indices ``0 … n-1`` (the paper's
quantifier numbering).  An edge ``(u, v)`` with selectivity ``f`` states that
joining any intermediate containing ``u`` with one containing ``v`` applies a
filter factor ``f`` (attribute-independence assumption).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.model import Catalog
from repro.util.bitsets import bits_of, universe
from repro.util.errors import ValidationError


@dataclass(frozen=True, slots=True)
class JoinEdge:
    """An equi-join edge between two relations.

    Attributes:
        u: Smaller relation index.
        v: Larger relation index.
        selectivity: Filter factor in ``(0, 1]``.
    """

    u: int
    v: int
    selectivity: float

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValidationError(f"self-loop on relation {self.u}")
        if self.u > self.v:
            raise ValidationError(
                f"edge endpoints must be ordered: got ({self.u}, {self.v})"
            )
        if not 0.0 < self.selectivity <= 1.0:
            raise ValidationError(
                f"selectivity must be in (0, 1], got {self.selectivity}"
            )


class JoinGraph:
    """An undirected join graph over relations ``0 … n-1``.

    The graph is immutable after construction.  Adjacency is precomputed as
    bitmasks because the enumerators' connectivity tests run millions of
    times per optimization.
    """

    __slots__ = ("n", "edges", "_adjacency", "_selectivity")

    def __init__(self, n: int, edges) -> None:
        if n < 1:
            raise ValidationError(f"join graph needs >= 1 relation, got {n}")
        normalized: list[JoinEdge] = []
        seen: set[tuple[int, int]] = set()
        for edge in edges:
            if not isinstance(edge, JoinEdge):
                u, v, sel = edge
                if u > v:
                    u, v = v, u
                edge = JoinEdge(u, v, sel)
            if edge.v >= n:
                raise ValidationError(
                    f"edge ({edge.u}, {edge.v}) out of range for n={n}"
                )
            key = (edge.u, edge.v)
            if key in seen:
                raise ValidationError(f"duplicate edge {key}")
            seen.add(key)
            normalized.append(edge)
        self.n = n
        self.edges: tuple[JoinEdge, ...] = tuple(
            sorted(normalized, key=lambda e: (e.u, e.v))
        )
        adjacency = [0] * n
        selectivity: dict[tuple[int, int], float] = {}
        for edge in self.edges:
            adjacency[edge.u] |= 1 << edge.v
            adjacency[edge.v] |= 1 << edge.u
            selectivity[(edge.u, edge.v)] = edge.selectivity
        self._adjacency = adjacency
        self._selectivity = selectivity

    def adjacency(self, relation: int) -> int:
        """Bitmask of neighbours of ``relation``."""
        return self._adjacency[relation]

    def neighbours(self, mask: int) -> int:
        """Bitmask of relations adjacent to any member of ``mask``,
        excluding ``mask`` itself."""
        out = 0
        for rel in bits_of(mask):
            out |= self._adjacency[rel]
        return out & ~mask

    def edge_selectivity(self, u: int, v: int) -> float | None:
        """Selectivity of edge ``{u, v}`` or ``None`` if absent."""
        if u > v:
            u, v = v, u
        return self._selectivity.get((u, v))

    def is_connected_set(self, mask: int) -> bool:
        """True iff the subgraph induced by ``mask`` is connected.

        Empty sets are vacuously connected.
        """
        if mask == 0:
            return True
        start = mask & -mask
        frontier = start
        reached = start
        rest = mask ^ start
        while frontier and rest:
            grown = 0
            for rel in bits_of(frontier):
                grown |= self._adjacency[rel]
            grown &= rest
            reached |= grown
            rest ^= grown
            frontier = grown
        return rest == 0

    def is_connected(self) -> bool:
        """True iff the whole graph is connected."""
        return self.is_connected_set(universe(self.n))

    def connects(self, left: int, right: int) -> bool:
        """True iff some edge crosses between masks ``left`` and ``right``."""
        for rel in bits_of(left):
            if self._adjacency[rel] & right:
                return True
        return False

    def cross_selectivity(self, left: int, right: int) -> float:
        """Product of selectivities of all edges crossing ``left``/``right``."""
        product = 1.0
        for rel in bits_of(left):
            joined = self._adjacency[rel] & right
            for other in bits_of(joined):
                u, v = (rel, other) if rel < other else (other, rel)
                product *= self._selectivity[(u, v)]
        return product

    def __repr__(self) -> str:
        return f"JoinGraph(n={self.n}, edges={len(self.edges)})"


@dataclass(frozen=True)
class Query:
    """A join query: a catalog binding plus a join graph.

    ``relation_names[i]`` names the catalog table bound to graph index
    ``i``.  ``cardinalities`` is derived at construction for fast access.
    """

    graph: JoinGraph
    relation_names: tuple[str, ...]
    cardinalities: tuple[float, ...]
    label: str = "query"

    def __post_init__(self) -> None:
        if len(self.relation_names) != self.graph.n:
            raise ValidationError(
                f"{len(self.relation_names)} relation names for a graph "
                f"with n={self.graph.n}"
            )
        if len(self.cardinalities) != self.graph.n:
            raise ValidationError(
                f"{len(self.cardinalities)} cardinalities for a graph "
                f"with n={self.graph.n}"
            )
        for card in self.cardinalities:
            if card < 1:
                raise ValidationError(f"cardinality must be >= 1, got {card}")

    @property
    def n(self) -> int:
        """Number of relations."""
        return self.graph.n

    @classmethod
    def from_catalog(
        cls,
        catalog: Catalog,
        graph: JoinGraph,
        names=None,
        label: str = "query",
    ) -> "Query":
        """Bind the first ``graph.n`` catalog tables (or ``names``) to the graph."""
        chosen = list(names) if names is not None else catalog.names()[: graph.n]
        if len(chosen) != graph.n:
            raise ValidationError(
                f"need {graph.n} table names, got {len(chosen)}"
            )
        cards = tuple(float(catalog.table(name).cardinality) for name in chosen)
        return cls(
            graph=graph,
            relation_names=tuple(chosen),
            cardinalities=cards,
            label=label,
        )
