"""Search-space analysis.

Exact and closed-form counts of the quantities that determine enumeration
cost: connected quantifier sets (memo entries without cross products) and
csg-cmp pairs (the valid joins).  The closed forms for the benchmark
topologies back the complexity discussion in DESIGN.md and validate the
generic counters; the generic counters in turn validate the enumerators'
metered work in tests.
"""

from __future__ import annotations

import math

from repro.query.context import QueryContext
from repro.util.bitsets import subsets_of_size
from repro.util.errors import ValidationError


def count_connected_sets(ctx: QueryContext) -> int:
    """Number of non-empty connected quantifier sets (exact, exponential).

    Equals the number of memo entries any cross-product-free DP enumerator
    creates.
    """
    total = 0
    for k in range(1, ctx.n + 1):
        for mask in subsets_of_size(ctx.all_mask, k):
            if ctx.is_connected(mask):
                total += 1
    return total


def count_csg_cmp_pairs_exact(ctx: QueryContext) -> int:
    """Number of unordered csg-cmp pairs (exact, exponential).

    Equals half the valid ordered joins a cross-product-free enumerator
    must cost.
    """
    from repro.enumerate.dpccp import count_csg_cmp_pairs

    return count_csg_cmp_pairs(ctx)


# ---------------------------------------------------------------------------
# closed forms (Ono & Lohman / Moerkotte-Neumann style)
# ---------------------------------------------------------------------------


def connected_sets_closed_form(topology: str, n: int) -> int:
    """Closed-form connected-set count for a benchmark topology.

    * chain:  ``n(n+1)/2`` (intervals)
    * cycle:  ``n(n-1) + 1`` (arcs of every length plus the full cycle)
    * star:   ``n - 1 + 2^(n-1)`` (spokes, plus hub with any spoke set)
    * clique: ``2^n - 1`` (every non-empty subset)
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if topology == "chain":
        return n * (n + 1) // 2
    if topology == "cycle":
        if n == 1:
            return 1
        return n * (n - 1) + 1
    if topology == "star":
        if n == 1:
            return 1
        return (n - 1) + 2 ** (n - 1)
    if topology == "clique":
        return 2**n - 1
    raise ValidationError(f"no closed form for topology {topology!r}")


def csg_cmp_pairs_closed_form(topology: str, n: int) -> int:
    """Closed-form unordered csg-cmp pair count for a benchmark topology.

    * chain:  ``(n³ - n) / 6``
    * cycle:  ``n(n-1)² / 2``
    * star:   ``(n - 1) · 2^(n-2)``
    * clique: ``(3^n - 2^(n+1) + 1) / 2``
    """
    if n < 2:
        raise ValidationError(f"csg-cmp pairs need n >= 2, got {n}")
    if topology == "chain":
        return (n**3 - n) // 6
    if topology == "cycle":
        return n * (n - 1) ** 2 // 2
    if topology == "star":
        return (n - 1) * 2 ** (n - 2)
    if topology == "clique":
        return (3**n - 2 ** (n + 1) + 1) // 2
    raise ValidationError(f"no closed form for topology {topology!r}")


def dpsize_candidate_pairs(stratum_sizes: list[int]) -> int:
    """Candidate pairs DPsize inspects given per-size memo stratum sizes.

    ``stratum_sizes[k]`` is the number of memoized sets with ``k``
    members (index 0 unused).  DPsize crosses every split of every
    stratum: ``Σ_s Σ_{s1=1..s-1} |sets(s1)| · |sets(s-s1)|``.
    """
    n = len(stratum_sizes) - 1
    total = 0
    for s in range(2, n + 1):
        for s1 in range(1, s):
            total += stratum_sizes[s1] * stratum_sizes[s - s1]
    return total


def dpsub_submask_steps(n: int) -> int:
    """Submask-walk steps DPsub performs with cross products: ``3^n`` minus
    the degenerate terms (each k-subset contributes ``2^k - 2`` splits)."""
    if n < 0:
        raise ValidationError(f"n must be >= 0, got {n}")
    return sum(
        math.comb(n, k) * (2**k - 2) for k in range(2, n + 1)
    )


def stratum_sizes(ctx: QueryContext) -> list[int]:
    """Exact per-size connected-set counts (index 0 unused, = 0)."""
    sizes = [0] * (ctx.n + 1)
    for k in range(1, ctx.n + 1):
        for mask in subsets_of_size(ctx.all_mask, k):
            if ctx.is_connected(mask):
                sizes[k] += 1
    return sizes


def plan_space_report(ctx: QueryContext) -> dict:
    """Summary of a query's search-space sizes (exact counts)."""
    sizes = stratum_sizes(ctx)
    return {
        "relations": ctx.n,
        "edges": len(ctx.edge_selectivity),
        "connected_sets": sum(sizes),
        "csg_cmp_pairs": count_csg_cmp_pairs_exact(ctx),
        "dpsize_candidate_pairs": dpsize_candidate_pairs(sizes),
        "dpsub_submask_steps": dpsub_submask_steps(ctx.n),
        "max_stratum": max(sizes),
    }
