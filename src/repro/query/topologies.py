"""Benchmark join-graph topologies.

Chain, cycle, star, and clique are the four shapes used throughout the
join-ordering literature (and in the VLDB 2008 evaluation): they span the
spectrum from the sparsest connected graph (chain) to the densest (clique),
which is exactly the axis along which both the skip-vector-array savings and
the parallel speedup vary.  Grid and random graphs are provided as
additional stress shapes.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.query.joingraph import JoinGraph
from repro.util.errors import ValidationError
from repro.util.rng import derive_rng


def _selectivities(count: int, seed: int, label: str) -> list[float]:
    """Draw ``count`` selectivities log-uniformly from ``[1e-4, 0.5]``."""
    rng = derive_rng(seed, "selectivity", label)
    lo, hi = math.log(1e-4), math.log(0.5)
    return [math.exp(rng.uniform(lo, hi)) for _ in range(count)]


def _verified(graph: JoinGraph, expected_edges: int, label: str) -> JoinGraph:
    """Post-construction check: exact edge count and connectivity.

    Generator bugs at large ``n`` (an off-by-one in a grid loop, a
    truncated clique pair walk) would otherwise flow silently into every
    experiment built on the topology; a mis-sized or disconnected graph
    raises here instead.
    """
    if len(graph.edges) != expected_edges:
        raise ValidationError(
            f"{label} generator produced {len(graph.edges)} edges for "
            f"n={graph.n}, expected exactly {expected_edges}"
        )
    if graph.n > 1 and not graph.is_connected():
        raise ValidationError(
            f"{label} generator produced a disconnected graph for "
            f"n={graph.n}"
        )
    return graph


def chain_graph(n: int, seed: int = 0) -> JoinGraph:
    """Chain: ``0 — 1 — 2 — … — n-1``."""
    _require_n(n, 1)
    sels = _selectivities(max(0, n - 1), seed, "chain")
    graph = JoinGraph(n, [(i, i + 1, sels[i]) for i in range(n - 1)])
    return _verified(graph, n - 1 if n > 1 else 0, "chain")


def cycle_graph(n: int, seed: int = 0) -> JoinGraph:
    """Cycle: a chain with the additional closing edge ``n-1 — 0``."""
    _require_n(n, 3)
    sels = _selectivities(n, seed, "cycle")
    edges = [(i, i + 1, sels[i]) for i in range(n - 1)]
    edges.append((0, n - 1, sels[n - 1]))
    return _verified(JoinGraph(n, edges), n, "cycle")


def star_graph(n: int, seed: int = 0) -> JoinGraph:
    """Star: relation 0 is the hub joined to every other relation."""
    _require_n(n, 2)
    sels = _selectivities(n - 1, seed, "star")
    graph = JoinGraph(n, [(0, i, sels[i - 1]) for i in range(1, n)])
    return _verified(graph, n - 1, "star")


def clique_graph(n: int, seed: int = 0) -> JoinGraph:
    """Clique: every pair of relations is joined."""
    _require_n(n, 2)
    count = n * (n - 1) // 2
    sels = _selectivities(count, seed, "clique")
    edges = []
    k = 0
    for u in range(n):
        for v in range(u + 1, n):
            edges.append((u, v, sels[k]))
            k += 1
    return _verified(JoinGraph(n, edges), count, "clique")


def grid_graph(n: int, seed: int = 0) -> JoinGraph:
    """Grid: relations arranged in the most-square grid with ``n`` cells.

    Each relation is joined to its right and lower neighbour.  Falls back to
    a chain when ``n`` is prime-ish enough that the grid degenerates to one
    row.
    """
    _require_n(n, 1)
    rows = max(1, int(math.isqrt(n)))
    while n % rows:
        rows -= 1
    cols = n // rows
    edges_ix: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            idx = r * cols + c
            if c + 1 < cols:
                edges_ix.append((idx, idx + 1))
            if r + 1 < rows:
                edges_ix.append((idx, idx + cols))
    sels = _selectivities(len(edges_ix), seed, "grid")
    graph = JoinGraph(
        n, [(u, v, sels[i]) for i, (u, v) in enumerate(edges_ix)]
    )
    return _verified(
        graph, rows * (cols - 1) + cols * (rows - 1), "grid"
    )


def random_graph(n: int, seed: int = 0, edge_probability: float = 0.35) -> JoinGraph:
    """Connected random graph: a random spanning tree plus extra edges.

    Each non-tree pair is added independently with ``edge_probability``.
    """
    _require_n(n, 1)
    if not 0.0 <= edge_probability <= 1.0:
        raise ValidationError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    rng = derive_rng(seed, "random-structure", n)
    # Random spanning tree: attach each new vertex to a random earlier one.
    pairs: set[tuple[int, int]] = set()
    for v in range(1, n):
        u = rng.randrange(v)
        pairs.add((u, v))
    for u in range(n):
        for v in range(u + 1, n):
            if (u, v) not in pairs and rng.random() < edge_probability:
                pairs.add((u, v))
    ordered = sorted(pairs)
    sels = _selectivities(len(ordered), seed, "random")
    graph = JoinGraph(
        n, [(u, v, sels[i]) for i, (u, v) in enumerate(ordered)]
    )
    return _verified(graph, len(ordered), "random")


def _require_n(n: int, minimum: int) -> None:
    if n < minimum:
        raise ValidationError(f"topology requires n >= {minimum}, got {n}")


TOPOLOGIES: dict[str, Callable[..., JoinGraph]] = {
    "chain": chain_graph,
    "cycle": cycle_graph,
    "star": star_graph,
    "clique": clique_graph,
    "grid": grid_graph,
    "random": random_graph,
}
"""Registry of topology generators keyed by the names used in benchmarks."""
