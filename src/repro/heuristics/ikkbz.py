"""IKKBZ — optimal left-deep ordering for acyclic queries.

The Ibaraki–Kameda / Krishnamurthy–Boral–Zaniolo algorithm: for each choice
of start relation, the query tree becomes a precedence tree; subtree chains
are merged by *rank* ``(T - 1) / C`` and contradictory sequences are
normalized into compound modules.  Under an ASI cost function (``C_out``
here) the resulting order is the provably cheapest left-deep,
cross-product-free join order for that start relation; trying every start
relation gives the global optimum in O(n²) work per root.

Cyclic query graphs are handled with the classic fallback: run IKKBZ on a
minimum-selectivity spanning tree (``on_cycles="spanning_tree"``, the
default) or refuse (``on_cycles="error"``).
"""

from __future__ import annotations

import time

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel, StandardCostModel
from repro.enumerate.base import make_context
from repro.heuristics.common import left_deep_cost, result_from_order
from repro.memo.counters import WorkMeter
from repro.query.context import QueryContext
from repro.util.errors import ValidationError


class _Module:
    """A sequence of relations treated as one unit in rank space."""

    __slots__ = ("relations", "T", "C")

    def __init__(self, relations: list[int], T: float, C: float) -> None:
        self.relations = relations
        self.T = T
        self.C = C

    @property
    def rank(self) -> float:
        if self.C == 0:
            return float("-inf")
        return (self.T - 1.0) / self.C

    def sort_key(self) -> tuple[float, int]:
        return (self.rank, min(self.relations))


def _combine(a: _Module, b: _Module) -> _Module:
    """ASI concatenation: T multiplies, C composes."""
    return _Module(a.relations + b.relations, a.T * b.T, a.C + a.T * b.C)


def _spanning_tree_edges(ctx: QueryContext) -> dict[tuple[int, int], float]:
    """Minimum-selectivity spanning tree (Kruskal), ascending selectivity.

    Low-selectivity edges shrink intermediates fastest, so they are the
    ones worth respecting when a cycle must be broken.
    """
    parent = list(range(ctx.n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    chosen: dict[tuple[int, int], float] = {}
    edges = sorted(ctx.edge_selectivity.items(), key=lambda kv: (kv[1], kv[0]))
    for (u, v), sel in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            chosen[(u, v)] = sel
    return chosen


class IKKBZ:
    """IKKBZ left-deep optimizer."""

    name = "ikkbz"

    def __init__(self, on_cycles: str = "spanning_tree") -> None:
        if on_cycles not in ("spanning_tree", "error"):
            raise ValidationError(
                f"on_cycles must be 'spanning_tree' or 'error', "
                f"got {on_cycles!r}"
            )
        self.on_cycles = on_cycles

    def optimize(self, query, cost_model: CostModel | None = None):
        """Best IKKBZ order over all start relations.

        The per-root orders are each C_out-optimal; the final winner is
        chosen under the caller's cost model so results are comparable to
        the DP optima.
        """
        started = time.perf_counter()
        ctx = make_context(query)
        cost_model = cost_model or StandardCostModel()
        if not ctx.query.graph.is_connected():
            raise ValidationError(
                "IKKBZ requires a connected join graph (the algorithm "
                "never admits cross products; optimize each connected "
                "component separately)"
            )

        edges = dict(ctx.edge_selectivity)
        is_tree = len(edges) == ctx.n - 1
        if not is_tree:
            if self.on_cycles == "error":
                raise ValidationError(
                    "IKKBZ requires an acyclic join graph "
                    "(or on_cycles='spanning_tree')"
                )
            edges = _spanning_tree_edges(ctx)

        adjacency: list[list[tuple[int, float]]] = [[] for _ in range(ctx.n)]
        for (u, v), sel in edges.items():
            adjacency[u].append((v, sel))
            adjacency[v].append((u, sel))
        for entry in adjacency:
            entry.sort()

        estimator = CardinalityEstimator(ctx)
        meter = WorkMeter()
        best_order: list[int] | None = None
        best_cost = float("inf")
        for root in range(ctx.n):
            order = self._order_for_root(ctx, adjacency, root)
            meter.plans_emitted += ctx.n - 1
            cost = left_deep_cost(ctx, estimator, cost_model, order)
            if cost < best_cost:
                best_cost = cost
                best_order = order
        assert best_order is not None
        return result_from_order(
            self.name,
            ctx,
            cost_model,
            best_order,
            meter,
            started,
            extras={"used_spanning_tree": not is_tree},
        )

    def _order_for_root(
        self,
        ctx: QueryContext,
        adjacency: list[list[tuple[int, float]]],
        root: int,
    ) -> list[int]:
        """C_out-optimal left-deep order starting at ``root``."""
        children: list[list[tuple[int, float]]] = [[] for _ in range(ctx.n)]
        seen = {root}
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for neighbour, sel in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    children[node].append((neighbour, sel))
                    frontier.append(neighbour)

        def chain_of(node: int, selectivity: float) -> list[_Module]:
            """Normalized rank-ascending chain for the subtree at ``node``
            (including ``node`` itself as head)."""
            t = selectivity * ctx.cards[node]
            head = _Module([node], t, t)
            merged: list[_Module] = []
            for child, sel in children[node]:
                merged = _merge_chains(merged, chain_of(child, sel))
            # Normalize: the head is positionally fixed; absorb successors
            # whose rank falls below the head's.
            while merged and head.rank > merged[0].rank:
                head = _combine(head, merged.pop(0))
            return [head] + merged

        sequence: list[_Module] = []
        for child, sel in children[root]:
            sequence = _merge_chains(sequence, chain_of(child, sel))
        order = [root]
        for module in sequence:
            order.extend(module.relations)
        return order


def _merge_chains(a: list[_Module], b: list[_Module]) -> list[_Module]:
    """Merge two rank-ascending chains into one (stable, deterministic)."""
    out: list[_Module] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i].sort_key() <= b[j].sort_key():
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out
