"""Shared machinery for the heuristic optimizers.

Left-deep plans are manipulated as relation orders (permutations).  Costing
an order picks the cheapest join method per step — the same choice the DP
enumerators make — so heuristic costs are directly comparable to DP optima.
"""

from __future__ import annotations

import time

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel
from repro.enumerate.base import OptimizationResult, make_context
from repro.memo.counters import WorkMeter
from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.query.context import QueryContext


def left_deep_cost(
    ctx: QueryContext,
    estimator: CardinalityEstimator,
    cost_model: CostModel,
    order,
    meter: WorkMeter | None = None,
) -> float:
    """Cost of the left-deep plan joining relations in ``order``.

    Each join uses the cheapest method for its operand sizes.  Orders may
    imply cross products (prefixes without a connecting edge); the
    estimator prices those with selectivity 1 automatically.
    """
    prefix = 1 << order[0]
    prefix_rows = estimator.rows(prefix)
    cost = cost_model.scan_cost(prefix_rows)
    for rel in order[1:]:
        mask = 1 << rel
        right_rows = estimator.rows(mask)
        cost += cost_model.scan_cost(right_rows)
        prefix |= mask
        out_rows = estimator.rows(prefix)
        _, join_cost = cost_model.cheapest_join(
            prefix_rows, right_rows, out_rows
        )
        cost += join_cost
        prefix_rows = out_rows
        if meter is not None:
            meter.plans_emitted += len(cost_model.methods)
    return cost


def left_deep_plan(
    ctx: QueryContext,
    estimator: CardinalityEstimator,
    cost_model: CostModel,
    order,
) -> PlanNode:
    """Materialize the left-deep tree for ``order`` with cheapest methods."""
    plan: PlanNode = ScanNode(relation=order[0])
    prefix = 1 << order[0]
    prefix_rows = estimator.rows(prefix)
    for rel in order[1:]:
        mask = 1 << rel
        right_rows = estimator.rows(mask)
        prefix |= mask
        out_rows = estimator.rows(prefix)
        method, _ = cost_model.cheapest_join(prefix_rows, right_rows, out_rows)
        plan = JoinNode(left=plan, right=ScanNode(relation=rel), method=method)
        prefix_rows = out_rows
    return plan


def order_is_connected(ctx: QueryContext, order) -> bool:
    """True iff every prefix of ``order`` induces a connected subgraph."""
    prefix = 1 << order[0]
    for rel in order[1:]:
        mask = 1 << rel
        if not ctx.connects(prefix, mask):
            return False
        prefix |= mask
    return True


def result_from_order(
    name: str,
    query,
    cost_model: CostModel,
    order,
    meter: WorkMeter,
    started: float,
    extras: dict | None = None,
) -> OptimizationResult:
    """Package a left-deep order as an :class:`OptimizationResult`."""
    ctx = make_context(query)
    estimator = CardinalityEstimator(ctx)
    plan = left_deep_plan(ctx, estimator, cost_model, order)
    cost = left_deep_cost(ctx, estimator, cost_model, order)
    return OptimizationResult(
        algorithm=name,
        plan=plan,
        cost=cost,
        rows=estimator.rows(ctx.all_mask),
        meter=meter,
        memo_entries=0,
        elapsed_seconds=time.perf_counter() - started,
        extras={"order": list(order), **(extras or {})},
    )
