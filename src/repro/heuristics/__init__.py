"""Heuristic join-ordering baselines.

The DP enumerators guarantee optimal plans at exponential cost; these are
the classic polynomial / randomized alternatives the join-ordering
literature (Steinbrunn et al., VLDBJ 1997) benchmarks against, used here
for the plan-quality context experiment (E9):

* :class:`~repro.heuristics.goo.GOO` — greedy operator ordering (bushy).
* :class:`~repro.heuristics.ikkbz.IKKBZ` — optimal left-deep ordering for
  acyclic queries under ASI cost functions.
* :class:`~repro.heuristics.local_search.IteratedImprovement` and
  :class:`~repro.heuristics.local_search.SimulatedAnnealing` — randomized
  search over left-deep orders.

A heuristic plan is valid but can cost more than the DP optimum — never
less:

>>> from repro import optimize
>>> from repro.heuristics import GOO
>>> from repro.query import WorkloadSpec, generate_query
>>> query = generate_query(WorkloadSpec("star", 8, seed=2))
>>> GOO().optimize(query).cost >= optimize(query).cost
True

The optimization service uses these as deadline fallbacks
(:mod:`repro.service`): when exact optimization outlives its budget, the
caller gets a heuristic plan instead of an exception.
"""

from repro.heuristics.goo import GOO
from repro.heuristics.ikkbz import IKKBZ
from repro.heuristics.local_search import IteratedImprovement, SimulatedAnnealing

HEURISTICS = {
    "goo": GOO,
    "ikkbz": IKKBZ,
    "iterated_improvement": IteratedImprovement,
    "simulated_annealing": SimulatedAnnealing,
}
"""Registry of heuristic optimizers keyed by benchmark name."""

__all__ = [
    "GOO",
    "IKKBZ",
    "IteratedImprovement",
    "SimulatedAnnealing",
    "HEURISTICS",
]
