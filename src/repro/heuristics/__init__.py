"""Heuristic join-ordering baselines.

The DP enumerators guarantee optimal plans at exponential cost; these are
the classic polynomial / randomized alternatives the join-ordering
literature (Steinbrunn et al., VLDBJ 1997) benchmarks against, used here
for the plan-quality context experiment (E9):

* :class:`~repro.heuristics.goo.GOO` — greedy operator ordering (bushy).
* :class:`~repro.heuristics.ikkbz.IKKBZ` — optimal left-deep ordering for
  acyclic queries under ASI cost functions.
* :class:`~repro.heuristics.local_search.IteratedImprovement` and
  :class:`~repro.heuristics.local_search.SimulatedAnnealing` — randomized
  search over left-deep orders.
"""

from repro.heuristics.goo import GOO
from repro.heuristics.ikkbz import IKKBZ
from repro.heuristics.local_search import IteratedImprovement, SimulatedAnnealing

HEURISTICS = {
    "goo": GOO,
    "ikkbz": IKKBZ,
    "iterated_improvement": IteratedImprovement,
    "simulated_annealing": SimulatedAnnealing,
}
"""Registry of heuristic optimizers keyed by benchmark name."""

__all__ = [
    "GOO",
    "IKKBZ",
    "IteratedImprovement",
    "SimulatedAnnealing",
    "HEURISTICS",
]
