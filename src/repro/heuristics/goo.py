"""GOO — greedy operator ordering (Fegaras).

Maintains a forest of subplans (initially one scan per relation) and
repeatedly joins the pair of subplans whose join output is smallest,
producing a bushy tree in O(n³) pair evaluations.  A strong cheap baseline
for E9: usually within a small factor of the DP optimum, occasionally far
off — which is exactly the story the plan-quality table tells.
"""

from __future__ import annotations

import time

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel, StandardCostModel
from repro.cost.plan_cost import plan_cost
from repro.enumerate.base import OptimizationResult, make_context
from repro.memo.counters import WorkMeter
from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.util.errors import OptimizationError, ValidationError


class GOO:
    """Greedy operator ordering."""

    name = "goo"

    def __init__(self, cross_products: bool = False) -> None:
        self.cross_products = cross_products

    def optimize(
        self,
        query,
        cost_model: CostModel | None = None,
    ) -> OptimizationResult:
        """Greedily build a bushy plan for ``query``."""
        started = time.perf_counter()
        ctx = make_context(query)
        cost_model = cost_model or StandardCostModel()
        if not self.cross_products and not ctx.query.graph.is_connected():
            raise ValidationError(
                "GOO: join graph is disconnected; no cross-product-free "
                "plan covers all relations (pass cross_products=True to "
                "admit cross-product joins)"
            )
        estimator = CardinalityEstimator(ctx)
        meter = WorkMeter()

        forest: list[PlanNode] = [ScanNode(relation=r) for r in range(ctx.n)]
        while len(forest) > 1:
            best_pair: tuple[int, int] | None = None
            best_rows = float("inf")
            for i in range(len(forest)):
                for j in range(i + 1, len(forest)):
                    left, right = forest[i], forest[j]
                    meter.pairs_considered += 1
                    if not self.cross_products and not ctx.connects(
                        left.mask, right.mask
                    ):
                        meter.connectivity_fail += 1
                        continue
                    meter.pairs_valid += 1
                    rows = estimator.rows(left.mask | right.mask)
                    if rows < best_rows:
                        best_rows = rows
                        best_pair = (i, j)
            if best_pair is None:
                raise OptimizationError(
                    "GOO: no joinable pair (disconnected graph without "
                    "cross products)"
                )
            i, j = best_pair
            left, right = forest[i], forest[j]
            method, _ = cost_model.cheapest_join(
                estimator.rows(left.mask),
                estimator.rows(right.mask),
                best_rows,
            )
            meter.plans_emitted += len(cost_model.methods)
            joined = JoinNode(left=left, right=right, method=method)
            forest = [
                node for k, node in enumerate(forest) if k not in (i, j)
            ]
            forest.append(joined)

        plan = forest[0]
        return OptimizationResult(
            algorithm=self.name,
            plan=plan,
            cost=plan_cost(plan, estimator, cost_model),
            rows=estimator.rows(ctx.all_mask),
            meter=meter,
            memo_entries=0,
            elapsed_seconds=time.perf_counter() - started,
        )
