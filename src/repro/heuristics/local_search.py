"""Randomized join-order search: iterated improvement and simulated
annealing (Steinbrunn et al. configurations).

Both search the space of left-deep orders with the classic move set —
swap two relations, or 3-cycle three of them — costing each order with the
cheapest join method per step.  Cross products are permitted (an order may
join disconnected prefixes), exactly as in the randomized-optimization
literature, so these heuristics are compared against DP run with
``cross_products=True`` in E9.
"""

from __future__ import annotations

import math
import time

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel, StandardCostModel
from repro.enumerate.base import make_context
from repro.heuristics.common import left_deep_cost, result_from_order
from repro.memo.counters import WorkMeter
from repro.util.errors import ValidationError
from repro.util.rng import derive_rng


def _random_neighbour(order: list[int], rng) -> list[int]:
    """Apply one random move: swap (p=0.5) or 3-cycle (p=0.5).

    Orders shorter than two relations have no neighbours — returned
    unchanged (``rng.sample`` would raise on them).
    """
    n = len(order)
    out = list(order)
    if n < 2:
        return out
    if n >= 3 and rng.random() < 0.5:
        i, j, k = rng.sample(range(n), 3)
        out[i], out[j], out[k] = out[j], out[k], out[i]
    else:
        i, j = rng.sample(range(n), 2)
        out[i], out[j] = out[j], out[i]
    return out


class IteratedImprovement:
    """Multi-start hill climbing over left-deep orders.

    Args:
        restarts: Independent random starts.
        max_moves: Neighbour evaluations per start without improvement
            before the start is abandoned (local-minimum declaration).
        seed: RNG seed; runs are fully deterministic per seed.
    """

    name = "iterated_improvement"

    def __init__(self, restarts: int = 8, max_moves: int = 100, seed: int = 0) -> None:
        if restarts < 1 or max_moves < 1:
            raise ValidationError("restarts and max_moves must be >= 1")
        self.restarts = restarts
        self.max_moves = max_moves
        self.seed = seed

    def optimize(self, query, cost_model: CostModel | None = None):
        """Best order over all restarts."""
        started = time.perf_counter()
        ctx = make_context(query)
        cost_model = cost_model or StandardCostModel()
        meter = WorkMeter()
        if ctx.n == 1:
            # A single relation has exactly one (trivial) order — no
            # neighbourhood to search.
            return result_from_order(
                self.name, ctx, cost_model, [0], meter, started,
                extras={"restarts": 0},
            )
        estimator = CardinalityEstimator(ctx)

        best_order: list[int] | None = None
        best_cost = float("inf")
        for restart in range(self.restarts):
            rng = derive_rng(self.seed, "ii", restart)
            order = list(range(ctx.n))
            rng.shuffle(order)
            cost = left_deep_cost(ctx, estimator, cost_model, order, meter)
            stall = 0
            while stall < self.max_moves:
                candidate = _random_neighbour(order, rng)
                candidate_cost = left_deep_cost(
                    ctx, estimator, cost_model, candidate, meter
                )
                if candidate_cost < cost:
                    order, cost = candidate, candidate_cost
                    stall = 0
                else:
                    stall += 1
            if cost < best_cost:
                best_cost, best_order = cost, order
        assert best_order is not None
        return result_from_order(
            self.name, ctx, cost_model, best_order, meter, started,
            extras={"restarts": self.restarts},
        )


class SimulatedAnnealing:
    """Simulated annealing over left-deep orders.

    Geometric cooling from a start temperature calibrated to the initial
    cost; uphill moves accepted with probability ``exp(-delta / T)``.

    Args:
        start_temperature_factor: Start temperature as a fraction of the
            initial plan cost.
        cooling: Geometric cooling factor per round.
        moves_per_round: Neighbour evaluations per temperature step.
        min_temperature_factor: Stop when the temperature falls below this
            fraction of the initial cost.
        seed: RNG seed.
    """

    name = "simulated_annealing"

    def __init__(
        self,
        start_temperature_factor: float = 0.1,
        cooling: float = 0.9,
        moves_per_round: int = 40,
        min_temperature_factor: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if not 0 < cooling < 1:
            raise ValidationError("cooling must be in (0, 1)")
        if start_temperature_factor <= 0 or min_temperature_factor <= 0:
            raise ValidationError("temperature factors must be positive")
        if moves_per_round < 1:
            raise ValidationError("moves_per_round must be >= 1")
        self.start_temperature_factor = start_temperature_factor
        self.cooling = cooling
        self.moves_per_round = moves_per_round
        self.min_temperature_factor = min_temperature_factor
        self.seed = seed

    def optimize(self, query, cost_model: CostModel | None = None):
        """Anneal from a random order."""
        started = time.perf_counter()
        ctx = make_context(query)
        cost_model = cost_model or StandardCostModel()
        meter = WorkMeter()
        if ctx.n == 1:
            return result_from_order(
                self.name, ctx, cost_model, [0], meter, started,
                extras={"final_temperature": 0.0},
            )
        estimator = CardinalityEstimator(ctx)
        rng = derive_rng(self.seed, "sa")

        order = list(range(ctx.n))
        rng.shuffle(order)
        cost = left_deep_cost(ctx, estimator, cost_model, order, meter)
        best_order, best_cost = list(order), cost

        temperature = self.start_temperature_factor * cost
        floor = self.min_temperature_factor * cost
        while temperature > floor:
            for _ in range(self.moves_per_round):
                candidate = _random_neighbour(order, rng)
                candidate_cost = left_deep_cost(
                    ctx, estimator, cost_model, candidate, meter
                )
                delta = candidate_cost - cost
                if delta <= 0 or rng.random() < math.exp(
                    -delta / max(temperature, 1e-300)
                ):
                    order, cost = candidate, candidate_cost
                    if cost < best_cost:
                        best_order, best_cost = list(order), cost
            temperature *= self.cooling
        return result_from_order(
            self.name, ctx, cost_model, best_order, meter, started,
            extras={"final_temperature": temperature},
        )
