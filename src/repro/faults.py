"""Deterministic, seedable fault injection for the parallel + serving path.

Han et al.'s parallel DP assumes every worker finishes its allocation;
a production optimizer cannot.  This module is the chaos harness the
recovery machinery is tested (and benchmarked — E12) against: a
:class:`FaultInjector` holds a list of :class:`FaultSpec`\\ s and is
threaded through the scheduler, all three executors, the plan cache, and
the :class:`~repro.service.OptimizerService`.  Each *site* consults the
injector at well-defined points and reacts to the returned action:

========== =============================================================
site       checked at
========== =============================================================
``worker``   once per (worker, stratum) before the worker runs its units
             — in the forked worker process, the worker thread, or the
             simulated virtual thread
``stratum``  on the master, before each stratum is dispatched
``cache``    on every :class:`~repro.service.PlanCache` ``get``/``put``
``service``  in the service's miss runner, before the exact optimization
========== =============================================================

Three fault *kinds* exist.  ``raise`` raises :class:`InjectedFault`;
``delay`` stalls the site (a real sleep on the real backends, a virtual
straggler charge on the simulated one); ``crash`` kills a worker
*process* outright (``os._exit``) and degenerates to ``raise`` at sites
that have no process to kill.

Determinism: firing decisions depend only on the spec list, the seed,
and the order of matching opportunities — never on wall-clock time.
Probabilistic specs draw from a per-spec ``random.Random`` stream seeded
from ``(seed, spec index)``, so one seed reproduces one fault schedule.

>>> injector = FaultInjector.from_plan("worker:raise@worker=1,stratum=3")
>>> injector.fire("worker", worker=0, stratum=3) is None
True
>>> injector.fire("worker", worker=1, stratum=2) is None
True
>>> injector.fire("worker", worker=1, stratum=3).kind
'raise'
>>> injector.fire("worker", worker=1, stratum=3) is None  # count=1: spent
True
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import InjectedFault, ValidationError

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultAction",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "NULL_INJECTOR",
    "NullFaultInjector",
]

FAULT_SITES = ("worker", "stratum", "cache", "service")
"""Places the recovery machinery consults the injector."""

FAULT_KINDS = ("crash", "raise", "delay")
"""Supported fault behaviours."""

#: Spec keys that configure the fault itself; everything else in a plan
#: segment is a targeting coordinate matched against the site's coords.
_CONTROL_KEYS = ("count", "p", "delay")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where it strikes, what it does, and how often.

    Attributes:
        site: One of :data:`FAULT_SITES`.
        kind: One of :data:`FAULT_KINDS`.
        match: Targeting coordinates; the spec only fires when every
            listed key equals the coordinate the site reports (e.g.
            ``{"worker": 1, "stratum": 3}``).  Empty matches everywhere.
        count: Maximum number of firings; ``None`` is unlimited.
        probability: Per-opportunity firing probability (deterministic
            per seed).
        delay_seconds: Stall duration for ``delay`` faults.
    """

    site: str
    kind: str
    match: dict[str, Any] = field(default_factory=dict)
    count: int | None = 1
    probability: float = 1.0
    delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValidationError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{FAULT_SITES}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.count is not None and self.count < 1:
            raise ValidationError(
                f"fault count must be >= 1 (or None), got {self.count}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise ValidationError(
                f"fault probability must be in (0, 1], got "
                f"{self.probability}"
            )
        if self.delay_seconds < 0:
            raise ValidationError(
                f"fault delay must be >= 0, got {self.delay_seconds}"
            )


@dataclass(frozen=True, slots=True)
class FaultAction:
    """What a fired fault wants the site to do."""

    kind: str
    delay_seconds: float
    message: str


class FaultInjector:
    """Deterministic fault schedule shared by every instrumented site.

    Args:
        specs: The fault specs; opportunities are matched in list order
            and at most one spec fires per opportunity.
        seed: Seeds the per-spec probability streams.

    The injector is thread-safe (sites fire from service pool threads and
    executor worker threads concurrently) and fork-inheritable: worker
    processes forked by the process executor carry a copy whose state at
    fork time matches the master's, so targeting stays deterministic.
    """

    enabled = True

    def __init__(self, specs, seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = seed
        self._fired = [0] * len(self.specs)
        self._rngs = [
            random.Random(f"repro.faults:{seed}:{index}")
            for index in range(len(self.specs))
        ]
        self._lock = threading.Lock()

    # -- plan mini-language ---------------------------------------------

    @classmethod
    def from_plan(cls, plan: str, seed: int = 0) -> "FaultInjector":
        """Parse a fault plan string.

        Plans are ``;``-separated specs of the form
        ``site:kind[@key=value,...]``.  ``count`` (int or ``inf``),
        ``p`` (probability), and ``delay`` (seconds) configure the spec;
        any other key is a targeting coordinate (``worker``/``stratum``
        are parsed as ints, the rest kept as strings).  A leading
        ``seed=N`` segment overrides the seed::

            seed=7;worker:crash@worker=1;cache:raise@op=get,count=2
        """
        specs: list[FaultSpec] = []
        for raw in plan.split(";"):
            segment = raw.strip()
            if not segment:
                continue
            if segment.startswith("seed="):
                try:
                    seed = int(segment[len("seed="):])
                except ValueError as exc:
                    raise ValidationError(
                        f"bad fault-plan seed segment {segment!r}"
                    ) from exc
                continue
            head, _, tail = segment.partition("@")
            site, colon, kind = head.partition(":")
            if not colon or not site or not kind:
                raise ValidationError(
                    f"bad fault spec {segment!r}; expected 'site:kind' "
                    f"with optional '@key=value,...'"
                )
            match: dict[str, Any] = {}
            count: int | None = 1
            probability = 1.0
            delay = 0.05
            if tail:
                for pair in tail.split(","):
                    key, eq, value = pair.strip().partition("=")
                    if not eq or not key or not value:
                        raise ValidationError(
                            f"bad fault spec option {pair!r} in {segment!r}"
                        )
                    try:
                        if key == "count":
                            count = (
                                None if value in ("inf", "none")
                                else int(value)
                            )
                        elif key == "p":
                            probability = float(value)
                        elif key == "delay":
                            delay = float(value)
                        elif key in ("worker", "stratum"):
                            match[key] = int(value)
                        else:
                            match[key] = value
                    except ValueError as exc:
                        raise ValidationError(
                            f"bad fault spec value {pair!r} in {segment!r}"
                        ) from exc
            specs.append(
                FaultSpec(
                    site=site.strip(),
                    kind=kind.strip(),
                    match=match,
                    count=count,
                    probability=probability,
                    delay_seconds=delay,
                )
            )
        return cls(specs, seed=seed)

    # -- firing ---------------------------------------------------------

    def fire(self, site: str, **coords) -> FaultAction | None:
        """Report one opportunity at ``site``; returns the action to take.

        At most one spec fires per opportunity (first match in spec
        order).  The caller interprets the action — only the process
        executor's worker loop can honour ``crash`` literally; other
        sites treat it as ``raise`` (see :meth:`check`).
        """
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.site != site:
                    continue
                if spec.count is not None and self._fired[index] >= spec.count:
                    continue
                if any(
                    coords.get(key) != value
                    for key, value in spec.match.items()
                ):
                    continue
                if (
                    spec.probability < 1.0
                    and self._rngs[index].random() >= spec.probability
                ):
                    continue
                self._fired[index] += 1
                where = ", ".join(
                    f"{key}={value}" for key, value in sorted(coords.items())
                )
                return FaultAction(
                    kind=spec.kind,
                    delay_seconds=spec.delay_seconds,
                    message=(
                        f"injected {spec.kind} at site {site!r}"
                        + (f" ({where})" if where else "")
                    ),
                )
        return None

    def check(self, site: str, **coords) -> None:
        """Fire-and-react convenience for sites without a process to kill.

        ``delay`` sleeps for real; ``raise`` and ``crash`` both raise
        :class:`InjectedFault` (a crash with no dedicated process is
        indistinguishable from an abrupt error at that site).
        """
        action = self.fire(site, **coords)
        if action is None:
            return
        if action.kind == "delay":
            time.sleep(action.delay_seconds)
            return
        raise InjectedFault(action.message)

    # -- introspection --------------------------------------------------

    def fired(self) -> int:
        """Total faults fired so far (all specs)."""
        with self._lock:
            return sum(self._fired)

    def __repr__(self) -> str:
        return (
            f"FaultInjector(specs={len(self.specs)}, seed={self.seed}, "
            f"fired={self.fired()})"
        )


class NullFaultInjector:
    """The disabled injector: zero-cost no-ops at every site.

    Call sites guard on :attr:`enabled`, so a fault-free run never pays
    a function call on its hot paths.
    """

    enabled = False
    specs: tuple = ()

    def fire(self, site: str, **coords) -> None:
        return None

    def check(self, site: str, **coords) -> None:
        return None

    def fired(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullFaultInjector()"


NULL_INJECTOR = NullFaultInjector()
"""Shared disabled injector (the default everywhere)."""
