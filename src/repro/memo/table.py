"""The memo table.

One :class:`MemoEntry` per quantifier set, holding the best plan found so
far as two child masks plus a join method — O(1) space per entry, as the
paper's complexity analysis requires.  Plan trees are materialized on
demand with :func:`extract_plan`.

Tie-breaking is total and deterministic: when two plans for the same set
cost exactly the same, the one with the lexicographically smaller
``(left, right, method)`` key wins.  This makes the memo's final content
independent of emission order, which is the property that lets the parallel
enumerators be validated bit-for-bit against the serial ones.
"""

from __future__ import annotations

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel
from repro.memo.counters import WorkMeter
from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.plans.operators import JoinMethod
from repro.query.context import QueryContext
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.util.bitsets import popcount
from repro.util.errors import OptimizationError


class MemoEntry:
    """Best-known plan for one quantifier set.

    ``left == right == 0`` marks a scan entry.
    """

    __slots__ = ("mask", "cost", "rows", "left", "right", "method")

    def __init__(
        self,
        mask: int,
        cost: float,
        rows: float,
        left: int,
        right: int,
        method: JoinMethod,
    ) -> None:
        self.mask = mask
        self.cost = cost
        self.rows = rows
        self.left = left
        self.right = right
        self.method = method

    @property
    def is_scan(self) -> bool:
        """True for base-relation entries."""
        return self.left == 0 and self.right == 0

    def key(self) -> tuple[int, int, int]:
        """Deterministic tie-break key."""
        return (self.left, self.right, int(self.method))

    def __repr__(self) -> str:
        return (
            f"MemoEntry(mask={self.mask:#x}, cost={self.cost:.6g}, "
            f"rows={self.rows:.6g}, left={self.left:#x}, "
            f"right={self.right:#x}, method={self.method.name})"
        )


class Memo:
    """Quantifier-set → best-plan table plus per-size stratum indexes.

    The per-size lists (``sets_of_size``) are what the DPsize family
    iterates over; they are kept sorted in ascending numeric (bitmask)
    order, the order the skip vector arrays are built on.
    """

    def __init__(
        self,
        ctx: QueryContext,
        cost_model: CostModel,
        estimator: CardinalityEstimator | None = None,
        meter: WorkMeter | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.ctx = ctx
        self.cost_model = cost_model
        self.estimator = estimator or CardinalityEstimator(ctx)
        self.meter = meter or WorkMeter()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._entries: dict[int, MemoEntry] = {}
        self._by_size: list[list[int]] = [[] for _ in range(ctx.n + 1)]
        self._size_sorted: list[bool] = [True] * (ctx.n + 1)

    # ------------------------------------------------------------------
    # Content access
    # ------------------------------------------------------------------

    def __contains__(self, mask: int) -> bool:
        return mask in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, mask: int) -> MemoEntry | None:
        """Entry for ``mask`` or ``None``."""
        return self._entries.get(mask)

    def entries(self) -> list[MemoEntry]:
        """All entries (unordered)."""
        return list(self._entries.values())

    def sets_of_size(self, k: int) -> list[int]:
        """Masks with entries and exactly ``k`` members, ascending.

        The returned list must not be mutated by callers.
        """
        if not self._size_sorted[k]:
            self._by_size[k].sort()
            self._size_sorted[k] = True
        return self._by_size[k]

    def best(self) -> MemoEntry:
        """Entry for the full query; raises if optimization failed."""
        entry = self._entries.get(self.ctx.all_mask)
        if entry is None:
            raise OptimizationError(
                "no complete plan: is the join graph connected "
                "(or are cross products enabled)?"
            )
        return entry

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def init_scans(self) -> None:
        """Seed the memo with a scan entry per base relation."""
        ctx = self.ctx
        cost_model = self.cost_model
        for rel in range(ctx.n):
            mask = 1 << rel
            rows = self.estimator.rows(mask)
            entry = MemoEntry(
                mask=mask,
                cost=cost_model.scan_cost(rows),
                rows=rows,
                left=0,
                right=0,
                method=JoinMethod.SCAN,
            )
            self._store_new(entry)
        if self.tracer.enabled:
            self.tracer.counter("memo.scans", ctx.n)

    def consider_join(
        self, left: int, right: int, meter: WorkMeter | None = None
    ) -> None:
        """Cost the join of two memoized operand sets; keep the best plan.

        ``left`` is the outer operand.  Both operands must already have
        memo entries and be disjoint — the enumerator kernels guarantee
        this before calling.
        """
        meter = meter or self.meter
        entries = self._entries
        left_entry = entries[left]
        right_entry = entries[right]
        result = left | right
        out_rows = self.estimator.rows(result)
        base_cost = left_entry.cost + right_entry.cost
        cost_model = self.cost_model
        lrows = left_entry.rows
        rrows = right_entry.rows

        current = entries.get(result)
        for method in cost_model.methods:
            meter.plans_emitted += 1
            cost = base_cost + cost_model.join_cost(
                method, lrows, rrows, out_rows
            )
            if current is None:
                current = MemoEntry(result, cost, out_rows, left, right, method)
                self._store_new(current)
                meter.memo_inserts += 1
            elif cost < current.cost or (
                cost == current.cost
                and (left, right, int(method)) < current.key()
            ):
                current.cost = cost
                current.left = left
                current.right = right
                current.method = method
                meter.memo_improvements += 1

    def consider_joins(
        self, left: int, rights: list[int], meter: WorkMeter | None = None
    ) -> None:
        """Cost the join of ``left`` against each set in ``rights``.

        Semantically identical to calling :meth:`consider_join` once per
        inner set, in order.  Batched memo backends override this to hoist
        the outer operand's lookup out of the loop; the base implementation
        delegates so that subclasses overriding :meth:`consider_join`
        (lock striping, touch recording) keep their per-pair semantics.
        """
        consider = self.consider_join
        for right in rights:
            consider(left, right, meter)

    def consider_pairs(
        self,
        pairs: list[tuple[int, int]],
        meter: WorkMeter | None = None,
    ) -> None:
        """Cost a batch of ``(left, right)`` operand pairs, in order.

        The general-form sibling of :meth:`consider_joins` for callers
        whose outer operand varies per pair (the DPsub submask walk).
        Same delegation rationale as :meth:`consider_joins`.
        """
        consider = self.consider_join
        for left, right in pairs:
            consider(left, right, meter)

    def merge_candidate(
        self,
        mask: int,
        cost: float,
        rows: float,
        left: int,
        right: int,
        method: JoinMethod,
    ) -> bool:
        """Merge an externally computed candidate entry (process executor).

        Returns True if the candidate was installed.
        """
        current = self._entries.get(mask)
        if current is None:
            self._store_new(MemoEntry(mask, cost, rows, left, right, method))
            return True
        if cost < current.cost or (
            cost == current.cost
            and (left, right, int(method)) < current.key()
        ):
            current.cost = cost
            current.rows = rows
            current.left = left
            current.right = right
            current.method = method
            return True
        return False

    def install_summary(self, mask: int, cost: float, rows: float) -> bool:
        """Install a summary-only entry for a set owned by a remote shard.

        Cluster workers know only (cost, rows) for sets other workers
        own — enough to cost joins against them, not enough to extract a
        plan through them.  The entry is stored with ``left = right = 0``
        (plan extraction must never traverse it; the coordinator collects
        full rows from each set's owner instead).  An existing entry is
        left untouched — never downgrade a full local row, and summary
        costs are deterministic optima so there is nothing to merge.

        Returns True if the summary was installed.
        """
        if mask in self._entries:
            return False
        self._store_new(
            MemoEntry(mask, cost, rows, 0, 0, JoinMethod.SCAN)
        )
        return True

    def forget(self, mask: int) -> bool:
        """Drop the entry for ``mask`` entirely; True if one existed.

        Needed by cluster shard recovery: a summary entry's tie-break key
        ``(0, 0, 0)`` is lexicographically minimal, so a recompute that
        rediscovers the same optimal cost could never replace it through
        :meth:`consider_join` — the placeholder must be removed first.
        """
        entry = self._entries.pop(mask, None)
        if entry is None:
            return False
        # list.remove preserves relative order, so the sorted flag for
        # this size bucket stays valid.
        self._by_size[popcount(mask)].remove(mask)
        return True

    def _store_new(self, entry: MemoEntry) -> None:
        self._entries[entry.mask] = entry
        size = popcount(entry.mask)
        bucket = self._by_size[size]
        if bucket and entry.mask < bucket[-1]:
            self._size_sorted[size] = False
        bucket.append(entry.mask)


def extract_plan(memo: Memo, mask: int | None = None) -> PlanNode:
    """Materialize the plan tree for ``mask`` (default: the full query)."""
    if mask is None:
        mask = memo.ctx.all_mask
    entry = memo.entry(mask)
    if entry is None:
        raise OptimizationError(f"no memo entry for {mask:#x}")
    if entry.is_scan:
        return ScanNode(relation=(mask.bit_length() - 1))
    left = extract_plan(memo, entry.left)
    right = extract_plan(memo, entry.right)
    return JoinNode(left=left, right=right, method=entry.method)
