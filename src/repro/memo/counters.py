"""Operation counting.

Each enumerator increments a :class:`WorkMeter` for every primitive step:
candidate-pair inspections (with the failure mode recorded), plan
emissions, memo traffic, and skip-vector activity.  Counts are exact and
deterministic, which is what makes the simulated-multicore timing model
reproducible: virtual time is a weighted sum over these counters.

The counters are plain ``int`` attributes (not a dict) because the
increments sit in the innermost enumeration loops.
"""

from __future__ import annotations

FIELDS: tuple[str, ...] = (
    "pairs_considered",
    "disjoint_fail",
    "connectivity_fail",
    "operand_missing",
    "pairs_valid",
    "plans_emitted",
    "memo_inserts",
    "memo_improvements",
    "submask_steps",
    "conn_checks",
    "est_cache_hits",
    "sva_steps",
    "sva_skips",
    "sva_skipped_entries",
    "sva_build_ops",
    "latch_acquisitions",
    "latch_contended",
)
"""All counter names, in reporting order."""


class WorkMeter:
    """Mutable bundle of operation counters.

    Semantics of the main counters:

    * ``pairs_considered`` — candidate operand pairs inspected, including
      ones rejected by the disjointness or connectivity test.  This is the
      quantity skip vector arrays reduce.
    * ``disjoint_fail`` / ``connectivity_fail`` / ``operand_missing`` —
      rejection reasons (overlapping sets; no join edge across the split;
      an operand had no memo entry).
    * ``pairs_valid`` — pairs that survived all checks and produced plans.
    * ``plans_emitted`` — individual (pair, join-method) costings.
    * ``est_cache_hits`` — cardinality-estimator cache hits (only counted
      when the estimator carries a meter; see
      :class:`~repro.cost.estimator.CardinalityEstimator`).
    * ``sva_steps`` / ``sva_skips`` / ``sva_skipped_entries`` — skip-vector
      scan advances, skip-pointer jumps taken, and entries jumped over.
    * ``latch_acquisitions`` / ``latch_contended`` — stripe-lock takes in
      the lock-striped memo, and how many of them found the lock held
      (real-thread contention, the measured analogue of the simulated
      contention model).
    """

    __slots__ = FIELDS

    def __init__(self) -> None:
        for name in FIELDS:
            setattr(self, name, 0)

    def merge(self, other: "WorkMeter") -> None:
        """Add ``other``'s counts into this meter."""
        for name in FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all counters."""
        return {name: getattr(self, name) for name in FIELDS}

    def merge_dict(self, counts: dict[str, int]) -> None:
        """Add counts from an :meth:`as_dict` snapshot (possibly from
        another process)."""
        for name, value in counts.items():
            setattr(self, name, getattr(self, name) + value)

    def copy(self) -> "WorkMeter":
        """Independent copy of this meter."""
        out = WorkMeter()
        out.merge(self)
        return out

    @property
    def pairs_rejected(self) -> int:
        """Candidate pairs rejected by any check."""
        return self.disjoint_fail + self.connectivity_fail + self.operand_missing

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkMeter):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in FIELDS
            if getattr(self, name)
        )
        return f"WorkMeter({parts})"
