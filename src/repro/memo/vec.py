"""Vectorized struct-of-arrays memo — numpy batch costing over the SoA
columns.

:class:`VecSoAMemo` extends :class:`~repro.memo.soa.SoAMemo` with a
vectorized candidate-evaluation path: per batch, the operand columns are
gathered with numpy fancy indexing and every method's cost formula is
evaluated elementwise over the whole batch, leaving only the dict lookups,
the estimator calls, and the insert/improve decision loop in Python.  The
decision loop itself is byte-for-byte the SoA one, fed precomputed totals
— which is what keeps the parity contract (identical memo contents *and*
meter counts) trivially true.

Bit-identical floats are non-negotiable, and two numpy facts shape the
design:

* ``numpy.log2`` is **not** bit-identical to ``math.log2`` (last-ulp
  differences on ~1 in 10⁵ doubles on common platforms).  The sort-merge
  formula therefore never calls ``numpy.log2``: ``log2(rows + 1)`` is
  computed once per memo row with ``math.log2`` at insert time and cached
  in a dedicated column (``_col_log2``), so the vectorized expression
  multiplies by exactly the double the scalar path would compute.
* elementwise ``+``/``*``/``/``/``ceil`` over float64 **are** IEEE-754
  identical to the scalar operations, so every other term vectorizes
  directly.

Vector costing is built only for cost models whose formulas are known
exactly (``type(model) is StandardCostModel`` / ``CoutCostModel`` — exact
type, so subclasses with overridden costing never get a stale kernel),
and the result is probe-verified against ``join_costs`` at construction.
Any other model falls back to the scalar fused path per batch; the
vectorized *filter* kernels (:mod:`repro.enumerate.vkernels`) still apply.

The memo also maintains a dense boolean presence table over all ``2^n``
masks (for ``n <= PRESENCE_MAX_N``) so DPsub's operand-existence checks
vectorize as one fancy-indexed load per result set.
"""

from __future__ import annotations

import math
from array import array

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel, CoutCostModel, StandardCostModel
from repro.memo.counters import WorkMeter
from repro.memo.soa import _PROBE_POINTS, SoAMemo
from repro.query.context import QueryContext
from repro.trace.tracer import Tracer
from repro.util.vectorize import np as _np

#: Largest ``n`` for which the dense DPsub presence table is allocated
#: (``2^n`` bytes — 4 MiB at the cap; beyond it DPsub's vectorized kernel
#: falls back to the scalar presence checks).
PRESENCE_MAX_N = 22

#: Batches smaller than this skip the vectorized path — numpy call
#: overhead beats the win below a handful of candidates.  Thresholding is
#: semantically free: both paths produce identical rows and counts.
VEC_MIN_BATCH = 8


class _StandardVecCoster:
    """Elementwise :class:`StandardCostModel` formulas.

    Each expression mirrors ``StandardCostModel.join_costs`` term order
    exactly; ``llog2``/``rlog2`` are the cached ``math.log2(rows + 1)``
    columns (see the module docstring for why ``numpy.log2`` is banned).
    """

    def __init__(self, model: StandardCostModel) -> None:
        self._block = model.block_size
        self._hb = model.hash_build_factor
        self._hp = model.hash_probe_factor

    def method_costs(self, lrows, llog2, rrows, rlog2, out_rows):
        np = _np
        return (
            lrows + lrows * rrows,
            lrows + np.ceil(lrows / self._block) * rrows,
            self._hb * lrows + self._hp * rrows,
            lrows * llog2 + rrows * rlog2 + lrows + rrows,
        )


class _CoutVecCoster:
    """Elementwise :class:`CoutCostModel`: one method, cost = out rows."""

    def method_costs(self, lrows, llog2, rrows, rlog2, out_rows):
        return (out_rows,)


def make_vector_coster(cost_model: CostModel):
    """A vector coster for ``cost_model``, or ``None`` when unavailable.

    Exact-type matching only: a subclass may have overridden ``join_cost``
    (the ``_InconsistentModel`` shape the SoA probe guards against), and a
    vectorized kernel built from the parent's formulas would silently
    diverge.  Unknown models cost scalar batches instead — correct, just
    not vectorized.
    """
    if _np is None:
        return None
    if type(cost_model) is StandardCostModel:
        return _StandardVecCoster(cost_model)
    if type(cost_model) is CoutCostModel:
        return _CoutVecCoster()
    return None


def vectorized_costing_consistent(cost_model: CostModel, coster) -> bool:
    """Probe: does the vector coster reproduce ``join_costs`` bit-for-bit?

    Defense in depth next to the exact-type gate — run once per memo on
    the same probe points as ``fused_costing_consistent``.
    """
    if coster is None or _np is None:
        return False
    for lrows, rrows, orows in _PROBE_POINTS:
        llog2 = math.log2(lrows + 1.0)
        rlog2 = math.log2(rrows + 1.0)
        cols = coster.method_costs(
            lrows,
            llog2,
            _np.array([rrows]),
            _np.array([rlog2]),
            _np.array([orows]),
        )
        reference = cost_model.join_costs(lrows, rrows, orows)
        if len(cols) != len(reference):
            return False
        for col, want in zip(cols, reference):
            if float(col[0]) != want:
                return False
    return True


class VecSoAMemo(SoAMemo):
    """SoA memo with numpy-vectorized batch costing and a presence table.

    Drop-in for :class:`SoAMemo` (same parity contract); requires numpy.
    """

    #: Kernel-selection marker consulted by enumerators and ``run_unit``.
    vectorized = True

    def __init__(
        self,
        ctx: QueryContext,
        cost_model: CostModel,
        estimator: CardinalityEstimator | None = None,
        meter: WorkMeter | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if _np is None:  # pragma: no cover - callers gate on numpy_available
            raise RuntimeError("VecSoAMemo requires numpy (repro[perf])")
        super().__init__(ctx, cost_model, estimator, meter, tracer)
        #: ``math.log2(rows + 1.0)`` per row, maintained at insert time.
        self._col_log2 = array("d")
        coster = make_vector_coster(cost_model)
        if coster is not None and not vectorized_costing_consistent(
            cost_model, coster
        ):  # pragma: no cover - exact-type gate makes this unreachable
            coster = None
        self._coster = coster
        self._presence = (
            _np.zeros(1 << ctx.n, dtype=bool)
            if ctx.n <= PRESENCE_MAX_N
            else None
        )

    @property
    def presence_array(self):
        """Dense ``mask -> memoized?`` bool array (or ``None`` for large
        ``n``) — DPsub's vectorized operand-existence table."""
        return self._presence

    # -- auxiliary-column maintenance -----------------------------------

    def _store_row(
        self,
        mask: int,
        cost: float,
        rows: float,
        left: int,
        right: int,
        method_int: int,
    ) -> None:
        super()._store_row(mask, cost, rows, left, right, method_int)
        self._col_log2.append(math.log2(rows + 1.0))
        if self._presence is not None:
            self._presence[mask] = True

    def append_rows(self, masks, costs, rows, lefts, rights, methods) -> None:
        super().append_rows(masks, costs, rows, lefts, rights, methods)
        log2 = math.log2
        self._col_log2.extend(log2(r + 1.0) for r in rows)
        if self._presence is not None and len(masks):
            self._presence[_np.frombuffer(masks, dtype=_np.uint64)] = True

    def drop_tail(self, base: int) -> None:
        if base >= len(self._col_mask):
            return
        if self._presence is not None:
            tail = self._col_mask[base:]
            self._presence[_np.frombuffer(tail, dtype=_np.uint64)] = False
        del self._col_log2[base:]
        super().drop_tail(base)

    # -- vectorized candidate evaluation --------------------------------

    def consider_joins(
        self, left: int, rights: list[int], meter: WorkMeter | None = None
    ) -> None:
        coster = self._coster
        if coster is None or len(rights) < VEC_MIN_BATCH:
            super().consider_joins(left, rights, meter)
            return
        np = _np
        meter = meter or self.meter
        index = self._index
        estimator_rows = self.estimator.rows
        left_idx = index[left]
        lcost = self._col_cost[left_idx]
        lrows = self._col_rows[left_idx]
        llog2 = self._col_log2[left_idx]
        right_idxs = [index[right] for right in rights]
        # One estimator call per pair, in order — the cache-hit count is
        # part of the parity contract and the estimator's own cache is
        # memo-independent, so hoisting the calls ahead of the inserts
        # leaves every count unchanged.
        out_list = [estimator_rows(left | right) for right in rights]
        idx_arr = np.array(right_idxs, dtype=np.intp)
        # The frombuffer views export the column buffers; the gathers
        # copy, and the views must die before the insert loop appends
        # (array resize with a live export raises BufferError).
        cost_view = np.frombuffer(self._col_cost, dtype=np.float64)
        rows_view = np.frombuffer(self._col_rows, dtype=np.float64)
        log2_view = np.frombuffer(self._col_log2, dtype=np.float64)
        rcost = cost_view[idx_arr]
        rrows = rows_view[idx_arr]
        rlog2 = log2_view[idx_arr]
        del cost_view, rows_view, log2_view
        out_arr = np.array(out_list)
        base = lcost + rcost
        totals = [
            (base + col).tolist()
            for col in coster.method_costs(lrows, llog2, rrows, rlog2, out_arr)
        ]
        self._apply_batch(rights, [left] * len(rights), out_list, totals, meter)

    def consider_pairs(
        self,
        pairs: list[tuple[int, int]],
        meter: WorkMeter | None = None,
    ) -> None:
        coster = self._coster
        if coster is None or len(pairs) < VEC_MIN_BATCH:
            super().consider_pairs(pairs, meter)
            return
        np = _np
        meter = meter or self.meter
        index = self._index
        estimator_rows = self.estimator.rows
        lefts = [pair[0] for pair in pairs]
        rights = [pair[1] for pair in pairs]
        left_idxs = [index[left] for left in lefts]
        right_idxs = [index[right] for right in rights]
        out_list = [estimator_rows(left | right) for left, right in pairs]
        lidx = np.array(left_idxs, dtype=np.intp)
        ridx = np.array(right_idxs, dtype=np.intp)
        cost_view = np.frombuffer(self._col_cost, dtype=np.float64)
        rows_view = np.frombuffer(self._col_rows, dtype=np.float64)
        log2_view = np.frombuffer(self._col_log2, dtype=np.float64)
        lcost = cost_view[lidx]
        rcost = cost_view[ridx]
        lrows = rows_view[lidx]
        rrows = rows_view[ridx]
        llog2 = log2_view[lidx]
        rlog2 = log2_view[ridx]
        del cost_view, rows_view, log2_view
        out_arr = np.array(out_list)
        base = lcost + rcost
        totals = [
            (base + col).tolist()
            for col in coster.method_costs(lrows, llog2, rrows, rlog2, out_arr)
        ]
        self._apply_batch(rights, lefts, out_list, totals, meter)

    def _apply_batch(self, rights, lefts, out_list, totals, meter) -> None:
        """The SoA insert/improve decision loop over precomputed totals.

        ``totals[k][j]`` is ``base_cost + join_costs(...)[k]`` for pair
        ``j`` — the exact doubles the scalar loop would compute — so the
        comparisons, tie-breaks, and meter counts below replay
        :meth:`SoAMemo.consider_joins` operation-for-operation.
        """
        index = self._index
        col_cost = self._col_cost
        col_left = self._col_left
        col_right = self._col_right
        col_method = self._col_method
        method_ints = self._method_ints
        nmethods = len(method_ints)

        plans_local = 0
        inserts_local = 0
        improves_local = 0

        for j, right in enumerate(rights):
            left = lefts[j]
            result = left | right
            plans_local += nmethods

            cur_idx = index.get(result)
            if cur_idx is None:
                best_cost = totals[0][j]
                best_k = 0
                for k in range(1, nmethods):
                    cost = totals[k][j]
                    if cost < best_cost or (
                        cost == best_cost
                        and method_ints[k] < method_ints[best_k]
                    ):
                        best_cost = cost
                        best_k = k
                        improves_local += 1
                self._store_row(
                    result, best_cost, out_list[j], left, right,
                    method_ints[best_k],
                )
                inserts_local += 1
            else:
                cur_cost = col_cost[cur_idx]
                cur_left = col_left[cur_idx]
                cur_right = col_right[cur_idx]
                cur_method = col_method[cur_idx]
                changed = False
                for k in range(nmethods):
                    cost = totals[k][j]
                    if cost < cur_cost or (
                        cost == cur_cost
                        and (left, right, method_ints[k])
                        < (cur_left, cur_right, cur_method)
                    ):
                        cur_cost = cost
                        cur_left = left
                        cur_right = right
                        cur_method = method_ints[k]
                        changed = True
                        improves_local += 1
                if changed:
                    col_cost[cur_idx] = cur_cost
                    col_left[cur_idx] = cur_left
                    col_right[cur_idx] = cur_right
                    col_method[cur_idx] = cur_method

        meter.plans_emitted += plans_local
        if inserts_local:
            meter.memo_inserts += inserts_local
        if improves_local:
            meter.memo_improvements += improves_local
