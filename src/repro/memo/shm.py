"""Shared-memory memo tier — zero-copy stratum publishing for the
process backend.

The multiprocessing executor's replicas historically stayed consistent by
shipping every completed stratum over a pipe to every worker (see
:mod:`repro.parallel.wire`).  This module replaces that per-stratum wire
hop with POSIX shared memory: the master lays the SoA memo columns into a
named ``multiprocessing.shared_memory`` segment, workers attach read-only
and splice new rows straight into their replicas, and each worker ships
back only its **winner rows** (the rows it inserted this stratum) through
a small per-worker shared-memory slot.  Pipe traffic drops to fixed-size
control tuples regardless of stratum width.

Layout
------
Segments hold rows in the SoA column order at fixed offsets.  For a
segment of capacity ``C`` rows (``C = nbytes // ROW_BYTES``, 41 bytes per
row)::

    [0,    8C)  mask    uint64      [24C, 32C)  left    uint64
    [8C,  16C)  cost    float64     [32C, 40C)  right   uint64
    [16C, 24C)  rows    float64     [40C, 41C)  method  uint8

Protocol
--------
* **Publish** (master, at each stratum barrier): copy the memo's new row
  tail into the segment.  Rows are append-only and stratum-ordered, so
  the published prefix is immutable — readers never race a writer.
* **Grow**: a bigger segment is a new *generation* with a fresh name; the
  master copies the full row prefix in, unlinks the old name immediately
  (POSIX keeps live mappings valid), and the new name travels in the next
  sync descriptor.  Workers re-attach when the name changes.
* **Sync** (worker, on each stratum message): drop the replica's own
  overlay rows (its previous stratum's speculative inserts), splice in
  the published rows it has not applied yet, and start a new overlay.  A
  descriptor whose published count equals the applied count is a
  mid-stratum re-dispatch — the overlay is kept, mirroring the wire
  path's accumulate semantics.
* **Winners** (worker, per reply): bulk-copy the overlay rows into the
  worker's winner slot and reply with just the row count; the master
  reads the slot and min-merges.  A slot too small for the overlay falls
  back to the classic packed wire reply and the master grows the slot.

Ownership and cleanup
---------------------
The **master creates and unlinks every segment**; workers only attach
and close.  Unlinks happen in :meth:`MasterShm.close` (reached via the
scheduler's ``finally``, so mid-stratum exceptions clean up too), in
:meth:`MasterShm.retire_worker` for a dead worker's slot, and eagerly on
grow.  The one unavoidable leak is a hard kill of the *master* itself
(``SIGKILL`` skips ``finally``); ``docs/memory.md`` documents how to find
and remove such orphans under ``/dev/shm``.
"""

from __future__ import annotations

import itertools
import os
from array import array

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

#: Name prefix of every segment this module creates; the troubleshooting
#: story (and the hygiene tests) key off it.
SEGMENT_PREFIX = "repro-shm"

#: Bytes per row: mask/cost/rows/left/right at 8 bytes each + 1 method byte.
ROW_BYTES = 41

#: First element of a sync-descriptor delta
#: ``(DESCRIPTOR_TAG, segment_name, published_rows, winner_name)``.
DESCRIPTOR_TAG = "shm"

#: First element of a master-side winner payload
#: ``(WINNER_TAG, masks, costs, rows, lefts, rights, methods)`` — same
#: column shape as the packed wire format, sourced from a winner slot.
WINNER_TAG = "shmwin"

#: Nominal pickled size of one shm control message (descriptor or winner
#: reply header) for the executor's approximate byte accounting — the
#: actual pipe traffic in shm mode, replacing per-entry payload bytes.
CONTROL_NBYTES = 64

_COLUMN_WIDTHS = (8, 8, 8, 8, 8, 1)
_COLUMN_CODES = ("Q", "d", "d", "Q", "Q", "B")

#: Initial winner-slot capacity in rows (~168 KiB per worker).  Slots
#: grow on overflow, so this only sets where growth starts.
WINNER_SLOT_ROWS = 4096

_SEQ = itertools.count()

_available: bool | None = None


def shm_available() -> bool:
    """True when named shared memory actually works here (probed once).

    Creating a probe segment also starts the ``resource_tracker`` helper
    process, which callers rely on happening *before* workers fork (forked
    children must inherit the tracker connection, not spawn their own).
    """
    global _available
    if _available is not None:
        return _available
    if _shared_memory is None:
        _available = False
        return False
    try:
        probe = _shared_memory.SharedMemory(create=True, size=16)
        probe.close()
        probe.unlink()
        _available = True
    except Exception:  # pragma: no cover - e.g. /dev/shm unavailable
        _available = False
    return _available


def list_segments() -> list[str]:
    """Names of live ``repro-shm-*`` segments on this host.

    Linux keeps named segments as files under ``/dev/shm``; elsewhere (or
    when the directory is missing) this returns an empty list.  The
    hygiene tests and the troubleshooting docs use this to prove nothing
    leaked.
    """
    try:
        names = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-Linux
        return []
    return sorted(n for n in names if n.startswith(SEGMENT_PREFIX))


def _next_name() -> str:
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_SEQ)}"


class RowSegment:
    """One fixed-layout columnar row buffer in a named segment.

    Created by the master (``create``) and attached by workers
    (``attach``); capacity is derived from the buffer size on both sides,
    which agree because segments are created with an exact byte size.
    """

    def __init__(self, shm, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self.capacity = len(shm.buf) // ROW_BYTES
        cap = self.capacity
        offsets = []
        off = 0
        for width in _COLUMN_WIDTHS:
            offsets.append(off)
            off += width * cap
        self._offsets = tuple(offsets)

    @classmethod
    def create(cls, capacity: int) -> "RowSegment":
        """Master side: allocate a fresh segment holding ``capacity`` rows."""
        while True:
            try:
                shm = _shared_memory.SharedMemory(
                    name=_next_name(), create=True,
                    size=max(1, capacity) * ROW_BYTES,
                )
                return cls(shm, owner=True)
            except FileExistsError:  # pragma: no cover - pid-recycled orphan
                continue

    @classmethod
    def attach(cls, name: str) -> "RowSegment":
        """Worker side: map an existing segment read/write, never unlink."""
        return cls(_shared_memory.SharedMemory(name=name), owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self.capacity * ROW_BYTES

    def write_rows(self, start: int, cols: tuple[bytes, ...]) -> None:
        """Copy raw column bytes (``SoAMemo.export_rows`` output) into
        rows starting at ``start``."""
        buf = self._shm.buf
        for off, width, data in zip(self._offsets, _COLUMN_WIDTHS, cols):
            at = off + start * width
            buf[at : at + len(data)] = data

    def read_rows(self, start: int, stop: int) -> tuple[array, ...]:
        """Rows ``[start, stop)`` as typed ``array`` columns (copies)."""
        buf = self._shm.buf
        out = []
        for off, width, code in zip(
            self._offsets, _COLUMN_WIDTHS, _COLUMN_CODES
        ):
            col = array(code)
            col.frombytes(bytes(buf[off + start * width : off + stop * width]))
            out.append(col)
        return tuple(out)

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        assert self._owner, "only the creating side unlinks"
        self._shm.unlink()

    def destroy(self) -> None:
        """Close and unlink, swallowing already-gone errors."""
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - buffer already released
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class MasterShm:
    """Master-side shm lifecycle: the memo segment + per-worker winner
    slots, with publish/grow bookkeeping and counters for the tracer."""

    def __init__(self, memo, workers: int) -> None:
        self._memo = memo
        rows = memo.row_count()
        self._segment = RowSegment.create(max(1024, rows * 2))
        self._published = 0
        self._slots: list[RowSegment | None] = [
            RowSegment.create(WINNER_SLOT_ROWS) for _ in range(workers)
        ]
        self._closed = False
        self.published_rows = 0
        self.published_bytes = 0
        self.grows = 0
        self.winner_rows = 0
        self.winner_bytes = 0
        self.winner_fallbacks = 0
        self.publish()  # the scan seed rows

    @property
    def published(self) -> int:
        return self._published

    @property
    def segment_bytes(self) -> int:
        return self._segment.nbytes

    def publish(self) -> int:
        """Copy the memo's unpublished row tail into the segment (growing
        to a new generation first if needed); returns rows published."""
        count = self._memo.row_count()
        new = count - self._published
        if new <= 0:
            return 0
        if count > self._segment.capacity:
            bigger = RowSegment.create(max(count * 2, self._segment.capacity * 2))
            bigger.write_rows(0, self._memo.export_rows(0, self._published))
            self._segment.destroy()
            self._segment = bigger
            self.grows += 1
        self._segment.write_rows(
            self._published, self._memo.export_rows(self._published, count)
        )
        self._published = count
        self.published_rows += new
        self.published_bytes += new * ROW_BYTES
        return new

    def descriptor(self, worker: int):
        """The sync-descriptor delta for ``worker``'s next message."""
        slot = self._slots[worker]
        return (
            DESCRIPTOR_TAG,
            self._segment.name,
            self._published,
            slot.name if slot is not None else "",
        )

    def read_winners(self, worker: int, count: int):
        """A worker's winner rows as a ``(WINNER_TAG, *columns)`` payload."""
        self.winner_rows += count
        self.winner_bytes += count * ROW_BYTES
        return (WINNER_TAG, *self._slots[worker].read_rows(0, count))

    def grow_winner_slot(self, worker: int, min_rows: int) -> None:
        """Replace a worker's slot with one holding ``>= min_rows`` rows
        (called after an overflow fallback; the new name travels in the
        next descriptor)."""
        slot = self._slots[worker]
        if slot is None:  # pragma: no cover - retired worker
            return
        capacity = max(slot.capacity, WINNER_SLOT_ROWS)
        while capacity < min_rows:
            capacity *= 4
        slot.destroy()
        self._slots[worker] = RowSegment.create(capacity)
        self.winner_fallbacks += 1

    def retire_worker(self, worker: int) -> None:
        """Unlink a dead worker's slot right away."""
        slot = self._slots[worker]
        if slot is not None:
            slot.destroy()
            self._slots[worker] = None

    def counters(self) -> dict[str, int]:
        return {
            "segment_bytes": self._segment.nbytes if not self._closed else 0,
            "published_rows": self.published_rows,
            "published_bytes": self.published_bytes,
            "grows": self.grows,
            "winner_rows": self.winner_rows,
            "winner_bytes": self.winner_bytes,
            "winner_fallbacks": self.winner_fallbacks,
        }

    def close(self) -> dict[str, int]:
        """Unlink every segment (idempotent); returns the final counters."""
        counters = self.counters()
        if not self._closed:
            self._segment.destroy()
            for t, slot in enumerate(self._slots):
                if slot is not None:
                    slot.destroy()
                    self._slots[t] = None
            self._closed = True
        return counters


class WorkerShmSession:
    """Worker-side shm state: cached attachments + the replica sync
    protocol (applied/overlay row accounting)."""

    def __init__(self, memo) -> None:
        self._memo = memo
        self._segment: RowSegment | None = None
        self._segment_name: str | None = None
        self._slot: RowSegment | None = None
        self._slot_name: str | None = None
        self._slot_pending = ""
        #: Published rows already spliced into the replica.  The replica
        #: is forked after scan seeding, so the scan rows count as
        #: applied from the start.
        self.applied = memo.row_count()
        #: First row of the replica's own current-stratum overlay.
        self.overlay_base = self.applied
        self.attaches = 0

    def sync(self, descriptor) -> int:
        """Apply one sync descriptor; returns new attaches performed.

        ``published > applied`` means a stratum barrier happened: the
        replica's overlay is dropped (the master's merged rows supersede
        it) and the unseen published rows are spliced in.  Otherwise this
        is a mid-stratum re-dispatch and the overlay is kept — exactly
        the wire path's empty-delta accumulate semantics, so meters stay
        comparable across modes.
        """
        _tag, name, published, winner_name = descriptor
        self._slot_pending = winner_name
        if published <= self.applied:
            return 0
        attached = 0
        if name != self._segment_name:
            if self._segment is not None:
                self._segment.close()
            self._segment = RowSegment.attach(name)
            self._segment_name = name
            attached = 1
            self.attaches += 1
        memo = self._memo
        memo.drop_tail(self.overlay_base)
        memo.append_rows(*self._segment.read_rows(self.applied, published))
        self.applied = published
        self.overlay_base = memo.row_count()
        return attached

    def write_winners(self) -> int | None:
        """Copy the overlay rows into the winner slot; ``None`` when the
        slot is too small (caller falls back to the packed wire reply)."""
        memo = self._memo
        count = memo.row_count() - self.overlay_base
        name = self._slot_pending
        if name and name != self._slot_name:
            if self._slot is not None:
                self._slot.close()
            self._slot = RowSegment.attach(name)
            self._slot_name = name
            self.attaches += 1
        if self._slot is None or count > self._slot.capacity:
            return None
        self._slot.write_rows(
            0, memo.export_rows(self.overlay_base, memo.row_count())
        )
        return count

    def close(self) -> None:
        """Close (never unlink) both attachments."""
        if self._segment is not None:
            self._segment.close()
            self._segment = None
        if self._slot is not None:
            self._slot.close()
            self._slot = None
