"""Memo tables and operation metering.

The memo table maps quantifier-set bitmasks to the best plan found for that
set, stored as O(1) records (child masks + join method) per the paper.  The
:class:`~repro.memo.counters.WorkMeter` counts every primitive operation an
enumerator performs; those counts drive both the SVA-effectiveness results
(E2) and the simulated-multicore clock (E3–E7).
"""

from repro.memo.counters import WorkMeter
from repro.memo.table import Memo, MemoEntry, extract_plan
from repro.memo.concurrent import LockStripedMemo
from repro.memo.soa import SoAMemo, soa_compatible

__all__ = [
    "WorkMeter",
    "Memo",
    "MemoEntry",
    "extract_plan",
    "LockStripedMemo",
    "SoAMemo",
    "soa_compatible",
]
