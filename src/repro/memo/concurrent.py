"""Lock-striped memo for the real-thread executor.

The paper's shared-memory design has worker threads inserting into one memo
table under fine-grained latches.  This variant reproduces that: updates to
an entry are serialized by a stripe lock chosen by the result mask.  The
deterministic tie-breaking in :class:`~repro.memo.table.Memo` guarantees
that the final table content is identical to a serial run regardless of the
interleaving — a property the thread-executor tests assert.

Latch acquisitions are counted on the meter so the contention model of the
simulated executor can be cross-checked against real-thread runs.
"""

from __future__ import annotations

import threading

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel
from repro.memo.counters import WorkMeter
from repro.memo.table import Memo
from repro.query.context import QueryContext
from repro.util.errors import ValidationError


class LockStripedMemo(Memo):
    """Memo whose entry updates are guarded by striped latches."""

    def __init__(
        self,
        ctx: QueryContext,
        cost_model: CostModel,
        estimator: CardinalityEstimator | None = None,
        meter: WorkMeter | None = None,
        stripes: int = 64,
        tracer=None,
    ) -> None:
        if stripes < 1:
            raise ValidationError(f"stripes must be >= 1, got {stripes}")
        super().__init__(
            ctx, cost_model, estimator=estimator, meter=meter, tracer=tracer
        )
        self._stripes = stripes
        self._locks = [threading.Lock() for _ in range(stripes)]

    def consider_join(
        self, left: int, right: int, meter: WorkMeter | None = None
    ) -> None:
        meter = meter or self.meter
        lock = self._locks[(left | right) % self._stripes]
        # Try the fast path first so contended acquisitions are observable:
        # a failed non-blocking take means another worker held the stripe.
        if not lock.acquire(blocking=False):
            meter.latch_contended += 1
            lock.acquire()
        try:
            meter.latch_acquisitions += 1
            super().consider_join(left, right, meter=meter)
        finally:
            lock.release()
