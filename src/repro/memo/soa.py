"""Struct-of-arrays memo backend — the fast path's storage engine.

:class:`SoAMemo` stores ``cost/rows/left/right/method`` in parallel
``array`` columns keyed by a mask→index dict, instead of one heap-allocated
:class:`~repro.memo.table.MemoEntry` per quantifier set.  The win in the
enumeration hot loop is allocation-free candidate evaluation: a batch of
inner sets against one outer set touches only flat columns and local
variables, with no per-candidate object construction or attribute chasing.

The public :class:`~repro.memo.table.Memo` API is preserved as a thin
view: ``entry()`` / ``entries()`` / ``best()`` materialize ``MemoEntry``
objects on demand, so ``extract_plan``, tracing, and the serial
enumerators work unchanged on either backend.

Parity contract: every costing, comparison, and meter increment replays
the reference :meth:`Memo.consider_join` semantics operation-for-operation
— same float expressions in the same order (bit-identical doubles), same
tie-break, same ``plans_emitted`` / ``memo_inserts`` /
``memo_improvements`` counts.  ``tests/test_fast_path_parity.py`` enforces
this across randomized queries.

Eligibility is gated by :func:`soa_compatible`: masks must fit the
``'Q'`` (unsigned 64-bit) columns, and the cost model's batched
:meth:`~repro.cost.model.CostModel.join_costs` must agree bit-for-bit with
its per-method :meth:`~repro.cost.model.CostModel.join_cost` on probe
inputs.  Ineligible configurations fall back to the reference ``Memo``
automatically.
"""

from __future__ import annotations

from array import array

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel
from repro.memo.counters import WorkMeter
from repro.memo.table import Memo, MemoEntry
from repro.plans.operators import JoinMethod
from repro.query.context import QueryContext
from repro.trace.tracer import Tracer
from repro.util.bitsets import popcount
from repro.util.errors import OptimizationError

#: Probe operand sizes for :func:`fused_costing_consistent`.  The second
#: point crosses typical block-size boundaries so ``ceil`` branches differ
#: from the first.
_PROBE_POINTS = ((2.0, 3.0, 7.0), (1500.0, 17.0, 12345.0))


def fused_costing_consistent(cost_model: CostModel) -> bool:
    """True iff ``join_costs`` matches per-method ``join_cost`` bit-for-bit.

    Guards against a subclass that overrides ``join_cost`` while
    inheriting a stale ``join_costs`` override from its parent — the one
    configuration where the fused fast path could silently diverge.
    """
    for lrows, rrows, orows in _PROBE_POINTS:
        batched = cost_model.join_costs(lrows, rrows, orows)
        if len(batched) != len(cost_model.methods):
            return False
        for method, cost in zip(cost_model.methods, batched):
            if cost != cost_model.join_cost(method, lrows, rrows, orows):
                return False
    return True


def soa_compatible(ctx: QueryContext, cost_model: CostModel) -> bool:
    """Can this (query, cost model) pair run on the SoA backend?"""
    return ctx.n <= 64 and fused_costing_consistent(cost_model)


class SoAMemo(Memo):
    """Memo with columnar storage and fused batch candidate evaluation.

    Row ``i`` of the parallel columns holds the best-known plan for mask
    ``_col_mask[i]``; ``_index`` maps masks to rows.  Rows are append-only
    — improvements overwrite columns in place, so row indexes are stable
    and the per-size stratum lists inherited from :class:`Memo` stay
    valid.
    """

    def __init__(
        self,
        ctx: QueryContext,
        cost_model: CostModel,
        estimator: CardinalityEstimator | None = None,
        meter: WorkMeter | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(ctx, cost_model, estimator, meter, tracer)
        self._index: dict[int, int] = {}
        self._col_mask = array("Q")
        self._col_cost = array("d")
        self._col_rows = array("d")
        self._col_left = array("Q")
        self._col_right = array("Q")
        self._col_method = array("B")
        #: ``int(m)`` per cost-model method, precomputed for the hot loop.
        self._method_ints: tuple[int, ...] = tuple(
            int(m) for m in cost_model.methods
        )

    # ------------------------------------------------------------------
    # Content access — MemoEntry views materialized on demand
    # ------------------------------------------------------------------

    def __contains__(self, mask: int) -> bool:
        return mask in self._index

    def __len__(self) -> int:
        return len(self._index)

    def entry(self, mask: int) -> MemoEntry | None:
        idx = self._index.get(mask)
        if idx is None:
            return None
        return self._materialize(idx)

    def entries(self) -> list[MemoEntry]:
        return [self._materialize(i) for i in range(len(self._col_mask))]

    def best(self) -> MemoEntry:
        entry = self.entry(self.ctx.all_mask)
        if entry is None:
            raise OptimizationError(
                "no complete plan: is the join graph connected "
                "(or are cross products enabled)?"
            )
        return entry

    def _materialize(self, idx: int) -> MemoEntry:
        return MemoEntry(
            mask=self._col_mask[idx],
            cost=self._col_cost[idx],
            rows=self._col_rows[idx],
            left=self._col_left[idx],
            right=self._col_right[idx],
            method=JoinMethod(self._col_method[idx]),
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _store_row(
        self,
        mask: int,
        cost: float,
        rows: float,
        left: int,
        right: int,
        method_int: int,
    ) -> None:
        """Append a new row (columnar analogue of ``Memo._store_new``)."""
        self._index[mask] = len(self._col_mask)
        self._col_mask.append(mask)
        self._col_cost.append(cost)
        self._col_rows.append(rows)
        self._col_left.append(left)
        self._col_right.append(right)
        self._col_method.append(method_int)
        size = popcount(mask)
        bucket = self._by_size[size]
        if bucket and mask < bucket[-1]:
            self._size_sorted[size] = False
        bucket.append(mask)

    def init_scans(self) -> None:
        ctx = self.ctx
        cost_model = self.cost_model
        for rel in range(ctx.n):
            mask = 1 << rel
            rows = self.estimator.rows(mask)
            self._store_row(
                mask, cost_model.scan_cost(rows), rows, 0, 0, int(JoinMethod.SCAN)
            )
        if self.tracer.enabled:
            self.tracer.counter("memo.scans", ctx.n)

    def consider_join(
        self, left: int, right: int, meter: WorkMeter | None = None
    ) -> None:
        """Single-pair candidate evaluation on the columns.

        Replays the reference semantics exactly; see the module docstring
        for the parity contract.
        """
        self.consider_joins(left, [right], meter)

    def consider_joins(
        self, left: int, rights: list[int], meter: WorkMeter | None = None
    ) -> None:
        """Fused batch: join ``left`` against each inner set, in order.

        The outer operand's row is resolved once; per inner set the
        method loop runs over the precomputed ``join_costs`` tuple with
        meter counts accumulated in locals and flushed once at the end.
        """
        if not rights:
            return
        meter = meter or self.meter
        index = self._index
        col_cost = self._col_cost
        col_rows = self._col_rows
        col_left = self._col_left
        col_right = self._col_right
        col_method = self._col_method
        estimator_rows = self.estimator.rows
        join_costs = self.cost_model.join_costs
        method_ints = self._method_ints
        nmethods = len(method_ints)

        left_idx = index[left]
        lcost = col_cost[left_idx]
        lrows = col_rows[left_idx]

        plans_local = 0
        inserts_local = 0
        improves_local = 0

        for right in rights:
            right_idx = index[right]
            result = left | right
            out_rows = estimator_rows(result)
            base_cost = lcost + col_cost[right_idx]
            rrows = col_rows[right_idx]
            costs = join_costs(lrows, rrows, out_rows)
            plans_local += nmethods

            cur_idx = index.get(result)
            if cur_idx is None:
                # Insert path: method 0 installs the row, the remaining
                # methods improve it in place — mirroring the reference
                # loop's create-then-update sequence and its counts.
                best_cost = base_cost + costs[0]
                best_k = 0
                for k in range(1, nmethods):
                    cost = base_cost + costs[k]
                    if cost < best_cost or (
                        cost == best_cost and method_ints[k] < method_ints[best_k]
                    ):
                        best_cost = cost
                        best_k = k
                        improves_local += 1
                self._store_row(
                    result, best_cost, out_rows, left, right, method_ints[best_k]
                )
                inserts_local += 1
            else:
                cur_cost = col_cost[cur_idx]
                cur_left = col_left[cur_idx]
                cur_right = col_right[cur_idx]
                cur_method = col_method[cur_idx]
                changed = False
                for k in range(nmethods):
                    cost = base_cost + costs[k]
                    if cost < cur_cost or (
                        cost == cur_cost
                        and (left, right, method_ints[k])
                        < (cur_left, cur_right, cur_method)
                    ):
                        cur_cost = cost
                        cur_left = left
                        cur_right = right
                        cur_method = method_ints[k]
                        changed = True
                        improves_local += 1
                if changed:
                    col_cost[cur_idx] = cur_cost
                    col_left[cur_idx] = cur_left
                    col_right[cur_idx] = cur_right
                    col_method[cur_idx] = cur_method

        meter.plans_emitted += plans_local
        if inserts_local:
            meter.memo_inserts += inserts_local
        if improves_local:
            meter.memo_improvements += improves_local

    def consider_pairs(
        self,
        pairs: list[tuple[int, int]],
        meter: WorkMeter | None = None,
    ) -> None:
        """Fused batch over ``(left, right)`` pairs with varying outers.

        One estimator call per pair (the reference path's cache-hit count
        is part of the parity contract), column lookups instead of entry
        objects, and meter counts flushed once per batch.
        """
        if not pairs:
            return
        meter = meter or self.meter
        index = self._index
        col_cost = self._col_cost
        col_rows = self._col_rows
        col_left = self._col_left
        col_right = self._col_right
        col_method = self._col_method
        estimator_rows = self.estimator.rows
        join_costs = self.cost_model.join_costs
        method_ints = self._method_ints
        nmethods = len(method_ints)

        plans_local = 0
        inserts_local = 0
        improves_local = 0

        for left, right in pairs:
            left_idx = index[left]
            right_idx = index[right]
            result = left | right
            out_rows = estimator_rows(result)
            base_cost = col_cost[left_idx] + col_cost[right_idx]
            costs = join_costs(
                col_rows[left_idx], col_rows[right_idx], out_rows
            )
            plans_local += nmethods

            cur_idx = index.get(result)
            if cur_idx is None:
                best_cost = base_cost + costs[0]
                best_k = 0
                for k in range(1, nmethods):
                    cost = base_cost + costs[k]
                    if cost < best_cost or (
                        cost == best_cost and method_ints[k] < method_ints[best_k]
                    ):
                        best_cost = cost
                        best_k = k
                        improves_local += 1
                self._store_row(
                    result, best_cost, out_rows, left, right, method_ints[best_k]
                )
                inserts_local += 1
            else:
                cur_cost = col_cost[cur_idx]
                cur_left = col_left[cur_idx]
                cur_right = col_right[cur_idx]
                cur_method = col_method[cur_idx]
                changed = False
                for k in range(nmethods):
                    cost = base_cost + costs[k]
                    if cost < cur_cost or (
                        cost == cur_cost
                        and (left, right, method_ints[k])
                        < (cur_left, cur_right, cur_method)
                    ):
                        cur_cost = cost
                        cur_left = left
                        cur_right = right
                        cur_method = method_ints[k]
                        changed = True
                        improves_local += 1
                if changed:
                    col_cost[cur_idx] = cur_cost
                    col_left[cur_idx] = cur_left
                    col_right[cur_idx] = cur_right
                    col_method[cur_idx] = cur_method

        meter.plans_emitted += plans_local
        if inserts_local:
            meter.memo_inserts += inserts_local
        if improves_local:
            meter.memo_improvements += improves_local

    # ------------------------------------------------------------------
    # Bulk row transfer — the shared-memory tier's building blocks
    # ------------------------------------------------------------------
    # Rows are append-only and stratum-ordered (every row of stratum k is
    # finalized at barrier k), so a contiguous row range is a complete,
    # immutable unit of transfer.  ``export_rows`` snapshots such a range
    # as raw column bytes; ``append_rows`` splices one in with bulk
    # C-level extends; ``drop_tail`` rolls back a worker replica's own
    # speculative stratum rows before the master's merged rows replace
    # them.  See :mod:`repro.memo.shm`.

    def row_count(self) -> int:
        """Number of stored rows (== number of memoized sets)."""
        return len(self._col_mask)

    def export_rows(self, start: int, stop: int) -> tuple[bytes, ...]:
        """Raw column bytes for rows ``[start, stop)`` in storage order.

        Returns ``(mask, cost, rows, left, right, method)`` byte strings;
        the numeric columns are 8 bytes per row, methods 1 byte.
        """
        return (
            self._col_mask[start:stop].tobytes(),
            self._col_cost[start:stop].tobytes(),
            self._col_rows[start:stop].tobytes(),
            self._col_left[start:stop].tobytes(),
            self._col_right[start:stop].tobytes(),
            self._col_method[start:stop].tobytes(),
        )

    def append_rows(self, masks, costs, rows, lefts, rights, methods) -> None:
        """Bulk-append externally published rows (no costing, no metering).

        ``masks``..``methods`` are equal-length sequences (``array``
        columns read back from a shared-memory segment).  None of the
        masks may already be present — the publish protocol guarantees
        the range is strictly new rows.
        """
        base = len(self._col_mask)
        self._col_mask.extend(masks)
        self._col_cost.extend(costs)
        self._col_rows.extend(rows)
        self._col_left.extend(lefts)
        self._col_right.extend(rights)
        self._col_method.extend(methods)
        mask_list = masks.tolist() if hasattr(masks, "tolist") else list(masks)
        self._index.update(zip(mask_list, range(base, base + len(mask_list))))
        by_size = self._by_size
        size_sorted = self._size_sorted
        for mask in mask_list:
            size = popcount(mask)
            bucket = by_size[size]
            if bucket and mask < bucket[-1]:
                size_sorted[size] = False
            bucket.append(mask)

    def drop_tail(self, base: int) -> None:
        """Remove every row with index ``>= base`` (a replica's overlay).

        The dropped rows are the replica's own current-stratum inserts;
        the masks are removed from the index and their per-size buckets
        are rebuilt filtered (bucket order may interleave after lazy
        sorting, so truncation by length would be wrong).
        """
        if base >= len(self._col_mask):
            return
        index = self._index
        tail = self._col_mask[base:]
        sizes = set()
        for mask in tail:
            del index[mask]
            sizes.add(popcount(mask))
        del self._col_mask[base:]
        del self._col_cost[base:]
        del self._col_rows[base:]
        del self._col_left[base:]
        del self._col_right[base:]
        del self._col_method[base:]
        for size in sizes:
            self._by_size[size] = [
                mask for mask in self._by_size[size] if mask in index
            ]

    def merge_candidate(
        self,
        mask: int,
        cost: float,
        rows: float,
        left: int,
        right: int,
        method: JoinMethod,
    ) -> bool:
        idx = self._index.get(mask)
        if idx is None:
            self._store_row(mask, cost, rows, left, right, int(method))
            return True
        cur_cost = self._col_cost[idx]
        if cost < cur_cost or (
            cost == cur_cost
            and (left, right, int(method))
            < (self._col_left[idx], self._col_right[idx], self._col_method[idx])
        ):
            self._col_cost[idx] = cost
            self._col_rows[idx] = rows
            self._col_left[idx] = left
            self._col_right[idx] = right
            self._col_method[idx] = method
            return True
        return False
