"""Relation and statistics model.

Only the statistics that the cost model consumes are represented: base
cardinalities, tuple widths, and per-column distinct counts.  The model is
deliberately small — the enumerators under study are driven purely by the
join graph shape and these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ValidationError


@dataclass(frozen=True, slots=True)
class Column:
    """A column with the statistics used for selectivity derivation.

    Attributes:
        name: Column name, unique within its table.
        distinct_count: Estimated number of distinct values.
    """

    name: str
    distinct_count: int

    def __post_init__(self) -> None:
        if self.distinct_count < 1:
            raise ValidationError(
                f"column {self.name!r}: distinct_count must be >= 1, "
                f"got {self.distinct_count}"
            )


@dataclass(frozen=True, slots=True)
class TableStats:
    """Statistics for one base relation.

    Attributes:
        name: Relation name, unique within the catalog.
        cardinality: Number of tuples.
        tuple_width: Average tuple width in bytes (used by buffer-space
            accounting in the cost model).
        columns: Column statistics, keyed by name.
    """

    name: str
    cardinality: int
    tuple_width: int = 64
    columns: tuple[Column, ...] = ()

    def __post_init__(self) -> None:
        if self.cardinality < 1:
            raise ValidationError(
                f"table {self.name!r}: cardinality must be >= 1, "
                f"got {self.cardinality}"
            )
        if self.tuple_width < 1:
            raise ValidationError(
                f"table {self.name!r}: tuple_width must be >= 1, "
                f"got {self.tuple_width}"
            )
        seen: set[str] = set()
        for col in self.columns:
            if col.name in seen:
                raise ValidationError(
                    f"table {self.name!r}: duplicate column {col.name!r}"
                )
            seen.add(col.name)

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"table {self.name!r} has no column {name!r}")


@dataclass(slots=True)
class Catalog:
    """A set of base relations with statistics.

    Tables are looked up by name; insertion order is preserved so that a
    catalog zipped against a join graph is deterministic.
    """

    _tables: dict[str, TableStats] = field(default_factory=dict)

    def add(self, table: TableStats) -> None:
        """Register a table; names must be unique."""
        if table.name in self._tables:
            raise ValidationError(f"duplicate table name {table.name!r}")
        self._tables[table.name] = table

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self):
        return iter(self._tables.values())

    def table(self, name: str) -> TableStats:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"catalog has no table {name!r}") from None

    def names(self) -> list[str]:
        """Table names in insertion order."""
        return list(self._tables)

    def cardinalities(self) -> list[int]:
        """Table cardinalities in insertion order."""
        return [t.cardinality for t in self._tables.values()]
