"""Synthetic catalog generation.

Follows the randomized-benchmark convention of Steinbrunn, Moerkotte &
Kemper (VLDBJ 1997), the lineage used by the join-ordering literature the
VLDB 2008 paper belongs to: base cardinalities are drawn log-uniformly over
a wide range so that join orders matter, and per-column distinct counts are
a random fraction of the cardinality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.model import Catalog, Column, TableStats
from repro.util.errors import ValidationError
from repro.util.rng import derive_rng


@dataclass(frozen=True, slots=True)
class CatalogGeneratorConfig:
    """Parameters for :func:`generate_catalog`.

    Attributes:
        min_cardinality: Inclusive lower bound for table cardinality.
        max_cardinality: Inclusive upper bound for table cardinality.
        min_tuple_width: Inclusive lower bound for tuple width in bytes.
        max_tuple_width: Inclusive upper bound for tuple width in bytes.
        columns_per_table: Number of join-candidate columns per table.
    """

    min_cardinality: int = 100
    max_cardinality: int = 100_000
    min_tuple_width: int = 16
    max_tuple_width: int = 256
    columns_per_table: int = 4

    def __post_init__(self) -> None:
        if self.min_cardinality < 1:
            raise ValidationError("min_cardinality must be >= 1")
        if self.max_cardinality < self.min_cardinality:
            raise ValidationError("max_cardinality must be >= min_cardinality")
        if self.min_tuple_width < 1:
            raise ValidationError("min_tuple_width must be >= 1")
        if self.max_tuple_width < self.min_tuple_width:
            raise ValidationError("max_tuple_width must be >= min_tuple_width")
        if self.columns_per_table < 1:
            raise ValidationError("columns_per_table must be >= 1")


def _log_uniform_int(rng, lo: int, hi: int) -> int:
    """Draw an integer log-uniformly from ``[lo, hi]``."""
    if lo == hi:
        return lo
    value = math.exp(rng.uniform(math.log(lo), math.log(hi)))
    return max(lo, min(hi, round(value)))


def generate_catalog(
    n_tables: int,
    seed: int = 0,
    config: CatalogGeneratorConfig | None = None,
) -> Catalog:
    """Generate a catalog of ``n_tables`` relations named ``t0 … t{n-1}``.

    Cardinalities are log-uniform in
    ``[config.min_cardinality, config.max_cardinality]`` so small dimension
    tables and large fact tables coexist, which is what makes join-order
    choice consequential.  Deterministic in ``seed``.
    """
    if n_tables < 1:
        raise ValidationError(f"n_tables must be >= 1, got {n_tables}")
    cfg = config or CatalogGeneratorConfig()
    catalog = Catalog()
    for i in range(n_tables):
        rng = derive_rng(seed, "table", i)
        cardinality = _log_uniform_int(
            rng, cfg.min_cardinality, cfg.max_cardinality
        )
        width = rng.randint(cfg.min_tuple_width, cfg.max_tuple_width)
        columns = tuple(
            Column(
                name=f"c{j}",
                distinct_count=max(1, round(cardinality * rng.uniform(0.1, 1.0))),
            )
            for j in range(cfg.columns_per_table)
        )
        catalog.add(
            TableStats(
                name=f"t{i}",
                cardinality=cardinality,
                tuple_width=width,
                columns=columns,
            )
        )
    return catalog
