"""A TPC-H-style schema for realistic SQL workloads.

The eight-table TPC-H schema scaled down so that exact DP over any
foreign-key join subgraph stays interactive: cardinalities follow the
benchmark's fixed ratios (25 nations over 5 regions, four lineitems per
order, …) at a configurable ``scale`` (default 0.01, i.e. 1/100 of
TPC-H SF1).  Keys have ``distinct == cardinality``; foreign keys have
the referenced table's cardinality as their distinct count, which makes
the binder's System-R estimate ``1 / max(d_fk, d_pk)`` reproduce the
classic "one match per foreign row" selectivity.  Attribute columns use
the benchmark's documented domain sizes (3 order statuses, 5 market
segments, 50 quantities, ~2526 ship dates, …).

:data:`FK_EDGES` exposes the foreign-key join graph — each entry maps an
unordered table pair to the equality predicate joining them — which is
what the workload generator walks to build overlapping SPJ queries.
"""

from __future__ import annotations

from repro.catalog.model import Catalog, Column, TableStats
from repro.util.errors import ValidationError

# (table, column) -> (referenced table, referenced column), one entry per
# foreign key of the schema.  Keys are attribute names without the TPC-H
# prefixes (``orderkey`` not ``l_orderkey``) — aliases carry the table.
FK_EDGES: dict[tuple[str, str], tuple[str, str]] = {
    ("nation", "regionkey"): ("region", "regionkey"),
    ("supplier", "nationkey"): ("nation", "nationkey"),
    ("customer", "nationkey"): ("nation", "nationkey"),
    ("partsupp", "partkey"): ("part", "partkey"),
    ("partsupp", "suppkey"): ("supplier", "suppkey"),
    ("orders", "custkey"): ("customer", "custkey"),
    ("lineitem", "orderkey"): ("orders", "orderkey"),
    ("lineitem", "partkey"): ("part", "partkey"),
    ("lineitem", "suppkey"): ("supplier", "suppkey"),
}

# Attribute (non-key) columns: table -> [(name, distinct count)].
# Domain sizes follow the TPC-H specification where it fixes them and
# sensible constants where it does not; they are independent of scale.
_ATTRIBUTES: dict[str, list[tuple[str, int]]] = {
    "region": [("name", 5)],
    "nation": [("name", 25)],
    "supplier": [("acctbal", 9999)],
    "customer": [("mktsegment", 5), ("acctbal", 9999)],
    "part": [("brand", 25), ("size", 50), ("type", 150)],
    "partsupp": [("availqty", 9999)],
    "orders": [("orderstatus", 3), ("orderpriority", 5)],
    "lineitem": [("quantity", 50), ("shipdate", 2526), ("shipmode", 7)],
}

# TPC-H SF1 base cardinalities; ``region``/``nation`` are fixed-size and
# never scaled.
_SF1_CARDS: dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

_FIXED_SIZE = frozenset({"region", "nation"})

TABLE_NAMES: tuple[str, ...] = tuple(_SF1_CARDS)
"""Schema tables in foreign-key topological order (referenced first)."""


def _scaled_card(table: str, scale: float) -> int:
    if table in _FIXED_SIZE:
        return _SF1_CARDS[table]
    return max(1, round(_SF1_CARDS[table] * scale))


def tpch_catalog(scale: float = 0.01) -> Catalog:
    """Build the TPC-H-style catalog at ``scale`` (fraction of SF1).

    >>> cat = tpch_catalog()
    >>> cat.table("nation").cardinality
    25
    >>> cat.table("lineitem").cardinality
    60000
    >>> cat.table("orders").column("orderkey").distinct_count
    15000
    """
    if scale <= 0:
        raise ValidationError(f"scale must be positive, got {scale}")
    cards = {t: _scaled_card(t, scale) for t in TABLE_NAMES}

    # Column sets: foreign keys first (they draw from the referenced
    # key's domain, so e.g. ``lineitem.orderkey`` has |orders| distinct
    # values, not |lineitem|), then standalone primary keys, then
    # attributes.  ``partsupp`` and ``lineitem`` have composite primary
    # keys made entirely of foreign keys, so they add no key column.
    columns: dict[str, dict[str, int]] = {t: {} for t in TABLE_NAMES}
    for (table, column), (ref_table, _ref_column) in FK_EDGES.items():
        columns[table][column] = cards[ref_table]
    pk_name = {
        "region": "regionkey",
        "nation": "nationkey",
        "supplier": "suppkey",
        "customer": "custkey",
        "part": "partkey",
        "orders": "orderkey",
    }
    for table, key in pk_name.items():
        columns[table].setdefault(key, cards[table])
    for table, attrs in _ATTRIBUTES.items():
        for name, distinct in attrs:
            columns[table][name] = min(distinct, cards[table])

    catalog = Catalog()
    for table in TABLE_NAMES:
        catalog.add(
            TableStats(
                name=table,
                cardinality=cards[table],
                columns=tuple(
                    Column(name, max(1, distinct))
                    for name, distinct in columns[table].items()
                ),
            )
        )
    return catalog


def join_predicate(table_a: str, table_b: str) -> tuple[str, str] | None:
    """The FK equality columns joining two tables, or ``None``.

    Returns ``(column_on_a, column_on_b)`` such that
    ``a.column_on_a = b.column_on_b`` is the schema's foreign-key join.

    >>> join_predicate("lineitem", "orders")
    ('orderkey', 'orderkey')
    >>> join_predicate("customer", "nation")
    ('nationkey', 'nationkey')
    >>> join_predicate("region", "lineitem") is None
    True
    """
    for (t, c), (rt, rc) in FK_EDGES.items():
        if (t, rt) == (table_a, table_b):
            return (c, rc)
        if (t, rt) == (table_b, table_a):
            return (rc, c)
    return None


def adjacent_tables(table: str) -> tuple[str, ...]:
    """Tables joined to ``table`` by a foreign key, in schema order."""
    out = []
    for (t, _c), (rt, _rc) in FK_EDGES.items():
        if t == table and rt not in out:
            out.append(rt)
        elif rt == table and t not in out:
            out.append(t)
    return tuple(sorted(out, key=TABLE_NAMES.index))


def filter_columns(table: str) -> tuple[str, ...]:
    """Attribute columns of ``table`` suitable for local predicates."""
    return tuple(name for name, _d in _ATTRIBUTES.get(table, ()))
