"""Catalog substrate: relations, statistics, and synthetic generation.

The VLDB 2008 paper ran inside PostgreSQL and drew cardinalities and
selectivities from a real catalog.  This package is the synthetic stand-in:
:class:`~repro.catalog.model.Catalog` holds base-relation statistics and
:func:`~repro.catalog.generator.generate_catalog` produces randomized
catalogs following the Steinbrunn et al. (VLDBJ 1997) benchmark convention
that the paper's workload generation tradition descends from.
"""

from repro.catalog.generator import CatalogGeneratorConfig, generate_catalog
from repro.catalog.model import Catalog, Column, TableStats
from repro.catalog.tpch import tpch_catalog

__all__ = [
    "Catalog",
    "Column",
    "TableStats",
    "CatalogGeneratorConfig",
    "generate_catalog",
    "tpch_catalog",
]
