"""Benchmark harness: experiment runners and reporting.

Each experiment in ``benchmarks/`` (E1–E12, see DESIGN.md) drives one of
the grid runners here and renders its rows with
:func:`~repro.bench.reporting.format_table`, so the exact tables can also
be regenerated programmatically or from the examples.
"""

from repro.bench.manifest import (
    load_manifest,
    plan_from_dict,
    plan_to_dict,
    result_to_dict,
    save_manifest,
    sim_report_to_dict,
)
from repro.bench.experiments import (
    BY_CLI,
    CLI_CHOICES,
    EXPERIMENTS,
    Experiment,
    describe,
)
from repro.bench.reporting import format_table, render_curve, rows_to_csv
from repro.bench.runner import (
    allocation_comparison,
    cache_workload,
    cluster_comparison,
    fault_tolerance,
    heuristic_quality,
    kernel_speedup,
    large_query,
    median,
    real_backend_allocation,
    run_serial_grid,
    serving_throughput,
    shm_comparison,
    size_scaling,
    speedup_curve,
    sva_effectiveness,
    wire_volume,
    workload_mqo,
)

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "BY_CLI",
    "CLI_CHOICES",
    "describe",
    "cluster_comparison",
    "format_table",
    "render_curve",
    "rows_to_csv",
    "plan_from_dict",
    "plan_to_dict",
    "result_to_dict",
    "sim_report_to_dict",
    "save_manifest",
    "load_manifest",
    "median",
    "run_serial_grid",
    "sva_effectiveness",
    "speedup_curve",
    "allocation_comparison",
    "real_backend_allocation",
    "cache_workload",
    "size_scaling",
    "heuristic_quality",
    "kernel_speedup",
    "large_query",
    "wire_volume",
    "fault_tolerance",
    "serving_throughput",
    "shm_comparison",
    "workload_mqo",
]
