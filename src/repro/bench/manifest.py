"""Result serialization: JSON manifests for runs and experiments.

Optimization results, simulated timing reports, and experiment row sets
serialize to plain JSON so experiment outputs can be archived, diffed, and
re-plotted without re-running.  Plans serialize as their structural
signature plus a nested tree.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.enumerate.base import OptimizationResult
from repro.plans.nodes import JoinMethod, JoinNode, PlanNode, ScanNode
from repro.plans.printer import plan_signature
from repro.simx.report import SimReport
from repro.util.errors import ValidationError


def plan_to_dict(plan: PlanNode) -> dict[str, Any]:
    """Nested-dict rendering of a plan tree."""
    if isinstance(plan, ScanNode):
        return {"op": "scan", "relation": plan.relation}
    if isinstance(plan, JoinNode):
        return {
            "op": "join",
            "method": plan.method.name,
            "left": plan_to_dict(plan.left),
            "right": plan_to_dict(plan.right),
        }
    raise TypeError(f"not a plan node: {plan!r}")


def plan_from_dict(data: dict[str, Any]) -> PlanNode:
    """Rebuild a plan tree from :func:`plan_to_dict` output.

    Raises :class:`~repro.util.errors.ValidationError` on malformed
    input (unknown op or join method, missing fields) so callers — the
    warm-start cache loader in particular — can reject corrupt files
    instead of crashing on a ``KeyError`` deep in a parse.
    """
    if not isinstance(data, dict):
        raise ValidationError(f"plan node must be a dict, got {data!r}")
    op = data.get("op")
    if op == "scan":
        relation = data.get("relation")
        if not isinstance(relation, int) or isinstance(relation, bool):
            raise ValidationError(
                f"scan node needs an integer relation: {data!r}"
            )
        return ScanNode(relation)
    if op == "join":
        method_name = data.get("method")
        try:
            method = JoinMethod[method_name]
        except KeyError:
            raise ValidationError(
                f"unknown join method {method_name!r}"
            ) from None
        if "left" not in data or "right" not in data:
            raise ValidationError(f"join node needs left/right: {data!r}")
        return JoinNode(
            plan_from_dict(data["left"]),
            plan_from_dict(data["right"]),
            method,
        )
    raise ValidationError(f"unknown plan op {op!r}")


def sim_report_to_dict(report: SimReport) -> dict[str, Any]:
    """Flatten a simulated timing report."""
    return {
        "threads": report.threads,
        "algorithm": report.algorithm,
        "allocation": report.allocation,
        "total_time": report.total_time,
        "busy_total": report.busy_total,
        "critical_busy": report.critical_busy,
        "overhead_wall": report.overhead_wall,
        "spawn_cost": report.spawn_cost,
        "master_cost": report.master_cost,
        "total_conflicts": report.total_conflicts,
        "mean_imbalance": report.mean_imbalance,
        "strata": [
            {
                "size": s.size,
                "unit_count": s.unit_count,
                "wall_time": s.wall_time,
                "busy": s.busy,
                "contention": s.contention,
                "barrier_cost": s.barrier_cost,
                "conflicts": s.conflicts,
            }
            for s in report.strata
        ],
    }


def result_to_dict(result: OptimizationResult) -> dict[str, Any]:
    """Serialize an optimization result (plans included structurally)."""
    extras: dict[str, Any] = {}
    for key, value in result.extras.items():
        if isinstance(value, SimReport):
            extras[key] = sim_report_to_dict(value)
        elif isinstance(value, (str, int, float, bool, type(None), list, dict)):
            extras[key] = value
        else:
            extras[key] = repr(value)
    return {
        "algorithm": result.algorithm,
        "cost": result.cost,
        "rows": result.rows,
        "memo_entries": result.memo_entries,
        "elapsed_seconds": result.elapsed_seconds,
        "plan_signature": plan_signature(result.plan),
        "plan": plan_to_dict(result.plan),
        "meter": result.meter.as_dict(),
        "extras": extras,
    }


def save_manifest(
    path: str | Path,
    rows: list[dict],
    metadata: dict[str, Any] | None = None,
) -> Path:
    """Write experiment rows plus metadata as a JSON manifest."""
    path = Path(path)
    payload = {"metadata": metadata or {}, "rows": rows}
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path


def load_manifest(path: str | Path) -> tuple[list[dict], dict[str, Any]]:
    """Read back a manifest written by :func:`save_manifest`."""
    payload = json.loads(Path(path).read_text())
    return payload["rows"], payload["metadata"]
