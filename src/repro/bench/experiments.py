"""The experiment registry — single source of truth for what exists.

``repro bench --help`` (the ``--experiment`` choices), the standalone
driver ``benchmarks/run_all.py``, and the benchmark suite's artifact
names were previously three hand-maintained lists that drifted
independently; this module replaces them.  One :class:`Experiment` per
family, keyed by the CLI name, recording the DESIGN.md experiment id,
a one-line title, and whether ``run_all.py`` regenerates it standalone
(the two timing-fixture families need pytest).

``tests/test_bench.py`` asserts the CLI parser and the driver both agree
with this registry, so adding an experiment in one place and not the
other fails fast instead of shipping a stale ``--help``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Experiment:
    """One experiment family.

    Attributes:
        cli: Name accepted by ``repro bench --experiment``, or ``None``
            for families only reachable through ``run_all.py`` / the
            benchmark suite.
        eid: DESIGN.md experiment id (``E1`` … ``E17``).
        title: One-line description (shown by ``run_all.py --list``).
        in_run_all: True when ``benchmarks/run_all.py`` regenerates the
            family standalone; False for families that need the pytest
            timing fixtures.
    """

    cli: str | None
    eid: str
    title: str
    in_run_all: bool = True


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment("serial", "E1", "serial enumerator grid"),
    Experiment("sva", "E2", "skip-vector-array effectiveness"),
    Experiment("speedup", "E3/E4", "parallel speedup curves per algorithm"),
    Experiment("allocation", "E5", "work-unit allocation schemes"),
    Experiment(None, "E6", "synchronization overhead (timing fixtures)",
               in_run_all=False),
    Experiment(None, "E7", "search-space size scaling"),
    Experiment(
        "real-allocation", "E8",
        "allocation on the real backends (timing fixtures)",
        in_run_all=False,
    ),
    Experiment(None, "E9", "heuristic plan quality"),
    Experiment("cache", "E10", "plan-cache workload", in_run_all=False),
    Experiment("kernels", "E11", "fused kernels + packed wire volume"),
    Experiment("faults", "E12", "fault injection and recovery",
               in_run_all=False),
    Experiment("large-query", "E13",
               "hybrid optimizer at and past the DP horizon"),
    Experiment("serving", "E14", "service throughput and latency"),
    Experiment("shm", "E15", "shared-memory memo vs packed wire"),
    Experiment("cluster", "E16", "shared-nothing cluster vs process comm"),
    Experiment("workload", "E17",
               "SQL batch multi-query optimization (shared subplans)"),
)

BY_CLI: dict[str, Experiment] = {
    exp.cli: exp for exp in EXPERIMENTS if exp.cli is not None
}

CLI_CHOICES: tuple[str, ...] = tuple(BY_CLI)


def describe() -> str:
    """The registry as a listing, one experiment per line."""
    lines = []
    for exp in EXPERIMENTS:
        note = "" if exp.in_run_all else "  (pytest benchmarks/ only)"
        cli = exp.cli or "-"
        lines.append(f"{exp.eid:>6}  {cli:<16} {exp.title}{note}")
    return "\n".join(lines)
