"""Experiment grid runners.

Each function regenerates one family of the paper's tables/figures as a
list of plain dict rows.  Per grid point, ``queries`` random queries are
optimized and the *median* is reported, mirroring the paper's methodology
(and Steinbrunn et al.'s).
"""

from __future__ import annotations

import asyncio
import math
import statistics
import threading
import time

from repro.cost.model import CostModel, StandardCostModel
from repro.enumerate import SERIAL_ALGORITHMS
from repro.enumerate.base import OptimizationResult
from repro.heuristics import HEURISTICS
from repro.parallel import ParallelDP
from repro.query.workload import WorkloadSpec, generate_query
from repro.simx.costparams import SimCostParams
from repro.sva import DPsva
from repro.trace import RecordingTracer, trace_summary
from repro.util.errors import ValidationError

ALL_SERIAL = {**SERIAL_ALGORITHMS, "dpsva": DPsva}
"""Serial enumerators available to the grids (incl. DPsva)."""


def median(values):
    """Median of a non-empty sequence."""
    return statistics.median(values)


def _queries(topology: str, n: int, count: int, seed: int):
    spec = WorkloadSpec(topology, n, seed=seed, count=count)
    return [generate_query(spec, i) for i in range(count)]


def run_serial_grid(
    topologies,
    sizes,
    algorithms=("dpsize", "dpsub", "dpccp", "dpsva"),
    queries: int = 3,
    seed: int = 0,
    cost_model: CostModel | None = None,
    cross_products: bool = False,
) -> list[dict]:
    """E1: serial enumerator comparison.

    One row per (topology, n, algorithm) with median optimization time,
    candidate pairs, valid pairs, and memo size.
    """
    rows: list[dict] = []
    for topology in topologies:
        for n in sizes:
            qs = _queries(topology, n, queries, seed)
            for name in algorithms:
                if name not in ALL_SERIAL:
                    raise ValidationError(f"unknown serial algorithm {name!r}")
                algo = ALL_SERIAL[name](cross_products=cross_products)
                results = [algo.optimize(q, cost_model=cost_model) for q in qs]
                rows.append(
                    {
                        "topology": topology,
                        "n": n,
                        "algorithm": name,
                        "time_ms": median(
                            r.elapsed_seconds * 1e3 for r in results
                        ),
                        "pairs": int(
                            median(r.meter.pairs_considered for r in results)
                        ),
                        "valid_pairs": int(
                            median(r.meter.pairs_valid for r in results)
                        ),
                        "memo": int(median(r.memo_entries for r in results)),
                    }
                )
    return rows


def sva_effectiveness(
    topologies,
    sizes,
    queries: int = 3,
    seed: int = 0,
    cross_products: bool = False,
) -> list[dict]:
    """E2: skip-vector effectiveness.

    Compares DPsize candidate pairs against DPsva scan positions; the skip
    ratio is the fraction of DPsize's candidate inspections the SVA
    eliminated.
    """
    rows: list[dict] = []
    for topology in topologies:
        for n in sizes:
            qs = _queries(topology, n, queries, seed)
            dpsize_pairs, sva_positions, skipped, valid = [], [], [], []
            for q in qs:
                base = ALL_SERIAL["dpsize"](cross_products=cross_products).optimize(q)
                sva = DPsva(cross_products=cross_products).optimize(q)
                dpsize_pairs.append(base.meter.pairs_considered)
                sva_positions.append(sva.meter.sva_steps)
                skipped.append(sva.meter.sva_skipped_entries)
                valid.append(sva.meter.pairs_valid)
            pairs_med = median(dpsize_pairs)
            steps_med = median(sva_positions)
            rows.append(
                {
                    "topology": topology,
                    "n": n,
                    "dpsize_pairs": int(pairs_med),
                    "sva_positions": int(steps_med),
                    "skipped": int(median(skipped)),
                    "valid_pairs": int(median(valid)),
                    "skip_ratio": 1.0 - (steps_med / pairs_med)
                    if pairs_med
                    else 0.0,
                }
            )
    return rows


def speedup_curve(
    topology: str,
    n: int,
    algorithm: str = "dpsva",
    thread_counts=(1, 2, 4, 8, 16),
    allocation: str = "equi_depth",
    queries: int = 3,
    seed: int = 0,
    cost_model: CostModel | None = None,
    sim_params: SimCostParams | None = None,
    cross_products: bool = False,
    trace: bool = False,
) -> list[dict]:
    """E3/E4: simulated speedup versus thread count.

    Speedup is measured against the same framework at ``threads=1`` (which
    the paper notes is the serial algorithm plus nothing), so it isolates
    parallelization effects from kernel differences.

    With ``trace=True`` each run records a :class:`RecordingTracer` and
    every row gains trace columns (median event count and total
    barrier-wait time) from :func:`repro.trace.trace_summary`.
    """
    qs = _queries(topology, n, queries, seed)
    rows: list[dict] = []
    baseline_times: list[float] | None = None
    for threads in thread_counts:
        results = []
        summaries = []
        for q in qs:
            optimizer = ParallelDP(
                algorithm=algorithm,
                threads=threads,
                allocation=allocation,
                cross_products=cross_products,
                sim_params=sim_params,
                tracer=RecordingTracer() if trace else None,
            )
            results.append(optimizer.optimize(q, cost_model=cost_model))
            if trace:
                summaries.append(trace_summary(results[-1].trace.events))
        reports = [r.sim_report for r in results]
        times = [r.total_time for r in reports]
        if baseline_times is None:
            baseline_times = times
        speedups = [b / t for b, t in zip(baseline_times, times)]
        row = {
            "topology": topology,
            "n": n,
            "algorithm": algorithm,
            "threads": threads,
            "sim_time": median(times),
            "speedup": median(speedups),
            "efficiency": median(speedups) / threads,
            "imbalance": median(r.mean_imbalance for r in reports),
            "conflicts": int(median(r.total_conflicts for r in reports)),
            "sync_share": median(
                r.overhead_wall / r.total_time for r in reports
            ),
        }
        if trace:
            row["trace_events"] = int(
                median(s["events"] for s in summaries)
            )
            row["barrier_wait_s"] = median(
                s["barrier_wait"] for s in summaries
            )
        rows.append(row)
    return rows


def allocation_comparison(
    topology: str,
    n: int,
    algorithm: str = "dpsva",
    threads: int = 8,
    schemes=("round_robin", "chunked", "equi_depth", "dynamic"),
    queries: int = 3,
    seed: int = 0,
    sim_params: SimCostParams | None = None,
    trace: bool = False,
) -> list[dict]:
    """E5: allocation schemes at a fixed thread count.

    With ``trace=True`` each row gains the same trace columns as
    :func:`speedup_curve`.
    """
    qs = _queries(topology, n, queries, seed)
    serial_times = [
        ParallelDP(algorithm=algorithm, threads=1)
        .optimize(q)
        .sim_report.total_time
        for q in qs
    ]
    rows: list[dict] = []
    for scheme in schemes:
        results = []
        summaries = []
        for q in qs:
            optimizer = ParallelDP(
                algorithm=algorithm,
                threads=threads,
                allocation=scheme,
                sim_params=sim_params,
                tracer=RecordingTracer() if trace else None,
            )
            results.append(optimizer.optimize(q))
            if trace:
                summaries.append(trace_summary(results[-1].trace.events))
        reports = [r.sim_report for r in results]
        row = {
            "topology": topology,
            "n": n,
            "scheme": scheme,
            "threads": threads,
            "sim_time": median(r.total_time for r in reports),
            "speedup": median(
                s / r.total_time
                for s, r in zip(serial_times, reports)
            ),
            "imbalance": median(r.mean_imbalance for r in reports),
        }
        if trace:
            row["trace_events"] = int(median(s["events"] for s in summaries))
            row["barrier_wait_s"] = median(
                s["barrier_wait"] for s in summaries
            )
        rows.append(row)
    return rows


def real_backend_allocation(
    topology: str,
    n: int,
    algorithm: str = "dpsva",
    threads: int = 4,
    backends=("threads", "processes"),
    schemes=("round_robin", "chunked", "equi_depth", "dynamic"),
    queries: int = 3,
    seed: int = 0,
) -> list[dict]:
    """E5 extension: static allocation vs real work stealing on the real
    backends (oracle-vs-real, see EXPERIMENTS.md E5).

    Per row (backend × scheme): the realized per-worker load imbalance
    (per-stratum max/mean of measured worker busy time, averaged over
    strata, median over queries), wall time, and the ``alloc.steal`` /
    ``alloc.dispatch`` counter totals.  Every scheme must report the
    same plan cost — work stealing is bit-identical to the static
    schemes by construction, and the ``cost`` column makes that audit
    visible in the committed artifact.
    """
    qs = _queries(topology, n, queries, seed)
    rows: list[dict] = []
    for backend in backends:
        for scheme in schemes:
            realized = []
            wall_times = []
            steal_totals = []
            dispatch_totals = []
            costs = []
            for q in qs:
                tracer = RecordingTracer()
                optimizer = ParallelDP(
                    algorithm=algorithm,
                    threads=threads,
                    allocation=scheme,
                    backend=backend,
                    tracer=tracer,
                )
                start = time.perf_counter()
                result = optimizer.optimize(q)
                wall_times.append(time.perf_counter() - start)
                realized.append(
                    statistics.fmean(result.extras["realized_imbalances"])
                )
                steal_totals.append(
                    sum(
                        e.value
                        for e in tracer.events
                        if e.kind == "counter" and e.name == "alloc.steal"
                    )
                )
                dispatch_totals.append(
                    sum(
                        e.value
                        for e in tracer.events
                        if e.kind == "counter" and e.name == "alloc.dispatch"
                    )
                )
                costs.append(result.cost)
            rows.append(
                {
                    "topology": topology,
                    "n": n,
                    "backend": backend,
                    "scheme": scheme,
                    "threads": threads,
                    "realized_imbalance": median(realized),
                    "wall_ms": median(wall_times) * 1e3,
                    "steals": int(median(steal_totals)),
                    "dispatches": int(median(dispatch_totals)),
                    # Per-query plan costs, in query order: rows for
                    # different schemes on the same grid point must agree
                    # exactly (stealing is bit-identical to static).
                    "costs": tuple(costs),
                }
            )
    return rows


def size_scaling(
    topology: str,
    sizes,
    algorithm: str = "dpsva",
    thread_counts=(1, 8),
    queries: int = 3,
    seed: int = 0,
) -> list[dict]:
    """E7: simulated time versus query size at fixed thread counts."""
    rows: list[dict] = []
    for n in sizes:
        qs = _queries(topology, n, queries, seed)
        for threads in thread_counts:
            optimizer = ParallelDP(algorithm=algorithm, threads=threads)
            reports = [optimizer.optimize(q).sim_report for q in qs]
            rows.append(
                {
                    "topology": topology,
                    "n": n,
                    "threads": threads,
                    "sim_time": median(r.total_time for r in reports),
                    "busy": median(r.busy_total for r in reports),
                }
            )
    return rows


def cache_workload(
    topology: str,
    n: int,
    algorithm: str = "dpsize",
    distinct: int = 4,
    repeats=(1, 2, 5, 10),
    cache_size: int | None = None,
    seed: int = 0,
    threads: int | None = None,
) -> list[dict]:
    """E10: plan-cache hit rate and latency under repeated traffic.

    For each repeat factor, ``distinct`` queries are issued round-robin
    ``repeats`` times through one fresh
    :class:`~repro.service.OptimizerService`; the row reports the
    measured hit rate, the median cold (miss) and warm (hit) service
    latencies, the hit speedup (cold over warm — the amortization a
    serving loop buys), and end-to-end throughput.
    """
    from repro.config import OptimizerConfig
    from repro.service import OptimizerService

    rows: list[dict] = []
    qs = _queries(topology, n, distinct, seed)
    for repeat in repeats:
        config = OptimizerConfig(
            algorithm=algorithm, threads=threads, cache_size=cache_size
        )
        stream = [qs[i % distinct] for i in range(distinct * repeat)]
        cold_ms: list[float] = []
        warm_ms: list[float] = []
        with OptimizerService(config) as service:
            started = time.perf_counter()
            outcomes = [service.optimize(q) for q in stream]
            wall = time.perf_counter() - started
            stats = service.stats()
        for outcome in outcomes:
            bucket = cold_ms if outcome.source == "miss" else warm_ms
            bucket.append(outcome.elapsed_seconds * 1e3)
        rows.append(
            {
                "topology": topology,
                "n": n,
                "algorithm": algorithm,
                "distinct": distinct,
                "requests": len(stream),
                "hit_rate": round(stats.plan_cache.hit_rate, 4),
                "cold_ms": median(cold_ms) if cold_ms else 0.0,
                "hit_ms": median(warm_ms) if warm_ms else 0.0,
                "hit_speedup": (
                    median(cold_ms) / median(warm_ms)
                    if cold_ms and warm_ms and median(warm_ms) > 0
                    else 0.0
                ),
                "qps": len(stream) / wall if wall > 0 else 0.0,
            }
        )
    return rows


def kernel_speedup(
    topology: str = "clique",
    n: int = 14,
    algorithms=("dpsize", "dpsub", "dpsva"),
    repeats: int = 3,
    seed: int = 0,
    cost_model: CostModel | None = None,
) -> list[dict]:
    """E11: fast-path kernel speedup over the reference path.

    Serial single-thread measurement: each algorithm optimizes the same
    query with ``fast_path=True`` and ``fast_path=False``; the row
    reports the best-of-``repeats`` wall time per path and their ratio.
    The ``parity`` column re-checks the fast-path contract (identical
    cost, plan, and meter totals) on the measured runs, so a reported
    speedup can never come from a result divergence.

    Cliques are the stress topology: every subset is connected, so the
    candidate-pair filter and the memo hot loop dominate end to end.
    """
    from repro.plans import plan_signature

    query = generate_query(WorkloadSpec(topology, n, seed=seed))
    rows: list[dict] = []
    for name in algorithms:
        if name not in ALL_SERIAL:
            raise ValidationError(f"unknown serial algorithm {name!r}")
        timings: dict[bool, float] = {}
        results: dict[bool, OptimizationResult] = {}
        for fast in (True, False):
            best = None
            for _ in range(repeats):
                result = ALL_SERIAL[name](fast_path=fast).optimize(
                    query, cost_model=cost_model
                )
                if best is None or result.elapsed_seconds < best:
                    best = result.elapsed_seconds
                results[fast] = result
            timings[fast] = best
        parity = (
            results[True].cost == results[False].cost
            and plan_signature(results[True].plan)
            == plan_signature(results[False].plan)
            and results[True].meter == results[False].meter
        )
        rows.append(
            {
                "topology": topology,
                "n": n,
                "algorithm": name,
                "ref_ms": timings[False] * 1e3,
                "fast_ms": timings[True] * 1e3,
                "speedup": timings[False] / timings[True],
                "parity": parity,
            }
        )
    return rows


def wire_volume(
    topology: str = "star",
    n: int = 11,
    algorithm: str = "dpsize",
    threads: int = 4,
    seed: int = 0,
) -> list[dict]:
    """E11 companion: broadcast/collect volume, packed versus legacy wire.

    One row per wire format.  ``bytes_sent`` is the process executor's
    accounting over a real multiprocessing run; ``pickled_bytes`` is the
    exact serialized size of one broadcast of every stratum of the
    finished memo (deterministic, excludes the executor's fan-out
    multiplier).  ``reduction`` is the packed row's fraction of the
    legacy row on each measure.
    """
    import pickle

    from repro.cost.estimator import CardinalityEstimator
    from repro.enumerate.base import make_context
    from repro.memo.counters import WorkMeter
    from repro.memo.table import Memo
    from repro.parallel.wire import encode_stratum

    query = generate_query(WorkloadSpec(topology, n, seed=seed))

    # Deterministic measure: encode the completed memo's strata each way.
    ctx = make_context(query)
    memo = Memo(
        ctx,
        StandardCostModel(),
        estimator=CardinalityEstimator(ctx),
        meter=WorkMeter(),
    )
    memo.init_scans()
    ALL_SERIAL["dpsize"]().populate(memo)
    pickled = {
        packed: sum(
            len(pickle.dumps(encode_stratum(memo, size, packed)))
            for size in range(2, ctx.n + 1)
        )
        for packed in (False, True)
    }

    rows: list[dict] = []
    costs = {}
    for fast in (False, True):
        result = ParallelDP(
            algorithm=algorithm,
            threads=threads,
            backend="processes",
            fast_path=fast,
        ).optimize(query)
        costs[fast] = result.cost
        rows.append(
            {
                "topology": topology,
                "n": n,
                "algorithm": algorithm,
                "threads": threads,
                "wire": "packed" if fast else "legacy",
                "bytes_sent": result.extras["approx_bytes_sent"],
                "pickled_bytes": pickled[fast],
                "rounds": result.extras["rounds"],
            }
        )
    assert costs[True] == costs[False]
    for row in rows:
        row["reduction"] = row["pickled_bytes"] / rows[0]["pickled_bytes"]
    return rows


def shm_comparison(
    topology: str = "clique",
    n: int = 14,
    algorithm: str = "dpsize",
    threads: int = 4,
    repeats: int = 3,
    seed: int = 0,
) -> list[dict]:
    """E15: shared-memory memo versus packed wire on the process backend.

    One row per transport mode — ``wire`` (packed deltas over pipes, the
    baseline), ``shm`` (shared-memory descriptors + winner rows), and
    ``shm+vec`` (shm plus the numpy kernels, present only when numpy is
    importable).  ``wall_seconds`` is the best of ``repeats`` runs;
    ``pipe_bytes`` is the executor's approximate accounting of what
    actually crossed the worker pipes, which is the quantity shm
    collapses to fixed-size control messages.  The shm rows additionally
    report the segment traffic that replaced the pipe hop.  Every mode is
    checked to land on a bit-identical memo and the same optimum before
    rows are returned.
    """
    from repro.config import OptimizerConfig
    from repro.memo.shm import shm_available
    from repro.util.vectorize import numpy_available

    query = generate_query(WorkloadSpec(topology, n, seed=seed))
    modes = [("wire", False, False), ("shm", True, False)]
    if numpy_available():
        modes.append(("shm+vec", True, None))

    def snapshot(memo):
        return {
            e.mask: (e.cost, e.rows, e.left, e.right, int(e.method))
            for e in memo.entries()
        }

    rows: list[dict] = []
    baseline = None
    for mode, shared, vectorize in modes:
        if shared and not shm_available():  # pragma: no cover - CI guard
            continue
        best = None
        for _ in range(max(1, repeats)):
            dp = ParallelDP(
                config=OptimizerConfig(
                    algorithm=algorithm,
                    threads=threads,
                    backend="processes",
                    shared_memo=shared,
                    vectorize=vectorize,
                )
            )
            dp.keep_memo = True
            result = dp.optimize(query)
            if best is None or result.elapsed_seconds < best[0].elapsed_seconds:
                best = (result, snapshot(dp.last_memo))
        result, snap = best
        if baseline is None:
            baseline = (result, snap)
        else:
            assert snap == baseline[1], f"{mode}: memo diverged from wire"
            assert result.cost == baseline[0].cost
        shm_info = result.extras.get("shm") or {}
        rows.append(
            {
                "topology": topology,
                "n": n,
                "algorithm": algorithm,
                "threads": threads,
                "mode": mode,
                "wall_seconds": result.elapsed_seconds,
                "pipe_bytes": result.extras["approx_bytes_sent"],
                "segment_bytes": shm_info.get("segment_bytes", 0),
                "published_bytes": shm_info.get("published_bytes", 0),
                "winner_bytes": shm_info.get("winner_bytes", 0),
                "rounds": result.extras["rounds"],
                "cost": result.cost,
            }
        )
    wire = rows[0]
    for row in rows:
        row["speedup"] = wire["wall_seconds"] / row["wall_seconds"]
        row["pipe_reduction"] = wire["pipe_bytes"] / max(1, row["pipe_bytes"])
    return rows


def cluster_comparison(
    topology: str = "clique",
    n: int = 14,
    algorithm: str = "dpsub",
    worker_counts=(2, 4, 8),
    repeats: int = 1,
    seed: int = 0,
) -> tuple[list[dict], list[dict]]:
    """E16: shared-nothing cluster versus the process backend's wire.

    At each worker count ``W`` the same query runs on ``processes``
    (threads=W, packed wire — the replicated-memo baseline whose master
    re-broadcasts every stratum) and on ``cluster`` (W shard-owning
    workers, summary-only peer exchange).  Returns two tables:

    * **mode rows** — one per run: wall clock (best of ``repeats``),
      total data-path payload bytes, rows moved, and the cluster rows'
      actual framed bytes and final-collect traffic.
    * **strata rows** — one per (W, stratum): the bytes each backend
      moves to *disseminate that stratum's results*.  For the process
      backend that is the stratum's candidate collection plus the delta
      broadcast of those results at the next barrier; for the cluster it
      is the stratum's summary exchange (counted once per transfer).
      Apples to apples: both sides are nominal
      :func:`~repro.parallel.wire.payload_nbytes` payload bytes.

    The headline: summaries are 3 columns against the wire's 6, and they
    fan out to W-1 peers against the broadcast's W replicas plus the
    collection hop — so the cluster's per-stratum bytes sit strictly
    below the process backend's at *every* stratum, while the optimum
    stays bit-identical (asserted here on the measured runs, memo
    snapshots included).
    """
    from repro.config import OptimizerConfig
    from repro.trace import per_comm_rows

    query = generate_query(WorkloadSpec(topology, n, seed=seed))

    def snapshot(memo):
        return {
            e.mask: (e.cost, e.rows, e.left, e.right, int(e.method))
            for e in memo.entries()
        }

    def best_run(backend: str, workers: int):
        best = None
        for _ in range(max(1, repeats)):
            tracer = RecordingTracer()
            dp = ParallelDP(
                config=OptimizerConfig(
                    algorithm=algorithm,
                    threads=workers,
                    backend=backend,
                    tracer=tracer,
                )
            )
            dp.keep_memo = True
            result = dp.optimize(query)
            if best is None or result.elapsed_seconds < best[0].elapsed_seconds:
                best = (result, snapshot(dp.last_memo),
                        per_comm_rows(tracer.events))
        return best

    mode_rows: list[dict] = []
    strata_rows: list[dict] = []
    baseline_snap = None
    for workers in worker_counts:
        proc_result, proc_snap, proc_comm = best_run("processes", workers)
        clus_result, clus_snap, clus_comm = best_run("cluster", workers)
        if baseline_snap is None:
            baseline_snap = proc_snap
        for mode, snap, result in (
            ("processes", proc_snap, proc_result),
            ("cluster", clus_snap, clus_result),
        ):
            assert snap == baseline_snap, f"{mode}@{workers}: memo diverged"
            assert result.cost == proc_result.cost
        cluster_comm = clus_result.extras["cluster_comm"]
        common = {"topology": topology, "n": n, "algorithm": algorithm,
                  "workers": workers}
        mode_rows.append(
            {
                **common,
                "mode": "processes",
                "wall_seconds": proc_result.elapsed_seconds,
                "payload_bytes": sum(
                    r["bytes_out"] + r["bytes_in"] for r in proc_comm
                ),
                "rows_moved": sum(r["rows"] for r in proc_comm),
                "framed_bytes": 0,
                "collect_bytes": 0,
                "cost": proc_result.cost,
                "speedup": 1.0,
            }
        )
        mode_rows.append(
            {
                **common,
                "mode": "cluster",
                "wall_seconds": clus_result.elapsed_seconds,
                "payload_bytes": sum(r["bytes_out"] for r in clus_comm),
                "rows_moved": sum(r["rows"] for r in clus_comm),
                "framed_bytes": cluster_comm["framed_out"],
                "collect_bytes": cluster_comm["collect_bytes"],
                "cost": clus_result.cost,
                "speedup": (
                    proc_result.elapsed_seconds / clus_result.elapsed_seconds
                ),
            }
        )
        # Charge the process backend's broadcast of stratum s (which
        # happens at barrier s+1) back to stratum s: both columns then
        # read "bytes moved to make stratum s's results cluster-visible".
        proc_in = {r["size"]: r["bytes_in"] for r in proc_comm}
        proc_out = {r["size"]: r["bytes_out"] for r in proc_comm}
        clus_out = {r["size"]: r["bytes_out"] for r in clus_comm}
        for size in range(2, n + 1):
            process_bytes = proc_in.get(size, 0) + proc_out.get(size + 1, 0)
            cluster_bytes = clus_out.get(size, 0)
            strata_rows.append(
                {
                    "workers": workers,
                    "size": size,
                    "process_bytes": process_bytes,
                    "cluster_bytes": cluster_bytes,
                    "reduction": process_bytes / max(1, cluster_bytes),
                }
            )
    return mode_rows, strata_rows


def heuristic_quality(
    topologies,
    n: int,
    queries: int = 5,
    seed: int = 0,
    heuristics=("goo", "ikkbz", "iterated_improvement", "simulated_annealing"),
    cost_model: CostModel | None = None,
) -> list[dict]:
    """E9: heuristic plan cost relative to the DP optima.

    Two reference optima per query (both with cross products admitted,
    matching the randomized heuristics' search space): the full bushy DP
    optimum, and the left-deep DP optimum — the natural yardstick for the
    order-based heuristics (IKKBZ, iterated improvement, simulated
    annealing).  ``space_gap`` reports how much of a heuristic's apparent
    suboptimality is merely the left-deep/bushy plan-space gap.
    """
    from repro.enumerate.dpsize import DPsize

    rows: list[dict] = []
    cost_model = cost_model or StandardCostModel()
    for topology in topologies:
        qs = _queries(topology, n, queries, seed)
        bushy: list[OptimizationResult] = [
            DPsize(cross_products=True).optimize(q, cost_model=cost_model)
            for q in qs
        ]
        left_deep: list[OptimizationResult] = [
            DPsize(cross_products=True, plan_space="left_deep").optimize(
                q, cost_model=cost_model
            )
            for q in qs
        ]
        space_gap = median(
            ld.cost / b.cost for ld, b in zip(left_deep, bushy)
        )
        for name in heuristics:
            algo_cls = HEURISTICS[name]
            bushy_ratios = []
            space_ratios = []
            times = []
            for q, b_opt, ld_opt in zip(qs, bushy, left_deep):
                result = algo_cls().optimize(q, cost_model=cost_model)
                bushy_ratios.append(result.cost / b_opt.cost)
                # GOO builds bushy trees; the order-based heuristics are
                # judged against the left-deep optimum.
                own_space_opt = b_opt if name == "goo" else ld_opt
                space_ratios.append(result.cost / own_space_opt.cost)
                times.append(result.elapsed_seconds * 1e3)
            rows.append(
                {
                    "topology": topology,
                    "n": n,
                    "heuristic": name,
                    "vs_own_space_median": median(space_ratios),
                    "vs_own_space_worst": max(space_ratios),
                    "vs_bushy_median": median(bushy_ratios),
                    "space_gap": space_gap,
                    "time_ms": median(times),
                }
            )
    return rows


def large_query(
    topologies=("star", "chain", "cycle", "grid", "clique"),
    sizes=(10, 12, 20, 30, 50, 100),
    queries: int = 2,
    seed: int = 0,
    exact_limit: int = 12,
    core_cap: int | None = None,
    cost_model: CostModel | None = None,
) -> list[dict]:
    """E13: the adaptive hybrid across and past the exact-DP horizon.

    One row per (topology, n).  At or below ``exact_limit`` relations the
    exact DP optimum is also computed and ``vs_exact`` reports the
    hybrid's optimality gap ratio — 1.0 whenever the decomposition is a
    single core (the adaptive guarantee).  At every size the hybrid is
    compared against GOO (``vs_goo``, the strongest heuristic that stays
    feasible at 100 relations); values below 1.0 mean the hybrid's plan
    is cheaper.  Decomposition shape (cores, largest core, share of
    relations planned by exact DP) and the winning stitch method are
    carried alongside so the scaling behaviour is visible in one table.
    """
    from repro.config import OptimizerConfig

    rows: list[dict] = []
    cost_model = cost_model or StandardCostModel()
    config = (
        OptimizerConfig(algorithm="hybrid", hybrid_core_cap=core_cap)
        if core_cap is not None
        else OptimizerConfig(algorithm="hybrid")
    )
    for topology in topologies:
        for n in sizes:
            qs = _queries(topology, n, queries, seed)
            hybrid = [
                config.runner.optimize(q, cost_model=cost_model)
                for q in qs
            ]
            goo = [
                HEURISTICS["goo"]().optimize(q, cost_model=cost_model)
                for q in qs
            ]
            if n <= exact_limit:
                exact = [
                    ALL_SERIAL["dpsize"]().optimize(
                        q, cost_model=cost_model
                    )
                    for q in qs
                ]
                vs_exact = median(
                    h.cost / e.cost for h, e in zip(hybrid, exact)
                )
            else:
                vs_exact = "-"
            info = hybrid[0].extras["hybrid"]
            rows.append(
                {
                    "topology": topology,
                    "n": n,
                    "vs_exact": vs_exact,
                    "vs_goo": median(
                        h.cost / g.cost for h, g in zip(hybrid, goo)
                    ),
                    "cores": len(info["core_sizes"]),
                    "core_max": max(info["core_sizes"]),
                    "dp_share": info["dp_relations"] / n,
                    "stitch": info["stitch_method"],
                    "time_ms": median(
                        h.elapsed_seconds * 1e3 for h in hybrid
                    ),
                }
            )
    return rows


def fault_tolerance(
    topology: str = "chain",
    n: int = 7,
    algorithm: str = "dpsize",
    threads: int = 2,
    backend: str = "processes",
    retry_limit: int = 2,
    seed: int = 0,
    fault_seed: int = 0,
) -> list[dict]:
    """E12: chaos matrix — every injected fault yields exact-or-degraded.

    One query, one fault-free baseline cost, then a grid of fault plans
    exercising every fault site (worker crash/raise/delay, master-side
    stratum raise, flaky cache tier, persistent service failure), each
    served through a fresh :class:`~repro.service.OptimizerService`.
    Per row: the provenance, whether the answer was degraded, the number
    of recovery retries spent, and the ``outcome`` — ``"exact"`` when
    the served cost equals the fault-free optimum bit for bit,
    ``"degraded"`` when the service fell back to a heuristic.  The
    acceptance contract is that every row is one of those two; an
    unhandled exception fails the grid.
    """
    from repro.config import OptimizerConfig
    from repro.service import OptimizerService

    query = generate_query(WorkloadSpec(topology, n, seed=seed))

    def serve(fault_plan: str | None) -> tuple:
        config = OptimizerConfig(
            algorithm=algorithm,
            threads=threads,
            backend=backend,
            fault_plan=(
                None
                if fault_plan is None
                else f"seed={fault_seed};{fault_plan}"
            ),
            retry_limit=retry_limit,
            retry_backoff=0.0,
        )
        with OptimizerService(config) as service:
            outcome = service.optimize(query)
            stats = service.stats()
        return outcome, stats

    baseline, _ = serve(None)
    plans = [
        ("none", None),
        ("worker raise", "worker:raise@worker=1"),
        ("worker crash", "worker:crash@worker=1"),
        ("worker delay", "worker:delay@worker=1,delay=0.01"),
        ("stratum raise", "stratum:raise@stratum=3"),
        ("cache flaky", "cache:raise@op=get,count=inf"),
        ("service raise", "service:raise"),
        ("service raise forever", "service:raise@count=inf"),
    ]
    rows: list[dict] = []
    for label, plan in plans:
        outcome, stats = serve(plan)
        exact = outcome.cost == baseline.cost and not outcome.degraded
        rows.append(
            {
                "fault": label,
                "plan": plan or "-",
                "backend": backend,
                "source": outcome.source,
                "degraded": outcome.degraded,
                "retries": stats.retries,
                "errors": stats.errors,
                "outcome": "exact" if exact else "degraded",
            }
        )
    return rows


def _percentile(values, q: float) -> float:
    """Nearest-rank percentile of a sequence (0 for empty input)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def serving_throughput(
    topology: str = "star",
    n: int = 10,
    algorithm: str = "dpsize",
    distinct: int = 16,
    requests_per_client: int = 250,
    clients: int = 8,
    shards: int = 16,
    seed: int = 0,
    admission_limit: int | None = None,
    warm_start_path: str | None = None,
) -> list[dict]:
    """E14: serving-tier throughput and tail latency under replay.

    A closed-loop cache-hit-heavy replay (``distinct`` queries warmed
    first, then ``clients`` concurrent clients each issuing
    ``requests_per_client`` requests round-robin) is driven against
    three serving setups:

    * ``sync-facade-1shard`` — the backwards-compatible synchronous
      facade over a single-lock :class:`~repro.service.PlanCache`,
      driven by OS threads: the PR-2-era architecture, the baseline.
    * ``async-sharded`` — the asyncio-native
      :class:`~repro.service.AsyncOptimizerService` over a
      ``shards``-way :class:`~repro.service.ShardedPlanCache`, driven
      by asyncio client tasks on one loop.
    * ``warm-restart`` — a *fresh* async service reloading the previous
      mode's spilled warm-start file (restart simulation), replaying
      the same traffic; its hit rate shows how much of the cache
      survived the restart.  Only emitted when ``warm_start_path`` is
      given.

    Per row: client-observed p50/p95/p99 latency, throughput, hit rate
    (hits over all requests, warm-up misses included), sheds, and
    errors.  ``admission_limit`` defaults to ``clients`` — offered load
    sits exactly at the limit, so a correct admission controller sheds
    nothing.
    """
    from repro.config import OptimizerConfig
    from repro.service import AsyncOptimizerService, OptimizerService

    qs = _queries(topology, n, distinct, seed)
    limit = admission_limit if admission_limit is not None else clients
    total = clients * requests_per_client

    def client_stream(c: int):
        # Offset per client so concurrent clients spread over distinct
        # fingerprints (and therefore shards) instead of marching in
        # lockstep on one key.
        return [qs[(c + i) % distinct] for i in range(requests_per_client)]

    def row(mode, shard_count, latencies, wall, stats):
        return {
            "mode": mode,
            "clients": clients,
            "shards": shard_count,
            "requests": stats.requests,
            "throughput_rps": round(total / wall, 1) if wall > 0 else 0.0,
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 4),
            "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 4),
            "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 4),
            "hit_rate": (
                round(stats.hits / stats.requests, 4) if stats.requests else 0.0
            ),
            "sheds": stats.sheds,
            "errors": stats.errors,
            "warm_entries": stats.warm_start_entries,
        }

    rows: list[dict] = []

    # -- baseline: sync facade, single-lock cache, OS-thread clients ----
    base_config = OptimizerConfig(
        algorithm=algorithm, cache_shards=1, admission_limit=limit
    )
    with OptimizerService(base_config) as service:
        for q in qs:
            service.optimize(q)  # warm the cache
        latencies: list[list[float]] = [[] for _ in range(clients)]

        def run_client(c: int) -> None:
            bucket = latencies[c]
            for q in client_stream(c):
                t0 = time.perf_counter()
                service.optimize(q)
                bucket.append(time.perf_counter() - t0)

        workers = [
            threading.Thread(target=run_client, args=(c,))
            for c in range(clients)
        ]
        started = time.perf_counter()
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        wall = time.perf_counter() - started
        stats = service.stats()
    flat = [sample for bucket in latencies for sample in bucket]
    rows.append(row("sync-facade-1shard", 1, flat, wall, stats))

    # -- treatment: async-native service, sharded cache, task clients ---
    async_config = OptimizerConfig(
        algorithm=algorithm,
        cache_shards=shards,
        admission_limit=limit,
        warm_start_path=warm_start_path,
    )

    async def drive(config) -> tuple[list[float], float, object]:
        async with AsyncOptimizerService(config) as service:
            for q in qs:
                await service.optimize(q)

            async def run_client(c: int) -> list[float]:
                bucket = []
                for q in client_stream(c):
                    t0 = time.perf_counter()
                    await service.optimize(q)
                    bucket.append(time.perf_counter() - t0)
                return bucket

            started = time.perf_counter()
            buckets = await asyncio.gather(
                *(run_client(c) for c in range(clients))
            )
            wall = time.perf_counter() - started
            stats = service.stats()
        return [s for bucket in buckets for s in bucket], wall, stats

    flat, wall, stats = asyncio.run(drive(async_config))
    rows.append(row("async-sharded", shards, flat, wall, stats))

    # -- restart simulation: fresh service reloads the spilled cache ----
    if warm_start_path is not None:
        flat, wall, stats = asyncio.run(drive(async_config))
        rows.append(row("warm-restart", shards, flat, wall, stats))
    return rows


def workload_mqo(
    seeds=(0, 1, 3),
    count: int = 6,
    core_tables: int = 4,
    overlap: float = 0.67,
    algorithm: str = "dpsize",
) -> list[dict]:
    """E17: multi-query optimization on TPC-H-style SQL batches.

    Per seed, a :class:`~repro.sql.SqlWorkloadSpec` batch (``count``
    members, ``core_tables``-way shared join core embedded in
    ``overlap`` of them) is optimized two ways:

    * **baseline** — each member independently through
      :func:`repro.optimize` (no sharing of any kind);
    * **mqo** — the whole batch through
      :meth:`~repro.service.OptimizerService.optimize_batch` with
      ``mqo=True``: shared cores detected, optimized once, and spliced.

    Per row: members answered with spliced cores (``subplan`` sources),
    detected cores, total enumeration pairs under both regimes (the mqo
    total counts each core's one-time DP, via ``mqo_core_pairs``), the
    saving, and whether every member's cost matched the baseline
    bit-for-bit (``exact`` — the MQO correctness contract).
    """
    from repro import optimize
    from repro.config import OptimizerConfig
    from repro.service import OptimizerService
    from repro.sql import SqlWorkload, SqlWorkloadSpec

    base_config = OptimizerConfig(algorithm=algorithm)
    mqo_config = OptimizerConfig(algorithm=algorithm, mqo=True)
    rows: list[dict] = []
    for seed in seeds:
        spec = SqlWorkloadSpec(
            seed=seed, count=count, core_tables=core_tables, overlap=overlap
        )
        queries = SqlWorkload(spec).queries()
        baselines = [optimize(q, config=base_config) for q in queries]
        base_pairs = sum(r.meter.pairs_considered for r in baselines)
        with OptimizerService(mqo_config) as service:
            responses = service.optimize_batch(queries)
            stats = service.stats()
        member_pairs = sum(
            r.result.meter.pairs_considered for r in responses
        )
        mqo_pairs = member_pairs + stats.mqo_core_pairs
        exact = all(
            r.result.cost == b.cost
            for r, b in zip(responses, baselines)
        )
        rows.append(
            {
                "seed": seed,
                "members": count,
                "core_tables": core_tables,
                "overlap": overlap,
                "cores": stats.mqo_shared_cores,
                "subplan": sum(
                    1 for r in responses if r.source == "subplan"
                ),
                "baseline_pairs": base_pairs,
                "mqo_pairs": mqo_pairs,
                "core_pairs": stats.mqo_core_pairs,
                "saving": (
                    round(1.0 - mqo_pairs / base_pairs, 4)
                    if base_pairs
                    else 0.0
                ),
                "exact": exact,
            }
        )
    return rows
