"""Plain-text rendering of experiment results.

Everything renders to strings (no plotting dependencies): aligned tables
for the paper's tables, and ASCII bar curves for its figures.
"""

from __future__ import annotations

import io


def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render dict rows as an aligned text table.

    Args:
        rows: Homogeneous dicts (one per table row).
        columns: Column order; defaults to the first row's key order.
    """
    if not rows:
        return "(no rows)"
    cols = columns or list(rows[0])
    cells = [[_format_value(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells))
        for i, c in enumerate(cols)
    ]
    out = io.StringIO()
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    out.write(header + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in cells:
        out.write("  ".join(v.rjust(w) for v, w in zip(row, widths)) + "\n")
    return out.getvalue().rstrip("\n")


def render_curve(
    xs: list, ys: list[float], label: str = "", width: int = 40
) -> str:
    """Render one series as labelled ASCII bars (for figure-style output).

    Bars are scaled to the maximum y value.
    """
    if not ys:
        return f"{label}: (no data)"
    peak = max(ys)
    out = io.StringIO()
    if label:
        out.write(f"{label}\n")
    for x, y in zip(xs, ys):
        bar = "#" * max(1, round(width * (y / peak))) if peak > 0 else ""
        out.write(f"  {str(x):>8}  {bar} {_format_value(float(y))}\n")
    return out.getvalue().rstrip("\n")


def rows_to_csv(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render dict rows as CSV text."""
    if not rows:
        return ""
    cols = columns or list(rows[0])
    out = io.StringIO()
    out.write(",".join(cols) + "\n")
    for row in rows:
        out.write(",".join(str(row.get(c, "")) for c in cols) + "\n")
    return out.getvalue()
