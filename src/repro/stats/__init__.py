"""Statistics collection: histograms and data-derived catalogs.

Closes the loop between the engine and the optimizer: given materialized
tables (:mod:`repro.engine`), this package builds per-column histograms
(equi-width and equi-depth), estimates equality/range/join selectivities
from them, and can refresh a :class:`~repro.catalog.model.Catalog` so the
SQL binder's estimates come from measured data rather than declared
statistics — the ANALYZE step of a real system.
"""

from repro.stats.histogram import EquiDepthHistogram, EquiWidthHistogram
from repro.stats.collect import (
    collect_column_stats,
    join_selectivity_from_histograms,
    refresh_catalog,
)

__all__ = [
    "EquiWidthHistogram",
    "EquiDepthHistogram",
    "collect_column_stats",
    "join_selectivity_from_histograms",
    "refresh_catalog",
]
