"""Equi-width and equi-depth histograms over numeric columns.

Both histograms store per-bucket row counts and distinct-value estimates
and answer the two selectivity questions the binder needs: the fraction of
rows equal to a value, and the fraction falling in a closed range.  The
uniform-within-bucket assumption is the classic one; equi-depth buckets
bound its error on skewed data.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.util.errors import ValidationError


@dataclass(frozen=True, slots=True)
class Bucket:
    """One histogram bucket over ``[lo, hi]`` (inclusive bounds).

    Attributes:
        lo: Smallest value covered.
        hi: Largest value covered.
        rows: Rows falling in the bucket.
        distinct: Distinct values observed in the bucket.
    """

    lo: float
    hi: float
    rows: int
    distinct: int

    def overlap_fraction(self, lo: float, hi: float) -> float:
        """Fraction of this bucket's width overlapping ``[lo, hi]``."""
        if self.hi < lo or self.lo > hi:
            return 0.0
        width = self.hi - self.lo
        if width <= 0:
            return 1.0
        covered = min(self.hi, hi) - max(self.lo, lo)
        return max(0.0, min(1.0, covered / width))


class _HistogramBase:
    """Shared estimation logic over a bucket list."""

    def __init__(self, buckets: list[Bucket], total_rows: int) -> None:
        if total_rows < 0:
            raise ValidationError("total_rows must be >= 0")
        self.buckets = buckets
        self.total_rows = total_rows
        self._bounds = [b.hi for b in buckets]

    @property
    def distinct_count(self) -> int:
        """Total distinct values (summed over buckets)."""
        return sum(b.distinct for b in self.buckets)

    def _bucket_for(self, value: float) -> Bucket | None:
        index = bisect_left(self._bounds, value)
        if index >= len(self.buckets):
            return None
        bucket = self.buckets[index]
        if value < bucket.lo:
            return None
        return bucket

    def estimate_eq(self, value: float) -> float:
        """Estimated fraction of rows equal to ``value``."""
        if self.total_rows == 0:
            return 0.0
        bucket = self._bucket_for(value)
        if bucket is None or bucket.rows == 0:
            return 0.0
        return (bucket.rows / max(1, bucket.distinct)) / self.total_rows

    def estimate_range(self, lo: float, hi: float) -> float:
        """Estimated fraction of rows with ``lo <= value <= hi``."""
        if self.total_rows == 0 or hi < lo:
            return 0.0
        if hi == lo:
            # A point range has zero measure under the width model; fall
            # back to the equality estimate.
            return self.estimate_eq(lo)
        covered = 0.0
        for bucket in self.buckets:
            covered += bucket.rows * bucket.overlap_fraction(lo, hi)
        return min(1.0, covered / self.total_rows)

    def __len__(self) -> int:
        return len(self.buckets)


class EquiWidthHistogram(_HistogramBase):
    """Buckets of equal value-range width."""

    @classmethod
    def build(cls, values, buckets: int = 16) -> "EquiWidthHistogram":
        """Build from an iterable of numeric values."""
        if buckets < 1:
            raise ValidationError(f"buckets must be >= 1, got {buckets}")
        data = sorted(values)
        if not data:
            return cls([], 0)
        lo, hi = data[0], data[-1]
        if hi == lo:
            bucket = Bucket(lo=lo, hi=hi, rows=len(data), distinct=1)
            return cls([bucket], len(data))
        width = (hi - lo) / buckets
        built: list[Bucket] = []
        for i in range(buckets):
            b_lo = lo + i * width
            b_hi = hi if i == buckets - 1 else lo + (i + 1) * width
            start = bisect_left(data, b_lo) if i else 0
            end = bisect_right(data, b_hi) if i == buckets - 1 else bisect_left(
                data, b_hi
            )
            chunk = data[start:end]
            built.append(
                Bucket(
                    lo=b_lo,
                    hi=b_hi,
                    rows=len(chunk),
                    distinct=len(set(chunk)),
                )
            )
        return cls(built, len(data))


class EquiDepthHistogram(_HistogramBase):
    """Buckets holding (approximately) equal row counts."""

    @classmethod
    def build(cls, values, buckets: int = 16) -> "EquiDepthHistogram":
        """Build from an iterable of numeric values."""
        if buckets < 1:
            raise ValidationError(f"buckets must be >= 1, got {buckets}")
        data = sorted(values)
        if not data:
            return cls([], 0)
        total = len(data)
        buckets = min(buckets, total)
        built: list[Bucket] = []
        start = 0
        for i in range(buckets):
            end = round((i + 1) * total / buckets)
            if end <= start:
                continue
            # Never split a run of equal values across buckets.
            boundary_value = data[end - 1]
            if end < total:
                end = bisect_right(data, boundary_value)
            chunk = data[start:end]
            built.append(
                Bucket(
                    lo=chunk[0],
                    hi=chunk[-1],
                    rows=len(chunk),
                    distinct=len(set(chunk)),
                )
            )
            start = end
            if start >= total:
                break
        return cls(built, total)
