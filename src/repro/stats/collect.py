"""Statistics collection from materialized tables.

``collect_column_stats`` runs the ANALYZE pass over an engine
:class:`~repro.engine.tables.DataTable`; ``refresh_catalog`` rebuilds a
:class:`~repro.catalog.model.Catalog` from a whole
:class:`~repro.engine.tables.Database`, so declared statistics can be
replaced by measured ones.  ``join_selectivity_from_histograms`` is the
histogram generalization of the System-R ``1/max(d1, d2)`` rule.
"""

from __future__ import annotations

from repro.catalog.model import Catalog, Column, TableStats
from repro.engine.tables import Database, DataTable
from repro.stats.histogram import EquiDepthHistogram


def collect_column_stats(
    table: DataTable, buckets: int = 16
) -> dict[str, EquiDepthHistogram]:
    """Build an equi-depth histogram for every column of ``table``.

    Only numeric columns are summarized; non-numeric values raise
    ``TypeError`` from sorting, which is deliberate — the engine's tables
    are numeric by construction.
    """
    stats: dict[str, EquiDepthHistogram] = {}
    for index, column in enumerate(table.columns):
        values = [row[index] for row in table.rows]
        stats[column] = EquiDepthHistogram.build(values, buckets=buckets)
    return stats


def join_selectivity_from_histograms(
    a: EquiDepthHistogram, b: EquiDepthHistogram
) -> float:
    """Estimated equi-join selectivity between two columns.

    Bucket-pair refinement of the System-R rule: for each overlapping
    bucket pair, the joint mass is ``m_a · m_b`` scaled by the overlap and
    divided by the larger distinct count in the overlap.  Degenerates to
    ``1 / max(d_a, d_b)`` for single-bucket histograms over the same
    domain.
    """
    if a.total_rows == 0 or b.total_rows == 0:
        return 0.0
    selectivity = 0.0
    for ba in a.buckets:
        if ba.rows == 0:
            continue
        mass_a = ba.rows / a.total_rows
        for bb in b.buckets:
            if bb.rows == 0:
                continue
            frac_a = ba.overlap_fraction(bb.lo, bb.hi)
            frac_b = bb.overlap_fraction(ba.lo, ba.hi)
            if frac_a == 0.0 and frac_b == 0.0:
                continue
            mass_b = bb.rows / b.total_rows
            d_a = max(1.0, ba.distinct * frac_a)
            d_b = max(1.0, bb.distinct * frac_b)
            selectivity += (mass_a * frac_a) * (mass_b * frac_b) / max(d_a, d_b)
    return max(0.0, min(1.0, selectivity))


def refresh_catalog(
    database: Database, buckets: int = 16
) -> tuple[Catalog, dict[str, dict[str, EquiDepthHistogram]]]:
    """ANALYZE a whole database.

    Returns a catalog whose cardinalities and per-column distinct counts
    are *measured* from the data, plus the histograms themselves (keyed by
    table, then column) for selectivity queries.
    """
    catalog = Catalog()
    histograms: dict[str, dict[str, EquiDepthHistogram]] = {}
    for name, table in database.tables.items():
        stats = collect_column_stats(table, buckets=buckets)
        histograms[name] = stats
        columns = tuple(
            Column(
                name=column,
                distinct_count=max(1, stats[column].distinct_count),
            )
            for column in table.columns
        )
        catalog.add(
            TableStats(
                name=name,
                cardinality=max(1, len(table)),
                columns=columns,
            )
        )
    return catalog, histograms
