"""Physical join operators.

The enumerators pick, per join, the cheapest of the standard operators the
paper's evaluation tradition uses: (block-)nested-loop, hash, and
sort-merge join.  The enum values are stable small integers because they
are stored in memo entries and shipped across process boundaries by the
multiprocessing executor.
"""

from __future__ import annotations

from enum import IntEnum


class JoinMethod(IntEnum):
    """Physical algorithm implementing a join (or scan marker)."""

    SCAN = 0
    NESTED_LOOP = 1
    BLOCK_NESTED_LOOP = 2
    HASH = 3
    SORT_MERGE = 4

    @property
    def is_join(self) -> bool:
        """True for actual join algorithms (everything but SCAN)."""
        return self is not JoinMethod.SCAN

    @property
    def symmetric(self) -> bool:
        """True when cost is invariant under operand exchange."""
        return self is JoinMethod.SORT_MERGE


JOIN_METHODS: tuple[JoinMethod, ...] = (
    JoinMethod.NESTED_LOOP,
    JoinMethod.BLOCK_NESTED_LOOP,
    JoinMethod.HASH,
    JoinMethod.SORT_MERGE,
)
"""All join algorithms, in the order cost models evaluate them."""
