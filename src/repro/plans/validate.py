"""Structural plan validation."""

from __future__ import annotations

from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.query.context import QueryContext
from repro.util.bitsets import universe
from repro.util.errors import ValidationError


def validate_plan(
    plan: PlanNode,
    ctx: QueryContext | None = None,
    require_complete: bool = True,
    require_connected: bool = False,
) -> None:
    """Check that ``plan`` is a well-formed plan (for ``ctx`` if given).

    Raises :class:`ValidationError` on:

    * duplicate base relations across leaves (non-disjoint join operands
      are already rejected at node construction; this catches deeper
      aliasing bugs);
    * relation indices outside the query when ``ctx`` is given;
    * incomplete coverage of the query when ``require_complete``;
    * joins with no connecting edge when ``require_connected`` (i.e. the
      plan uses a cross product although the caller forbids them).
    """
    seen = 0
    for leaf in plan.leaves():
        if seen & leaf.mask:
            raise ValidationError(
                f"relation t{leaf.relation} appears twice in the plan"
            )
        seen |= leaf.mask

    if ctx is None:
        return

    if seen & ~universe(ctx.n):
        raise ValidationError(
            f"plan references relations outside the query (n={ctx.n})"
        )
    if require_complete and seen != ctx.all_mask:
        raise ValidationError(
            f"plan covers {seen:#x} but the query is {ctx.all_mask:#x}"
        )
    if require_connected:
        _check_no_cross_products(plan, ctx)


def _check_no_cross_products(plan: PlanNode, ctx: QueryContext) -> None:
    if isinstance(plan, ScanNode):
        return
    if isinstance(plan, JoinNode):
        if not ctx.connects(plan.left.mask, plan.right.mask):
            raise ValidationError(
                f"cross product between {plan.left.mask:#x} and "
                f"{plan.right.mask:#x}"
            )
        _check_no_cross_products(plan.left, ctx)
        _check_no_cross_products(plan.right, ctx)
