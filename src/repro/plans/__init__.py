"""Query-plan model: trees, join operators, validation, printing, diffing."""

from repro.plans.diff import PlanDiff, diff_plans, render_diff
from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.plans.operators import JOIN_METHODS, JoinMethod
from repro.plans.printer import explain, plan_signature, plan_to_dot
from repro.plans.validate import validate_plan

__all__ = [
    "PlanNode",
    "ScanNode",
    "JoinNode",
    "JoinMethod",
    "JOIN_METHODS",
    "explain",
    "plan_signature",
    "plan_to_dot",
    "PlanDiff",
    "diff_plans",
    "render_diff",
    "validate_plan",
]
