"""Query-plan model: trees, join operators, validation, printing."""

from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.plans.operators import JOIN_METHODS, JoinMethod
from repro.plans.printer import explain, plan_signature
from repro.plans.validate import validate_plan

__all__ = [
    "PlanNode",
    "ScanNode",
    "JoinNode",
    "JoinMethod",
    "JOIN_METHODS",
    "explain",
    "plan_signature",
    "validate_plan",
]
