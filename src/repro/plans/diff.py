"""Structural plan diffing via clause-level block maps.

A plan tree is decomposed into *clauses* — one per node, keyed by the
node's quantifier-set mask.  A join clause records how its quantifier
set was split (left mask, right mask) and with which physical method; a
scan clause records the relation it reads.  Because the key is the
quantifier set itself (not a tree position), two plans over the same
query align block-by-block no matter how their shapes differ: a clause
present in both maps with equal bodies is *same*, present with a
different split or method is *changed*, and present in only one plan is
*only_a*/*only_b*.

This is far more informative than a boolean ``plan_signature``
comparison: the diff pinpoints *which* intermediate results two
configurations disagree on, which is exactly the question when
comparing algorithms, cost models, or sharing modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.util.bitsets import bits_of, popcount


@dataclass(frozen=True, slots=True)
class Clause:
    """One block of a plan: how one quantifier set is produced.

    Attributes:
        mask: Quantifier-set bitmask this clause produces.
        kind: ``"scan"`` or ``"join"``.
        left: Left input mask (``0`` for scans).
        right: Right input mask (``0`` for scans).
        method: Join method name (``"SCAN"`` for scans).
    """

    mask: int
    kind: str
    left: int
    right: int
    method: str

    def body(self) -> tuple[int, int, str]:
        """The comparable payload (everything except the key)."""
        return (self.left, self.right, self.method)


def block_map(plan: PlanNode) -> dict[int, Clause]:
    """Decompose ``plan`` into a clause map keyed by quantifier-set mask."""
    clauses: dict[int, Clause] = {}

    def walk(node: PlanNode) -> None:
        if isinstance(node, ScanNode):
            clauses[node.mask] = Clause(node.mask, "scan", 0, 0, "SCAN")
            return
        if isinstance(node, JoinNode):
            clauses[node.mask] = Clause(
                node.mask,
                "join",
                node.left.mask,
                node.right.mask,
                node.method.name,
            )
            walk(node.left)
            walk(node.right)
            return
        raise TypeError(f"not a plan node: {node!r}")  # pragma: no cover

    walk(plan)
    return clauses


@dataclass(frozen=True, slots=True)
class PlanDiff:
    """Clause-level structural diff between two plans.

    Attributes:
        same: Masks produced identically by both plans.
        changed: ``mask -> (clause_a, clause_b)`` where both plans build
            the quantifier set but disagree on split or method.
        only_a: Clauses (intermediate results) only plan A materializes.
        only_b: Clauses only plan B materializes.
    """

    same: tuple[int, ...]
    changed: dict[int, tuple[Clause, Clause]] = field(default_factory=dict)
    only_a: dict[int, Clause] = field(default_factory=dict)
    only_b: dict[int, Clause] = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        """True iff the two plans share every clause."""
        return not self.changed and not self.only_a and not self.only_b


def diff_plans(plan_a: PlanNode, plan_b: PlanNode) -> PlanDiff:
    """Diff two plans clause-by-clause.

    The plans should cover the same query (same relation index space);
    nothing breaks otherwise, but masks only align meaningfully when
    they do.
    """
    map_a = block_map(plan_a)
    map_b = block_map(plan_b)
    same: list[int] = []
    changed: dict[int, tuple[Clause, Clause]] = {}
    only_a: dict[int, Clause] = {}
    only_b: dict[int, Clause] = {}
    for mask in sorted(set(map_a) | set(map_b), key=lambda m: (popcount(m), m)):
        a = map_a.get(mask)
        b = map_b.get(mask)
        if a is not None and b is not None:
            if a.body() == b.body():
                same.append(mask)
            else:
                changed[mask] = (a, b)
        elif a is not None:
            only_a[mask] = a
        else:
            assert b is not None
            only_b[mask] = b
    return PlanDiff(tuple(same), changed, only_a, only_b)


def _set_name(mask: int, relation_names=None) -> str:
    def name_of(i: int) -> str:
        if relation_names is not None and i < len(relation_names):
            return str(relation_names[i])
        return f"t{i}"

    return "{" + ",".join(name_of(i) for i in bits_of(mask)) + "}"


def _clause_text(clause: Clause, relation_names=None) -> str:
    if clause.kind == "scan":
        return "Scan"
    return (
        f"{_set_name(clause.left, relation_names)} {clause.method} "
        f"{_set_name(clause.right, relation_names)}"
    )


def render_diff(
    diff: PlanDiff,
    relation_names=None,
    label_a: str = "A",
    label_b: str = "B",
) -> str:
    """Render a :class:`PlanDiff` as aligned text, one clause per line.

    Same clauses print with a leading two spaces, changed clauses with
    ``~`` (showing both bodies), and clauses unique to one plan with
    ``-``/``+`` for A/B respectively — smallest quantifier sets first.
    """
    lines: list[str] = []
    if diff.identical:
        lines.append(f"plans identical ({len(diff.same)} clauses)")
    else:
        lines.append(
            f"plans differ: {len(diff.changed)} changed, "
            f"{len(diff.only_a)} only in {label_a}, "
            f"{len(diff.only_b)} only in {label_b}"
        )
    entries: list[tuple[int, str]] = [(m, "same") for m in diff.same]
    entries += [(m, "changed") for m in diff.changed]
    entries += [(m, "only_a") for m in diff.only_a]
    entries += [(m, "only_b") for m in diff.only_b]
    for mask, tag in sorted(entries, key=lambda e: (popcount(e[0]), e[0])):
        name = _set_name(mask, relation_names)
        if tag == "same":
            # Only joins are interesting in the "same" listing; scans of
            # shared base relations would drown the signal.
            if popcount(mask) > 1:
                lines.append(f"  {name}")
        elif tag == "changed":
            a, b = diff.changed[mask]
            lines.append(
                f"~ {name}: {label_a}={_clause_text(a, relation_names)} | "
                f"{label_b}={_clause_text(b, relation_names)}"
            )
        elif tag == "only_a":
            clause = diff.only_a[mask]
            lines.append(f"- {name}: {_clause_text(clause, relation_names)}")
        else:
            clause = diff.only_b[mask]
            lines.append(f"+ {name}: {_clause_text(clause, relation_names)}")
    return "\n".join(lines)
