"""Plan rendering: EXPLAIN-style trees and compact signatures."""

from __future__ import annotations

from repro.plans.nodes import JoinNode, PlanNode, ScanNode


def explain(
    plan: PlanNode,
    relation_names=None,
    annotate=None,
) -> str:
    """Render a plan as an indented EXPLAIN-style tree.

    Args:
        plan: Root of the plan tree.
        relation_names: Optional sequence mapping relation index to name.
        annotate: Optional callback ``node -> str`` appended to each line
            (used by examples to print per-node rows/cost).
    """
    lines: list[str] = []

    def name_of(relation: int) -> str:
        if relation_names is not None and relation < len(relation_names):
            return str(relation_names[relation])
        return f"t{relation}"

    def render(node: PlanNode, indent: int) -> None:
        pad = "  " * indent
        if isinstance(node, ScanNode):
            line = f"{pad}Scan {name_of(node.relation)}"
        elif isinstance(node, JoinNode):
            line = f"{pad}{node.method.name} join"
        else:  # pragma: no cover - defensive
            line = f"{pad}{node!r}"
        if annotate is not None:
            extra = annotate(node)
            if extra:
                line = f"{line}  [{extra}]"
        lines.append(line)
        if isinstance(node, JoinNode):
            render(node.left, indent + 1)
            render(node.right, indent + 1)

    render(plan, 0)
    return "\n".join(lines)


def plan_to_dot(
    plan: PlanNode,
    relation_names=None,
    graph_name: str = "plan",
) -> str:
    """Render a plan as a Graphviz ``dot`` digraph.

    Join nodes are boxes labelled with the method; scans are ellipses
    labelled with the relation name.  Paste into any dot renderer.
    """
    lines = [f"digraph {graph_name} {{", "  node [fontname=monospace];"]
    counter = 0

    def name_of(relation: int) -> str:
        if relation_names is not None and relation < len(relation_names):
            return str(relation_names[relation])
        return f"t{relation}"

    def quote(label: str) -> str:
        # Dot double-quoted strings treat backslash and ``"`` specially;
        # unescaped they produce invalid (or mislabelled) graphs.
        return label.replace("\\", "\\\\").replace('"', '\\"')

    def emit(node: PlanNode) -> str:
        nonlocal counter
        node_id = f"n{counter}"
        counter += 1
        if isinstance(node, ScanNode):
            label = quote(name_of(node.relation))
            lines.append(f'  {node_id} [shape=ellipse label="{label}"];')
        elif isinstance(node, JoinNode):
            lines.append(
                f'  {node_id} [shape=box label="{node.method.name}"];'
            )
            left_id = emit(node.left)
            right_id = emit(node.right)
            lines.append(f"  {node_id} -> {left_id};")
            lines.append(f"  {node_id} -> {right_id};")
        else:  # pragma: no cover - defensive
            lines.append(f'  {node_id} [label="{quote(repr(node))}"];')
        return node_id

    emit(plan)
    lines.append("}")
    return "\n".join(lines)


def plan_signature(plan: PlanNode) -> str:
    """Compact one-line structural signature, e.g. ``((t0 HJ t1) NL t2)``.

    Two plans have equal signatures iff they have the same shape, leaf
    order, and join methods — handy for test assertions and deduplication.
    """
    abbrev = {
        "NESTED_LOOP": "NL",
        "BLOCK_NESTED_LOOP": "BNL",
        "HASH": "HJ",
        "SORT_MERGE": "SM",
    }
    if isinstance(plan, ScanNode):
        return f"t{plan.relation}"
    if isinstance(plan, JoinNode):
        left = plan_signature(plan.left)
        right = plan_signature(plan.right)
        return f"({left} {abbrev[plan.method.name]} {right})"
    raise TypeError(f"not a plan node: {plan!r}")
