"""Plan trees.

Plans are immutable binary trees: :class:`ScanNode` leaves over base
relations and :class:`JoinNode` inner nodes annotated with a
:class:`~repro.plans.operators.JoinMethod`.  The quantifier-set bitmask of
every node is computed at construction, so structural queries (which
relations does this subtree cover?) are O(1).

Memo entries do **not** store these trees — they store two child masks plus
a method, exactly as the paper prescribes for O(1) memo-entry space — and
trees are materialized on demand via
:func:`repro.memo.table.extract_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plans.operators import JoinMethod
from repro.util.bitsets import popcount
from repro.util.errors import ValidationError


class PlanNode:
    """Base class for plan-tree nodes."""

    __slots__ = ()

    mask: int

    @property
    def relations(self) -> int:
        """Bitmask of base relations covered by this subtree."""
        return self.mask

    @property
    def size(self) -> int:
        """Number of base relations covered."""
        return popcount(self.mask)

    def leaves(self) -> list["ScanNode"]:
        """All scan leaves, left to right."""
        raise NotImplementedError

    def depth(self) -> int:
        """Height of the tree (a single scan has depth 1)."""
        raise NotImplementedError

    def is_left_deep(self) -> bool:
        """True iff every join's inner (right) operand is a scan."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class ScanNode(PlanNode):
    """Leaf: scan of one base relation.

    Attributes:
        relation: Relation index in the query's numbering.
        mask: Singleton bitmask, derived.
    """

    relation: int
    mask: int = -1

    def __post_init__(self) -> None:
        if self.relation < 0:
            raise ValidationError(f"negative relation index {self.relation}")
        object.__setattr__(self, "mask", 1 << self.relation)

    def leaves(self) -> list["ScanNode"]:
        return [self]

    def depth(self) -> int:
        return 1

    def is_left_deep(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"Scan(t{self.relation})"


@dataclass(frozen=True, slots=True)
class JoinNode(PlanNode):
    """Inner node: join of two disjoint subtrees.

    Attributes:
        left: Outer operand.
        right: Inner operand.
        method: Physical join algorithm.
        mask: Union bitmask, derived.
    """

    left: PlanNode
    right: PlanNode
    method: JoinMethod = JoinMethod.HASH
    mask: int = -1

    def __post_init__(self) -> None:
        if not self.method.is_join:
            raise ValidationError(f"{self.method!r} is not a join method")
        if self.left.mask & self.right.mask:
            raise ValidationError(
                "join operands overlap: "
                f"{self.left.mask:#x} & {self.right.mask:#x}"
            )
        object.__setattr__(self, "mask", self.left.mask | self.right.mask)

    def leaves(self) -> list[ScanNode]:
        return self.left.leaves() + self.right.leaves()

    def depth(self) -> int:
        return 1 + max(self.left.depth(), self.right.depth())

    def is_left_deep(self) -> bool:
        return isinstance(self.right, ScanNode) and self.left.is_left_deep()

    def __repr__(self) -> str:
        return f"Join({self.method.name}, {self.left!r}, {self.right!r})"
